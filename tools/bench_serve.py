#!/usr/bin/env python
"""Load generator for the serving daemon.

Boots an in-process :class:`~repro.serve.server.ReproServer` on an
ephemeral port, drives it with ``--clients`` concurrent
:class:`ServeClient` threads issuing ``--requests`` evaluate calls in
total, and reports **throughput** (requests/s) plus **latency
percentiles** (p50/p95/p99, submit→result wall time per request).

The queue is deliberately small relative to the client count
(``--capacity``), so a run also exercises the backpressure path: the
summary reports how many submissions the daemon shed with ``429``
(clients retry with backoff until served) — a healthy run completes
*every* request despite shedding, and all responses are byte-identical
as canonical JSON.

``--json-out FILE`` writes the canonical ``BENCH_serve.json`` payload
(schema below, validated by :func:`validate_serve_payload`) — the
artifact the ``serve-smoke`` CI job checks and archives.  ``--quick``
shrinks the workload for CI.

Usage::

    PYTHONPATH=src python tools/bench_serve.py \
        [--clients 8] [--requests 64] [--benchmark codrle4] \
        [--workers 2] [--capacity 4] [--json-out BENCH_serve.json]
"""

from __future__ import annotations

import argparse
import json
import math
import threading
import time

from repro.serve.client import ServeClient
from repro.serve.server import ReproServer

#: Version stamp of the BENCH_serve.json payload.
BENCH_SCHEMA = 1

#: Keys of the ``latency_seconds`` object.
PERCENTILES = ("p50", "p95", "p99")


def percentile(sorted_values: list[float], fraction: float) -> float:
    """Nearest-rank percentile over an already-sorted sample."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1,
                      math.ceil(fraction * len(sorted_values)) - 1))
    return sorted_values[rank]


def latency_summary(latencies: list[float]) -> dict:
    ordered = sorted(latencies)
    return {
        "p50": percentile(ordered, 0.50),
        "p95": percentile(ordered, 0.95),
        "p99": percentile(ordered, 0.99),
        "mean": sum(ordered) / len(ordered) if ordered else 0.0,
        "max": ordered[-1] if ordered else 0.0,
    }


def validate_serve_payload(payload: dict) -> list[str]:
    """Schema check for BENCH_serve.json; returns a list of problems
    (empty when valid).  Used by the serve-smoke CI job and the tests."""
    problems = []
    if payload.get("schema") != BENCH_SCHEMA:
        problems.append(f"schema must be {BENCH_SCHEMA}, "
                        f"got {payload.get('schema')!r}")
    for key in ("benchmark", "case"):
        if not isinstance(payload.get(key), str):
            problems.append(f"{key} must be a string")
    for key in ("clients", "requests", "workers", "capacity",
                "completed", "errors", "client_retries", "shed_429"):
        if not isinstance(payload.get(key), int):
            problems.append(f"{key} must be an integer")
    for key in ("elapsed_seconds", "throughput_rps"):
        if not isinstance(payload.get(key), (int, float)):
            problems.append(f"{key} must be a number")
    if not isinstance(payload.get("identical_payloads"), bool):
        problems.append("identical_payloads must be a boolean")
    latency = payload.get("latency_seconds")
    if not isinstance(latency, dict):
        problems.append("latency_seconds must be an object")
    else:
        for key in (*PERCENTILES, "mean", "max"):
            if not isinstance(latency.get(key), (int, float)):
                problems.append(f"latency_seconds.{key} must be a number")
    if not isinstance(payload.get("queue"), dict):
        problems.append("queue must be an object")
    return problems


def drive(server: ReproServer, args) -> dict:
    """Run the load, return the canonical payload."""
    params = {"benchmark": args.benchmark, "case": args.case}

    # Warm the workers (first compile of the benchmark) untimed.
    warm = ServeClient(server.url, timeout=args.timeout)
    warm.run("evaluate", params, timeout=args.timeout)

    per_client = [args.requests // args.clients] * args.clients
    for slot in range(args.requests % args.clients):
        per_client[slot] += 1

    latencies: list[list[float]] = [[] for _ in range(args.clients)]
    bodies: list[set] = [set() for _ in range(args.clients)]
    errors: list[Exception] = []
    retries = [0] * args.clients
    barrier = threading.Barrier(args.clients + 1)

    def worker(slot: int) -> None:
        client = ServeClient(server.url, timeout=args.timeout,
                             retries=args.retries, backoff=0.05)
        barrier.wait()
        try:
            for _ in range(per_client[slot]):
                started = time.perf_counter()
                result = client.run("evaluate", params,
                                    timeout=args.timeout)
                latencies[slot].append(time.perf_counter() - started)
                bodies[slot].add(json.dumps(result, sort_keys=True))
        except Exception as exc:  # noqa: BLE001 — reported in payload
            errors.append(exc)
        finally:
            retries[slot] = client.retry_count

    threads = [threading.Thread(target=worker, args=(slot,))
               for slot in range(args.clients)]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started

    flat = [value for bucket in latencies for value in bucket]
    distinct = set().union(*bodies) if bodies else set()
    queue_stats = server.queue.stats()
    return {
        "schema": BENCH_SCHEMA,
        "benchmark": args.benchmark,
        "case": args.case,
        "clients": args.clients,
        "requests": args.requests,
        "workers": args.workers,
        "capacity": args.capacity,
        "completed": len(flat),
        "errors": len(errors),
        "error_messages": [str(error) for error in errors],
        "client_retries": sum(retries),
        "shed_429": queue_stats["rejected"],
        "elapsed_seconds": elapsed,
        "throughput_rps": len(flat) / elapsed if elapsed > 0 else 0.0,
        "latency_seconds": latency_summary(flat),
        "identical_payloads": len(distinct) == 1,
        "queue": queue_stats,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--benchmark", default="codrle4")
    parser.add_argument("--case", default="hyperblock")
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--requests", type=int, default=64,
                        help="total requests across all clients")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--capacity", type=int, default=4,
                        help="queue capacity — small by default so the "
                             "run exercises 429 shedding")
    parser.add_argument("--retries", type=int, default=50,
                        help="per-request client retry budget against "
                             "429/503")
    parser.add_argument("--timeout", type=float, default=120.0)
    parser.add_argument("--fitness-cache", metavar="DIR", default=None)
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke preset: 8 clients x 24 requests, "
                             "capacity 2")
    parser.add_argument("--json-out", metavar="FILE",
                        help="write the canonical BENCH_serve.json "
                             "payload to FILE")
    args = parser.parse_args(argv)
    if args.quick:
        args.requests = 24
        args.capacity = 2
    if args.clients < 1 or args.requests < 1:
        parser.error("--clients and --requests must be >= 1")

    server = ReproServer(port=0, workers=args.workers,
                         capacity=args.capacity,
                         fitness_cache_dir=args.fitness_cache)
    server.start()
    print(f"daemon on {server.url}: {args.workers} worker(s), "
          f"queue capacity {args.capacity}; driving {args.requests} "
          f"requests from {args.clients} client(s)")
    try:
        payload = drive(server, args)
    finally:
        server.drain(timeout=60.0)

    latency = payload["latency_seconds"]
    print(f"completed    : {payload['completed']}/{args.requests} "
          f"({payload['errors']} error(s))")
    print(f"throughput   : {payload['throughput_rps']:8.2f} req/s "
          f"over {payload['elapsed_seconds']:.2f}s")
    print(f"latency      : p50 {latency['p50'] * 1000:7.1f} ms   "
          f"p95 {latency['p95'] * 1000:7.1f} ms   "
          f"p99 {latency['p99'] * 1000:7.1f} ms")
    print(f"backpressure : {payload['shed_429']} submission(s) shed "
          f"with 429, {payload['client_retries']} client retr(ies)")
    print(f"identical    : {payload['identical_payloads']}")

    if args.json_out:
        problems = validate_serve_payload(payload)
        if problems:
            print("invalid payload:", problems)
            return 1
        with open(args.json_out, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"payload written to {args.json_out}")

    ok = (payload["errors"] == 0
          and payload["completed"] == args.requests
          and payload["identical_payloads"])
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
