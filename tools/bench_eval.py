#!/usr/bin/env python
"""Micro-benchmark for the evaluation fast path.

Runs the same specialized GP search three ways and reports candidate
evaluations per second:

1. **serial** — the seed path: ``GPEngine`` over
   ``EvaluationHarness.evaluator()`` in one process;
2. **parallel** — ``ParallelEvaluator`` with ``--processes`` workers,
   exercising generation batching + ``imap_unordered`` fan-out;
3. **warm** — a re-run against a persistent fitness cache populated by
   a prior run; asserts **zero** simulator invocations;
A **fleet** section then reruns the regalloc and scheduling campaigns
serially and sharded over ``--fleet-workers`` spawned ``repro serve``
processes via ``FleetEvaluator`` (docs/FLEET.md), exercising shard
dispatch + the streaming batch API end to end.  Bit-identity is
gated; the fleet *speedup* is recorded, never gated — sharding
compile-bound work cannot win without at least as many cores as
workers.

Each mode runs ``--repeats`` times (every repeat a fresh engine and
fresh caches); the summary reports the **median** rate with the
interquartile range, so one noisy repeat cannot swing the number the
CI perf gate reads.  All timing uses ``time.perf_counter``.

All runs must produce bit-identical fitness curves and the same
champion expression; the script fails loudly if they do not.

A fourth section times **compilation forking** (docs/FORKING.md): the
regalloc and scheduling campaigns run serially with the snapshot layer
on (*forked*) and off (*full*, the seed path) and report
``speedup = full_median / forked_median``.  The two paths must stay
bit-identical, and a forked run slower than the full path fails the
script — that is the gate the CI ``snapshot-smoke`` job enforces.

A fifth section exercises **learned surrogate fitness**
(docs/SURROGATE.md): an exact campaign populates a fresh fitness
cache, then the same campaign reruns with a cache-trained
``SurrogateEvaluator`` prescreening each generation.  The section
records fresh simulator invocations on both sides and the surrogate
champion's *exact* (simulator-measured) fitness.  Gates: the surrogate
champion must be equal-or-better than the exact run's champion, and
fresh simulations must drop — by at least 3x at full settings
(``--quick`` only requires a drop; its two-generation campaigns leave
the prescreener a single generation to save anything).

``--json-out FILE`` writes the canonical ``BENCH_eval.json`` payload
(schema below, validated by :func:`validate_bench_payload`) — the data
point the ROADMAP's perf trajectory tracks.  ``--trace FILE`` writes a
Chrome ``trace_event`` JSON of one (extra, untimed) serial run.
``--quick`` shrinks the workload for CI smoke jobs.

Usage::

    PYTHONPATH=src python tools/bench_eval.py \
        [--case hyperblock] [--benchmark 102.swim] \
        [--pop 16] [--gens 4] [--processes 4] [--repeats 3] \
        [--cache-dir DIR] [--json-out BENCH_eval.json] [--trace t.json]

The default benchmark (``102.swim``) is one of the costlier kernels —
parallel fan-out only pays once per-candidate simulation time
dominates the one-off per-worker warm-up (frontend + profiling of the
benchmark); on trivially cheap benchmarks the serial path wins, which
is exactly why ``ParallelEvaluator`` keeps ``processes=1`` as a
zero-overhead fallback.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import statistics
import sys
import tempfile
import time

from repro.fleet import FleetEvaluator
from repro.gp.engine import GPEngine, GPParams
from repro.gp.parse import unparse
from repro.metaopt.harness import EvaluationHarness, case_study
from repro.metaopt.parallel import ParallelEvaluator
from repro.metaopt.settings import EvalSettings

#: Version stamp of the BENCH_eval.json payload.  Schema 4 added the
#: ``surrogate`` section (docs/SURROGATE.md).
BENCH_SCHEMA = 4

#: Mode keys of the ``modes`` object, in report order.
MODES = ("serial", "parallel", "warm")

#: Fleet counters copied into the payload's ``fleet.stats``.
FLEET_STAT_KEYS = ("workers", "workers_lost", "jobs_dispatched",
                   "batches_dispatched", "shards_dispatched",
                   "shards_stolen", "shards_retried",
                   "local_fallback_jobs")

#: Cases of the forked-vs-full section — the two campaigns the
#: compilation-forking acceptance bar (docs/FORKING.md) is stated on.
FORKING_CASES = ("regalloc", "scheduling")

#: Per-case benchmark of the forking section: kernels whose prefix
#: (stages before the hook) carries a large share of compile time, so
#: suffix-only replay has something to win.  ``--quick`` swaps in
#: codrle4 for both.
FORKING_BENCHMARKS = {"regalloc": "unepic", "scheduling": "023.eqntott"}

#: Population/generations of the forking campaigns.  Larger than the
#: headline sections on purpose: one snapshot build is amortized over
#: every candidate, and duplicate binaries (the content-digest layer)
#: only appear once selection starts converging — tiny populations
#: understate both effects.  ``--quick`` drops to the smoke workload.
FORKING_POP = 32
FORKING_GENS = 6

#: Cases of the serial-vs-fleet section; benchmarks per
#: :data:`FORKING_BENCHMARKS` (``--quick`` swaps in codrle4).
FLEET_CASES = ("regalloc", "scheduling")

#: Cases of the surrogate section — the campaigns the learned-surrogate
#: acceptance bar (docs/SURROGATE.md) is stated on.  Benchmarks per
#: :data:`FORKING_BENCHMARKS`: kernels with real fitness variance, so
#: the ranking has something to rank (on a flat landscape every
#: candidate ties the champion and champion promotion simulates the
#: whole tail).
SURROGATE_CASES = ("regalloc", "scheduling")

#: Evaluator counters copied into the payload's per-case ``stats``.
SURROGATE_STAT_KEYS = ("surrogate_exact_jobs", "surrogate_predicted_jobs",
                       "surrogate_sims_saved", "surrogate_refits",
                       "surrogate_promotions", "surrogate_batches")

#: Required fresh-simulation reduction at full settings (``--quick``
#: only requires a drop).
SURROGATE_MIN_REDUCTION = 3.0


def run_engine(case, evaluator, args, benchmark=None):
    engine = GPEngine(
        pset=case.pset,
        evaluator=evaluator,
        benchmarks=(benchmark or args.benchmark,),
        params=GPParams(population_size=args.pop, generations=args.gens,
                        seed=args.seed),
        seed_trees=(case.baseline_tree(),),
    )
    started = time.perf_counter()
    result = engine.run()
    elapsed = time.perf_counter() - started
    return result, elapsed


def median_iqr(values: list[float]) -> tuple[float, float]:
    """Median and interquartile range; IQR is 0.0 below 2 samples."""
    median = statistics.median(values)
    if len(values) < 2:
        return median, 0.0
    quartiles = statistics.quantiles(values, n=4, method="inclusive")
    return median, quartiles[2] - quartiles[0]


def mode_summary(results: list, times: list[float]) -> dict:
    rates = [result.evaluations / elapsed if elapsed > 0 else 0.0
             for result, elapsed in zip(results, times)]
    median_rate, iqr_rate = median_iqr(rates)
    median_seconds, _ = median_iqr(times)
    return {
        "evaluations": results[0].evaluations,
        "repeats": len(results),
        "seconds": times,
        "rates": rates,
        "median_seconds": median_seconds,
        "median_rate": median_rate,
        "iqr_rate": iqr_rate,
    }


def report(label: str, summary: dict) -> None:
    print(f"{label:<12s}: {summary['evaluations']:4d} evaluations, "
          f"median {summary['median_seconds']:7.2f}s over "
          f"{summary['repeats']} repeat(s)  ->  "
          f"{summary['median_rate']:8.2f} eval/s "
          f"(IQR {summary['iqr_rate']:.2f})")


def run_forking_section(args, failures: list) -> dict:
    """Forked-vs-full campaigns: the same serial GP search with the
    snapshot layer on (``forked``) and off (``full`` — the seed path),
    per :data:`FORKING_CASES`.  Both must produce bit-identical fitness
    curves and champions; a forked run slower than full is a failure
    (that is the CI snapshot-smoke gate)."""
    fork_args = argparse.Namespace(**vars(args))
    if not args.quick:
        fork_args.pop, fork_args.gens = FORKING_POP, FORKING_GENS
    section = {}
    for case_name in FORKING_CASES:
        bench = "codrle4" if args.quick else FORKING_BENCHMARKS[case_name]
        case = case_study(case_name)
        rows, campaign_results = {}, {}
        for label, snapshots in (("full", False), ("forked", True)):
            results, times = [], []
            for _ in range(args.repeats):
                harness = EvaluationHarness(
                    case, EvalSettings(use_snapshots=snapshots))
                result, elapsed = run_engine(
                    case, harness.evaluator("train"), fork_args,
                    benchmark=bench)
                results.append(result)
                times.append(elapsed)
            rows[label] = mode_summary(results, times)
            campaign_results[label] = results
        reference = campaign_results["full"][0]
        identical = all(
            result.fitness_curve() == reference.fitness_curve()
            and unparse(result.best.tree) == unparse(reference.best.tree)
            for label in ("full", "forked")
            for result in campaign_results[label])
        speedup = (rows["full"]["median_seconds"]
                   / rows["forked"]["median_seconds"]
                   if rows["forked"]["median_seconds"] else 0.0)
        if not identical:
            failures.append(f"forking/{case_name}: forked campaign "
                            "diverged from the full path")
        if speedup < 1.0:
            failures.append(f"forking/{case_name}: suffix replay slower "
                            f"than the full compile ({speedup:.2f}x)")
        print(f"forking {case_name:<10s} on {bench}: "
              f"full {rows['full']['median_seconds']:7.2f}s -> "
              f"forked {rows['forked']['median_seconds']:7.2f}s  "
              f"({speedup:5.2f}x, "
              f"{'identical' if identical else 'DIVERGED'})")
        section[case_name] = {
            "benchmark": bench,
            "pop": fork_args.pop,
            "gens": fork_args.gens,
            "full": rows["full"],
            "forked": rows["forked"],
            "speedup": speedup,
            "identical": identical,
        }
    return section


def run_fleet_section(args, failures: list) -> dict:
    """Serial-vs-fleet campaigns per :data:`FLEET_CASES` — the same
    engine run on the in-process harness and sharded over
    ``--fleet-workers`` spawned ``repro serve`` processes
    (docs/FLEET.md).  Bit-identity is gated; the end-to-end campaign
    speedup (``serial median / fleet median``) is recorded, never
    gated — it needs >= as many cores as workers to exceed 1.0."""
    spec = f"local:{args.fleet_workers}"
    section = {"workers": args.fleet_workers, "cases": {}}
    for case_name in FLEET_CASES:
        bench = "codrle4" if args.quick else FORKING_BENCHMARKS[case_name]
        case = case_study(case_name)
        rows, campaign_results, stats = {}, {}, {}

        results, times = [], []
        for _ in range(args.repeats):
            result, elapsed = run_engine(
                case, EvaluationHarness(case).evaluator("train"), args,
                benchmark=bench)
            results.append(result)
            times.append(elapsed)
        rows["serial"] = mode_summary(results, times)
        campaign_results["serial"] = results

        results, times = [], []
        for _ in range(args.repeats):
            with FleetEvaluator(case_name, spec,
                                EvalSettings()) as evaluator:
                result, elapsed = run_engine(case, evaluator, args,
                                             benchmark=bench)
                stats = evaluator.stats()
            results.append(result)
            times.append(elapsed)
        rows["fleet"] = mode_summary(results, times)
        campaign_results["fleet"] = results

        reference = campaign_results["serial"][0]
        identical = all(
            result.fitness_curve() == reference.fitness_curve()
            and unparse(result.best.tree) == unparse(reference.best.tree)
            for side in ("serial", "fleet")
            for result in campaign_results[side])
        speedup = (rows["serial"]["median_seconds"]
                   / rows["fleet"]["median_seconds"]
                   if rows["fleet"]["median_seconds"] else 0.0)
        if not identical:
            failures.append(f"fleet/{case_name}: sharded campaign "
                            "diverged from serial")
        print(f"fleet   {case_name:<10s} on {bench}: "
              f"serial {rows['serial']['median_seconds']:7.2f}s -> "
              f"{spec} {rows['fleet']['median_seconds']:7.2f}s  "
              f"({speedup:5.2f}x, "
              f"{'identical' if identical else 'DIVERGED'})")
        section["cases"][case_name] = {
            "benchmark": bench,
            "pop": args.pop,
            "gens": args.gens,
            "serial": rows["serial"],
            "fleet": rows["fleet"],
            "speedup": speedup,
            "identical": identical,
            "stats": {key: stats.get(key, 0) for key in FLEET_STAT_KEYS},
        }
    section["best_speedup"] = max(
        entry["speedup"] for entry in section["cases"].values())
    return section


def run_surrogate_section(args, failures: list) -> dict:
    """Exact-vs-surrogate campaigns per :data:`SURROGATE_CASES`.

    The exact campaign populates a fresh fitness cache; the surrogate
    campaign (same seed) trains from that cache and prescreens every
    generation, so only fresh simulator invocations — candidates
    neither the cache nor the model could answer — count against it.
    The surrogate champion is re-measured exactly; a champion below
    the exact run's, or too small a simulation drop, fails the script
    (the CI ``surrogate-smoke`` gate)."""
    from repro.surrogate import SurrogateEvaluator, train_from_cache

    # Campaigns sized like the forking section: prescreening needs
    # generations *after* the cache-covered prefix to save anything,
    # and tiny populations leave the top-K as most of the batch.
    sur_args = argparse.Namespace(**vars(args))
    if not args.quick:
        sur_args.pop, sur_args.gens = FORKING_POP, FORKING_GENS
    top_k = max(2, sur_args.pop // 16)
    section = {"top_k": top_k, "cases": {}}
    for case_name in SURROGATE_CASES:
        bench = "codrle4" if args.quick else FORKING_BENCHMARKS[case_name]
        case = case_study(case_name)
        cache_dir = tempfile.mkdtemp(prefix="repro-surrogate-")
        try:
            exact_harness = EvaluationHarness(
                case, EvalSettings(fitness_cache_dir=cache_dir))
            exact_result, _ = run_engine(
                case, exact_harness.evaluator("train"), sur_args,
                benchmark=bench)
            exact_sims = exact_harness.sim_count

            sur_harness = EvaluationHarness(
                case, EvalSettings(fitness_cache_dir=cache_dir))
            model, training = train_from_cache(
                sur_harness.fitness_cache, case_name, seed=args.seed)
            evaluator = SurrogateEvaluator(
                sur_harness.evaluator("train"), case_name, model,
                top_k=top_k, seed=args.seed)
            sur_result, _ = run_engine(case, evaluator, sur_args,
                                       benchmark=bench)
            sur_sims = sur_harness.sim_count
            stats = evaluator.stats()

            # Re-measure the surrogate champion with the simulator —
            # the acceptance bar is stated on exact fitness, never on
            # a model prediction.
            champion_exact = EvaluationHarness(
                case, EvalSettings(fitness_cache_dir=cache_dir),
            ).evaluator("train")(sur_result.best.tree, bench)
        finally:
            shutil.rmtree(cache_dir, ignore_errors=True)

        exact_fitness = exact_result.best.fitness
        reduction = exact_sims / sur_sims if sur_sims else float(exact_sims)
        champion_ok = champion_exact >= exact_fitness - 1e-9
        if not champion_ok:
            failures.append(
                f"surrogate/{case_name}: champion exact fitness "
                f"{champion_exact:.4f} below the exact campaign's "
                f"{exact_fitness:.4f}")
        floor = 1.0 if args.quick else SURROGATE_MIN_REDUCTION
        if reduction < floor or sur_sims >= exact_sims:
            failures.append(
                f"surrogate/{case_name}: fresh simulations fell "
                f"{reduction:.2f}x ({exact_sims} -> {sur_sims}), "
                f"needed >= {floor:.1f}x")
        print(f"surrogate {case_name:<10s} on {bench}: "
              f"{exact_sims:4d} -> {sur_sims:4d} fresh sims "
              f"({reduction:5.2f}x), champion "
              f"{champion_exact:.4f} vs exact {exact_fitness:.4f} "
              f"({'ok' if champion_ok else 'WORSE'}, "
              f"{training.usable} training pairs)")
        section["cases"][case_name] = {
            "benchmark": bench,
            "pop": sur_args.pop,
            "gens": sur_args.gens,
            "exact_sims": exact_sims,
            "surrogate_sims": sur_sims,
            "sims_reduction": reduction,
            "exact_champion_fitness": exact_fitness,
            "surrogate_champion_exact_fitness": champion_exact,
            "champion_ok": champion_ok,
            "training_pairs": training.usable,
            "stats": {key: stats.get(key, 0)
                      for key in SURROGATE_STAT_KEYS},
        }
    section["best_reduction"] = max(
        entry["sims_reduction"] for entry in section["cases"].values())
    return section


def validate_bench_payload(payload: dict) -> list[str]:
    """Schema check for BENCH_eval.json; returns a list of problems
    (empty when valid).  Used by the CI bench-smoke job and the tests."""
    problems = []
    if payload.get("schema") != BENCH_SCHEMA:
        problems.append(f"schema must be {BENCH_SCHEMA}, "
                        f"got {payload.get('schema')!r}")
    for key in ("case", "benchmark"):
        if not isinstance(payload.get(key), str):
            problems.append(f"{key} must be a string")
    for key in ("pop", "gens", "seed", "processes", "repeats",
                "warm_sim_invocations"):
        if not isinstance(payload.get(key), int):
            problems.append(f"{key} must be an integer")
    if not isinstance(payload.get("determinism_ok"), bool):
        problems.append("determinism_ok must be a boolean")
    if not isinstance(payload.get("failures"), list):
        problems.append("failures must be a list")
    modes = payload.get("modes")
    if not isinstance(modes, dict):
        problems.append("modes must be an object")
        return problems
    for mode in MODES:
        entry = modes.get(mode)
        if not isinstance(entry, dict):
            problems.append(f"modes.{mode} missing")
            continue
        for key in ("median_rate", "iqr_rate", "median_seconds"):
            if not isinstance(entry.get(key), (int, float)):
                problems.append(f"modes.{mode}.{key} must be a number")
        for key in ("rates", "seconds"):
            if not isinstance(entry.get(key), list) or not entry.get(key):
                problems.append(f"modes.{mode}.{key} must be a "
                                "non-empty list")
        if not isinstance(entry.get("evaluations"), int):
            problems.append(f"modes.{mode}.evaluations must be an integer")
    for key in ("speedup_parallel", "speedup_warm", "speedup_fleet"):
        if not isinstance(payload.get(key), (int, float)):
            problems.append(f"{key} must be a number")
    fleet = payload.get("fleet")
    if not isinstance(fleet, dict):
        problems.append("fleet must be an object")
        return problems
    if not isinstance(fleet.get("workers"), int):
        problems.append("fleet.workers must be an integer")
    if not isinstance(fleet.get("best_speedup"), (int, float)):
        problems.append("fleet.best_speedup must be a number")
    cases = fleet.get("cases")
    if not isinstance(cases, dict):
        problems.append("fleet.cases must be an object")
        return problems
    for case_name in FLEET_CASES:
        entry = cases.get(case_name)
        if not isinstance(entry, dict):
            problems.append(f"fleet.cases.{case_name} missing")
            continue
        if not isinstance(entry.get("benchmark"), str):
            problems.append(f"fleet.cases.{case_name}.benchmark "
                            "must be a string")
        if not isinstance(entry.get("speedup"), (int, float)):
            problems.append(f"fleet.cases.{case_name}.speedup "
                            "must be a number")
        if not isinstance(entry.get("identical"), bool):
            problems.append(f"fleet.cases.{case_name}.identical "
                            "must be a boolean")
        for side in ("serial", "fleet"):
            row = entry.get(side)
            if not isinstance(row, dict) or not isinstance(
                    row.get("median_seconds"), (int, float)):
                problems.append(f"fleet.cases.{case_name}.{side}."
                                "median_seconds must be a number")
        stats = entry.get("stats")
        if not isinstance(stats, dict):
            problems.append(f"fleet.cases.{case_name}.stats "
                            "must be an object")
            continue
        for key in FLEET_STAT_KEYS:
            if not isinstance(stats.get(key), int):
                problems.append(f"fleet.cases.{case_name}.stats.{key} "
                                "must be an integer")
    forking = payload.get("forking")
    if not isinstance(forking, dict):
        problems.append("forking must be an object")
        return problems
    for case_name in FORKING_CASES:
        entry = forking.get(case_name)
        if not isinstance(entry, dict):
            problems.append(f"forking.{case_name} missing")
            continue
        if not isinstance(entry.get("benchmark"), str):
            problems.append(f"forking.{case_name}.benchmark must be a string")
        if not isinstance(entry.get("speedup"), (int, float)):
            problems.append(f"forking.{case_name}.speedup must be a number")
        if not isinstance(entry.get("identical"), bool):
            problems.append(f"forking.{case_name}.identical must be "
                            "a boolean")
        for side in ("full", "forked"):
            row = entry.get(side)
            if not isinstance(row, dict) or not isinstance(
                    row.get("median_seconds"), (int, float)):
                problems.append(f"forking.{case_name}.{side}."
                                "median_seconds must be a number")
    surrogate = payload.get("surrogate")
    if not isinstance(surrogate, dict):
        problems.append("surrogate must be an object")
        return problems
    if not isinstance(surrogate.get("top_k"), int):
        problems.append("surrogate.top_k must be an integer")
    if not isinstance(surrogate.get("best_reduction"), (int, float)):
        problems.append("surrogate.best_reduction must be a number")
    sur_cases = surrogate.get("cases")
    if not isinstance(sur_cases, dict):
        problems.append("surrogate.cases must be an object")
        return problems
    for case_name in SURROGATE_CASES:
        entry = sur_cases.get(case_name)
        if not isinstance(entry, dict):
            problems.append(f"surrogate.cases.{case_name} missing")
            continue
        if not isinstance(entry.get("benchmark"), str):
            problems.append(f"surrogate.cases.{case_name}.benchmark "
                            "must be a string")
        for key in ("exact_sims", "surrogate_sims", "training_pairs"):
            if not isinstance(entry.get(key), int):
                problems.append(f"surrogate.cases.{case_name}.{key} "
                                "must be an integer")
        for key in ("sims_reduction", "exact_champion_fitness",
                    "surrogate_champion_exact_fitness"):
            if not isinstance(entry.get(key), (int, float)):
                problems.append(f"surrogate.cases.{case_name}.{key} "
                                "must be a number")
        if not isinstance(entry.get("champion_ok"), bool):
            problems.append(f"surrogate.cases.{case_name}.champion_ok "
                            "must be a boolean")
        stats = entry.get("stats")
        if not isinstance(stats, dict):
            problems.append(f"surrogate.cases.{case_name}.stats "
                            "must be an object")
            continue
        for key in SURROGATE_STAT_KEYS:
            if not isinstance(stats.get(key), int):
                problems.append(f"surrogate.cases.{case_name}."
                                f"stats.{key} must be an integer")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--case", default="hyperblock")
    parser.add_argument("--benchmark", default="102.swim")
    parser.add_argument("--pop", type=int, default=16)
    parser.add_argument("--gens", type=int, default=4)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--processes", type=int, default=4)
    parser.add_argument("--fleet-workers", type=int, default=4,
                        help="local serve workers of the fleet section "
                             "(default 4; --quick drops to 2)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="repeats per mode; the summary reports the "
                             "median rate with IQR (default 3)")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke preset: codrle4, pop 8, gens 2, "
                             "2 processes, 2 repeats")
    parser.add_argument("--json-out", metavar="FILE",
                        help="write the canonical BENCH_eval.json "
                             "payload to FILE")
    parser.add_argument("--trace", metavar="FILE",
                        help="write a Chrome trace_event JSON of one "
                             "extra, untimed serial run to FILE")
    parser.add_argument("--cache-dir",
                        help="persistent cache directory (default: a "
                             "temporary directory, removed afterwards)")
    args = parser.parse_args(argv)
    if args.quick:
        args.benchmark = "codrle4"
        args.pop = 8
        args.gens = 2
        args.processes = 2
        args.repeats = 2
        args.fleet_workers = 2
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")

    case = case_study(args.case)
    cores = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") \
        else (os.cpu_count() or 1)
    print(f"specialized {args.case} run on {args.benchmark} "
          f"(pop {args.pop}, {args.gens} generations, {args.repeats} "
          f"repeat(s), {cores} CPU core(s) available)")
    if cores < args.processes:
        print(f"note: {args.processes} workers on {cores} core(s) is "
              f"CPU-bound — parallel speedup needs >= {args.processes} "
              f"cores; the warm-cache row is hardware-independent")
    print()

    serial_results, serial_times = [], []
    for _ in range(args.repeats):
        result, elapsed = run_engine(
            case, EvaluationHarness(case).evaluator("train"), args)
        serial_results.append(result)
        serial_times.append(elapsed)
    serial = mode_summary(serial_results, serial_times)
    report("serial", serial)

    parallel_results, parallel_times = [], []
    for _ in range(args.repeats):
        with ParallelEvaluator(args.case,
                               processes=args.processes) as evaluator:
            result, elapsed = run_engine(case, evaluator, args)
        parallel_results.append(result)
        parallel_times.append(elapsed)
    parallel = mode_summary(parallel_results, parallel_times)
    report(f"parallel x{args.processes}", parallel)

    cache_dir = args.cache_dir or tempfile.mkdtemp(prefix="repro-fitness-")
    warm_results, warm_times, warm_sims = [], [], 0
    try:
        with ParallelEvaluator(
                args.case, processes=args.processes,
                settings=EvalSettings(fitness_cache_dir=cache_dir),
        ) as evaluator:
            run_engine(case, evaluator, args)  # populate the cache
        for _ in range(args.repeats):
            with ParallelEvaluator(
                    args.case, processes=1,
                    settings=EvalSettings(fitness_cache_dir=cache_dir),
            ) as evaluator:
                result, elapsed = run_engine(case, evaluator, args)
                warm_sims += evaluator._serial_harness.sim_count
            warm_results.append(result)
            warm_times.append(elapsed)
    finally:
        if not args.cache_dir:
            shutil.rmtree(cache_dir, ignore_errors=True)
    warm = mode_summary(warm_results, warm_times)
    report("warm-cache", warm)

    speedup_parallel = (parallel["median_rate"] / serial["median_rate"]
                        if serial["median_rate"] else 0.0)
    speedup_warm = (warm["median_rate"] / serial["median_rate"]
                    if serial["median_rate"] else 0.0)
    print(f"\nspeedup parallel/serial : {speedup_parallel:5.2f}x (median)")
    print(f"speedup warm/serial     : {speedup_warm:5.2f}x (median)")
    print(f"warm-run simulator invocations: {warm_sims}")
    print()

    failures = []
    forking = run_forking_section(args, failures)
    fleet = run_fleet_section(args, failures)
    surrogate = run_surrogate_section(args, failures)
    speedup_fleet = fleet["best_speedup"]
    print(f"speedup fleet/serial    : {speedup_fleet:5.2f}x (best case, "
          f"{args.fleet_workers} workers — recorded, not gated)")
    print(f"surrogate sims saved    : "
          f"{surrogate['best_reduction']:5.2f}x fewer fresh "
          f"simulations (best case, top-{surrogate['top_k']})")
    reference = serial_results[0]
    for label, results in (("serial", serial_results[1:]),
                           ("parallel", parallel_results),
                           ("warm-cache", warm_results)):
        for result in results:
            if result.fitness_curve() != reference.fitness_curve():
                failures.append(f"{label} fitness curve diverged "
                                "from serial")
                break
            if unparse(result.best.tree) != unparse(reference.best.tree):
                failures.append(f"{label} champion diverged from serial")
                break
    if warm_sims != 0:
        failures.append(
            f"warm cache runs executed {warm_sims} simulations (expected 0)")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("determinism: serial, parallel, warm-cache and fleet runs "
              "are bit-identical")

    if args.trace:
        from repro import obs

        tracer = obs.enable_tracing()
        try:
            run_engine(case, EvaluationHarness(case).evaluator("train"),
                       args)
        finally:
            obs.disable_tracing()
        tracer.write(args.trace)
        print(f"trace written to {args.trace}")

    if args.json_out:
        payload = {
            "schema": BENCH_SCHEMA,
            "case": args.case,
            "benchmark": args.benchmark,
            "pop": args.pop,
            "gens": args.gens,
            "seed": args.seed,
            "processes": args.processes,
            "repeats": args.repeats,
            "modes": {"serial": serial, "parallel": parallel, "warm": warm},
            "fleet": fleet,
            "forking": forking,
            "surrogate": surrogate,
            "speedup_parallel": speedup_parallel,
            "speedup_fleet": speedup_fleet,
            "speedup_warm": speedup_warm,
            "warm_sim_invocations": warm_sims,
            "determinism_ok": not failures,
            "failures": failures,
        }
        problems = validate_bench_payload(payload)
        if problems:  # pragma: no cover - internal consistency guard
            for problem in problems:
                print(f"FAIL: BENCH_eval.json schema: {problem}",
                      file=sys.stderr)
            failures.extend(problems)
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json_out}")

    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
