#!/usr/bin/env python
"""Micro-benchmark for the evaluation fast path.

Runs the same specialized GP search three ways and reports candidate
evaluations per second:

1. **serial** — the seed path: ``GPEngine`` over
   ``EvaluationHarness.evaluator()`` in one process;
2. **parallel** — ``ParallelEvaluator`` with ``--processes`` workers,
   exercising generation batching + ``imap_unordered`` fan-out;
3. **warm-cache** — a re-run against a persistent fitness cache
   populated by a prior run; asserts **zero** simulator invocations.

All three searches must produce bit-identical fitness curves and the
same champion expression; the script fails loudly if they do not.

Usage::

    PYTHONPATH=src python tools/bench_eval.py \
        [--case hyperblock] [--benchmark 102.swim] \
        [--pop 16] [--gens 4] [--processes 4] [--cache-dir DIR]

The default benchmark (``102.swim``) is one of the costlier kernels —
parallel fan-out only pays once per-candidate simulation time
dominates the one-off per-worker warm-up (frontend + profiling of the
benchmark); on trivially cheap benchmarks the serial path wins, which
is exactly why ``ParallelEvaluator`` keeps ``processes=1`` as a
zero-overhead fallback.
"""

from __future__ import annotations

import argparse
import os
import shutil
import sys
import tempfile
import time

from repro.gp.engine import GPEngine, GPParams
from repro.gp.parse import unparse
from repro.metaopt.harness import EvaluationHarness, case_study
from repro.metaopt.parallel import ParallelEvaluator


def run_engine(case, evaluator, args):
    engine = GPEngine(
        pset=case.pset,
        evaluator=evaluator,
        benchmarks=(args.benchmark,),
        params=GPParams(population_size=args.pop, generations=args.gens,
                        seed=args.seed),
        seed_trees=(case.baseline_tree(),),
    )
    started = time.perf_counter()
    result = engine.run()
    elapsed = time.perf_counter() - started
    return result, elapsed


def report(label, result, elapsed):
    rate = result.evaluations / elapsed if elapsed > 0 else float("inf")
    print(f"{label:<12s}: {result.evaluations:4d} evaluations in "
          f"{elapsed:7.2f}s  ->  {rate:8.2f} eval/s")
    return rate


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--case", default="hyperblock")
    parser.add_argument("--benchmark", default="102.swim")
    parser.add_argument("--pop", type=int, default=16)
    parser.add_argument("--gens", type=int, default=4)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--processes", type=int, default=4)
    parser.add_argument("--cache-dir",
                        help="persistent cache directory (default: a "
                             "temporary directory, removed afterwards)")
    args = parser.parse_args(argv)

    case = case_study(args.case)
    cores = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") \
        else (os.cpu_count() or 1)
    print(f"specialized {args.case} run on {args.benchmark} "
          f"(pop {args.pop}, {args.gens} generations, "
          f"{cores} CPU core(s) available)")
    if cores < args.processes:
        print(f"note: {args.processes} workers on {cores} core(s) is "
              f"CPU-bound — parallel speedup needs >= {args.processes} "
              f"cores; the warm-cache row is hardware-independent")
    print()

    serial_result, serial_time = run_engine(
        case, EvaluationHarness(case).evaluator("train"), args)
    serial_rate = report("serial", serial_result, serial_time)

    with ParallelEvaluator(args.case,
                           processes=args.processes) as evaluator:
        parallel_result, parallel_time = run_engine(case, evaluator, args)
    parallel_rate = report(f"parallel x{args.processes}",
                           parallel_result, parallel_time)

    cache_dir = args.cache_dir or tempfile.mkdtemp(prefix="repro-fitness-")
    try:
        with ParallelEvaluator(args.case, processes=args.processes,
                               fitness_cache_dir=cache_dir) as evaluator:
            run_engine(case, evaluator, args)  # populate the cache
        with ParallelEvaluator(args.case, processes=1,
                               fitness_cache_dir=cache_dir) as evaluator:
            warm_result, warm_time = run_engine(case, evaluator, args)
            warm_sims = evaluator._serial_harness.sim_count
    finally:
        if not args.cache_dir:
            shutil.rmtree(cache_dir, ignore_errors=True)
    warm_rate = report("warm-cache", warm_result, warm_time)

    print(f"\nspeedup parallel/serial : {parallel_rate / serial_rate:5.2f}x")
    print(f"speedup warm/serial     : {warm_rate / serial_rate:5.2f}x")
    print(f"warm-run simulator invocations: {warm_sims}")

    failures = []
    for label, result in (("parallel", parallel_result),
                          ("warm-cache", warm_result)):
        if result.fitness_curve() != serial_result.fitness_curve():
            failures.append(f"{label} fitness curve diverged from serial")
        if unparse(result.best.tree) != unparse(serial_result.best.tree):
            failures.append(f"{label} champion diverged from serial")
    if warm_sims != 0:
        failures.append(
            f"warm cache run executed {warm_sims} simulations (expected 0)")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("determinism: serial, parallel and warm-cache runs are "
              "bit-identical")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
