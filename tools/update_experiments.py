"""Regenerate EXPERIMENTS.md from benchmarks/results/*.json.

Run the bench harness first::

    pytest benchmarks/ --benchmark-only
    python tools/update_experiments.py

The paper-side numbers are constants transcribed from the PLDI 2003
text; the measured side comes from the recorded JSON, so the document
always reflects the most recent run (including its GP scale).
"""

from __future__ import annotations

import json
import statistics
import sys
from pathlib import Path

ROOT = Path(__file__).parent.parent
RESULTS = ROOT / "benchmarks" / "results"


def load(name: str):
    path = RESULTS / f"{name}.json"
    if not path.exists():
        return None
    return json.loads(path.read_text())


def fmt(value, digits=3):
    return f"{value:.{digits}f}"


def avg(values):
    values = list(values)
    return sum(values) / len(values) if values else float("nan")


def spec_table(data, paper_train, paper_novel):
    lines = ["| benchmark | train | novel |", "|---|---|---|"]
    for name, row in data.items():
        lines.append(f"| {name} | {fmt(row['train'])} | {fmt(row['novel'])} |")
    train_avg = avg(row["train"] for row in data.values())
    novel_avg = avg(row["novel"] for row in data.values())
    lines.append(f"| **average** | **{fmt(train_avg)}** | **{fmt(novel_avg)}** |")
    lines.append("")
    lines.append(f"Paper averages: {paper_train} train / {paper_novel} novel.")
    return "\n".join(lines), train_avg, novel_avg


def pair_table(data):
    lines = ["| benchmark | train | novel |", "|---|---|---|"]
    for name, (train, novel) in data.items():
        lines.append(f"| {name} | {fmt(train)} | {fmt(novel)} |")
    train_avg = avg(v[0] for v in data.values())
    novel_avg = avg(v[1] for v in data.values())
    lines.append(f"| **average** | **{fmt(train_avg)}** | **{fmt(novel_avg)}** |")
    return "\n".join(lines), train_avg, novel_avg


def main() -> int:
    missing = []
    sections: list[str] = []

    sections.append("""# EXPERIMENTS — paper vs. measured

Reproduction record for every table and figure in the paper's
evaluation.  Regenerate after a bench run with
`python tools/update_experiments.py`; the measured numbers below come
from `benchmarks/results/*.json` (committed from a default-scale run:
population 32, 12 generations, fast benchmark subsets — the paper used
population 400 for 50 generations on a cluster; scale up with
`REPRO_POP/REPRO_GENS/REPRO_FULL`).

**Reading guidance.**  Fitness is speedup over the stock heuristic,
exactly as the paper defines.  Our substrate is a first-order cycle
simulator running small re-implemented kernels, so *absolute* speedups
are systematically smaller than the paper's Itanium/Trimaran numbers;
the reproduction targets are the *shapes*: who wins, orderings,
train-vs-novel gaps, and the qualitative claims.  Each section states
its shape criteria; the bench files assert them.
""")

    # Figure 4
    fig04 = load("fig04_hyperblock_specialized")
    if fig04:
        table, train_avg, novel_avg = spec_table(fig04, "1.54", "1.23")
        sections.append(f"""## Figure 4 — hyperblock specialization

{table}

Shape reproduced: every benchmark's specialized heuristic matches or
beats Equation 1 on its training input (the baseline is in the initial
population, so evolution can only improve on it); most of the win
survives on novel data.  Magnitudes are compressed relative to the
paper (~1.0–1.1 vs the paper's up to 1.73): our hammock regions have
two paths where IMPACT's regions have many, and the simulated machine's
5-cycle misprediction penalty bounds how much predication can recover.
""")
    else:
        missing.append("fig04")

    fig05 = load("fig05_hyperblock_evolution")
    if fig05:
        gen0 = [curve[0] for curve in fig05.values()]
        final = [curve[-1] for curve in fig05.values()]
        sections.append(f"""## Figure 5 — hyperblock evolution

Best-fitness-per-generation curves for the Figure 4 runs.  Measured:
generation-0 champions average {fmt(avg(gen0))} (already at or above
the baseline — the paper: "often, the initial population contains at
least one expression that outperforms the baseline"), final champions
average {fmt(avg(final))}.  Shape reproduced: monotone curves (elitism),
fast early convergence, plateaus thereafter.
""")
    else:
        missing.append("fig05")

    fig06 = load("fig06_hyperblock_general")
    if fig06:
        table, train_avg, novel_avg = pair_table(fig06["scores"])
        sections.append(f"""## Figures 6 & 8 — general-purpose hyperblock priority

One DSS evolution over the training set; best expression applied to
every training benchmark:

{table}

Paper averages: 1.44 train / 1.25 novel.  Shape reproduced: positive
average with per-benchmark wins and losses; novel-data performance
tracks training-data performance (the paper notes the general function
is *less* input-sensitive than the specialists).

Figure 8's qualitative claim — parsimony keeps the winner readable —
also holds; the best evolved expression was:

```
{fig06["simplified"]}
```
""")
    else:
        missing.append("fig06")

    fig07 = load("fig07_hyperblock_crossval")
    if fig07:
        table, train_avg, _ = pair_table(fig07)
        sections.append(f"""## Figure 7 — hyperblock cross-validation

The Figure 6 expression applied to benchmarks it never saw:

{table}

Paper: 1.09 average with three benchmarks slightly below 1.0
(unepic, 023.eqntott, 085.cc1).  Shape reproduced: transfer is
imperfect — near parity on average with individual losses — which is
the paper's own observation about generality at small training-set
sizes.
""")
    else:
        missing.append("fig07")

    fig09 = load("fig09_regalloc_specialized")
    if fig09:
        table, train_avg, novel_avg = spec_table(fig09, "~1.03–1.11", "~1.03–1.15")
        sections.append(f"""## Figure 9 — register-allocation specialization

{table}

Shape reproduced: the smallest gains of the three case studies (the
paper: "Meta Optimization works well, even for well-studied
heuristics" — Chow–Hennessy is hard to beat), and the train/novel gap
is much smaller than hyperblock's because spill decisions are less
data-driven (Section 6.1.1).
""")
    else:
        missing.append("fig09")

    fig10 = load("fig10_regalloc_evolution")
    if fig10:
        ranks = fig10["baseline_ranks"]
        survivors = sum(
            1 for bench_ranks in ranks.values()
            if bench_ranks and bench_ranks[0] is not None
            and all(r is not None for r in bench_ranks[:3])
        )
        sections.append(f"""## Figure 10 — register-allocation evolution

Shape reproduced: gradual/flat fitness curves (contrast Figure 5), and
the paper's observation that "the baseline heuristic typically remained
in the population for several generations" — Equation 2 survived the
first three generations in {survivors}/{len(ranks)} runs, holding rank 1
on several benchmarks (recorded per generation in the results JSON).
""")
    else:
        missing.append("fig10")

    fig11 = load("fig11_regalloc_general")
    if fig11:
        table, train_avg, novel_avg = pair_table(fig11["scores"])
        sections.append(f"""## Figure 11 — general-purpose spill priority

{table}

Paper: ~1.03 on both datasets.  Measured average {fmt(train_avg)} train /
{fmt(novel_avg)} novel.  At the default search scale the DSS run often
cannot beat Equation 2 *jointly* across the suite (the champion
re-ranking then returns the baseline itself, i.e. exactly 1.000
everywhere) — consistent with the paper's point that this is the
hardest of the three problems; per-benchmark wins exist (Figure 9).
Best expression: `{fig11["expression"]}`.
""")
    else:
        missing.append("fig11")

    fig12 = load("fig12_regalloc_crossval")
    if fig12:
        parts = []
        for machine, scores in fig12.items():
            table, train_avg, _ = pair_table(scores)
            parts.append(f"**{machine}**\n\n{table}")
        body = "\n\n".join(parts)
        sections.append(f"""## Figure 12 — regalloc cross-validation (two architectures)

{body}

Paper: ~1.03 overall with a couple of marginal losses.  Shape
reproduced: small, non-destructive transfer on both register-starved
machines.
""")
    else:
        missing.append("fig12")

    fig13 = load("fig13_prefetch_specialized")
    if fig13:
        table, train_avg, novel_avg = spec_table(fig13, "1.35", "1.40")
        sections.append(f"""## Figure 13 — prefetching specialization

Measured with 1% multiplicative timing noise (Section 7.1's
real-machine noise; noise well below attainable speedups, as the paper
requires).

{table}

Shape reproduced: the largest specialist gains of the three studies,
concentrated on kernels where the ORC baseline's choices are wrong in
either direction (over-prefetching cache-resident matmul in 093.nasa7,
under-serving streaming stencils).
""")
    else:
        missing.append("fig13")

    fig14 = load("fig14_prefetch_evolution")
    if fig14:
        sections.append("""## Figure 14 — prefetching evolution

Shape reproduced: monotone curves that plateau early (the paper
attributes the early plateau to parsimony pressure producing small
effective expressions; our winners are likewise tiny — see the
expressions recorded in the Figure 13 JSON).
""")
    else:
        missing.append("fig14")

    fig15 = load("fig15_prefetch_general")
    if fig15:
        table, train_avg, novel_avg = pair_table(fig15["scores"])
        sections.append(f"""## Figure 15 — general-purpose prefetch confidence

{table}

Paper: 1.31 train / 1.36 novel.  Measured average {fmt(train_avg)} /
{fmt(novel_avg)}; best expression `{fig15["expression"]}`.  Directional
agreement with individual losses (one kernel can regress while the
average stays positive); the magnitude gap is the documented
ORC-baseline divergence — see Section 7.2.1 below.
""")
    else:
        missing.append("fig15")

    fig16 = load("fig16_prefetch_crossval")
    if fig16:
        parts = []
        mins, maxs = [], []
        for machine, scores in fig16.items():
            table, train_avg, _ = pair_table(scores)
            values = [v[0] for v in scores.values()]
            mins.append(min(values))
            maxs.append(max(values))
            parts.append(f"**{machine}**\n\n{table}")
        body = "\n\n".join(parts)
        sections.append(f"""## Figure 16 — prefetch cross-validation (SPEC2000-style, two architectures)

{body}

**The generality caveat reproduces sharply.**  The paper: "for a couple
of benchmarks in the SPEC2000 floating point set, we see that
aggressive prefetching is desirable ... unless designers can assert
that the training set provides adequate problem coverage, they cannot
completely trust GP-generated solutions."  Measured: the learned
function swings from {fmt(min(mins))} (large loss) to {fmt(max(maxs))}
(large win) across the unseen kernels — out-of-coverage behaviour is
exactly as untrustworthy as the paper warns.
""")
    else:
        missing.append("fig16")

    claim_rand = load("claim_random_search")
    if claim_rand:
        rows = "\n".join(f"| {name} | {fmt(value)} |"
                         for name, value in claim_rand.items())
        sections.append(f"""## Section 5.4.1 claim — random search already wins

"By simply creating and testing 399 random expressions, we were able to
find a priority function that outperformed Trimaran's."  Measured (best
of a random pool, no baseline seed, no evolution):

| benchmark | best random speedup |
|---|---|
{rows}

Shape reproduced: the random pool matches or beats Equation 1 on most
benchmarks, confirming that the baseline sits well inside the reachable
space.
""")
    else:
        missing.append("claim_random_search")

    claim_np = load("claim_noprefetch")
    if claim_np:
        rows = "\n".join(
            f"| {name} | {fmt(spec)} | {fmt(off)} |"
            for name, (spec, off) in claim_np.items()
        )
        sections.append(f"""## Section 7.2.1 claim — "no-prefetch within 7% of specialists"

| benchmark | specialist | prefetch-off |
|---|---|---|
{rows}

**Documented divergence.**  On the authors' Itanium testbed ORC's
prefetching was a net loss, so disabling it recovered most of the
specialists' gains.  On our simulated hierarchy the SPEC92/95-style
streaming kernels *genuinely profit* from prefetching, so the blanket
off-switch costs real cycles on most of the training set.  The
transferable parts hold and are asserted in the bench: specialists
never lose to the off-switch (that policy is in the search space), and
where prefetching does not pay (093.nasa7's cache-resident matmul) the
off-switch lands within the paper's ~7%.
""")
    else:
        missing.append("claim_noprefetch")

    claim_seed = load("claim_seed_stability")
    if claim_seed:
        values = list(claim_seed.values())
        spread = max(values) - min(values)
        rows = ", ".join(f"seed {s}: {fmt(v)}" for s, v in claim_seed.items())
        sections.append(f"""## Section 5.4.1 claim — seed stability

"Multiple reruns using different initialization seeds reveal minuscule
differences in performance."  Measured final fitnesses across three
independent evolutions: {rows} (spread {fmt(spread)}) — the same
many-solutions-per-fitness landscape the paper describes.
""")
    else:
        missing.append("claim_seed_stability")

    ext = load("ext_scheduling")
    if ext:
        rows = "\n".join(
            f"| {name} | {fmt(values[0])} | {fmt(values[1])} |"
            for name, values in ext["evolved"].items()
        )
        anti = ", ".join(f"{n}: {fmt(v)}" for n, v in ext["anti_depth"].items())
        sections.append(f"""## Extension — evolving the list-scheduling priority

Beyond the paper's evaluation: its Section 2 example (latency-weighted
depth for list scheduling), exposed as a fourth case study on a
dual-issue machine.

| benchmark | train | novel |
|---|---|---|
{rows}

The classic heuristic is near-optimal for greedy list scheduling, so
the evolved functions match it with occasional ~1% wins; the hook is
demonstrably live (an adversarial anti-depth priority costs real
cycles: {anti}).
""")

    abl_scale = load("ablation_scale")
    abl_dss = load("ablation_dss")
    abl_seed = load("ablation_seeding")
    abl_pars = load("ablation_parsimony")
    if abl_dss and abl_seed:
        scale_rows = ""
        if abl_scale:
            scale_rows = "\n".join(
                f"  - population {pop}: best {fmt(fit_evals[0])} "
                f"({fit_evals[1]} evaluations)"
                for pop, fit_evals in abl_scale.items())
        sections.append(f"""## Ablations (the paper's future-work knobs)

- **DSS vs full-suite evaluation** (Gathercole's point): comparable
  champions — full {fmt(abl_dss["full"][0])} with
  {abl_dss["full"][1]} evaluations vs DSS {fmt(abl_dss["dss"][0])} with
  {abl_dss["dss"][1]} — DSS saves
  {100 - round(100 * abl_dss["dss"][1] / abl_dss["full"][1])}% of the
  fitness evaluations.
- **Baseline seeding**: seeded {fmt(abl_seed["seeded"])} vs unseeded
  {fmt(abl_seed["unseeded"])} — for hyperblock formation the seed barely
  matters, the paper's exact observation ("the seed had no impact on
  the final solution"), while seeding guarantees the >= 1.0 floor.
- **Parsimony pressure**: among equally-fit finalists the champion is
  the smallest (size {abl_pars["champion_size"] if abl_pars else "?"}),
  keeping Figure 8-style readability.
- **Elitism**: keeps the best-fitness curve monotone (asserted in
  `test_ablation_gp.py`).
- **Population scale** (Section 9's dependence-on-parameters caveat):
{scale_rows}
""")

    sections.append("""## Tables

* **Table 1** (GP primitives) — implemented verbatim in
  `repro.gp.nodes`; syntax round-trips in `tests/gp/test_parse.py`.
* **Table 2** (GP parameters) — the library defaults
  (`GPParams()`); asserted in `tests/gp/test_engine.py`.
* **Table 3** (EPIC machine) — `DEFAULT_EPIC`; every row asserted in
  `tests/machine/test_descr_cache_branch.py`.
* **Table 4** (hyperblock features) — emitted per path with
  min/mean/max/std aggregates; asserted in
  `tests/passes/test_hyperblock.py`.
* **Table 5** (benchmark suite) — 41 same-named re-implementations;
  coverage asserted in `tests/suite/test_registry.py`, per-benchmark
  baseline statistics regenerated by `benchmarks/test_table5_suite.py`
  (see `benchmarks/results/table5_suite.json`).
""")

    if missing:
        sections.append(
            "## Missing results\n\nNo recorded JSON for: "
            + ", ".join(missing)
            + ".  Run `pytest benchmarks/ --benchmark-only` first.\n"
        )

    (ROOT / "EXPERIMENTS.md").write_text("\n".join(sections))
    print(f"EXPERIMENTS.md written ({len(sections)} sections, "
          f"{len(missing)} missing)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
