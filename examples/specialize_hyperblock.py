"""Case study I in miniature: evolve an application-specific hyperblock
priority function for one benchmark (the paper's Section 5.4.1 /
Figure 4 experiment, scaled down to run in about a minute).

Run:  python examples/specialize_hyperblock.py [benchmark]
"""

import sys
import time

from repro.gp.engine import GPParams
from repro.gp.parse import infix, unparse
from repro.gp.simplify import simplify
from repro.metaopt.baselines import IMPACT_HYPERBLOCK_TEXT
from repro.metaopt.harness import EvaluationHarness, case_study
from repro.metaopt.specialize import (
    build_specialize_engine,
    finalize_specialization,
)
from repro.reporting import fitness_curve_chart


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "g721encode"
    case = case_study("hyperblock")

    print(f"Specializing the hyperblock priority for {benchmark!r}")
    print(f"baseline (IMPACT Equation 1): {IMPACT_HYPERBLOCK_TEXT}")
    print()

    params = GPParams(population_size=24, generations=10, seed=42)
    started = time.time()
    harness = EvaluationHarness(case)
    engine = build_specialize_engine(case, benchmark, params, harness)
    result = finalize_specialization(harness, benchmark, engine.run())
    elapsed = time.time() - started

    print(fitness_curve_chart(
        f"fitness (speedup over baseline) by generation "
        f"[pop {params.population_size}]",
        result.fitness_curve(),
    ))
    print()
    print(f"train-data speedup : {result.train_speedup:.3f}")
    print(f"novel-data speedup : {result.novel_speedup:.3f}")
    print(f"baseline cycles    : {result.baseline_cycles_train}")
    print(f"evolved cycles     : {result.best_cycles_train}")
    print(f"fitness evaluations: {result.evaluations} "
          f"({elapsed:.1f}s wall)")
    print()
    best = simplify(result.best_tree)
    print("best evolved priority function:")
    print(f"  s-expr: {unparse(best)}")
    print(f"  infix : {infix(best)}")


if __name__ == "__main__":
    main()
