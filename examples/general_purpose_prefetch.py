"""Case study III in miniature: train a general-purpose prefetching
confidence function over several SPECfp-style kernels with dynamic
subset selection, then cross-validate it on kernels it never saw
(Sections 7.2.2 / Figures 15-16, scaled down).

Run:  python examples/general_purpose_prefetch.py
"""

import time

from repro.gp.engine import GPParams
from repro.gp.parse import unparse
from repro.gp.simplify import simplify
from repro.metaopt.baselines import ORC_PREFETCH_TEXT
from repro.metaopt.generalize import (
    build_generalize_engine,
    cross_validate,
    finalize_generalization,
)
from repro.metaopt.harness import EvaluationHarness, case_study
from repro.metaopt.settings import EvalSettings
from repro.reporting import speedup_table

TRAINING = ("102.swim", "107.mgrid", "146.wave5", "015.doduc")
UNSEEN = ("171.swim", "183.equake", "178.galgel")


def main() -> None:
    case = case_study("prefetch")
    # Real machines are noisy (Section 7.1); 1% measurement noise.
    harness = EvaluationHarness(case, EvalSettings(noise_stddev=0.01))

    print("Training a prefetch confidence function with DSS over:")
    print(" ", ", ".join(TRAINING))
    print(f"baseline (ORC): {ORC_PREFETCH_TEXT}")
    print()

    started = time.time()
    engine = build_generalize_engine(
        case, TRAINING,
        GPParams(population_size=20, generations=8, seed=9),
        harness,
        subset_size=2,
    )
    result = finalize_generalization(case, harness, TRAINING, engine.run())
    print(speedup_table(
        "training set (speedup over ORC's confidence)",
        [(s.benchmark, s.train_speedup, s.novel_speedup)
         for s in result.training],
    ))
    print()
    print("best evolved confidence:",
          unparse(simplify(result.best_tree)))
    print(f"({time.time() - started:.1f}s, "
          f"{result.evaluations} fitness evaluations)")
    print()

    validation = cross_validate(case, result.best_tree, UNSEEN,
                                harness=harness)
    print(speedup_table(
        "cross-validation on unseen kernels",
        [(s.benchmark, s.train_speedup, s.novel_speedup)
         for s in validation.scores],
    ))
    print()
    print("The paper's caveat applies: kernels that *like* aggressive")
    print("prefetching (unlike the training set) may not improve.")


if __name__ == "__main__":
    main()
