"""Reading evolved heuristics (the paper's Figure 8 workflow).

One of GP's selling points in the paper is that "GP solutions are human
readable": the evolved genome is an arithmetic expression, not a weight
matrix.  This example evolves a small heuristic, then walks the same
analysis the authors did by hand — simplify, find introns, render as
free-form arithmetic, and relate the surviving terms to compiler
intuition.

Run:  python examples/read_evolved_heuristics.py
"""

import random

from repro.gp.engine import GPParams
from repro.gp.parse import infix, unparse
from repro.gp.simplify import find_introns, simplify
from repro.metaopt.harness import EvaluationHarness, case_study
from repro.metaopt.specialize import (
    build_specialize_engine,
    finalize_specialization,
)
from repro.passes.hyperblock import region_feature_env
from repro.suite import get


def sample_environments(harness, benchmark):
    """Feature environments actually seen while compiling: collected by
    installing a recording priority function."""
    environments = []

    def recorder(env):
        environments.append(dict(env))
        return 1.0

    harness.simulate(recorder, benchmark)
    return environments


def main() -> None:
    case = case_study("hyperblock")
    harness = EvaluationHarness(case)
    benchmark = "g721encode"

    engine = build_specialize_engine(
        case, benchmark,
        GPParams(population_size=30, generations=12, seed=17),
        harness,
    )
    result = finalize_specialization(harness, benchmark, engine.run())
    raw = result.best_tree
    print(f"evolved for {benchmark}: train speedup "
          f"{result.train_speedup:.3f}")
    print(f"raw genome ({raw.size()} nodes):")
    print(f"  {unparse(raw)}")
    print()

    simplified = simplify(raw)
    print(f"after algebraic simplification ({simplified.size()} nodes):")
    print(f"  {unparse(simplified)}")
    print(f"  = {infix(simplified)}")
    print()

    environments = sample_environments(harness, benchmark)
    if environments and simplified.size() > 1:
        introns = find_introns(simplified, environments[:64])
        if introns:
            print("introns (no effect on any region this compile saw):")
            for node in introns:
                print(f"  {unparse(node)}")
        else:
            print("no introns: every subexpression influenced at least "
                  "one region decision")
    print()

    features = sorted({
        node.name for node in simplified.walk()
        if hasattr(node, "name")
    })
    print(f"features the evolved heuristic consults: {features}")
    print("compare with IMPACT's Equation 1, which consults: "
          "exec_ratio, dep_height(+max), num_ops(+max), hazards")


if __name__ == "__main__":
    main()
