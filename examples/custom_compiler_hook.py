"""Using the compiler as a library: write your own MiniC workload,
plug hand-written priority functions into all three hooks, and compare
them — no GP involved.

This is the workflow the paper imagines for compiler writers: expose
the policy, then experiment with it cheaply.

Run:  python examples/custom_compiler_hook.py
"""

from repro.compiler import compile_program, interpret
from repro.machine.descr import MachineDescription
from repro.passes.hyperblock import impact_priority
from repro.passes.pipeline import CompilerOptions
from repro.passes.prefetch import always_prefetch, never_prefetch

# A histogram + smoothing workload: branchy integer phase followed by
# a streaming float phase, so all three hooks matter.
SOURCE = """
int samples[2048];
int nsamples;
int histogram[64];
float smooth[64];

void main() {
  int i;
  for (i = 0; i < nsamples; i = i + 1) {
    int bucket = samples[i] >> 4;
    if (bucket < 0) { bucket = 0; }
    if (bucket > 63) { bucket = 63; }
    if (samples[i] % 2 == 0) {
      histogram[bucket] = histogram[bucket] + 2;
    } else {
      histogram[bucket] = histogram[bucket] + 1;
    }
  }
  for (i = 1; i < 63; i = i + 1) {
    smooth[i] = (histogram[i - 1] + 2 * histogram[i]
                 + histogram[i + 1]) * 0.25;
  }
  float total = 0.0;
  for (i = 0; i < 64; i = i + 1) {
    total = total + smooth[i];
  }
  out(total);
}
"""

INPUTS = {
    "samples": [((i * 193) ^ (i >> 3)) % 1024 for i in range(2048)],
    "nsamples": [2000],
}

#: A small embedded-flavoured EPIC: narrow issue, tiny L1.
MACHINE = MachineDescription(
    name="custom-embedded",
    int_units=2, fp_units=1, mem_units=1, issue_width=4,
    gp_registers=16, fp_registers=16,
)


def convert_everything(env) -> float:
    """Hyperblock policy: merge every hammock, no questions asked."""
    return 1.0


def keep_branches(env) -> float:
    """Hyperblock policy: never predicate."""
    return -1.0


def spill_cold_first(env) -> float:
    """Spill policy: protect ranges in deep loops, everything else is
    fair game (a plausible hand heuristic)."""
    return env["loop_depth"] * 10.0 + env["uses"] + env["defs"]


def main() -> None:
    reference = interpret(SOURCE, INPUTS)

    policies = {
        "stock pipeline": CompilerOptions(machine=MACHINE, prefetch=True),
        "predicate everything": CompilerOptions(
            machine=MACHINE, prefetch=True,
            hyperblock_priority=convert_everything),
        "never predicate": CompilerOptions(
            machine=MACHINE, prefetch=True,
            hyperblock_priority=keep_branches),
        "loop-depth spill policy": CompilerOptions(
            machine=MACHINE, prefetch=True,
            spill_priority=spill_cold_first),
        "prefetch everything": CompilerOptions(
            machine=MACHINE, prefetch=True,
            prefetch_priority=always_prefetch),
        "prefetch nothing": CompilerOptions(
            machine=MACHINE, prefetch=True,
            prefetch_priority=never_prefetch),
    }

    print(f"{'policy':<26s}{'cycles':>10s}{'vs stock':>10s}")
    stock_cycles = None
    for label, options in policies.items():
        program = compile_program(SOURCE, profile_inputs=INPUTS,
                                  options=options)
        result = program.run(INPUTS)
        assert result.outputs == reference.outputs, label
        if stock_cycles is None:
            stock_cycles = result.cycles
        print(f"{label:<26s}{result.cycles:>10d}"
              f"{stock_cycles / result.cycles:>10.3f}")

    print()
    print("All six binaries produce identical outputs — the hooks only")
    print("steer performance, never correctness (IMPACT's split of")
    print("'policy' from 'legality' that Meta Optimization relies on).")


if __name__ == "__main__":
    main()
