"""Quickstart: compile a MiniC program through the full optimizing
pipeline and simulate it on the paper's EPIC machine.

Run:  python examples/quickstart.py
"""

from repro.compiler import compile_program, interpret
from repro.machine.descr import DEFAULT_EPIC
from repro.passes.pipeline import CompilerOptions

SOURCE = """
// Dot-product with a data-dependent clamp: a small program with a
// loop, a branch, memory traffic, and floating point.
int a[256];
int b[256];
int n;

void main() {
  int acc = 0;
  int clipped = 0;
  int i;
  for (i = 0; i < n; i = i + 1) {
    int term = a[i] * b[i];
    if (term > 100) {
      term = 100;
      clipped = clipped + 1;
    }
    acc = acc + term;
  }
  out(acc);
  out(clipped);
}
"""

INPUTS = {
    "a": [(i * 7) % 23 for i in range(256)],
    "b": [(i * 5) % 19 for i in range(256)],
    "n": [250],
}


def main() -> None:
    # Ground truth from the reference interpreter (no machine model).
    reference = interpret(SOURCE, INPUTS)
    print(f"reference outputs : {reference.outputs}")

    # Full pipeline: inline, cleanup, unroll, profile, hyperblock
    # if-conversion, register allocation, VLIW list scheduling.
    options = CompilerOptions(machine=DEFAULT_EPIC)
    program = compile_program(SOURCE, profile_inputs=INPUTS,
                              options=options)

    hb = program.report.hyperblock["main"]
    print(f"hyperblock regions: {hb.regions_converted} converted "
          f"of {hb.regions_considered} considered")

    result = program.run(INPUTS)
    assert result.outputs == reference.outputs, "simulator must agree!"
    print(f"simulated outputs : {result.outputs}")
    print(f"cycles            : {result.cycles}")
    print(f"dynamic ops       : {result.dynamic_ops} "
          f"({result.squashed_ops} squashed by predication)")
    print(f"memory stalls     : {result.memory_stall_cycles} cycles "
          f"(L1 hit rate {result.l1_hit_rate:.2%})")
    print(f"branch stalls     : {result.branch_stall_cycles} cycles "
          f"(predictor accuracy {result.branch_accuracy:.2%})")

    # The same binary runs on different data (the paper's train/novel
    # methodology).
    novel = {"a": [(i * 11) % 31 for i in range(256)],
             "b": [(i * 3) % 17 for i in range(256)], "n": [256]}
    novel_result = program.run(novel)
    print(f"novel-data cycles : {novel_result.cycles}")


if __name__ == "__main__":
    main()
