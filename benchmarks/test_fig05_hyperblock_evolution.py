"""Figure 5 — hyperblock formation evolution.

Best fitness over generations for the specialization runs.  The paper
observes fast convergence: "Meta Optimization quickly finds a priority
function that outperforms Trimaran's baseline heuristic", often already
in the random initial population.
"""

from conftest import emit, record_result, specialization_results
from repro.reporting import fitness_curve_chart


def test_fig05_hyperblock_evolution(benchmark):
    results = benchmark.pedantic(
        lambda: specialization_results("hyperblock"),
        rounds=1, iterations=1,
    )
    curves = {name: res.fitness_curve() for name, res in results.items()}
    for name, curve in curves.items():
        emit(fitness_curve_chart(f"Figure 5 ({name}): best fitness by "
                                 f"generation", curve))
    record_result("fig05_hyperblock_evolution", curves)

    for name, curve in curves.items():
        # Elitism: the curve never regresses.
        assert all(b >= a - 1e-12 for a, b in zip(curve, curve[1:])), name
        # Fast convergence: generation 0 already matches the baseline
        # (the seed guarantees >= 1.0) and most of the final gain is
        # present early.
        assert curve[0] >= 1.0 - 1e-9, name
    gains = [curve[-1] - curve[0] for curve in curves.values()]
    early = [curve[len(curve) // 2] - curve[0] for curve in curves.values()]
    # "Quickly finds": most of the evolved gain is present by mid-run.
    # Only meaningful when there is a gain to speak of — generation 0
    # already matching the baseline satisfies the claim trivially.
    if sum(gains) > 0.02:
        assert sum(early) >= 0.5 * sum(gains) - 1e-9
