"""Figure 16 — cross validation of the general-purpose prefetching
priority function on SPEC2000-style kernels, on two architectures.

The paper's generality caveat lives here: the SPEC92/95 training
suite punishes aggressive prefetching, but some SPEC2000 benchmarks
*want* it, so the learned function loses on a few test kernels —
"unless designers can assert that the training set provides adequate
problem coverage, they cannot completely trust GP-generated
solutions."
"""

from conftest import (
    emit,
    generalization_result,
    record_result,
    shared_harness,
    crossval_benchmarks,
)
from repro.machine.descr import ITANIUM_MACHINE_B
from repro.metaopt.generalize import cross_validate
from repro.metaopt.harness import EvaluationHarness, case_study
from repro.metaopt.settings import EvalSettings
from repro.reporting import speedup_table


def test_fig16_prefetch_crossval(benchmark):
    general = generalization_result("prefetch")
    harness_a = shared_harness("prefetch")
    case_b = case_study("prefetch", machine=ITANIUM_MACHINE_B)
    harness_b = EvaluationHarness(case_b, EvalSettings(noise_stddev=0.01))
    names = crossval_benchmarks("prefetch")

    def run():
        return (
            cross_validate(harness_a.case, general.best_tree, names,
                           harness=harness_a),
            cross_validate(case_b, general.best_tree, names,
                           harness=harness_b),
        )

    result_a, result_b = benchmark.pedantic(run, rounds=1, iterations=1)
    for result in (result_a, result_b):
        rows = [(s.benchmark, s.train_speedup, s.novel_speedup)
                for s in result.scores]
        emit(speedup_table(
            f"Figure 16: Prefetch cross-validation on "
            f"{result.machine_name}", rows))
    record_result("fig16_prefetch_crossval", {
        result.machine_name: {
            s.benchmark: [s.train_speedup, s.novel_speedup]
            for s in result.scores
        }
        for result in (result_a, result_b)
    })

    # Shape: generalization is imperfect — at least one test benchmark
    # should not improve (the coverage caveat), while the set average
    # stays near or above parity.
    speedups = [s.train_speedup for s in result_a.scores]
    assert min(speedups) <= 1.02
    assert sum(speedups) / len(speedups) >= 0.95
