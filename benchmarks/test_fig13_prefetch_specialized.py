"""Figure 13 — prefetching specialization on SPECfp-style kernels,
measured with real-machine noise (Section 7.1).

Paper: ~1.35 train / 1.40 novel average; the evolved functions "rarely
prefetched" because ORC overzealously prefetches.
"""

from conftest import emit, record_result, specialization_results
from repro.reporting import speedup_table


def test_fig13_prefetch_specialized(benchmark):
    results = benchmark.pedantic(
        lambda: specialization_results("prefetch"),
        rounds=1, iterations=1,
    )
    rows = [(name, res.train_speedup, res.novel_speedup)
            for name, res in results.items()]
    emit(speedup_table(
        "Figure 13: Prefetching specialization "
        "(speedup over ORC's confidence)", rows))
    record_result("fig13_prefetch_specialized", {
        name: {"train": res.train_speedup, "novel": res.novel_speedup,
               "expression": res.best_expression}
        for name, res in results.items()
    })

    train_avg = sum(r.train_speedup for r in results.values()) / len(results)
    # Noise means individual train speedups can dip a hair below 1.0
    # even with the baseline seeded; the average must clearly win or
    # match.
    assert all(res.train_speedup >= 0.97 for res in results.values())
    assert train_avg >= 1.0
