"""Figure 4 — hyperblock specialization.

Per-benchmark evolution of the hyperblock priority function; dark bars
(train data) and light bars (novel data) as speedup over Trimaran's
baseline heuristic.  Paper averages: 1.54 train / 1.23 novel.
"""

from conftest import emit, record_result, specialization_results
from repro.reporting import speedup_table


def test_fig04_hyperblock_specialized(benchmark):
    results = benchmark.pedantic(
        lambda: specialization_results("hyperblock"),
        rounds=1, iterations=1,
    )
    rows = [(name, res.train_speedup, res.novel_speedup)
            for name, res in results.items()]
    emit(speedup_table(
        "Figure 4: Hyperblock specialization (speedup over Equation 1)",
        rows,
    ))
    record_result("fig04_hyperblock_specialized", {
        name: {"train": res.train_speedup, "novel": res.novel_speedup,
               "expression": res.best_expression}
        for name, res in results.items()
    })

    train_avg = sum(r.train_speedup for r in results.values()) / len(results)
    novel_avg = sum(r.novel_speedup for r in results.values()) / len(results)
    # Shape: specialization never loses on its training input (the
    # baseline is in the population), and wins on average.
    assert all(res.train_speedup >= 1.0 - 1e-9 for res in results.values())
    assert train_avg >= 1.0
    # Novel data keeps most of the benefit but may trail training data.
    assert novel_avg >= 0.95
