"""Ablations on the GP design choices the paper flags as future work
(Section 7.2.1): parsimony pressure, elitism, DSS, and baseline
seeding.

Each ablation runs the hyperblock specialization problem with one knob
flipped and compares against the reference configuration.
"""

import random

from conftest import emit, gp_params, record_result, shared_harness
from repro.gp.dss import DSSState
from repro.gp.engine import GPEngine, GPParams
from repro.gp.select import Individual, better


BENCH = "g721encode"


def run_engine(harness, *, elitism=True, seed_baseline=True, seed=3):
    params = gp_params(seed=seed)
    params = GPParams(
        population_size=params.population_size,
        generations=params.generations,
        elitism=elitism,
        seed=seed,
    )
    seeds = (harness.case.baseline_tree(),) if seed_baseline else ()
    engine = GPEngine(
        pset=harness.case.pset,
        evaluator=harness.evaluator("train"),
        benchmarks=(BENCH,),
        params=params,
        seed_trees=seeds,
    )
    return engine.run()


def test_ablation_elitism(benchmark):
    harness = shared_harness("hyperblock")

    def run():
        with_elite = run_engine(harness, elitism=True)
        without = run_engine(harness, elitism=False)
        return with_elite, without

    with_elite, without = benchmark.pedantic(run, rounds=1, iterations=1)
    curve_with = with_elite.fitness_curve()
    curve_without = without.fitness_curve()
    emit(f"Ablation (elitism) on {BENCH}:\n"
         f"  with   : {[round(v, 3) for v in curve_with]}\n"
         f"  without: {[round(v, 3) for v in curve_without]}")
    record_result("ablation_elitism", {
        "with": curve_with, "without": curve_without,
    })

    # Elitism makes the best-fitness curve monotone; without it the
    # curve may dip (regression allowed), and the final champion can be
    # worse.
    assert all(b >= a - 1e-12 for a, b in zip(curve_with, curve_with[1:]))
    assert max(curve_without) <= max(curve_with) + 0.05


def test_ablation_seeding(benchmark):
    harness = shared_harness("hyperblock")

    def run():
        seeded = run_engine(harness, seed_baseline=True)
        unseeded = run_engine(harness, seed_baseline=False)
        return seeded, unseeded

    seeded, unseeded = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(f"Ablation (baseline seeding) on {BENCH}:\n"
         f"  seeded  : best {seeded.best.fitness:.3f}\n"
         f"  unseeded: best {unseeded.best.fitness:.3f}")
    record_result("ablation_seeding", {
        "seeded": seeded.best.fitness,
        "unseeded": unseeded.best.fitness,
    })

    # The paper's observation for hyperblocks: the seed barely matters;
    # pure-random initialization reaches comparable fitness.
    assert unseeded.best.fitness >= seeded.best.fitness - 0.10
    # ...but seeding guarantees the baseline floor.
    assert seeded.best.fitness >= 1.0 - 1e-9


def test_ablation_parsimony(benchmark):
    """Parsimony pressure (the smaller-wins tiebreak) keeps champions
    small without costing fitness."""
    harness = shared_harness("hyperblock")

    def run():
        result = run_engine(harness)
        equally_fit = [
            ind for ind in result.population
            if ind.fitness is not None
            and abs(ind.fitness - result.best.fitness) < 1e-12
        ]
        return result, equally_fit

    result, equally_fit = benchmark.pedantic(run, rounds=1, iterations=1)
    sizes = sorted(ind.size for ind in equally_fit)
    emit(f"Ablation (parsimony) on {BENCH}: champion size "
         f"{result.best.size}, equally-fit sizes {sizes[:10]}")
    record_result("ablation_parsimony", {
        "champion_size": result.best.size,
        "equally_fit_sizes": sizes,
    })

    # The champion is the smallest among the equally fit.
    assert result.best.size == min(sizes)


def test_ablation_dss_vs_full(benchmark):
    """DSS reaches a comparable champion with fewer evaluations than
    full-suite evaluation (Gathercole's point, Section 3)."""
    harness = shared_harness("hyperblock")
    training = ("rawcaudio", "rawdaudio", "g721encode", "codrle4")

    def make_engine(dss):
        params = gp_params(seed=17)
        return GPEngine(
            pset=harness.case.pset,
            evaluator=harness.evaluator("train"),
            benchmarks=training,
            params=params,
            seed_trees=(harness.case.baseline_tree(),),
            dss=dss,
        )

    def run():
        full_engine = make_engine(None)
        full = full_engine.run()
        dss_engine = make_engine(DSSState(
            training, subset_size=2, rng=random.Random(5)))
        dss = dss_engine.run()
        return (full, full_engine.evaluations,
                dss, dss_engine.evaluations)

    full, full_evals, dss, dss_evals = benchmark.pedantic(
        run, rounds=1, iterations=1)

    def full_suite_score(tree):
        return sum(harness.speedup(tree, name, "train")
                   for name in training) / len(training)

    full_score = full_suite_score(full.best.tree)
    dss_score = full_suite_score(dss.best.tree)
    emit("Ablation (DSS vs full evaluation):\n"
         f"  full: score {full_score:.3f} with {full_evals} evaluations\n"
         f"  DSS : score {dss_score:.3f} with {dss_evals} evaluations")
    record_result("ablation_dss", {
        "full": [full_score, full_evals],
        "dss": [dss_score, dss_evals],
    })

    assert dss_evals <= full_evals
    assert dss_score >= full_score - 0.05
