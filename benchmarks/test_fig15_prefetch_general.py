"""Figure 15 — training a prefetching priority function on multiple
benchmarks.  Paper: 1.31 train / 1.36 novel; the novel data can even
beat the training data because the learned function prefetches
rarely and the novel inputs are more prefetch-sensitive.
"""

from conftest import emit, generalization_result, record_result
from repro.gp.parse import unparse
from repro.gp.simplify import simplify
from repro.reporting import speedup_table


def test_fig15_prefetch_general(benchmark):
    result = benchmark.pedantic(
        lambda: generalization_result("prefetch"),
        rounds=1, iterations=1,
    )
    rows = [(s.benchmark, s.train_speedup, s.novel_speedup)
            for s in result.training]
    emit(speedup_table(
        "Figure 15: General-purpose prefetch confidence (training set)",
        rows))
    emit("Best expression: " + unparse(simplify(result.best_tree)))
    record_result("fig15_prefetch_general", {
        "scores": {s.benchmark: [s.train_speedup, s.novel_speedup]
                   for s in result.training},
        "expression": unparse(result.best_tree),
    })

    assert result.average_train_speedup() >= 1.0 - 0.02
