"""Table 5 — the benchmark suite.

Compiles and simulates every registered benchmark with the stock
pipeline, reporting dynamic behaviour (the data the case studies build
on).  Serves as the whole-suite smoke bench.
"""

from conftest import emit, record_result
from repro.frontend import compile_source
from repro.machine.descr import DEFAULT_EPIC, ITANIUM_MACHINE
from repro.machine.sim import Simulator
from repro.passes.pipeline import CompilerOptions, compile_backend, prepare
from repro.suite import all_benchmarks


def _run_all():
    stats = {}
    for name, bench in sorted(all_benchmarks().items()):
        machine = ITANIUM_MACHINE if bench.category == "fp" else DEFAULT_EPIC
        options = CompilerOptions(machine=machine,
                                  prefetch=bench.category == "fp")
        module = compile_source(bench.source, name)
        prepared = prepare(module, bench.inputs("train"), options)
        scheduled, _report = compile_backend(prepared)
        simulator = Simulator(scheduled, machine)
        for key, values in bench.inputs("train").items():
            simulator.set_global(key, values)
        result = simulator.run()
        stats[name] = {
            "suite": bench.suite,
            "category": bench.category,
            "cycles": result.cycles,
            "dynamic_ops": result.dynamic_ops,
            "l1_hit_rate": round(result.l1_hit_rate, 4),
            "branch_accuracy": round(result.branch_accuracy, 4),
        }
    return stats


def test_table5_suite(benchmark):
    stats = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    lines = [
        "Table 5: benchmark suite under the baseline pipeline",
        f"{'benchmark':<16s}{'suite':<12s}{'cat':<5s}"
        f"{'cycles':>10s}{'ops':>10s}{'L1 hit':>8s}{'br acc':>8s}",
    ]
    for name, row in stats.items():
        lines.append(
            f"{name:<16s}{row['suite']:<12s}{row['category']:<5s}"
            f"{row['cycles']:>10d}{row['dynamic_ops']:>10d}"
            f"{row['l1_hit_rate']:>8.3f}{row['branch_accuracy']:>8.3f}"
        )
    emit("\n".join(lines))
    record_result("table5_suite", stats)

    assert len(stats) >= 40
    assert all(row["cycles"] > 0 for row in stats.values())
