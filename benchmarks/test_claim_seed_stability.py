"""Section 5.4.1's claim: "multiple reruns using different
initialization seeds reveal minuscule differences in performance.  It
might be a space in which there are many possible solutions associated
with a given fitness."

Three independent evolutions (different GP seeds) on one benchmark
should land within a small band of each other.
"""

from conftest import emit, gp_params, record_result, shared_harness
from repro.gp.engine import GPEngine, GPParams

BENCH = "rawcaudio"
SEEDS = (11, 57, 91)


def test_claim_seed_stability(benchmark):
    harness = shared_harness("hyperblock")

    def run():
        finals = {}
        for seed in SEEDS:
            base = gp_params(seed=seed)
            engine = GPEngine(
                pset=harness.case.pset,
                evaluator=harness.evaluator("train"),
                benchmarks=(BENCH,),
                params=base,
                seed_trees=(harness.case.baseline_tree(),),
            )
            finals[seed] = engine.run().best.fitness
        return finals

    finals = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(f"Seed-stability claim on {BENCH}: "
         + ", ".join(f"seed {s}: {f:.4f}" for s, f in finals.items()))
    record_result("claim_seed_stability", finals)

    values = list(finals.values())
    assert max(values) - min(values) <= 0.05, finals
