"""Section 7.2.1's claim: "shutting off prefetching altogether achieves
gains within 7% of the specialized priority functions" — because, on
the authors' Itanium testbed, ORC overzealously prefetched.

**Documented divergence** (see EXPERIMENTS.md): on our simulated
memory hierarchy the SPEC92/95-style streaming kernels genuinely
profit from prefetching, so disabling it entirely costs real cycles on
most of the training set.  The *transferable* parts of the claim do
hold and are asserted here:

* specialists always match or beat the all-off policy (evolution can
  express "never prefetch" and will find it when it wins);
* on kernels where prefetching does not pay (dense cache-resident
  compute, e.g. the matmul-style 093.nasa7), the all-off policy lands
  within the paper's ~7% of the specialist.
"""

from conftest import (
    emit,
    record_result,
    shared_harness,
    specialization_results,
)
from repro.passes.prefetch import never_prefetch


def test_claim_noprefetch(benchmark):
    harness = shared_harness("prefetch")
    results = specialization_results("prefetch")

    def run():
        comparison = {}
        for name, res in results.items():
            off = harness.speedup(never_prefetch, name, "train")
            comparison[name] = (res.train_speedup, off)
        return comparison

    comparison = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("No-prefetch vs specialized (train-data speedups):\n"
         + "\n".join(f"  {name}: specialist {spec:.3f}, "
                     f"prefetch-off {off:.3f}"
                     for name, (spec, off) in comparison.items()))
    record_result("claim_noprefetch", comparison)

    # Specialists never lose to the blanket off-switch (that policy is
    # inside the search space).
    assert all(spec >= off - 0.02 for spec, off in comparison.values())
    # Where prefetching does not pay, off lands within ~7% of the
    # specialist — the paper's claim, on its applicable subset.
    close = [name for name, (spec, off) in comparison.items()
             if spec - off <= 0.07]
    assert close, comparison
