"""Figure 12 — cross validation of the general-purpose register
allocation priority function, on two target architectures.

Paper: ~1.03 overall; the learned function wins on most test
benchmarks with a couple of marginal losses.
"""

from conftest import (
    emit,
    generalization_result,
    record_result,
    shared_harness,
    crossval_benchmarks,
)
from repro.machine.descr import REGALLOC_MACHINE_B
from repro.metaopt.generalize import cross_validate
from repro.metaopt.harness import EvaluationHarness, case_study
from repro.reporting import speedup_table


def test_fig12_regalloc_crossval(benchmark):
    general = generalization_result("regalloc")
    harness_a = shared_harness("regalloc")
    case_b = case_study("regalloc", machine=REGALLOC_MACHINE_B)
    harness_b = EvaluationHarness(case_b)
    names = crossval_benchmarks("regalloc")

    def run():
        return (
            cross_validate(harness_a.case, general.best_tree, names,
                           harness=harness_a),
            cross_validate(case_b, general.best_tree, names,
                           harness=harness_b),
        )

    result_a, result_b = benchmark.pedantic(run, rounds=1, iterations=1)
    for result in (result_a, result_b):
        rows = [(s.benchmark, s.train_speedup, s.novel_speedup)
                for s in result.scores]
        emit(speedup_table(
            f"Figure 12: Regalloc cross-validation on "
            f"{result.machine_name}", rows))
    record_result("fig12_regalloc_crossval", {
        result.machine_name: {
            s.benchmark: [s.train_speedup, s.novel_speedup]
            for s in result.scores
        }
        for result in (result_a, result_b)
    })

    # Shape: generalization is small but non-destructive on both
    # architectures.
    assert result_a.average_train_speedup() >= 0.97
    assert result_b.average_train_speedup() >= 0.95
    assert all(s.train_speedup >= 0.85 for s in result_a.scores)
