"""Section 5.4.1's claim: "by simply creating and testing 399 random
expressions, we were able to find a priority function that
outperformed Trimaran's for the given benchmark" — i.e. the random
initial population already contains a winner, and the seed is quickly
obscured.

We test a scaled version: a modest random population (no baseline
seed, no evolution) already matches or beats Equation 1 on most
specialization benchmarks.
"""

import random

from conftest import emit, gp_params, record_result, shared_harness
from repro.gp.generate import TreeGenerator


def test_claim_random_search(benchmark):
    harness = shared_harness("hyperblock")
    names = ("rawcaudio", "g721encode", "mpeg2dec")

    def run():
        pool_size = max(30, gp_params().population_size * 2)
        generator = TreeGenerator(harness.case.pset,
                                  rng=random.Random(12345))
        trees = generator.ramped_half_and_half(pool_size)
        outcome = {}
        for name in names:
            best = max(harness.speedup(tree, name, "train")
                       for tree in trees)
            outcome[name] = best
        return outcome

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("Random-search claim (best of random pool vs baseline):\n"
         + "\n".join(f"  {name}: {value:.3f}"
                     for name, value in outcome.items()))
    record_result("claim_random_search", outcome)

    winners = sum(1 for value in outcome.values() if value >= 1.0 - 1e-9)
    assert winners >= 2, outcome
