"""Figure 6 — training a hyperblock priority function on multiple
benchmarks with DSS, and Figure 8 — the best evolved expression.

Paper: 1.44 average on training data, 1.25 on novel data; the evolved
expression (Figure 8) is human-readable after simplification.
"""

from conftest import emit, generalization_result, record_result
from repro.gp.parse import infix, unparse
from repro.gp.simplify import simplify
from repro.reporting import speedup_table


def test_fig06_hyperblock_general(benchmark):
    result = benchmark.pedantic(
        lambda: generalization_result("hyperblock"),
        rounds=1, iterations=1,
    )
    rows = [(s.benchmark, s.train_speedup, s.novel_speedup)
            for s in result.training]
    emit(speedup_table(
        "Figure 6: General-purpose hyperblock priority (training set)",
        rows,
    ))

    simplified = simplify(result.best_tree)
    emit("Figure 8: best general-purpose hyperblock priority function\n"
         f"  s-expr : {unparse(simplified)}\n"
         f"  infix  : {infix(simplified)}\n"
         f"  size   : {simplified.size()} nodes "
         f"(raw {result.best_tree.size()})")
    record_result("fig06_hyperblock_general", {
        "scores": {s.benchmark: [s.train_speedup, s.novel_speedup]
                   for s in result.training},
        "expression": unparse(result.best_tree),
        "simplified": unparse(simplified),
    })

    # Shape: the general-purpose function matches or beats the baseline
    # on average over its training set.
    assert result.average_train_speedup() >= 1.0 - 1e-9
    # Figure 8's property: parsimony keeps expressions readable.
    assert simplified.size() <= 60
