"""Ablation: GP search scale.

Section 9 concedes that "GP's success is dependent on parameters such
as population size and mutation rate".  This bench sweeps population
size on one specialization problem; larger populations explore more of
the space per generation and should never find worse champions (all
runs share the elitism floor of the seeded baseline).
"""

from conftest import emit, record_result, shared_harness
from repro.gp.engine import GPEngine, GPParams

BENCH = "g721encode"
POPULATIONS = (8, 16, 32)


def test_ablation_population_scale(benchmark):
    harness = shared_harness("hyperblock")

    def run():
        outcome = {}
        for population in POPULATIONS:
            engine = GPEngine(
                pset=harness.case.pset,
                evaluator=harness.evaluator("train"),
                benchmarks=(BENCH,),
                params=GPParams(population_size=population,
                                generations=8, seed=23),
                seed_trees=(harness.case.baseline_tree(),),
            )
            result = engine.run()
            outcome[population] = (result.best.fitness,
                                   engine.evaluations)
        return outcome

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(f"Ablation (population scale) on {BENCH}:\n"
         + "\n".join(f"  pop {pop:3d}: best {fit:.4f} "
                     f"({evals} evaluations)"
                     for pop, (fit, evals) in outcome.items()))
    record_result("ablation_scale", {
        str(pop): [fit, evals] for pop, (fit, evals) in outcome.items()
    })

    fits = [fit for fit, _ in outcome.values()]
    evals = [count for _, count in outcome.values()]
    # Bigger populations spend more evaluations...
    assert evals == sorted(evals)
    # ...and all runs respect the seeded-baseline floor.
    assert all(fit >= 1.0 - 1e-9 for fit in fits)
