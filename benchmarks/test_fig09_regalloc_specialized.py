"""Figure 9 — register allocation specialization.

Per-benchmark evolution of the Chow–Hennessy savings term on the
register-starved machine.  Paper: smaller gains than hyperblocks
(up to ~1.11 train / 1.15 novel; train-novel gap smaller because
spilling is less data-driven).
"""

from conftest import emit, record_result, specialization_results
from repro.reporting import speedup_table


def test_fig09_regalloc_specialized(benchmark):
    results = benchmark.pedantic(
        lambda: specialization_results("regalloc"),
        rounds=1, iterations=1,
    )
    rows = [(name, res.train_speedup, res.novel_speedup)
            for name, res in results.items()]
    emit(speedup_table(
        "Figure 9: Register-allocation specialization "
        "(speedup over Equation 2)", rows,
    ))
    record_result("fig09_regalloc_specialized", {
        name: {"train": res.train_speedup, "novel": res.novel_speedup,
               "expression": res.best_expression}
        for name, res in results.items()
    })

    train_avg = sum(r.train_speedup for r in results.values()) / len(results)
    novel_avg = sum(r.novel_speedup for r in results.values()) / len(results)
    assert all(res.train_speedup >= 1.0 - 1e-9 for res in results.values())
    assert train_avg >= 1.0
    # Train/novel gap is small for register allocation (paper 6.1.1).
    assert abs(train_avg - novel_avg) <= 0.10
