"""Extension experiment (beyond the paper's evaluation): evolve the
list-scheduling priority function — the very example Section 2 uses to
introduce priority functions — on an issue-constrained EPIC machine.

The baseline is Gibbons & Muchnick's latency-weighted depth, which is
near-optimal for greedy list scheduling, so the expected shape is
regalloc-like: small wins at best, never losses (with the baseline
seeded), and clear degradation for adversarial priorities.
"""

from conftest import emit, gp_params, record_result, run_specialize
from repro.metaopt.harness import EvaluationHarness, case_study
from repro.metaopt.priority import PriorityFunction
from repro.metaopt.scheduling import SCHEDULE_PSET
from repro.reporting import speedup_table

BENCHMARKS = ("093.nasa7", "mpeg2dec", "djpeg", "103.su2cor")


def test_ext_scheduling_specialized(benchmark):
    case = case_study("scheduling")
    harness = EvaluationHarness(case)

    def run():
        results = {}
        for index, name in enumerate(BENCHMARKS):
            results[name] = run_specialize(
                case, name, gp_params(seed=301 + index), harness)
        anti = PriorityFunction.from_text("(sub 0.0 lw_depth)",
                                          SCHEDULE_PSET)
        anti_speedups = {
            name: harness.speedup(anti, name) for name in BENCHMARKS
        }
        return results, anti_speedups

    results, anti_speedups = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [(name, res.train_speedup, res.novel_speedup)
            for name, res in results.items()]
    emit(speedup_table(
        "Extension: evolved list-scheduling priority "
        "(speedup over latency-weighted depth)", rows))
    emit("Adversarial anti-depth priority (sanity): "
         + ", ".join(f"{n}={s:.3f}" for n, s in anti_speedups.items()))
    record_result("ext_scheduling", {
        "evolved": {n: [r.train_speedup, r.novel_speedup]
                    for n, r in results.items()},
        "anti_depth": anti_speedups,
    })

    assert all(res.train_speedup >= 1.0 - 1e-9 for res in results.values())
    # The adversarial priority must clearly lose somewhere — otherwise
    # the hook is not actually steering the schedule.
    assert min(anti_speedups.values()) < 0.98
