"""Figure 7 — cross validation of the general-purpose hyperblock
priority function on a completely unrelated test set.

Paper: average speedup 1.09; Trimaran's baseline marginally wins on a
few benchmarks (unepic, 023.eqntott, 085.cc1).
"""

from conftest import (
    emit,
    generalization_result,
    record_result,
    shared_harness,
    crossval_benchmarks,
)
from repro.metaopt.generalize import cross_validate
from repro.reporting import speedup_table


def test_fig07_hyperblock_crossval(benchmark):
    general = generalization_result("hyperblock")
    harness = shared_harness("hyperblock")

    result = benchmark.pedantic(
        lambda: cross_validate(harness.case, general.best_tree,
                               crossval_benchmarks("hyperblock"),
                               harness=harness),
        rounds=1, iterations=1,
    )
    rows = [(s.benchmark, s.train_speedup, s.novel_speedup)
            for s in result.scores]
    emit(speedup_table(
        "Figure 7: Hyperblock cross-validation (unseen benchmarks)",
        rows,
    ))
    record_result("fig07_hyperblock_crossval", {
        s.benchmark: [s.train_speedup, s.novel_speedup]
        for s in result.scores
    })

    average = result.average_train_speedup()
    # Shape: positive but modest generalization; individual benchmarks
    # may fall slightly below 1.0 (the paper sees the same).
    assert average >= 0.97
    assert all(s.train_speedup >= 0.85 for s in result.scores)
