"""Shared infrastructure for the figure/table benchmarks.

Every paper figure gets one bench module.  Figures that share an
experiment (e.g. Figure 4's specialization bars and Figure 5's
fitness curves) share one cached run.

GP scale: the paper ran population 400 for 50 generations on a
cluster for about a day per benchmark.  The default bench scale is
deliberately small (population 32, 12 generations) so the whole
harness completes in tens of minutes on one machine; set environment
variables to scale up:

    REPRO_POP=400 REPRO_GENS=50 REPRO_FULL=1 pytest benchmarks/ --benchmark-only

``REPRO_FULL=1`` also switches the specialization figures from the
fast benchmark subset to the paper's full lists.

Results are printed as text tables (the paper's bar charts) and
appended to ``benchmarks/results/*.json`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.gp.engine import GPParams
from repro.metaopt.generalize import (
    build_generalize_engine,
    finalize_generalization,
)
from repro.metaopt.harness import EvaluationHarness, case_study
from repro.metaopt.settings import EvalSettings
from repro.metaopt.specialize import (
    build_specialize_engine,
    finalize_specialization,
)
from repro.suite.registry import (
    HYPERBLOCK_TRAINING_SET,
    PREFETCH_TRAINING_SET,
    REGALLOC_TRAINING_SET,
)

RESULTS_DIR = Path(__file__).parent / "results"

#: Fast-mode benchmark subsets for the specialization figures (chosen
#: to span the behaviours: predication-friendly, predication-neutral,
#: spill-heavy, prefetch-friendly, prefetch-hostile).
FAST_SPECIALIZATION = {
    "hyperblock": ("rawcaudio", "rawdaudio", "g721encode", "codrle4",
                   "mpeg2dec", "124.m88ksim"),
    "regalloc": ("129.compress", "huff_enc", "huff_dec", "g721encode",
                 "mpeg2dec"),
    "prefetch": ("102.swim", "101.tomcatv", "107.mgrid", "146.wave5",
                 "093.nasa7", "015.doduc"),
}

FULL_SPECIALIZATION = {
    "hyperblock": HYPERBLOCK_TRAINING_SET[:10],
    "regalloc": REGALLOC_TRAINING_SET,
    "prefetch": PREFETCH_TRAINING_SET,
}

FAST_TRAINING = {
    "hyperblock": ("rawcaudio", "rawdaudio", "g721encode", "g721decode",
                   "codrle4", "huff_dec"),
    "regalloc": ("129.compress", "huff_enc", "huff_dec", "g721encode"),
    "prefetch": ("102.swim", "101.tomcatv", "107.mgrid", "146.wave5",
                 "093.nasa7", "015.doduc"),
}

FULL_TRAINING = {
    "hyperblock": HYPERBLOCK_TRAINING_SET,
    "regalloc": REGALLOC_TRAINING_SET,
    "prefetch": PREFETCH_TRAINING_SET,
}

FAST_TEST = {
    "hyperblock": ("unepic", "djpeg", "023.eqntott", "132.ijpeg",
                   "147.vortex", "130.li"),
    "regalloc": ("085.cc1", "147.vortex", "130.li", "124.m88ksim"),
    "prefetch": ("171.swim", "172.mgrid", "183.equake", "178.galgel",
                 "189.lucas", "200.sixtrack"),
}


def full_mode() -> bool:
    return os.environ.get("REPRO_FULL", "") not in ("", "0")


def gp_params(seed: int = 0) -> GPParams:
    return GPParams(
        population_size=int(os.environ.get("REPRO_POP", "32")),
        generations=int(os.environ.get("REPRO_GENS", "12")),
        seed=seed,
    )


def specialization_benchmarks(case_name: str) -> tuple[str, ...]:
    table = FULL_SPECIALIZATION if full_mode() else FAST_SPECIALIZATION
    return tuple(table[case_name])


def training_benchmarks(case_name: str) -> tuple[str, ...]:
    table = FULL_TRAINING if full_mode() else FAST_TRAINING
    return tuple(table[case_name])


def crossval_benchmarks(case_name: str) -> tuple[str, ...]:
    if full_mode():
        from repro.suite.registry import (
            HYPERBLOCK_TEST_SET,
            PREFETCH_TEST_SET,
            REGALLOC_TEST_SET,
        )

        return {
            "hyperblock": HYPERBLOCK_TEST_SET,
            "regalloc": REGALLOC_TEST_SET,
            "prefetch": PREFETCH_TEST_SET,
        }[case_name]
    return tuple(FAST_TEST[case_name])


_NOISE = {"hyperblock": 0.0, "regalloc": 0.0, "prefetch": 0.01}

_harness_cache: dict[str, EvaluationHarness] = {}
_specialization_cache: dict[str, dict] = {}
_generalization_cache: dict[str, object] = {}


def shared_harness(case_name: str) -> EvaluationHarness:
    harness = _harness_cache.get(case_name)
    if harness is None:
        harness = EvaluationHarness(
            case_study(case_name),
            EvalSettings(noise_stddev=_NOISE[case_name]))
        _harness_cache[case_name] = harness
    return harness


def run_specialize(case, benchmark, params, harness):
    """Build + run + finalize one specialization campaign (the old
    ``specialize()`` wrapper, now spelled out)."""
    engine = build_specialize_engine(case, benchmark, params, harness)
    return finalize_specialization(harness, benchmark, engine.run())


def specialization_results(case_name: str) -> dict:
    """Per-benchmark specialization runs (Figures 4/5, 9/10, 13/14)."""
    cached = _specialization_cache.get(case_name)
    if cached is None:
        harness = shared_harness(case_name)
        cached = {}
        for index, name in enumerate(specialization_benchmarks(case_name)):
            cached[name] = run_specialize(
                harness.case, name, gp_params(seed=101 + index), harness)
        _specialization_cache[case_name] = cached
    return cached


def generalization_result(case_name: str):
    """One DSS run per case study (Figures 6/7, 11/12, 15/16)."""
    cached = _generalization_cache.get(case_name)
    if cached is None:
        harness = shared_harness(case_name)
        training = training_benchmarks(case_name)
        engine = build_generalize_engine(
            harness.case, tuple(training), gp_params(seed=7), harness,
            subset_size=max(2, len(training) // 2),
        )
        cached = finalize_generalization(harness.case, harness,
                                         tuple(training), engine.run())
        _generalization_cache[case_name] = cached
    return cached


def record_result(name: str, payload: dict) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2, default=str))


def emit(text: str) -> None:
    """Print a figure table (shown with pytest -s; always captured in
    the bench log)."""
    print()
    print(text)
