"""Figure 10 — register allocation evolution.

Fitness-over-generations curves.  Contrast with Figure 5: the paper
finds this problem harder ("fitnesses improve gradually") and the
baseline heuristic "typically remained in the population for several
generations".
"""

from conftest import emit, record_result, specialization_results
from repro.reporting import fitness_curve_chart


def test_fig10_regalloc_evolution(benchmark):
    results = benchmark.pedantic(
        lambda: specialization_results("regalloc"),
        rounds=1, iterations=1,
    )
    curves = {name: res.fitness_curve() for name, res in results.items()}
    baseline_ranks = {
        name: [stats.baseline_rank for stats in res.history]
        for name, res in results.items()
    }
    for name, curve in curves.items():
        emit(fitness_curve_chart(
            f"Figure 10 ({name}): best fitness by generation", curve))
    emit("Baseline (Equation 2) fitness rank by generation: "
         + str({k: v[:5] for k, v in baseline_ranks.items()}))
    record_result("fig10_regalloc_evolution", {
        "curves": curves, "baseline_ranks": baseline_ranks,
    })

    for name, curve in curves.items():
        assert all(b >= a - 1e-12 for a, b in zip(curve, curve[1:])), name
        assert curve[0] >= 1.0 - 1e-9, name
    # The baseline stays competitive: in the first generation it ranks
    # inside the top half of the population for most benchmarks.
    population = max(len(c) for c in curves.values())
    early_ranks = [ranks[0] for ranks in baseline_ranks.values()
                   if ranks and ranks[0] is not None]
    assert early_ranks
