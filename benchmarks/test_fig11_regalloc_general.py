"""Figure 11 — training a register-allocation priority function on
multiple benchmarks.  Paper: ~1.03 on both train and novel data
("register allocation is not as susceptible to variations in input
data").
"""

from conftest import emit, generalization_result, record_result
from repro.gp.parse import unparse
from repro.gp.simplify import simplify
from repro.reporting import speedup_table


def test_fig11_regalloc_general(benchmark):
    result = benchmark.pedantic(
        lambda: generalization_result("regalloc"),
        rounds=1, iterations=1,
    )
    rows = [(s.benchmark, s.train_speedup, s.novel_speedup)
            for s in result.training]
    emit(speedup_table(
        "Figure 11: General-purpose spill priority (training set)", rows))
    emit("Best expression: "
         + unparse(simplify(result.best_tree)))
    record_result("fig11_regalloc_general", {
        "scores": {s.benchmark: [s.train_speedup, s.novel_speedup]
                   for s in result.training},
        "expression": unparse(result.best_tree),
    })

    assert result.average_train_speedup() >= 1.0 - 1e-9
    # Input-data insensitivity: train and novel averages are close.
    assert abs(result.average_train_speedup()
               - result.average_novel_speedup()) <= 0.08
