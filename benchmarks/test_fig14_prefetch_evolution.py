"""Figure 14 — prefetching evolution.

Fitness over generations under measurement noise.  Paper: "the
baseline expression is quickly weeded out of the population" and
fitnesses plateau early (parsimony pressure produces small effective
expressions).
"""

from conftest import emit, record_result, specialization_results
from repro.reporting import fitness_curve_chart


def test_fig14_prefetch_evolution(benchmark):
    results = benchmark.pedantic(
        lambda: specialization_results("prefetch"),
        rounds=1, iterations=1,
    )
    curves = {name: res.fitness_curve() for name, res in results.items()}
    for name, curve in curves.items():
        emit(fitness_curve_chart(
            f"Figure 14 ({name}): best fitness by generation", curve))
    record_result("fig14_prefetch_evolution", curves)

    for name, curve in curves.items():
        assert all(b >= a - 1e-12 for a, b in zip(curve, curve[1:])), name
    # Early plateau: the last quarter of the run contributes little.
    for name, curve in curves.items():
        quarter = max(1, len(curve) // 4)
        assert curve[-1] - curve[-quarter] <= 0.10 + 1e-9, name
