"""Mine surrogate training pairs from the persistent fitness cache.

Every simulation a campaign ever persisted is a free labeled example:
the cache's meta records (:meth:`FitnessCache.scan`) carry the
expression behind each cycle count, and speedup labels fall out by
dividing against the baseline expression's record in the same
(benchmark, dataset, noise, verified) group.  A warm cache from one
exact campaign therefore trains a model with zero additional
simulator time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs
from repro.gp.parse import parse, unparse
from repro.metaopt.baselines import BASELINE_TREES
from repro.metaopt.fitness_cache import FitnessCache
from repro.metaopt.psets import PSETS
from repro.surrogate.features import FeatureExtractor
from repro.surrogate.model import MIN_TOTAL_PAIRS, SurrogateModel


@dataclass
class TrainingReport:
    """What the miner found and the fit that came out of it."""

    scanned: int = 0
    usable: int = 0
    skipped_no_meta: int = 0
    skipped_other_case: int = 0
    skipped_no_baseline: int = 0
    benchmarks: list[str] = field(default_factory=list)

    def to_json_dict(self) -> dict:
        return {
            "scanned": self.scanned,
            "usable": self.usable,
            "skipped_no_meta": self.skipped_no_meta,
            "skipped_other_case": self.skipped_other_case,
            "skipped_no_baseline": self.skipped_no_baseline,
            "benchmarks": sorted(self.benchmarks),
        }


def mine_pairs(
    cache: FitnessCache,
    case_name: str,
) -> tuple[list[tuple[str, str, float]], TrainingReport]:
    """Scan ``cache`` for ``(expression, benchmark, speedup)`` pairs
    belonging to ``case_name``.

    Records group by (benchmark, dataset, noise, verified); a group
    without a baseline-expression record contributes nothing (no
    denominator).  Baseline records themselves become pairs too — the
    model should know what speedup 1.0 looks like.
    """
    report = TrainingReport()
    baseline_text = unparse(BASELINE_TREES[case_name]())
    groups: dict[tuple, list] = {}
    for record in cache.scan():
        report.scanned += 1
        meta = record.meta
        if meta is None or "expression" not in meta:
            report.skipped_no_meta += 1
            continue
        if meta.get("case") != case_name:
            report.skipped_other_case += 1
            continue
        group_key = (meta.get("benchmark"), meta.get("dataset"),
                     meta.get("noise_stddev"), meta.get("verified"))
        groups.setdefault(group_key, []).append(record)
    pairs: list[tuple[str, str, float]] = []
    benchmarks: set[str] = set()
    for group_key, records in sorted(groups.items(),
                                     key=lambda item: repr(item[0])):
        benchmark = group_key[0]
        baseline_cycles = None
        for record in records:
            if record.meta["expression"] == baseline_text:
                baseline_cycles = record.result.cycles
                break
        if baseline_cycles is None or baseline_cycles <= 0:
            report.skipped_no_baseline += len(records)
            continue
        for record in records:
            cycles = record.result.cycles
            if cycles <= 0:
                continue
            pairs.append((record.meta["expression"], str(benchmark),
                          baseline_cycles / cycles))
            benchmarks.add(str(benchmark))
    report.usable = len(pairs)
    report.benchmarks = sorted(benchmarks)
    return pairs, report


def train_from_cache(
    cache: FitnessCache,
    case_name: str,
    *,
    kind: str = "ridge",
    seed: int = 0,
) -> tuple[SurrogateModel | None, TrainingReport]:
    """Train a :class:`SurrogateModel` from everything ``cache`` holds
    for ``case_name``.

    Returns ``(model, report)``; ``model`` is ``None`` when the cache
    has too few usable pairs (the evaluator then starts cold and fits
    from its own exact evaluations once enough accumulate).
    """
    pset = PSETS[case_name]
    extractor = FeatureExtractor(pset)
    text_pairs, report = mine_pairs(cache, case_name)
    obs.inc("surrogate.train_scanned", report.scanned)
    obs.inc("surrogate.train_pairs", report.usable)
    if len(text_pairs) < MIN_TOTAL_PAIRS:
        return None, report
    bool_features = pset.bool_feature_set()
    vector_pairs = [
        (extractor.vector(parse(text, bool_features)), benchmark, label)
        for text, benchmark, label in text_pairs
    ]
    model = SurrogateModel(kind=kind, feature_names=extractor.names,
                           seed=seed)
    model.fit(vector_pairs)
    return model, report
