"""Predict-then-verify fitness evaluation.

:class:`SurrogateEvaluator` wraps any exact evaluator (serial harness,
process pool, fleet) behind the same
:class:`~repro.metaopt.parallel.EvaluatorProtocol` surface the GP
engine already speaks.  Per generation batch it:

1. groups jobs by candidate tree and scores every tree from the model;
2. fully simulates the top-K trees of the ranking plus an ε-sampled
   exploration slice of the tail through the wrapped evaluator;
3. promotes any tail tree whose *predicted* score reaches the best
   exact score seen so far (fixpoint) — so a model overestimate can
   never crown a champion the simulator has not confirmed;
4. scores the remaining tail from the model;
5. measures Spearman rank correlation between predictions and exact
   values on the simulated subset and refits from its accumulated
   exact pairs when correlation drifts below the floor.

Cold start: with no model (empty cache), every batch is exact until
``min_fit_pairs`` exact pairs have accumulated, then the first fit
happens and prescreening kicks in.

Determinism: the ε-sample comes from a private seeded RNG whose state
rides :meth:`state_dict`, model fits are deterministic
(:mod:`repro.surrogate.model`), and exact evaluation order preserves
job order — so kill+resume with a surrogate on is byte-identical, and
equal seeds reproduce equal campaigns.
"""

from __future__ import annotations

import math
import random
from typing import Iterable

from repro import obs
from repro.gp.nodes import Node
from repro.gp.parse import parse, unparse
from repro.metaopt.psets import PSETS
from repro.surrogate.features import FeatureExtractor
from repro.surrogate.model import SurrogateModel, model_from_json_dict

#: Histogram buckets for Spearman rank correlation (bounded [-1, 1]).
_CORR_BUCKETS = (-1.0, -0.5, 0.0, 0.25, 0.5, 0.75, 0.9, 1.0)


def _average_ranks(values: list[float]) -> list[float]:
    """Ranks with ties averaged (fractional ranks, 1-based)."""
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    i = 0
    while i < len(order):
        j = i
        while (j + 1 < len(order)
               and values[order[j + 1]] == values[order[i]]):
            j += 1
        rank = (i + j) / 2.0 + 1.0
        for k in range(i, j + 1):
            ranks[order[k]] = rank
        i = j + 1
    return ranks


def spearman(xs: list[float], ys: list[float]) -> float:
    """Spearman rank correlation; 0.0 when degenerate (constant
    input or fewer than two points)."""
    if len(xs) < 2:
        return 0.0
    rx = _average_ranks(xs)
    ry = _average_ranks(ys)
    mx = sum(rx) / len(rx)
    my = sum(ry) / len(ry)
    cov = sum((a - mx) * (b - my) for a, b in zip(rx, ry))
    vx = sum((a - mx) ** 2 for a in rx)
    vy = sum((b - my) ** 2 for b in ry)
    if vx <= 0.0 or vy <= 0.0:
        return 0.0
    return cov / math.sqrt(vx * vy)


class SurrogateEvaluator:
    """Rank with a learned model, simulate only what matters.

    Implements :class:`~repro.metaopt.parallel.EvaluatorProtocol`;
    drop-in wherever the exact evaluators go.  The wrapped ``inner``
    evaluator is owned: :meth:`close` closes it.
    """

    STATE_VERSION = 1

    def __init__(self, inner, case_name: str,
                 model: SurrogateModel | None = None,
                 *,
                 top_k: int = 8,
                 epsilon: float = 0.125,
                 min_rank_corr: float = 0.5,
                 min_fit_pairs: int = 16,
                 kind: str = "ridge",
                 seed: int = 0) -> None:
        if top_k < 1:
            raise ValueError("top_k must be >= 1")
        self.inner = inner
        self.case_name = case_name
        self.pset = PSETS[case_name]
        self.extractor = FeatureExtractor(self.pset)
        self.model = model
        self.top_k = top_k
        self.epsilon = epsilon
        self.min_rank_corr = min_rank_corr
        self.min_fit_pairs = min_fit_pairs
        self.kind = model.kind if model is not None else kind
        self.seed = seed
        self._rng = random.Random(0x5AC0FFEE ^ seed)
        #: accumulated exact pairs (expression text, benchmark, value)
        #: — refit corpus, serialized for resume
        self._pairs: list[tuple[str, str, float]] = []
        self._pair_keys: set[tuple[str, str]] = set()
        #: best simulator-confirmed per-tree mean seen so far; the
        #: promotion threshold
        self._best_exact = -math.inf
        self.exact_jobs = 0
        self.predicted_jobs = 0
        self.refits = 0
        self.promotions = 0
        self.batches = 0
        self.last_rank_corr: float | None = None

    # -- EvaluatorProtocol ----------------------------------------------
    def __call__(self, tree: Node, benchmark: str) -> float:
        """Single evaluations are always exact: they come from
        finalization and scoring paths where ground truth is the
        point."""
        value = self.inner(tree, benchmark)
        self._record_pairs([(tree, benchmark)], [value])
        return value

    def evaluate_batch(
            self, jobs: Iterable[tuple[Node, str]]) -> list[float]:
        jobs = list(jobs)
        if not jobs:
            return []
        self.batches += 1
        if self.model is None or not self.model.trained:
            values = self.inner.evaluate_batch(jobs)
            self.exact_jobs += len(jobs)
            obs.inc("surrogate.exact_jobs", len(jobs))
            self._record_pairs(jobs, values)
            self._maybe_first_fit()
            return values

        # Group jobs by candidate tree (generalize mode evaluates one
        # tree on several benchmarks).
        groups: dict[tuple, dict] = {}
        for index, (tree, benchmark) in enumerate(jobs):
            key = tree.structural_key()
            group = groups.setdefault(
                key, {"tree": tree, "indices": [], "first": index})
            group["indices"].append(index)
        predictions: list[float | None] = [None] * len(jobs)
        for group in groups.values():
            vector = self.extractor.vector(group["tree"])
            for index in group["indices"]:
                predictions[index] = self.model.predict(
                    vector, jobs[index][1])
            scores = [predictions[i] for i in group["indices"]]
            group["score"] = sum(scores) / len(scores)

        ranking = sorted(
            groups.values(),
            key=lambda g: (-g["score"], g["first"]))
        exact_groups = list(ranking[:self.top_k])
        tail = ranking[self.top_k:]
        kept_tail = []
        for group in tail:
            if self.epsilon > 0.0 and self._rng.random() < self.epsilon:
                exact_groups.append(group)
            else:
                kept_tail.append(group)

        values: list[float | None] = [None] * len(jobs)
        exact_means: list[tuple[float, float]] = []  # (predicted, exact)

        def run_exact(groups_to_run: list[dict]) -> None:
            indices = sorted(
                i for group in groups_to_run for i in group["indices"])
            if not indices:
                return
            batch_values = self.inner.evaluate_batch(
                [jobs[i] for i in indices])
            for i, value in zip(indices, batch_values):
                values[i] = value
            self.exact_jobs += len(indices)
            obs.inc("surrogate.exact_jobs", len(indices))
            self._record_pairs([jobs[i] for i in indices], batch_values)
            for group in groups_to_run:
                mean = (sum(values[i] for i in group["indices"])
                        / len(group["indices"]))
                exact_means.append((group["score"], mean))
                if mean > self._best_exact:
                    self._best_exact = mean

        run_exact(exact_groups)

        # Champion promotion fixpoint: any surviving tail tree whose
        # *predicted* score matches or beats the best exact mean gets
        # simulated — an inflated prediction must never outrank the
        # simulator-confirmed front-runner in selection.
        while True:
            promoted = [g for g in kept_tail
                        if g["score"] >= self._best_exact]
            if not promoted:
                break
            kept_tail = [g for g in kept_tail
                         if g["score"] < self._best_exact]
            self.promotions += len(promoted)
            obs.inc("surrogate.promotions", len(promoted))
            run_exact(promoted)

        tail_jobs = 0
        for group in kept_tail:
            for index in group["indices"]:
                values[index] = predictions[index]
                tail_jobs += 1
        self.predicted_jobs += tail_jobs
        if tail_jobs:
            obs.inc("surrogate.predicted_jobs", tail_jobs)
            obs.inc("surrogate.sims_saved", tail_jobs)

        if len(exact_means) >= 3:
            corr = spearman([p for p, _ in exact_means],
                            [e for _, e in exact_means])
            self.last_rank_corr = corr
            obs.observe("surrogate.rank_corr", corr,
                        buckets=_CORR_BUCKETS)
            if corr < self.min_rank_corr:
                self._refit()
        return values

    def stats(self) -> dict[str, int]:
        counters = dict(self.inner.stats())
        counters["surrogate_exact_jobs"] = self.exact_jobs
        counters["surrogate_predicted_jobs"] = self.predicted_jobs
        counters["surrogate_sims_saved"] = self.predicted_jobs
        counters["surrogate_refits"] = self.refits
        counters["surrogate_promotions"] = self.promotions
        counters["surrogate_batches"] = self.batches
        counters["surrogate_pairs"] = len(self._pairs)
        return counters

    def close(self) -> None:
        self.inner.close()

    def __enter__(self) -> "SurrogateEvaluator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- training -------------------------------------------------------
    def _record_pairs(self, jobs, values) -> None:
        for (tree, benchmark), value in zip(jobs, values):
            text = unparse(tree)
            dedup = (text, benchmark)
            if dedup in self._pair_keys:
                continue
            self._pair_keys.add(dedup)
            self._pairs.append((text, benchmark, value))

    def _vector_pairs(self) -> list[tuple[list[float], str, float]]:
        bool_features = self.pset.bool_feature_set()
        return [
            (self.extractor.vector(parse(text, bool_features)),
             benchmark, value)
            for text, benchmark, value in self._pairs
        ]

    def _maybe_first_fit(self) -> None:
        if len(self._pairs) < self.min_fit_pairs:
            return
        model = SurrogateModel(kind=self.kind,
                               feature_names=self.extractor.names,
                               seed=self.seed)
        model.fit(self._vector_pairs())
        self.model = model
        obs.inc("surrogate.fits")

    def _refit(self) -> None:
        if len(self._pairs) < self.min_fit_pairs:
            return
        model = SurrogateModel(kind=self.kind,
                               feature_names=self.extractor.names,
                               seed=self.seed)
        model.fit(self._vector_pairs())
        self.model = model
        self.refits += 1
        obs.inc("surrogate.refits")

    # -- resume ---------------------------------------------------------
    def state_dict(self) -> dict:
        """Everything a resumed process needs to continue
        byte-identically: the model, the refit corpus, the ε-sample RNG
        state, the promotion threshold, and the counters."""
        return {
            "version": self.STATE_VERSION,
            "case": self.case_name,
            "kind": self.kind,
            "seed": self.seed,
            "top_k": self.top_k,
            "epsilon": self.epsilon,
            "min_rank_corr": self.min_rank_corr,
            "min_fit_pairs": self.min_fit_pairs,
            "model": (self.model.to_json_dict()
                      if self.model is not None else None),
            "pairs": [list(pair) for pair in self._pairs],
            "rng_state": _encode_rng_state(self._rng.getstate()),
            "best_exact": (None if self._best_exact == -math.inf
                           else self._best_exact),
            "counters": {
                "exact_jobs": self.exact_jobs,
                "predicted_jobs": self.predicted_jobs,
                "refits": self.refits,
                "promotions": self.promotions,
                "batches": self.batches,
            },
        }

    def restore_state(self, state: dict) -> None:
        if state.get("version") != self.STATE_VERSION:
            raise ValueError(
                f"unsupported surrogate state version "
                f"{state.get('version')!r}")
        if state.get("case") != self.case_name:
            raise ValueError(
                f"surrogate state is for case {state.get('case')!r}, "
                f"evaluator is {self.case_name!r}")
        self.kind = state["kind"]
        self.seed = state["seed"]
        self.top_k = state["top_k"]
        self.epsilon = state["epsilon"]
        self.min_rank_corr = state["min_rank_corr"]
        self.min_fit_pairs = state["min_fit_pairs"]
        self.model = (model_from_json_dict(state["model"])
                      if state["model"] is not None else None)
        self._pairs = [tuple(pair) for pair in state["pairs"]]
        self._pair_keys = {(text, benchmark)
                           for text, benchmark, _ in self._pairs}
        self._rng.setstate(_decode_rng_state(state["rng_state"]))
        self._best_exact = (-math.inf if state["best_exact"] is None
                            else state["best_exact"])
        counters = state["counters"]
        self.exact_jobs = counters["exact_jobs"]
        self.predicted_jobs = counters["predicted_jobs"]
        self.refits = counters["refits"]
        self.promotions = counters["promotions"]
        self.batches = counters["batches"]


def _encode_rng_state(state) -> list:
    """``random.Random.getstate()`` → JSON-serializable lists."""
    version, internal, gauss_next = state
    return [version, list(internal), gauss_next]


def _decode_rng_state(encoded) -> tuple:
    version, internal, gauss_next = encoded
    return (version, tuple(internal), gauss_next)
