"""Zero-dependency learned models for surrogate fitness.

Two model families, both pure Python, both deterministic given the
same seed and training pairs, both JSON round-trippable:

* :class:`RidgeModel` — linear least squares with L2 regularization,
  solved exactly by normal equations + Gaussian elimination with
  partial pivoting.  The baseline: fast to fit, hard to overfit,
  surprisingly competitive on operator-count features.
* :class:`BoostedStumpsModel` — gradient boosting with depth-1
  regression trees (stumps) on quantile-capped thresholds.  Captures
  feature interactions ridge cannot, still trains in milliseconds at
  GP-campaign corpus sizes.

:class:`SurrogateModel` wraps either family into the per-benchmark
ensemble the evaluator consumes: one submodel per benchmark with
enough pairs, a global pooled model as the fallback for benchmarks the
cache has never seen.

Determinism is load-bearing (kill+resume byte-identity rides on it):
training never consults ambient randomness — the only stochastic
choice, ridge's none and boosting's tie-breaks, is resolved by fixed
(feature index, threshold) ordering — and serialization is
``json.dumps(..., sort_keys=True)`` of plain floats, so equal inputs
produce byte-identical model files.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field


def _solve(matrix: list[list[float]], rhs: list[float]) -> list[float]:
    """Solve ``matrix @ x = rhs`` by Gaussian elimination with partial
    pivoting.  ``matrix`` is modified in place; singular (or nearly
    singular) systems fall back to zeros for the dead columns."""
    n = len(matrix)
    aug = [row[:] + [rhs[i]] for i, row in enumerate(matrix)]
    for col in range(n):
        pivot = max(range(col, n), key=lambda r: abs(aug[r][col]))
        if abs(aug[pivot][col]) < 1e-12:
            continue
        aug[col], aug[pivot] = aug[pivot], aug[col]
        for row in range(col + 1, n):
            factor = aug[row][col] / aug[col][col]
            if factor == 0.0:
                continue
            for k in range(col, n + 1):
                aug[row][k] -= factor * aug[col][k]
    solution = [0.0] * n
    for col in range(n - 1, -1, -1):
        if abs(aug[col][col]) < 1e-12:
            continue
        acc = aug[col][n]
        for k in range(col + 1, n):
            acc -= aug[col][k] * solution[k]
        solution[col] = acc / aug[col][col]
    return solution


@dataclass
class RidgeModel:
    """Linear model ``y ≈ w·x + b`` with L2 penalty on ``w``.

    Features are standardized internally (mean/scale stored with the
    model) so the penalty treats count features and fraction features
    evenly.
    """

    alpha: float = 1.0
    weights: list[float] = field(default_factory=list)
    bias: float = 0.0
    means: list[float] = field(default_factory=list)
    scales: list[float] = field(default_factory=list)

    kind = "ridge"

    def fit(self, xs: list[list[float]], ys: list[float]) -> None:
        n, d = len(xs), len(xs[0])
        self.means = [sum(row[j] for row in xs) / n for j in range(d)]
        self.scales = []
        for j in range(d):
            var = sum((row[j] - self.means[j]) ** 2 for row in xs) / n
            self.scales.append(var ** 0.5 if var > 1e-12 else 1.0)
        zs = [[(row[j] - self.means[j]) / self.scales[j]
               for j in range(d)] for row in xs]
        y_mean = sum(ys) / n
        yc = [y - y_mean for y in ys]
        gram = [[sum(zs[i][a] * zs[i][b] for i in range(n))
                 + (self.alpha if a == b else 0.0)
                 for b in range(d)] for a in range(d)]
        xty = [sum(zs[i][a] * yc[i] for i in range(n)) for a in range(d)]
        self.weights = _solve(gram, xty)
        self.bias = y_mean

    def predict(self, x: list[float]) -> float:
        if not self.weights:
            return self.bias
        return self.bias + sum(
            w * (x[j] - self.means[j]) / self.scales[j]
            for j, w in enumerate(self.weights))

    def to_json_dict(self) -> dict:
        return {
            "kind": self.kind,
            "alpha": self.alpha,
            "weights": self.weights,
            "bias": self.bias,
            "means": self.means,
            "scales": self.scales,
        }

    @classmethod
    def from_json_dict(cls, data: dict) -> "RidgeModel":
        return cls(alpha=data["alpha"], weights=list(data["weights"]),
                   bias=data["bias"], means=list(data["means"]),
                   scales=list(data["scales"]))


@dataclass
class BoostedStumpsModel:
    """Gradient boosting with depth-1 regression trees.

    Each round fits the stump minimizing squared error on the current
    residuals, scanning every feature over at most ``max_thresholds``
    quantile-derived split points.  Ties resolve to the smallest
    (feature index, threshold), so training is fully deterministic.
    ``stumps`` rows are ``[feature, threshold, left, right]``.
    """

    rounds: int = 50
    learning_rate: float = 0.2
    max_thresholds: int = 16
    bias: float = 0.0
    stumps: list[list[float]] = field(default_factory=list)

    kind = "stumps"

    def fit(self, xs: list[list[float]], ys: list[float]) -> None:
        n, d = len(xs), len(xs[0])
        self.bias = sum(ys) / n
        residuals = [y - self.bias for y in ys]
        thresholds: list[list[float]] = []
        for j in range(d):
            values = sorted({row[j] for row in xs})
            if len(values) > self.max_thresholds:
                step = len(values) / (self.max_thresholds + 1)
                values = sorted({values[int(step * (k + 1))]
                                 for k in range(self.max_thresholds)})
            # midpoints between consecutive distinct values
            thresholds.append([(a + b) / 2.0
                               for a, b in zip(values, values[1:])])
        self.stumps = []
        for _ in range(self.rounds):
            best = None  # (sse, feature, threshold, left, right)
            for j in range(d):
                for t in thresholds[j]:
                    left = [residuals[i] for i in range(n) if xs[i][j] <= t]
                    right = [residuals[i] for i in range(n) if xs[i][j] > t]
                    if not left or not right:
                        continue
                    lm = sum(left) / len(left)
                    rm = sum(right) / len(right)
                    sse = (sum((v - lm) ** 2 for v in left)
                           + sum((v - rm) ** 2 for v in right))
                    if best is None or sse < best[0] - 1e-15:
                        best = (sse, j, t, lm, rm)
            if best is None:
                break
            _, j, t, lm, rm = best
            self.stumps.append([float(j), t,
                                self.learning_rate * lm,
                                self.learning_rate * rm])
            for i in range(n):
                residuals[i] -= (self.learning_rate * lm
                                 if xs[i][j] <= t
                                 else self.learning_rate * rm)

    def predict(self, x: list[float]) -> float:
        value = self.bias
        for j, t, left, right in self.stumps:
            value += left if x[int(j)] <= t else right
        return value

    def to_json_dict(self) -> dict:
        return {
            "kind": self.kind,
            "rounds": self.rounds,
            "learning_rate": self.learning_rate,
            "max_thresholds": self.max_thresholds,
            "bias": self.bias,
            "stumps": self.stumps,
        }

    @classmethod
    def from_json_dict(cls, data: dict) -> "BoostedStumpsModel":
        return cls(rounds=data["rounds"],
                   learning_rate=data["learning_rate"],
                   max_thresholds=data["max_thresholds"],
                   bias=data["bias"],
                   stumps=[list(s) for s in data["stumps"]])


_FAMILIES = {"ridge": RidgeModel, "stumps": BoostedStumpsModel}


def _new_base(kind: str):
    if kind not in _FAMILIES:
        raise ValueError(f"unknown surrogate model kind {kind!r} "
                         f"(choose from {sorted(_FAMILIES)})")
    return _FAMILIES[kind]()


def _base_from_json(data: dict):
    return _FAMILIES[data["kind"]].from_json_dict(data)


#: Minimum pairs before a per-benchmark submodel is worth fitting.
MIN_BENCH_PAIRS = 8
#: Minimum pairs before any model is fit at all.
MIN_TOTAL_PAIRS = 8


@dataclass
class SurrogateModel:
    """Per-benchmark ensemble over one base model family.

    ``predict`` routes through the benchmark's submodel when one was
    fit, else the global pooled model.  ``feature_names`` pins the
    vector layout the model was trained against; ``predict`` rejects
    vectors of any other width rather than silently misreading slots.
    """

    kind: str = "ridge"
    feature_names: tuple[str, ...] = ()
    seed: int = 0
    global_model: object | None = None
    per_benchmark: dict = field(default_factory=dict)
    training_pairs: int = 0

    @property
    def trained(self) -> bool:
        return self.global_model is not None

    def fit(self, pairs: list[tuple[list[float], str, float]]) -> None:
        """Fit from ``(vector, benchmark, speedup)`` pairs.

        Pairs are sorted before fitting so the model depends only on
        the *set* of pairs, not the order they were mined in.
        """
        if len(pairs) < MIN_TOTAL_PAIRS:
            raise ValueError(
                f"need at least {MIN_TOTAL_PAIRS} pairs to fit a "
                f"surrogate, got {len(pairs)}")
        for vector, _, _ in pairs:
            if len(vector) != len(self.feature_names):
                raise ValueError(
                    f"vector width {len(vector)} != model width "
                    f"{len(self.feature_names)}")
        ordered = sorted(pairs, key=lambda p: (p[1], p[0], p[2]))
        xs = [p[0] for p in ordered]
        ys = [p[2] for p in ordered]
        self.global_model = _new_base(self.kind)
        self.global_model.fit(xs, ys)
        self.per_benchmark = {}
        by_bench: dict[str, list] = {}
        for vector, benchmark, y in ordered:
            by_bench.setdefault(benchmark, []).append((vector, y))
        for benchmark, rows in sorted(by_bench.items()):
            if len(rows) < MIN_BENCH_PAIRS:
                continue
            sub = _new_base(self.kind)
            sub.fit([r[0] for r in rows], [r[1] for r in rows])
            self.per_benchmark[benchmark] = sub
        self.training_pairs = len(pairs)

    def predict(self, vector: list[float], benchmark: str) -> float:
        if self.global_model is None:
            raise ValueError("surrogate model is not trained")
        if len(vector) != len(self.feature_names):
            raise ValueError(
                f"vector width {len(vector)} != model width "
                f"{len(self.feature_names)}")
        model = self.per_benchmark.get(benchmark, self.global_model)
        return model.predict(vector)

    # -- serialization --------------------------------------------------
    def to_json_dict(self) -> dict:
        return {
            "schema": 1,
            "kind": self.kind,
            "feature_names": list(self.feature_names),
            "seed": self.seed,
            "training_pairs": self.training_pairs,
            "global": (self.global_model.to_json_dict()
                       if self.global_model is not None else None),
            "per_benchmark": {
                name: model.to_json_dict()
                for name, model in sorted(self.per_benchmark.items())
            },
        }

    def to_json(self) -> str:
        return json.dumps(self.to_json_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json_dict(cls, data: dict) -> "SurrogateModel":
        model = cls(
            kind=data["kind"],
            feature_names=tuple(data["feature_names"]),
            seed=data["seed"],
            training_pairs=data["training_pairs"],
        )
        if data["global"] is not None:
            model.global_model = _base_from_json(data["global"])
        model.per_benchmark = {
            name: _base_from_json(sub)
            for name, sub in data["per_benchmark"].items()
        }
        return model


def model_from_json_dict(data: dict) -> SurrogateModel:
    """Load a serialized :class:`SurrogateModel`."""
    return SurrogateModel.from_json_dict(data)
