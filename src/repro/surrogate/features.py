"""Candidate expression → fixed numeric feature vector.

The surrogate model never sees the simulator; everything it knows
about a candidate must be computable from the expression tree alone
(plus, optionally, a compile-only static probe).  The vector layout is
fixed per primitive set — every case study gets the same structural
features plus one usage slot per feature name its compiler hook
supplies — so models serialize with their feature names and refuse
vectors of the wrong shape.

Vector layout (in order):

* shape: node count, depth, terminal fraction;
* one count per function primitive (the 13 Table 1 operators);
* one count per terminal kind (``rconst``/``rarg``/``bconst``/``barg``);
* real-constant statistics: mean, min, max, absolute sum (zeros when
  the tree has no constants) and the fraction of ``bconst`` terminals
  that are ``true``;
* one usage count per pset feature name, in ``pset.feature_names``
  order.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gp.generate import PrimitiveSet
from repro.gp.nodes import (
    BArg,
    BConst,
    FUNCTION_CLASSES,
    Node,
    RArg,
    RConst,
    TERMINAL_CLASSES,
)

#: Function-operator order in the vector: sorted s-expression heads.
FUNCTION_ORDER: tuple[str, ...] = tuple(sorted(FUNCTION_CLASSES))
#: Terminal-kind order in the vector.
TERMINAL_ORDER: tuple[str, ...] = tuple(sorted(TERMINAL_CLASSES))


@dataclass(frozen=True)
class FeatureExtractor:
    """Maps trees from one case study's primitive set to vectors.

    The width is a pure function of the pset (``len(names)``), so two
    extractors built from equal psets are interchangeable and a model
    trained against one validates vectors from the other.
    """

    pset: PrimitiveSet

    @property
    def names(self) -> tuple[str, ...]:
        """Feature names, one per vector slot, in vector order."""
        return (
            ("size", "depth", "terminal_fraction")
            + tuple(f"op_{op}" for op in FUNCTION_ORDER)
            + tuple(f"term_{term}" for term in TERMINAL_ORDER)
            + ("const_mean", "const_min", "const_max", "const_abs_sum",
               "bconst_true_fraction")
            + tuple(f"use_{name}" for name in self.pset.feature_names)
        )

    @property
    def width(self) -> int:
        return len(self.names)

    def vector(self, tree: Node) -> list[float]:
        """Extract the fixed-width vector for one candidate tree."""
        op_counts = dict.fromkeys(FUNCTION_ORDER, 0)
        term_counts = dict.fromkeys(TERMINAL_ORDER, 0)
        usage = dict.fromkeys(self.pset.feature_names, 0)
        constants: list[float] = []
        bconst_true = 0
        size = 0
        for node in tree.walk():
            size += 1
            if node.op_name in op_counts:
                op_counts[node.op_name] += 1
            else:
                term_counts[node.op_name] += 1
            if isinstance(node, RConst):
                constants.append(node.value)
            elif isinstance(node, BConst):
                bconst_true += int(node.value)
            elif isinstance(node, (RArg, BArg)):
                # Unknown names (hand-written trees outside the pset)
                # simply don't occupy a slot; the structural counts
                # still see them.
                if node.name in usage:
                    usage[node.name] += 1
        terminals = sum(term_counts.values())
        vector = [
            float(size),
            float(tree.depth()),
            terminals / size if size else 0.0,
        ]
        vector.extend(float(op_counts[op]) for op in FUNCTION_ORDER)
        vector.extend(float(term_counts[term]) for term in TERMINAL_ORDER)
        if constants:
            vector.extend([
                sum(constants) / len(constants),
                min(constants),
                max(constants),
                sum(abs(value) for value in constants),
            ])
        else:
            vector.extend([0.0, 0.0, 0.0, 0.0])
        n_bconst = term_counts["bconst"]
        vector.append(bconst_true / n_bconst if n_bconst else 0.0)
        vector.extend(float(usage[name])
                      for name in self.pset.feature_names)
        return vector


#: Static-probe feature names appended when the IR delta probe is used.
STATIC_NAMES: tuple[str, ...] = (
    "ir_bundles_delta", "ir_instrs_delta", "ir_blocks_delta",
)


def _static_counts(scheduled) -> tuple[int, int, int]:
    bundles = instrs = blocks = 0
    for func in scheduled.functions.values():
        for label in func.block_order:
            blocks += 1
            for bundle in func.blocks[label].bundles:
                bundles += 1
                instrs += len(bundle.instrs)
    return bundles, instrs, blocks


def static_ir_delta(harness, tree: Node, benchmark: str) -> list[float]:
    """Optional compile-only probe: candidate-vs-baseline deltas of
    static schedule statistics (bundles, instructions, blocks).

    Costs one backend compile per candidate — cheap next to a
    simulation, and nearly free with compilation forking on — but not
    free, so the evaluator leaves it off by default.  Rides the
    harness's snapshot layer when enabled.
    """
    from repro.metaopt.harness import _as_hook

    prep = harness.prepared(benchmark)
    baseline_opts = harness.case.options_for(
        _as_hook(harness.baseline_tree()))
    candidate_opts = harness.case.options_for(_as_hook(tree))
    base, _ = harness._compile(prep, baseline_opts, benchmark)
    cand, _ = harness._compile(prep, candidate_opts, benchmark)
    base_counts = _static_counts(base)
    cand_counts = _static_counts(cand)
    return [float(c - b) for c, b in zip(cand_counts, base_counts)]
