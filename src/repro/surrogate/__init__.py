"""Learned surrogate fitness (docs/SURROGATE.md).

The GP loop spends nearly all of its budget simulating candidates that
were never going to matter.  This package adds the predict-then-verify
tier: a zero-dependency learned model ranks each generation, only the
top of the ranking (plus an exploration sample) reaches the
cycle-accurate simulator, and the tail is scored from the model.  The
simulator stays the ground truth — the champion is always
simulator-verified — the model just decides who deserves simulator
time.

Layers:

* :mod:`repro.surrogate.features` — candidate expression → fixed
  numeric vector (operator counts, shape, constant stats, per-feature
  usage from the case's primitive set);
* :mod:`repro.surrogate.model` — pure-Python ridge regression and
  gradient-boosted stumps with seeded deterministic training and JSON
  serialization;
* :mod:`repro.surrogate.train` — mine (expression → speedup) training
  pairs out of the persistent
  :class:`~repro.metaopt.fitness_cache.FitnessCache`;
* :mod:`repro.surrogate.evaluator` — the
  :class:`~repro.metaopt.parallel.EvaluatorProtocol` implementation
  that wraps any exact evaluator (serial, process pool, fleet).
"""

from repro.surrogate.evaluator import SurrogateEvaluator
from repro.surrogate.features import FeatureExtractor, static_ir_delta
from repro.surrogate.model import (
    BoostedStumpsModel,
    RidgeModel,
    SurrogateModel,
    model_from_json_dict,
)
from repro.surrogate.train import TrainingReport, train_from_cache

__all__ = [
    "BoostedStumpsModel",
    "FeatureExtractor",
    "RidgeModel",
    "SurrogateEvaluator",
    "SurrogateModel",
    "TrainingReport",
    "model_from_json_dict",
    "static_ir_delta",
    "train_from_cache",
]
