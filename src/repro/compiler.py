"""One-call compilation and execution driver.

Convenience facade over the full pipeline for users who just want to
compile MiniC and run it on the simulated EPIC machine::

    from repro.compiler import compile_and_run

    result = compile_and_run(source, inputs={"data": [1, 2, 3]})
    print(result.cycles, result.outputs)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.frontend import compile_source
from repro.ir.interp import Interpreter, RunResult
from repro.machine.descr import DEFAULT_EPIC, MachineDescription
from repro.machine.sim import SimResult, Simulator
from repro.machine.vliw import ScheduledModule
from repro.passes.pipeline import (
    BackendReport,
    CompilerOptions,
    compile_backend,
    prepare,
)

Inputs = dict[str, list]


@dataclass
class CompiledProgram:
    """A compiled MiniC program ready to simulate on any dataset."""

    scheduled: ScheduledModule
    report: BackendReport
    options: CompilerOptions

    def run(self, inputs: Inputs | None = None,
            entry: str = "main",
            noise_stddev: float = 0.0,
            noise_seed: int = 0) -> SimResult:
        simulator = Simulator(
            self.scheduled, self.options.machine,
            noise_stddev=noise_stddev, noise_seed=noise_seed,
        )
        for name, values in (inputs or {}).items():
            simulator.set_global(name, values)
        return simulator.run(entry=entry)


def compile_program(
    source: str,
    profile_inputs: Inputs | None = None,
    options: CompilerOptions | None = None,
    name: str = "program",
) -> CompiledProgram:
    """Frontend + full optimizing pipeline.

    ``profile_inputs`` is the dataset used for profile-directed
    decisions (hyperblock ``exec_ratio``, prefetch trip counts);
    pass the training input here and evaluate on any dataset after.
    """
    options = options or CompilerOptions(machine=DEFAULT_EPIC)
    module = compile_source(source, name)
    prepared = prepare(module, profile_inputs, options)
    scheduled, report = compile_backend(prepared)
    return CompiledProgram(scheduled=scheduled, report=report,
                           options=options)


def compile_and_run(
    source: str,
    inputs: Inputs | None = None,
    options: CompilerOptions | None = None,
) -> SimResult:
    """Compile and immediately simulate on the same inputs."""
    program = compile_program(source, profile_inputs=inputs,
                              options=options)
    return program.run(inputs)


def interpret(source: str, inputs: Inputs | None = None,
              entry: str = "main") -> RunResult:
    """Run a MiniC program under the reference interpreter (no machine
    model): the ground truth the simulator is validated against."""
    module = compile_source(source)
    interp = Interpreter(module)
    for name, values in (inputs or {}).items():
        interp.set_global(name, values)
    return interp.run(entry=entry)
