"""Canary significance math: an exact one-sided binomial sign test.

Zero-dependency on purpose (no scipy in this tree).  The canary
controller collects *paired* cycle counts — the same (benchmark,
dataset) simulated under the stable artifact and under the canary — so
the natural test is the sign test: under the null hypothesis that the
canary is no better, each untied pair is a fair coin, and the p-value
of ``w`` wins in ``n`` untied pairs is the exact binomial tail
``P(X >= w | n, 1/2)``.  Exactness matters at the tiny sample sizes a
compile service sees; a normal approximation would be garbage at
``n = 5``.

Ties (identical cycle counts — common here, simulation is
deterministic) carry no information and are dropped, per the standard
sign-test treatment.
"""

from __future__ import annotations

from math import comb


def sign_test_p_value(wins: int, trials: int) -> float:
    """Exact one-sided p-value: ``P(X >= wins)`` for ``X ~ B(trials, 1/2)``.

    ``trials`` counts *untied* pairs.  Zero trials carries no evidence
    at all, so the p-value is 1.0.
    """
    if wins < 0 or trials < 0 or wins > trials:
        raise ValueError(f"need 0 <= wins <= trials, got "
                         f"wins={wins} trials={trials}")
    if trials == 0:
        return 1.0
    tail = sum(comb(trials, k) for k in range(wins, trials + 1))
    return tail / (1 << trials)


def paired_verdict(pairs: list[tuple[float, float]], min_pairs: int,
                   max_pairs: int, alpha: float) -> dict:
    """Judge a canary from paired ``(stable_cycles, canary_cycles)``.

    Returns ``{"decision", "wins", "losses", "ties", "p_value"}`` where
    ``decision`` is:

    * ``"promote"`` — canary wins are significant at ``alpha``;
    * ``"rollback"`` — canary *losses* are significant at ``alpha``,
      or ``max_pairs`` were collected without significance either way
      (an inconclusive canary is not worth the routing complexity —
      fail safe toward the incumbent);
    * ``"continue"`` — keep collecting pairs.

    Lower cycles are better, so a win is ``canary < stable``.
    """
    wins = sum(1 for stable, canary in pairs if canary < stable)
    losses = sum(1 for stable, canary in pairs if canary > stable)
    ties = len(pairs) - wins - losses
    trials = wins + losses
    p_win = sign_test_p_value(wins, trials)
    p_loss = sign_test_p_value(losses, trials)
    if len(pairs) >= min_pairs:
        if p_win <= alpha:
            decision = "promote"
        elif p_loss <= alpha:
            decision = "rollback"
        elif len(pairs) >= max_pairs:
            decision = "rollback"
        else:
            decision = "continue"
    else:
        decision = "continue"
    return {
        "decision": decision,
        "wins": wins,
        "losses": losses,
        "ties": ties,
        "p_value": p_win,
    }
