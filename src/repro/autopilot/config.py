"""Autopilot configuration: thresholds, slices, campaign sizing.

One frozen record, JSON round-trip, echoed verbatim by
``GET /v1/autopilot/status`` so an operator can always read back what
the daemon is actually running with.  See docs/AUTOPILOT.md for how to
choose the values; the defaults favor caution (small sample rate,
conservative significance) over reaction speed.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

#: Version stamp of every autopilot persistence file (monitor state,
#: campaign records, decision events).
AUTOPILOT_SCHEMA = 1


@dataclass(frozen=True)
class AutopilotConfig:
    """Everything the autopilot loop needs, immutable and serializable.

    ``threshold`` is in *speedup-vs-baseline* units: an artifact whose
    rolling mean drops below it (e.g. 0.999 — slower than the baseline
    heuristic it replaced) trips a re-optimization campaign.
    """

    #: directory holding monitor state, campaigns, and decisions
    state_dir: str = "autopilot"
    #: fraction of evaluate traffic probed against the baseline
    sample_rate: float = 0.25
    #: most (benchmark, dataset) entries kept per artifact window
    window_size: int = 16
    #: samples needed in a window before the trigger test applies
    window_min: int = 4
    #: trip a campaign when the window mean drops below this speedup
    threshold: float = 0.999
    #: fraction of stable-channel traffic hash-routed to a live canary
    canary_fraction: float = 0.5
    #: paired (stable, canary) cycle samples before testing significance
    min_pairs: int = 3
    #: give up (roll back) if still not significant after this many
    max_pairs: int = 12
    #: one-sided sign-test significance level for promote/rollback
    alpha: float = 0.125
    #: GP population of a background campaign
    population: int = 8
    #: GP generations of a background campaign
    generations: int = 3
    #: base RNG seed for campaigns (the trigger ordinal is added)
    gp_seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.sample_rate <= 1.0:
            raise ValueError("sample_rate must be in [0, 1]")
        if not 0.0 <= self.canary_fraction <= 1.0:
            raise ValueError("canary_fraction must be in [0, 1]")
        if self.window_min < 1 or self.window_size < self.window_min:
            raise ValueError(
                "need 1 <= window_min <= window_size")
        if self.min_pairs < 1 or self.max_pairs < self.min_pairs:
            raise ValueError("need 1 <= min_pairs <= max_pairs")
        if not 0.0 < self.alpha < 1.0:
            raise ValueError("alpha must be in (0, 1)")
        if self.population < 2:
            raise ValueError("population must be >= 2")
        if self.generations < 1:
            raise ValueError("generations must be >= 1")

    def to_json_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_json_dict(cls, data: dict) -> "AutopilotConfig":
        data = dict(data)
        unknown = set(data) - {f.name for f in dataclasses.fields(cls)}
        if unknown:
            raise ValueError(
                f"unknown autopilot config fields: {sorted(unknown)}")
        return cls(**data)
