"""One background re-optimization campaign and its durable record.

A campaign lives in ``<state_dir>/campaigns/<name>/`` — which is a
normal :class:`~repro.experiments.ExperimentRunner` run directory
(config.json, events.jsonl, checkpoint.pkl, populations/, result.json)
plus one extra file, ``campaign.json``, the autopilot's own record of
why the campaign exists and where it stands:

``phase`` walks ``evolving`` → ``canary`` → ``promoted`` |
``rolled_back``.  Because the runner checkpoints after every
generation (``checkpoint_every=1``) and ``campaign.json`` is rewritten
atomically on every transition, a daemon killed at *any* point resumes
the campaign from its last completed generation and re-derives
identical results — the engine's kill+resume byte-identity guarantee
extends to the whole autopilot loop.

The GP run itself is an :class:`~repro.experiments.ExperimentSession`
stepped one generation at a time by low-priority serve jobs; the
session object (warm harness, open event sink) is process-local and
rebuilt on demand after a restart via ``resume=True``.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

from repro.autopilot.config import AUTOPILOT_SCHEMA, AutopilotConfig
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import (
    CHECKPOINT_FILENAME,
    ExperimentRunner,
    ExperimentSession,
)
from repro.gp.engine import GPParams

CAMPAIGN_FILENAME = "campaign.json"

#: Campaign lifecycle phases; the last two are terminal.
PHASES = ("evolving", "canary", "promoted", "rolled_back")


@dataclass
class Campaign:
    """Durable description + live handles of one campaign."""

    name: str
    case: str
    machine: str
    benchmark: str
    dataset: str
    parent_id: str
    trigger_seq: int
    root: Path
    phase: str = "evolving"
    champion_id: str | None = None
    #: paired cycles keyed "benchmark|dataset": [stable, canary]
    pairs: dict = field(default_factory=dict)
    #: process-local stepping handle (never persisted)
    session: ExperimentSession | None = None

    # -- paths -----------------------------------------------------------
    @property
    def run_dir(self) -> Path:
        return self.root

    @property
    def record_path(self) -> Path:
        return self.root / CAMPAIGN_FILENAME

    @property
    def active(self) -> bool:
        return self.phase in ("evolving", "canary")

    # -- persistence -----------------------------------------------------
    def to_json_dict(self) -> dict:
        return {
            "schema": AUTOPILOT_SCHEMA,
            "name": self.name,
            "case": self.case,
            "machine": self.machine,
            "benchmark": self.benchmark,
            "dataset": self.dataset,
            "parent_id": self.parent_id,
            "trigger_seq": self.trigger_seq,
            "phase": self.phase,
            "champion_id": self.champion_id,
            "pairs": self.pairs,
        }

    def save(self) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(self.to_json_dict(), indent=2,
                             sort_keys=True) + "\n"
        fd, tmp_name = tempfile.mkstemp(dir=self.root,
                                        prefix=".tmp-campaign-",
                                        suffix=".json")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
            os.replace(tmp_name, self.record_path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    @classmethod
    def load(cls, root: Path) -> "Campaign":
        data = json.loads((root / CAMPAIGN_FILENAME).read_text())
        if data.get("schema") != AUTOPILOT_SCHEMA:
            raise ValueError(
                f"unsupported campaign schema {data.get('schema')!r} "
                f"in {root}")
        if data["phase"] not in PHASES:
            raise ValueError(f"unknown campaign phase {data['phase']!r}")
        return cls(
            name=data["name"],
            case=data["case"],
            machine=data["machine"],
            benchmark=data["benchmark"],
            dataset=data["dataset"],
            parent_id=data["parent_id"],
            trigger_seq=data["trigger_seq"],
            root=root,
            phase=data["phase"],
            champion_id=data["champion_id"],
            pairs=dict(data["pairs"]),
        )

    # -- the GP run ------------------------------------------------------
    def experiment_config(self, autopilot: AutopilotConfig,
                          parent_expression: str,
                          fitness_cache_dir: str | None) -> ExperimentConfig:
        """The campaign's deterministic experiment description.

        Seeded from the incumbent champion's expression (plus the case
        baseline) and salted with the trigger ordinal, so consecutive
        campaigns on the same track explore differently while a
        re-created campaign for the same trigger is identical.
        """
        return ExperimentConfig(
            mode="specialize",
            case=self.case,
            benchmark=self.benchmark,
            params=GPParams(
                population_size=autopilot.population,
                generations=autopilot.generations,
                seed=autopilot.gp_seed + self.trigger_seq,
            ),
            fitness_cache_dir=fitness_cache_dir,
            checkpoint_every=1,
            seed_expressions=(parent_expression,),
        )

    def build_runner(self, autopilot: AutopilotConfig,
                     parent_expression: str,
                     publish_dir,
                     fitness_cache_dir: str | None,
                     use_snapshots: bool) -> ExperimentRunner:
        return ExperimentRunner(
            self.experiment_config(autopilot, parent_expression,
                                   fitness_cache_dir),
            run_dir=self.run_dir,
            publish_dir=publish_dir,
            use_snapshots=use_snapshots,
            publish_parent_id=self.parent_id,
            # pinned so a restarted campaign publishes the identical
            # content address (created_at participates in the digest)
            publish_created_at=float(self.trigger_seq),
        )

    def open_session(self, runner: ExperimentRunner) -> ExperimentSession:
        """Open (or resume) the stepping session for this campaign."""
        if self.session is None:
            resume = (self.run_dir / CHECKPOINT_FILENAME).exists()
            self.session = runner.open_session(resume=resume)
        return self.session

    def close_session(self) -> None:
        if self.session is not None:
            self.session.close()
            self.session = None
