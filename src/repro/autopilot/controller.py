"""The autopilot orchestrator wired into the serving daemon.

One :class:`Autopilot` object per :class:`~repro.serve.server.
ReproServer` owns the whole self-improvement loop:

1. **Observe** — after every evaluate job that ran under a deployed
   artifact, :meth:`observe_evaluation` either tallies a canary pair
   (if the artifact is a live canary) or probes a sampled fraction
   against the baseline heuristic via the
   :class:`~repro.autopilot.monitor.QualityMonitor`.
2. **Trigger** — a window that trips (mean speedup below threshold on
   the *stable* artifact of a track) starts a
   :class:`~repro.autopilot.campaign.Campaign` seeded from the
   incumbent and enqueues its first low-priority step job.
3. **Step** — :meth:`campaign_step` (the ``autopilot-step`` job
   handler) runs exactly one GP generation per job, so interactive
   traffic is never blocked for more than a single generation, then
   re-enqueues itself; cooperative cancel and drain pause the campaign
   at the last checkpoint.
4. **Canary** — a finished campaign publishes its champion as a child
   artifact (``parent_id`` = incumbent), points the track's ``canary``
   channel at it, and hash-routes a deterministic slice of
   stable-channel traffic to it; the sign test over paired cycles
   promotes or rolls back.

Every decision appends a schema-stamped record to
``<state_dir>/decisions.jsonl``.  Records carry sequence numbers and
*no timestamps or job ids*, and all inputs (traffic hashing, sampling
counters, GP seeds, pinned ``created_at``) are deterministic and
persisted — so killing the daemon at any point and replaying the same
traffic yields a byte-identical decision log and an identical champion
artifact id.
"""

from __future__ import annotations

import json
import sys
import threading
from pathlib import Path

from repro import obs
from repro.autopilot.campaign import Campaign
from repro.autopilot.config import AUTOPILOT_SCHEMA, AutopilotConfig
from repro.autopilot.monitor import QualityMonitor, traffic_hash
from repro.autopilot.stats import paired_verdict

DECISIONS_FILENAME = "decisions.jsonl"
CAMPAIGNS_DIRNAME = "campaigns"

#: Job kind of one background campaign generation.
STEP_JOB_KIND = "autopilot-step"


class Autopilot:
    """The serving daemon's self-improvement loop (docs/AUTOPILOT.md)."""

    def __init__(
        self,
        config: AutopilotConfig,
        registry,
        harness_pool,
        submit,
        current_job=lambda: None,
        fitness_cache_dir: str | None = None,
        use_snapshots: bool = True,
    ) -> None:
        self.config = config
        self.registry = registry
        self.harness_pool = harness_pool
        #: ``JobQueue.submit``-shaped callable for step jobs
        self._submit = submit
        #: ``JobQueue.current_job``-shaped callable (cooperative cancel)
        self._current_job = current_job
        self.fitness_cache_dir = fitness_cache_dir
        self.use_snapshots = use_snapshots
        self.state_dir = Path(config.state_dir)
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self.monitor = QualityMonitor(config)
        self._lock = threading.RLock()
        self._draining = False
        self.campaigns: dict[str, Campaign] = {}
        #: campaign names with a step job queued or running
        self._step_pending: set[str] = set()
        self._artifact_cache: dict[str, object] = {}
        self._decisions_path = self.state_dir / DECISIONS_FILENAME
        self._decision_seq = self._count_decisions()
        self._load_campaigns()

    # -- persistence ------------------------------------------------------
    @property
    def campaigns_dir(self) -> Path:
        return self.state_dir / CAMPAIGNS_DIRNAME

    def _count_decisions(self) -> int:
        try:
            with open(self._decisions_path, encoding="utf-8") as handle:
                return sum(1 for _ in handle)
        except OSError:
            return 0

    def _load_campaigns(self) -> None:
        if not self.campaigns_dir.is_dir():
            return
        for root in sorted(self.campaigns_dir.iterdir()):
            if (root / "campaign.json").exists():
                campaign = Campaign.load(root)
                self.campaigns[campaign.name] = campaign

    def _record_decision(self, event: dict) -> None:
        with self._lock:
            self._decision_seq += 1
            record = {"schema": AUTOPILOT_SCHEMA,
                      "seq": self._decision_seq, **event}
            line = json.dumps(record, sort_keys=True) + "\n"
            with open(self._decisions_path, "a",
                      encoding="utf-8") as handle:
                handle.write(line)
        obs.inc(f"autopilot.decisions.{event['event']}")

    def _artifact(self, artifact_id: str):
        cached = self._artifact_cache.get(artifact_id)
        if cached is None:
            cached = self.registry.load(artifact_id)
            self._artifact_cache[artifact_id] = cached
        return cached

    # -- lifecycle --------------------------------------------------------
    def recover(self) -> None:
        """Re-enqueue step jobs for campaigns interrupted mid-evolution
        (the daemon restart path; their sessions resume from the last
        checkpoint)."""
        with self._lock:
            evolving = [c for c in self.campaigns.values()
                        if c.phase == "evolving"]
        for campaign in evolving:
            self._enqueue_step(campaign)

    def begin_drain(self) -> None:
        """Stop starting campaigns and re-enqueueing steps.  The queue
        drain cancels queued step jobs; an in-flight step finishes its
        generation (already checkpointed) and stops."""
        with self._lock:
            self._draining = True

    def finish_drain(self) -> None:
        """Close any open campaign sessions (flushes their event
        sinks).  Campaign state is already durable: every generation is
        checkpointed and every transition rewrote campaign.json."""
        with self._lock:
            campaigns = list(self.campaigns.values())
        for campaign in campaigns:
            campaign.close_session()

    # -- routing ----------------------------------------------------------
    def canary_router(self, case: str, machine: str, benchmark: str,
                      dataset: str) -> bool:
        """Deterministic hash slice: does this stable-channel request
        ride the canary?  Pure function of the traffic key, so the
        slice is stable across requests, threads, and restarts."""
        routed = (traffic_hash(f"{case}|{machine}|{benchmark}|{dataset}")
                  < self.config.canary_fraction * 10_000)
        if routed:
            obs.inc("autopilot.canary_routed")
        return routed

    # -- observation ------------------------------------------------------
    def observe_evaluation(self, params: dict, payload: dict) -> None:
        """Fold one finished evaluate job into the loop.  Called on the
        worker thread that ran the job, so baseline probes and pair
        simulations reuse that thread's warm harness."""
        artifact_id = payload.get("artifact")
        if not artifact_id:
            return
        case = payload["case"]
        machine = payload["machine"]
        benchmark = payload["benchmark"]
        dataset = payload["dataset"]
        cycles = payload["cycles"]

        campaign = self._canary_campaign(case, machine, artifact_id)
        if campaign is not None:
            self._record_pair(campaign, benchmark, dataset, cycles)
            return
        if not self.monitor.should_sample(case, benchmark, dataset):
            return
        harness = self.harness_pool.get(case, 0.0)
        baseline = harness.baseline_result(benchmark, dataset).cycles
        speedup = (baseline / cycles) if cycles > 0 else 0.0
        obs.inc("autopilot.probes")
        summary = self.monitor.record(artifact_id, benchmark, dataset,
                                      speedup)
        if summary["tripped"]:
            self.maybe_trigger(case, machine, artifact_id)

    def _canary_campaign(self, case: str, machine: str,
                         artifact_id: str) -> Campaign | None:
        with self._lock:
            for campaign in self.campaigns.values():
                if (campaign.phase == "canary"
                        and campaign.case == case
                        and campaign.machine == machine
                        and campaign.champion_id == artifact_id):
                    return campaign
        return None

    def _active_campaign(self, case: str, machine: str) -> Campaign | None:
        for campaign in self.campaigns.values():
            if (campaign.active and campaign.case == case
                    and campaign.machine == machine):
                return campaign
        return None

    # -- triggering -------------------------------------------------------
    def maybe_trigger(self, case: str, machine: str,
                      artifact_id: str) -> Campaign | None:
        """Start a re-optimization campaign for a tripped window, if
        the artifact is the track's stable pointer and no campaign is
        already working that track."""
        with self._lock:
            if self._draining:
                return None
            stable = self.registry.get_channel(case, machine, "stable")
            if stable != artifact_id:
                return None
            if self._active_campaign(case, machine) is not None:
                return None
            worst = self.monitor.worst_benchmark(artifact_id)
            if worst is None:
                return None
            summary = self.monitor.summary_for(artifact_id)
            benchmark, dataset = worst
            trigger_seq = len(self.campaigns) + 1
            name = f"{case}-{machine}-{trigger_seq:04d}"
            campaign = Campaign(
                name=name,
                case=case,
                machine=machine,
                benchmark=benchmark,
                dataset=dataset,
                parent_id=artifact_id,
                trigger_seq=trigger_seq,
                root=self.campaigns_dir / name,
            )
            campaign.save()
            self.campaigns[name] = campaign
            # a tripped window must not re-trigger while this campaign
            # (and its canary) run
            self.monitor.reset_window(artifact_id)
        self._record_decision({
            "event": "campaign_started",
            "campaign": name,
            "case": case,
            "machine": machine,
            "parent_id": artifact_id,
            "benchmark": benchmark,
            "dataset": dataset,
            "window_mean": summary["mean_speedup"],
            "window_samples": summary["samples"],
            "threshold": self.config.threshold,
        })
        obs.inc("autopilot.triggers")
        self._enqueue_step(campaign)
        return campaign

    def _enqueue_step(self, campaign: Campaign) -> bool:
        with self._lock:
            if self._draining or campaign.name in self._step_pending:
                return False
            try:
                self._submit(STEP_JOB_KIND, {"campaign": campaign.name},
                             priority="background")
            except Exception as exc:  # noqa: BLE001 — queue full/drain
                # The loop self-heals: recover() re-enqueues on
                # restart, and kick_stalled() on the next observation.
                print(f"autopilot: could not enqueue step for "
                      f"{campaign.name}: {exc}", file=sys.stderr)
                return False
            self._step_pending.add(campaign.name)
            return True

    def kick_stalled(self) -> None:
        """Re-enqueue any evolving campaign with no step in flight
        (e.g. a step submit shed by a momentarily full queue)."""
        with self._lock:
            stalled = [c for c in self.campaigns.values()
                       if c.phase == "evolving"
                       and c.name not in self._step_pending]
        for campaign in stalled:
            self._enqueue_step(campaign)

    # -- the step job handler ---------------------------------------------
    def campaign_step(self, params: dict) -> dict:
        """Run one GP generation of one campaign (job kind
        ``autopilot-step``)."""
        name = params.get("campaign")
        with self._lock:
            self._step_pending.discard(name)
            campaign = self.campaigns.get(name)
        if campaign is None:
            raise ValueError(f"unknown campaign {name!r}")
        if campaign.phase != "evolving":
            return {"campaign": name, "phase": campaign.phase,
                    "skipped": True}

        parent = self._artifact(campaign.parent_id)
        runner = campaign.build_runner(
            self.config, parent.expression,
            publish_dir=self.registry.root,
            fitness_cache_dir=self.fitness_cache_dir,
            use_snapshots=self.use_snapshots)
        session = campaign.open_session(runner)
        if not session.done:
            with obs.span("autopilot:step", campaign=name):
                stats = session.step()
            obs.inc("autopilot.steps")
        if session.done:
            return self._finish_campaign(campaign, session)

        job = self._current_job()
        cancelled = bool(job is not None and job.cancel_requested)
        with self._lock:
            paused = cancelled or self._draining
        if paused:
            # resumable: the generation just ran is checkpointed
            campaign.close_session()
            return {"campaign": name, "phase": "evolving",
                    "generation": stats.generation, "paused": True}
        self._enqueue_step(campaign)
        return {"campaign": name, "phase": "evolving",
                "generation": stats.generation}

    def _finish_campaign(self, campaign: Campaign, session) -> dict:
        result = session.finalize()
        campaign.close_session()
        champion_id = result.artifact_id
        version = self.registry.register_version(
            campaign.case, campaign.machine, champion_id)
        self._record_decision({
            "event": "champion_published",
            "campaign": campaign.name,
            "artifact_id": champion_id,
            "parent_id": campaign.parent_id,
            "version": version,
            "train_speedup": result.specialization.train_speedup,
            "benchmark": campaign.benchmark,
        })
        obs.inc("autopilot.published")
        self.registry.set_channel(campaign.case, campaign.machine,
                                  "canary", champion_id)
        with self._lock:
            campaign.champion_id = champion_id
            campaign.phase = "canary"
            campaign.save()
        self._record_decision({
            "event": "canary_started",
            "campaign": campaign.name,
            "artifact_id": champion_id,
            "fraction": self.config.canary_fraction,
        })
        return {"campaign": campaign.name, "phase": "canary",
                "champion": champion_id, "version": version}

    # -- canary analysis --------------------------------------------------
    def _record_pair(self, campaign: Campaign, benchmark: str,
                     dataset: str, canary_cycles: int) -> None:
        stable_id = self.registry.get_channel(campaign.case,
                                              campaign.machine, "stable")
        if stable_id is None:
            return
        harness = self.harness_pool.get(campaign.case, 0.0)
        stable_tree = self._artifact(stable_id).tree()
        stable_cycles = harness.simulate(stable_tree, benchmark,
                                         dataset).cycles
        with self._lock:
            if campaign.phase != "canary":
                return
            campaign.pairs[f"{benchmark}|{dataset}"] = [stable_cycles,
                                                        canary_cycles]
            campaign.save()
            verdict = paired_verdict(
                [tuple(pair) for pair in campaign.pairs.values()],
                self.config.min_pairs, self.config.max_pairs,
                self.config.alpha)
        obs.inc("autopilot.canary_pairs")
        if verdict["decision"] == "promote":
            self._promote(campaign, verdict)
        elif verdict["decision"] == "rollback":
            self._rollback(campaign, verdict)

    def _promote(self, campaign: Campaign, verdict: dict) -> None:
        with self._lock:
            if campaign.phase != "canary":
                return
            move = self.registry.promote(campaign.case, campaign.machine)
            campaign.phase = "promoted"
            campaign.save()
        self._record_decision({
            "event": "promoted",
            "campaign": campaign.name,
            "artifact_id": campaign.champion_id,
            "parent_id": campaign.parent_id,
            "version": move["version"],
            "wins": verdict["wins"],
            "losses": verdict["losses"],
            "ties": verdict["ties"],
            "p_value": verdict["p_value"],
        })
        obs.inc("autopilot.promotions")

    def _rollback(self, campaign: Campaign, verdict: dict) -> None:
        with self._lock:
            if campaign.phase != "canary":
                return
            move = self.registry.rollback(campaign.case, campaign.machine)
            campaign.phase = "rolled_back"
            campaign.save()
        self._record_decision({
            "event": "rolled_back",
            "campaign": campaign.name,
            "artifact_id": campaign.champion_id,
            "parent_id": campaign.parent_id,
            "version": move["version"],
            "wins": verdict["wins"],
            "losses": verdict["losses"],
            "ties": verdict["ties"],
            "p_value": verdict["p_value"],
        })
        obs.inc("autopilot.rollbacks")

    # -- introspection ----------------------------------------------------
    def status(self) -> dict:
        with self._lock:
            campaigns = []
            for name in sorted(self.campaigns):
                campaign = self.campaigns[name]
                record = campaign.to_json_dict()
                del record["schema"]
                record["pairs"] = len(campaign.pairs)
                record["stepping"] = name in self._step_pending
                campaigns.append(record)
            payload = {
                "schema": AUTOPILOT_SCHEMA,
                "ok": True,
                "enabled": True,
                "draining": self._draining,
                "config": self.config.to_json_dict(),
                "windows": self.monitor.status(),
                "campaigns": campaigns,
                "channels": self.registry.channels(),
                "decisions": self._decision_seq,
            }
        obs.set_gauge("autopilot.active_campaigns",
                      sum(1 for c in self.campaigns.values() if c.active))
        return payload
