"""Live quality monitor: rolling speedup-vs-baseline per artifact.

Samples a configurable fraction of real ``/v1/evaluate`` traffic that
ran under a deployed artifact and re-runs the same (benchmark, dataset)
under the case's *baseline* heuristic.  The probe is nearly free: the
baseline result is memoized per warm harness (and behind that sit the
persistent fitness cache and pipeline snapshots), so after the first
probe of a benchmark the comparison costs a dictionary lookup.

Both the sampling decision and the window contents are deterministic
functions of the observed traffic:

* sampling hashes ``(case, benchmark, dataset, observation_count)``
  with CRC-32 — no RNG, so a daemon kill+restart replaying the same
  traffic makes identical decisions (counts are persisted);
* a window is keyed by ``(benchmark, dataset)`` — re-observing the
  same benchmark *replaces* its entry rather than appending, so window
  state is independent of traffic repetition and arrival order.

Windows are bounded (``window_size``): when full, the oldest-inserted
key is evicted, giving the "rolling" behavior over distinct
benchmarks.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import zlib
from pathlib import Path

from repro import obs
from repro.autopilot.config import AUTOPILOT_SCHEMA, AutopilotConfig

MONITOR_FILENAME = "monitor.json"


def traffic_hash(key: str) -> int:
    """Deterministic 0..9999 bucket for a traffic key (no RNG)."""
    return zlib.crc32(key.encode()) % 10_000


class QualityMonitor:
    """Per-artifact rolling windows of speedup vs the baseline heuristic.

    State lives in ``<state_dir>/monitor.json`` and is rewritten
    atomically after every accepted sample, so the monitor survives
    daemon restarts with its windows and sampling counters intact.
    """

    def __init__(self, config: AutopilotConfig) -> None:
        self.config = config
        self.path = Path(config.state_dir) / MONITOR_FILENAME
        self._lock = threading.Lock()
        self._windows: dict[str, dict[str, float]] = {}
        self._counts: dict[str, int] = {}
        self._load()

    # -- persistence -----------------------------------------------------
    def _load(self) -> None:
        try:
            data = json.loads(self.path.read_text())
        except OSError:
            return
        if data.get("schema") != AUTOPILOT_SCHEMA:
            raise ValueError(
                f"unsupported monitor state schema {data.get('schema')!r}")
        self._windows = {aid: dict(window)
                         for aid, window in data["windows"].items()}
        self._counts = dict(data["counts"])

    def _store_locked(self) -> None:
        payload = json.dumps({
            "schema": AUTOPILOT_SCHEMA,
            "windows": self._windows,
            "counts": self._counts,
        }, indent=2, sort_keys=True) + "\n"
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=self.path.parent,
                                        prefix=".tmp-monitor-",
                                        suffix=".json")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
            os.replace(tmp_name, self.path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    # -- sampling --------------------------------------------------------
    def should_sample(self, case: str, benchmark: str, dataset: str) -> bool:
        """Decide (and count) whether this observation is probed.

        The count advances whether or not the observation is sampled,
        so the decision sequence for a traffic key is a pure function
        of how many times that key has been seen.
        """
        key = f"{case}|{benchmark}|{dataset}"
        with self._lock:
            count = self._counts.get(key, 0)
            self._counts[key] = count + 1
            sampled = (traffic_hash(f"{key}|{count}")
                       < self.config.sample_rate * 10_000)
            self._store_locked()
        return sampled

    # -- windows ---------------------------------------------------------
    def record(self, artifact_id: str, benchmark: str, dataset: str,
               speedup: float) -> dict:
        """Fold one probed speedup into the artifact's window; returns
        the window summary (see :meth:`summary_for`)."""
        key = f"{benchmark}|{dataset}"
        with self._lock:
            window = self._windows.setdefault(artifact_id, {})
            if key not in window and len(window) >= self.config.window_size:
                oldest = next(iter(window))
                del window[oldest]
            window[key] = speedup
            self._store_locked()
            summary = self._summary_locked(artifact_id)
        obs.inc("autopilot.samples")
        obs.set_gauge(f"autopilot.window_mean.{artifact_id[:12]}",
                      summary["mean_speedup"])
        return summary

    def _summary_locked(self, artifact_id: str) -> dict:
        window = self._windows.get(artifact_id, {})
        mean = (sum(window.values()) / len(window)) if window else 0.0
        return {
            "samples": len(window),
            "mean_speedup": mean,
            "threshold": self.config.threshold,
            "tripped": (len(window) >= self.config.window_min
                        and mean < self.config.threshold),
        }

    def summary_for(self, artifact_id: str) -> dict:
        with self._lock:
            return self._summary_locked(artifact_id)

    def worst_benchmark(self, artifact_id: str) -> tuple[str, str] | None:
        """The (benchmark, dataset) with the lowest observed speedup —
        where a re-optimization campaign will focus.  Ties break
        lexicographically so the choice is deterministic."""
        with self._lock:
            window = self._windows.get(artifact_id, {})
            if not window:
                return None
            key, _ = min(window.items(), key=lambda kv: (kv[1], kv[0]))
        benchmark, _, dataset = key.partition("|")
        return benchmark, dataset

    def reset_window(self, artifact_id: str) -> None:
        """Forget an artifact's window (after a campaign is triggered,
        so the same degraded window cannot re-trigger)."""
        with self._lock:
            self._windows.pop(artifact_id, None)
            self._store_locked()

    def status(self) -> dict:
        with self._lock:
            return {aid: self._summary_locked(aid)
                    for aid in sorted(self._windows)}
