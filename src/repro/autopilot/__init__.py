"""Autopilot: online continuous re-optimization in the serving path.

The subsystem that closes the paper's loop (docs/AUTOPILOT.md): the
serving daemon watches live artifact quality against the baseline
heuristic, and when a deployed heuristic underperforms, evolves a
replacement *from the incumbent* in the background — at lower priority
than interactive traffic — then canaries the champion on a
deterministic traffic slice and promotes or rolls it back on a paired
significance test.  Every decision is a schema-stamped event in
``decisions.jsonl``, deterministic under kill+resume.

Pieces:

* :class:`~repro.autopilot.config.AutopilotConfig` — thresholds, the
  canary slice, campaign sizing.
* :class:`~repro.autopilot.monitor.QualityMonitor` — per-artifact
  rolling speedup-vs-baseline windows over a sampled fraction of real
  evaluate traffic (probes ride the memoized baseline fast path).
* :class:`~repro.autopilot.campaign.Campaign` — one background
  re-optimization run: an :class:`~repro.experiments.
  ExperimentSession` stepped a generation at a time through the
  low-priority job class of :mod:`repro.serve.jobs`.
* :class:`~repro.autopilot.controller.Autopilot` — the orchestrator
  gluing monitor, campaigns, registry channels, and canary analysis to
  the serving daemon.
"""

from repro.autopilot.config import AutopilotConfig
from repro.autopilot.controller import Autopilot
from repro.autopilot.monitor import QualityMonitor
from repro.autopilot.stats import paired_verdict, sign_test_p_value

__all__ = [
    "Autopilot",
    "AutopilotConfig",
    "QualityMonitor",
    "paired_verdict",
    "sign_test_p_value",
]
