"""Extension case study: evolving the list-scheduling priority.

The paper's Section 2 opens with list scheduling as the canonical
priority-function example (Gibbons & Muchnick's latency-weighted
depth), but the evaluation never evolves it.  The scheduler hook
(:data:`repro.passes.schedule.SchedulePriority`) is exposed anyway;
this module packages it as a fourth case study — the "designers will
intentionally expose algorithm policies" future the paper predicts.

Features per instruction (computed once per block DAG):

==============  ======================================================
lw_depth        latency-weighted depth to the DAG leaves (the
                classic priority — also the baseline expression)
asap            earliest issue cycle (longest latency path from roots)
slack           alap - asap (0 = on the critical path)
latency         static latency of the instruction
succ_count      direct dependents
pred_count      direct dependences
total_ops       instructions in the block
is_memory       memory operation (load/store/prefetch)
is_fp           floating-point operation
is_branch       control transfer
critical        slack == 0
==============  ======================================================
"""

from __future__ import annotations

import weakref
from typing import Callable, Mapping

from repro.gp.generate import PrimitiveSet
from repro.gp.types import REAL
from repro.ir.instr import FUClass
from repro.passes.schedule import BlockDAG, SchedulePriority

SCHEDULE_REAL_FEATURES = (
    "lw_depth",
    "asap",
    "slack",
    "latency",
    "succ_count",
    "pred_count",
    "total_ops",
)
SCHEDULE_BOOL_FEATURES = (
    "is_memory",
    "is_fp",
    "is_branch",
    "critical",
)

SCHEDULE_PSET = PrimitiveSet(
    real_features=SCHEDULE_REAL_FEATURES,
    bool_features=SCHEDULE_BOOL_FEATURES,
    result_type=REAL,
    const_range=(0.0, 8.0),
)

#: The classic baseline, as a GP expression over these features.
LATENCY_WEIGHTED_DEPTH_TEXT = "lw_depth"


def _asap_schedule(dag: BlockDAG) -> list[int]:
    """Earliest start cycle of each instruction (dependences only)."""
    asap = [0] * len(dag.instrs)
    for index in range(len(dag.instrs)):
        for pred, latency in dag.preds[index]:
            asap[index] = max(asap[index], asap[pred] + latency)
    return asap


def dag_environments(dag: BlockDAG) -> list[dict[str, float | bool]]:
    """Feature environments for every instruction in a block DAG."""
    depths = dag.critical_path()
    asap = _asap_schedule(dag)
    span = max((a + dag.latency[i] for i, a in enumerate(asap)),
               default=0)
    total = float(len(dag.instrs))
    environments = []
    for index, instr in enumerate(dag.instrs):
        # ALAP = latest start that still meets the dependence-only
        # schedule length; derived from the depth to the leaves.
        alap = span - depths[index]
        slack = max(0, alap - asap[index])
        environments.append({
            "lw_depth": float(depths[index]),
            "asap": float(asap[index]),
            "slack": float(slack),
            "latency": float(dag.latency[index]),
            "succ_count": float(len(dag.succs[index])),
            "pred_count": float(len(dag.preds[index])),
            "total_ops": total,
            "is_memory": instr.is_memory,
            "is_fp": instr.fu_class is FUClass.FP,
            "is_branch": instr.fu_class is FUClass.BRANCH,
            "critical": slack == 0,
        })
    return environments


def make_schedule_priority(
    priority: Callable[[Mapping[str, float | bool]], float],
) -> SchedulePriority:
    """Adapt a feature-env priority into the scheduler's
    ``(index, dag) -> value`` hook, caching features per DAG."""
    cache: "weakref.WeakKeyDictionary[BlockDAG, list[dict]]" = \
        weakref.WeakKeyDictionary()

    def hook(index: int, dag: BlockDAG) -> float:
        environments = cache.get(dag)
        if environments is None:
            environments = dag_environments(dag)
            cache[dag] = environments
        try:
            value = float(priority(environments[index]))
        except (ArithmeticError, ValueError, OverflowError, KeyError,
                IndexError):
            return 0.0
        if value != value:  # NaN
            return 0.0
        return value

    return hook
