"""Primitive sets for the three case studies.

These define what the compiler writer registers with the GP system:
the feature vocabulary of each hook (Table 4 for hyperblocks, the
Equation 2 terms for register allocation, the trip-count features for
prefetching) plus the expression result type.

Formerly ``repro.metaopt.features`` — a misnomer, since the module
holds :class:`~repro.gp.generate.PrimitiveSet` instances, not feature
extraction.  The old import path keeps working for one release behind
a :class:`DeprecationWarning`; the ``features`` name now belongs to
the surrogate-fitness feature extractor
(:mod:`repro.surrogate.features`).
"""

from __future__ import annotations

from repro.gp.generate import PrimitiveSet
from repro.gp.genome import FlagsSpace
from repro.gp.types import BOOL, REAL
from repro.passes.hyperblock import (
    HYPERBLOCK_BOOL_FEATURES,
    HYPERBLOCK_REAL_FEATURES,
)
from repro.passes.inline import (
    INLINE_BOOL_FEATURES,
    INLINE_FEATURES,
)
from repro.passes.prefetch import (
    PREFETCH_BOOL_FEATURES,
    PREFETCH_REAL_FEATURES,
)
from repro.passes.regalloc import (
    REGALLOC_BOOL_FEATURES,
    REGALLOC_REAL_FEATURES,
)
from repro.passes.unroll import (
    UNROLL_BOOL_FEATURES,
    UNROLL_FEATURES,
)

#: Case study I (Section 5): real-valued path priority.
HYPERBLOCK_PSET = PrimitiveSet(
    real_features=HYPERBLOCK_REAL_FEATURES,
    bool_features=HYPERBLOCK_BOOL_FEATURES,
    result_type=REAL,
    const_range=(0.0, 2.0),
)

#: Case study II (Section 6): real-valued per-block savings.
REGALLOC_PSET = PrimitiveSet(
    real_features=REGALLOC_REAL_FEATURES,
    bool_features=REGALLOC_BOOL_FEATURES,
    result_type=REAL,
    const_range=(0.0, 4.0),
)

#: Case study III (Section 7): Boolean-valued prefetch confidence.
PREFETCH_PSET = PrimitiveSet(
    real_features=PREFETCH_REAL_FEATURES,
    bool_features=PREFETCH_BOOL_FEATURES,
    result_type=BOOL,
    const_range=(0.0, 64.0),
)

#: Extension case study IV: real-valued inlining priority over legal
#: call sites (positive value inlines).  Constants range over callee
#: sizes the threshold heuristic reasons about.
INLINE_PSET = PrimitiveSet(
    real_features=INLINE_FEATURES,
    bool_features=INLINE_BOOL_FEATURES,
    result_type=REAL,
    const_range=(0.0, 32.0),
)

#: Extension case study V: real-valued unroll-factor score — evaluated
#: once per legal candidate factor, highest positive factor wins.
UNROLL_PSET = PrimitiveSet(
    real_features=UNROLL_FEATURES,
    bool_features=UNROLL_BOOL_FEATURES,
    result_type=REAL,
    const_range=(0.0, 16.0),
)

#: FOGA-style flag campaign: not a tree pset at all — a fixed-length
#: enum-gene space over CompilerOptions (repro.gp.genome).
FLAGS_SPACE = FlagsSpace()

#: Extension case study (the paper's Section 2 example, exposed):
#: real-valued list-scheduling priority.
from repro.metaopt.scheduling import SCHEDULE_PSET  # noqa: E402

PSETS = {
    "hyperblock": HYPERBLOCK_PSET,
    "regalloc": REGALLOC_PSET,
    "prefetch": PREFETCH_PSET,
    "scheduling": SCHEDULE_PSET,
    "inline": INLINE_PSET,
    "unroll": UNROLL_PSET,
    "flags": FLAGS_SPACE,
}
