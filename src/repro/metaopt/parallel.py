"""Parallel fitness evaluation.

"GP is a distributed algorithm.  With the cost of computing power at an
all-time low, it is now economically feasible to dedicate a cluster of
machines to searching a solution space" (Section 3) — the paper ran 15
to 20 machines in parallel.  This module provides the single-machine
equivalent: a process pool whose workers each hold their own
:class:`~repro.metaopt.harness.EvaluationHarness` (with its own
prepared-program and cycle caches) and evaluate candidates shipped as
s-expression text.

Usage::

    with ParallelEvaluator("hyperblock", processes=4) as evaluator:
        engine = GPEngine(pset, evaluator, benchmarks, params, seeds)
        result = engine.run()

The evaluator is a drop-in replacement for
``EvaluationHarness.evaluator()``; the GP engine's per-generation loop
is sequential, but because fitnesses are memoized the costly calls are
exactly the new (tree, benchmark) pairs, and those are what the pool
spreads out via :meth:`evaluate_batch`.
"""

from __future__ import annotations

import multiprocessing
from typing import Iterable

from repro.gp.nodes import Node
from repro.gp.parse import unparse

_WORKER_HARNESS = None
_WORKER_CASE = None


def _worker_init(case_name: str, noise_stddev: float) -> None:
    global _WORKER_HARNESS, _WORKER_CASE
    from repro.metaopt.harness import EvaluationHarness, case_study

    _WORKER_CASE = case_study(case_name)
    _WORKER_HARNESS = EvaluationHarness(_WORKER_CASE,
                                        noise_stddev=noise_stddev)


def _worker_evaluate(job: tuple[str, str, str]) -> float:
    tree_text, benchmark, dataset = job
    from repro.metaopt.priority import PriorityFunction

    priority = PriorityFunction.from_text(tree_text, _WORKER_CASE.pset)
    return _WORKER_HARNESS.speedup(priority.tree, benchmark, dataset)


class ParallelEvaluator:
    """Process-pool fitness evaluation for one case study.

    Each worker builds its own harness on first use; candidate trees
    travel as s-expression text (cheap and version-independent).
    Results are memoized in the parent as well, so the GP engine's own
    memoization layer sees a plain callable.
    """

    def __init__(self, case_name: str, processes: int = 2,
                 noise_stddev: float = 0.0) -> None:
        if processes < 1:
            raise ValueError("processes must be >= 1")
        self.case_name = case_name
        self.processes = processes
        self.noise_stddev = noise_stddev
        self._pool: multiprocessing.pool.Pool | None = None
        self._memo: dict[tuple, float] = {}
        self.jobs_dispatched = 0

    # -- lifecycle ------------------------------------------------------
    def _ensure_pool(self):
        if self._pool is None:
            context = multiprocessing.get_context("fork")
            self._pool = context.Pool(
                self.processes,
                initializer=_worker_init,
                initargs=(self.case_name, self.noise_stddev),
            )
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "ParallelEvaluator":
        self._ensure_pool()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- evaluation --------------------------------------------------------
    def evaluate_batch(
        self,
        jobs: Iterable[tuple[Node, str]],
        dataset: str = "train",
    ) -> list[float]:
        """Evaluate ``(tree, benchmark)`` pairs across the pool."""
        jobs = list(jobs)
        keyed = [(tree.structural_key(), benchmark)
                 for tree, benchmark in jobs]
        pending = []
        pending_keys = []
        for (tree, benchmark), key in zip(jobs, keyed):
            if key not in self._memo:
                pending.append((unparse(tree), benchmark, dataset))
                pending_keys.append(key)
        if pending:
            pool = self._ensure_pool()
            results = pool.map(_worker_evaluate, pending)
            self.jobs_dispatched += len(pending)
            for key, value in zip(pending_keys, results):
                self._memo[key] = value
        return [self._memo[key] for key in keyed]

    def __call__(self, tree: Node, benchmark: str) -> float:
        """GPEngine-compatible single evaluation (uses the pool so the
        worker-side caches stay warm)."""
        return self.evaluate_batch([(tree, benchmark)])[0]
