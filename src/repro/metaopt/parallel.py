"""Parallel fitness evaluation.

"GP is a distributed algorithm.  With the cost of computing power at an
all-time low, it is now economically feasible to dedicate a cluster of
machines to searching a solution space" (Section 3) — the paper ran 15
to 20 machines in parallel.  This module provides the single-machine
equivalent: a process pool whose workers each hold their own
:class:`~repro.metaopt.harness.EvaluationHarness` (with its own
prepared-program and cycle caches) and evaluate candidates shipped as
s-expression text.

Usage::

    with ParallelEvaluator("hyperblock", processes=4) as evaluator:
        engine = GPEngine(pset, evaluator, benchmarks, params, seeds)
        result = engine.run()

The evaluator is a drop-in replacement for
``EvaluationHarness.evaluator()``.  The GP engine batches each
generation's uncached ``(tree, benchmark)`` pairs into one
:meth:`evaluate_batch` call, which fans them out over the pool with
``imap_unordered`` (results are reassembled by job index, so completion
order never affects fitness values).  Workers stay warm across
generations — the pool, and with it every worker's prepared-program and
cycle caches, lives until :meth:`close`.

With ``processes=1`` no pool is created at all: the batch runs in-
process on a lazily built harness, making the parallel path a strict
superset of the serial seed path (and trivially bit-identical to it).

Candidate trees travel as s-expression text, which is cheap and
version-independent; ``parse(unparse(tree))`` is structurally exact
(including float constants), so worker-side memo keys and noise seeds
match the serial path bit-for-bit.

All evaluation knobs ride one frozen
:class:`~repro.metaopt.settings.EvalSettings`; a
``settings.fitness_cache_dir`` gives every worker (and the serial
fallback) a shared persistent :class:`~repro.metaopt.fitness_cache.
FitnessCache`; entry writes are atomic, so concurrent workers may race
benignly on the same key.

This module is also home to the shared evaluator surface: the
:class:`EvaluatorProtocol` every evaluator implements and the
:func:`make_evaluator` entry point that picks serial, process-pool, or
fleet evaluation from one set of arguments.
"""

from __future__ import annotations

import multiprocessing
from typing import TYPE_CHECKING, Iterable, Protocol, runtime_checkable

from repro import obs
from repro.gp.nodes import Node
from repro.gp.parse import unparse
from repro.metaopt.settings import EvalSettings, settings_from_kwargs
from repro.obs.metrics import diff_snapshots

if TYPE_CHECKING:
    from repro.metaopt.harness import EvaluationHarness

_WORKER_HARNESS = None
_WORKER_CASE = None
#: (case_name, EvalSettings) the globals were built for — a forked
#: worker only reuses an inherited harness when its own configuration
#: matches exactly.
_WORKER_SIGNATURE = None
#: Snapshot of the worker registry at the last shipped delta; baselines
#: out both the parent state inherited via fork and earlier jobs, so
#: each job's delta carries only its own activity.
_WORKER_METRICS_MARK = None


def _worker_init(case_name: str, settings: EvalSettings,
                 collect_metrics: bool = False) -> None:
    """Build the per-worker harness — unless this worker was forked
    from a pre-warmed parent, in which case the module globals already
    carry a harness whose prepared-program and baseline-cycle caches
    came along copy-on-write."""
    global _WORKER_HARNESS, _WORKER_CASE, _WORKER_SIGNATURE
    global _WORKER_METRICS_MARK
    if collect_metrics:
        # Reuses a registry inherited copy-on-write (enable_metrics is
        # idempotent); the mark excludes its pre-fork contents from the
        # first delta shipped back.
        _WORKER_METRICS_MARK = obs.enable_metrics().snapshot()
    else:
        obs.disable_metrics()
        _WORKER_METRICS_MARK = None
    signature = (case_name, settings)
    if _WORKER_HARNESS is not None and _WORKER_SIGNATURE == signature:
        return
    from repro.metaopt.harness import case_study

    _WORKER_CASE = case_study(case_name)
    _WORKER_HARNESS = _make_harness(_WORKER_CASE, settings)
    _WORKER_SIGNATURE = signature


def _make_harness(case, settings: EvalSettings):
    from repro.metaopt.harness import EvaluationHarness

    return EvaluationHarness(case, settings)


def _worker_evaluate(
    job: tuple[int, str, str, str]
) -> tuple[int, float, dict | None]:
    """Evaluate one job; ships a metrics *delta* (everything this
    worker recorded since its last shipped job) alongside the value so
    the parent can fold per-worker activity into its own registry."""
    global _WORKER_METRICS_MARK
    index, tree_text, benchmark, dataset = job
    from repro.metaopt.priority import PriorityFunction

    priority = PriorityFunction.from_text(tree_text, _WORKER_CASE.pset)
    value = _WORKER_HARNESS.speedup(priority.tree, benchmark, dataset)
    registry = obs.metrics()
    if registry is None:
        return index, value, None
    snapshot = registry.snapshot()
    delta = diff_snapshots(_WORKER_METRICS_MARK or {}, snapshot)
    _WORKER_METRICS_MARK = snapshot
    return index, value, delta


class ParallelEvaluator:
    """Process-pool fitness evaluation for one case study.

    Each worker builds its own harness on first use; results are
    memoized in the parent as well, so the GP engine's own memoization
    layer sees a plain callable plus an ``evaluate_batch`` fast path.
    """

    def __init__(self, case_name: str, processes: int = 2,
                 settings: EvalSettings | None = None,
                 **deprecated) -> None:
        if processes < 1:
            raise ValueError("processes must be >= 1")
        self.case_name = case_name
        self.processes = processes
        self.settings = settings_from_kwargs(settings, deprecated,
                                             "ParallelEvaluator")
        self._pool: multiprocessing.pool.Pool | None = None
        self._serial_harness = None
        self._memo: dict[tuple, float] = {}
        self.jobs_dispatched = 0
        self.batches_dispatched = 0

    # -- lifecycle ------------------------------------------------------
    def prewarm(self, benchmarks: Iterable[str],
                dataset: str = "train") -> None:
        """Run the candidate-independent work (frontend, profiling,
        baseline compile + simulate) for ``benchmarks`` once in the
        parent, *before* the pool forks.  Workers then inherit the
        warmed harness copy-on-write instead of each redoing it —
        without this, N workers pay N redundant prepares per benchmark.

        No-op for benchmarks already warmed; safe to call repeatedly.
        Benchmarks first seen after the pool exists are prepared
        per-worker as before (e.g. late DSS subset members).
        """
        global _WORKER_HARNESS, _WORKER_CASE, _WORKER_SIGNATURE
        if self.processes == 1:
            harness = self._ensure_serial_harness()
        else:
            if self._pool is not None:
                return  # workers already forked; too late to share
            signature = (self.case_name, self.settings)
            if _WORKER_HARNESS is None or _WORKER_SIGNATURE != signature:
                from repro.metaopt.harness import case_study

                _WORKER_CASE = case_study(self.case_name)
                _WORKER_HARNESS = _make_harness(_WORKER_CASE, self.settings)
                _WORKER_SIGNATURE = signature
            harness = _WORKER_HARNESS
        for benchmark in benchmarks:
            harness.prepared(benchmark)
            harness.baseline_result(benchmark, dataset)

    def _ensure_pool(self):
        if self._pool is None:
            context = multiprocessing.get_context("fork")
            self._pool = context.Pool(
                self.processes,
                initializer=_worker_init,
                initargs=(self.case_name, self.settings,
                          obs.metrics_enabled()),
            )
        return self._pool

    def _ensure_serial_harness(self):
        if self._serial_harness is None:
            from repro.metaopt.harness import case_study

            self._serial_harness = _make_harness(
                case_study(self.case_name), self.settings)
        return self._serial_harness

    def close(self, force: bool = False) -> None:
        """Shut the pool down.

        The default path lets in-flight jobs finish (``close`` +
        ``join``); ``force=True`` is the escape hatch that terminates
        workers immediately, used when unwinding from an error.
        """
        if self._pool is None:
            return
        pool, self._pool = self._pool, None
        try:
            if force:
                pool.terminate()
            else:
                pool.close()
            pool.join()
        except BaseException:
            pool.terminate()
            pool.join()
            raise

    def __enter__(self) -> "ParallelEvaluator":
        if self.processes > 1:
            self._ensure_pool()
        return self

    def __exit__(self, exc_type, *exc_info) -> None:
        self.close(force=exc_type is not None)

    # -- evaluation --------------------------------------------------------
    def _run_batch(self, pending: list[tuple[str, str, str]]) -> list[float]:
        """Evaluate unmemoized jobs; returns values in job order."""
        if self.processes == 1:
            harness = self._ensure_serial_harness()
            from repro.metaopt.priority import PriorityFunction

            results = []
            for tree_text, benchmark, dataset in pending:
                priority = PriorityFunction.from_text(
                    tree_text, harness.case.pset)
                results.append(
                    harness.speedup(priority.tree, benchmark, dataset))
            return results
        pool = self._ensure_pool()
        indexed = [(index,) + job for index, job in enumerate(pending)]
        chunksize = max(1, len(indexed) // (self.processes * 4))
        results: list[float | None] = [None] * len(pending)
        registry = obs.metrics()
        try:
            for index, value, delta in pool.imap_unordered(
                _worker_evaluate, indexed, chunksize=chunksize
            ):
                results[index] = value
                if delta is not None and registry is not None:
                    registry.merge_snapshot(delta)
        except KeyboardInterrupt:
            # Ctrl-C mid-batch: the pool's workers got the signal too
            # and may be wedged in partial jobs — terminate instead of
            # draining, then let the interrupt reach the caller (the
            # experiment runner checkpoints every generation, so the
            # in-flight generation is simply re-run on resume).
            self.close(force=True)
            raise
        return results

    def evaluate_batch(
        self,
        jobs: Iterable[tuple[Node, str]],
        dataset: str = "train",
    ) -> list[float]:
        """Evaluate ``(tree, benchmark)`` pairs across the pool."""
        jobs = list(jobs)
        keyed = [(tree.structural_key(), benchmark)
                 for tree, benchmark in jobs]
        pending = []
        pending_keys = []
        queued = set()
        for (tree, benchmark), key in zip(jobs, keyed):
            if key not in self._memo and key not in queued:
                queued.add(key)
                pending.append((unparse(tree), benchmark, dataset))
                pending_keys.append(key)
        if pending:
            if self.processes > 1 and self._pool is None:
                # First dispatch: warm the parent before forking so
                # every worker inherits the prepared programs.
                self.prewarm(sorted({job[1] for job in pending}), dataset)
            values = self._run_batch(pending)
            self.jobs_dispatched += len(pending)
            self.batches_dispatched += 1
            obs.inc("parallel.jobs", len(pending))
            obs.inc("parallel.batches")
            for key, value in zip(pending_keys, values):
                self._memo[key] = value
        return [self._memo[key] for key in keyed]

    def __call__(self, tree: Node, benchmark: str) -> float:
        """GPEngine-compatible single evaluation (uses the pool so the
        worker-side caches stay warm)."""
        return self.evaluate_batch([(tree, benchmark)])[0]

    def stats(self) -> dict[str, int]:
        """Telemetry counters for event streams and progress reports."""
        counters = {
            "processes": self.processes,
            "jobs_dispatched": self.jobs_dispatched,
            "batches_dispatched": self.batches_dispatched,
        }
        if self._serial_harness is not None:
            for key, value in self._serial_harness.stats().items():
                counters[key] = value
        return counters


@runtime_checkable
class EvaluatorProtocol(Protocol):
    """The shared evaluator surface.

    ``HarnessEvaluator`` (serial), :class:`ParallelEvaluator` (process
    pool), and :class:`~repro.fleet.FleetEvaluator` (distributed) all
    implement it, so the GP engine, the experiments runner, and the
    benchmarks can swap evaluation backends without caring which one
    they hold.  The contract every implementation must honour:

    * ``evaluate_batch`` returns fitness values **in job order**,
      regardless of completion order (order-independent reduction);
    * equal :class:`~repro.metaopt.settings.EvalSettings` produce
      bit-identical values on every backend;
    * ``stats()`` is cheap and side-effect free; ``close()`` is
      idempotent.
    """

    def __call__(self, tree: Node, benchmark: str) -> float: ...

    def evaluate_batch(
        self, jobs: Iterable[tuple[Node, str]]) -> list[float]: ...

    def stats(self) -> dict[str, int]: ...

    def close(self) -> None: ...


def make_evaluator(case_name: str,
                   settings: EvalSettings | None = None,
                   *,
                   processes: int = 1,
                   fleet: str | None = None,
                   dataset: str = "train",
                   harness: "EvaluationHarness | None" = None,
                   ) -> EvaluatorProtocol:
    """The one constructor entry point for fitness evaluators.

    * ``fleet`` set (e.g. ``"local:2"`` or ``"host:1234,host:1235"``) —
      a :class:`~repro.fleet.FleetEvaluator` sharding batches across
      serve workers (mutually exclusive with ``processes > 1``);
    * ``processes > 1`` — a :class:`ParallelEvaluator` process pool;
    * otherwise — the serial ``HarnessEvaluator``, evaluating in-process
      on ``harness`` (building one from ``settings`` when not given).

    All three speak :class:`EvaluatorProtocol` and are bit-identical
    for equal settings.
    """
    settings = settings if settings is not None else EvalSettings()
    if case_name == "flags" and (fleet is not None or processes > 1):
        # Pool workers and fleet shards ship candidates as priority-
        # function s-expressions; a flags genome is not one, and the
        # campaign is cheap enough (6 genes) that serial evaluation is
        # never the bottleneck.
        raise ValueError(
            "the flags case only supports serial evaluation — drop "
            "--processes/--fleet")
    if fleet is not None:
        if processes > 1:
            raise ValueError(
                "--fleet and --processes are mutually exclusive: the "
                "fleet already owns dispatch")
        from repro.fleet import FleetEvaluator  # lazy: avoid cycle

        return FleetEvaluator(case_name, fleet, settings, dataset=dataset)
    if processes > 1:
        return ParallelEvaluator(case_name, processes, settings)
    if harness is None:
        from repro.metaopt.harness import EvaluationHarness, case_study

        harness = EvaluationHarness(case_study(case_name), settings)
    return harness.evaluator(dataset)
