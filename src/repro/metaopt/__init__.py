"""Meta Optimization: GP search over compiler priority functions.

The package wires the GP engine (:mod:`repro.gp`) around the compiler
(:mod:`repro.passes`) exactly as Figure 2 describes: candidates are
installed into a priority-function hook, benchmarks are compiled and
simulated, and fitness is the speedup over the stock heuristic.
"""

from repro.metaopt.baselines import (
    BASELINE_TREES,
    CHOW_HENNESSY_TEXT,
    IMPACT_HYPERBLOCK_TEXT,
    ORC_PREFETCH_TEXT,
    chow_hennessy_tree,
    impact_hyperblock_tree,
    orc_prefetch_tree,
)
from repro.metaopt.fitness_cache import CacheRecord, FitnessCache
from repro.metaopt.psets import (
    HYPERBLOCK_PSET,
    PREFETCH_PSET,
    PSETS,
    REGALLOC_PSET,
)
from repro.metaopt.generalize import (
    BenchmarkScore,
    CrossValidationResult,
    GeneralizationResult,
    build_generalize_engine,
    cross_validate,
    finalize_generalization,
)
from repro.metaopt.harness import CaseStudy, EvaluationHarness, case_study
from repro.metaopt.parallel import (
    EvaluatorProtocol,
    ParallelEvaluator,
    make_evaluator,
)
from repro.metaopt.priority import PriorityFunction
from repro.metaopt.scheduling import (
    LATENCY_WEIGHTED_DEPTH_TEXT,
    SCHEDULE_PSET,
    dag_environments,
    make_schedule_priority,
)
from repro.metaopt.settings import EvalSettings
from repro.metaopt.specialize import (
    SpecializationResult,
    build_specialize_engine,
    finalize_specialization,
)

__all__ = [
    "BASELINE_TREES",
    "BenchmarkScore",
    "CHOW_HENNESSY_TEXT",
    "CacheRecord",
    "CaseStudy",
    "FitnessCache",
    "CrossValidationResult",
    "EvalSettings",
    "EvaluationHarness",
    "EvaluatorProtocol",
    "GeneralizationResult",
    "HYPERBLOCK_PSET",
    "IMPACT_HYPERBLOCK_TEXT",
    "LATENCY_WEIGHTED_DEPTH_TEXT",
    "ORC_PREFETCH_TEXT",
    "SCHEDULE_PSET",
    "PREFETCH_PSET",
    "PSETS",
    "ParallelEvaluator",
    "PriorityFunction",
    "REGALLOC_PSET",
    "SpecializationResult",
    "build_generalize_engine",
    "build_specialize_engine",
    "case_study",
    "chow_hennessy_tree",
    "cross_validate",
    "dag_environments",
    "finalize_generalization",
    "finalize_specialization",
    "make_evaluator",
    "make_schedule_priority",
    "impact_hyperblock_tree",
    "orc_prefetch_tree",
]
