"""Meta Optimization: GP search over compiler priority functions.

The package wires the GP engine (:mod:`repro.gp`) around the compiler
(:mod:`repro.passes`) exactly as Figure 2 describes: candidates are
installed into a priority-function hook, benchmarks are compiled and
simulated, and fitness is the speedup over the stock heuristic.
"""

from repro.metaopt.baselines import (
    BASELINE_TREES,
    CHOW_HENNESSY_TEXT,
    IMPACT_HYPERBLOCK_TEXT,
    ORC_PREFETCH_TEXT,
    chow_hennessy_tree,
    impact_hyperblock_tree,
    orc_prefetch_tree,
)
from repro.metaopt.features import (
    HYPERBLOCK_PSET,
    PREFETCH_PSET,
    PSETS,
    REGALLOC_PSET,
)
from repro.metaopt.generalize import (
    BenchmarkScore,
    CrossValidationResult,
    GeneralizationResult,
    cross_validate,
    generalize,
)
from repro.metaopt.harness import CaseStudy, EvaluationHarness, case_study
from repro.metaopt.parallel import ParallelEvaluator
from repro.metaopt.priority import PriorityFunction
from repro.metaopt.scheduling import (
    LATENCY_WEIGHTED_DEPTH_TEXT,
    SCHEDULE_PSET,
    dag_environments,
    make_schedule_priority,
)
from repro.metaopt.specialize import SpecializationResult, specialize

__all__ = [
    "BASELINE_TREES",
    "BenchmarkScore",
    "CHOW_HENNESSY_TEXT",
    "CaseStudy",
    "CrossValidationResult",
    "EvaluationHarness",
    "GeneralizationResult",
    "HYPERBLOCK_PSET",
    "IMPACT_HYPERBLOCK_TEXT",
    "LATENCY_WEIGHTED_DEPTH_TEXT",
    "ORC_PREFETCH_TEXT",
    "SCHEDULE_PSET",
    "PREFETCH_PSET",
    "PSETS",
    "ParallelEvaluator",
    "PriorityFunction",
    "REGALLOC_PSET",
    "SpecializationResult",
    "case_study",
    "chow_hennessy_tree",
    "cross_validate",
    "dag_environments",
    "generalize",
    "make_schedule_priority",
    "impact_hyperblock_tree",
    "orc_prefetch_tree",
    "specialize",
]
