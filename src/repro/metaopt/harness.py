"""The Meta Optimization evaluation harness.

Wraps the compiler + simulator into the fitness function of Figure 2:
a candidate priority function is installed into its case study's hook,
every training benchmark is compiled and simulated, and fitness is the
average speedup over the baseline-compiled binaries.

Costly work is cached at three levels, mirroring the paper's memoization
("Our system memoizes benchmark fitnesses because fitness evaluations
are so costly"):

* frontend + candidate-independent passes + profiling, per benchmark;
* baseline cycle counts, per (benchmark, dataset);
* candidate cycle counts, per (expression structure, benchmark,
  dataset).

A fourth, optional level persists across processes: attach a
:class:`~repro.metaopt.fitness_cache.FitnessCache` and every
tree-keyed simulation result is written through to disk and recalled
on the next run (or by a sibling worker sharing the cache directory),
skipping compile + simulate entirely.
"""

from __future__ import annotations

import itertools
import threading
import zlib
from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.metaopt.fitness_cache import FitnessCache
from repro import obs
from repro.frontend import compile_source
from repro.gp.genome import FlagsGenome, expression_text
from repro.gp.nodes import Node
from repro.machine.descr import (
    DEFAULT_EPIC,
    ITANIUM_MACHINE,
    MachineDescription,
    REGALLOC_MACHINE,
    SCHEDULING_MACHINE,
)
from repro.machine.sim import SimResult, Simulator
from repro.metaopt.baselines import BASELINE_TREES
from repro.metaopt.psets import PSETS
from repro.metaopt.priority import PriorityFunction
from repro.metaopt.settings import EvalSettings, settings_from_kwargs
from repro.passes.pipeline import (
    STAGE_BY_HOOK,
    CompilerOptions,
    PreparedProgram,
    compile_backend,
    prepare,
)
from repro.passes.snapshot import SnapshotCache
from repro.suite.registry import get as get_benchmark

#: Which CompilerOptions hook each case study's expressions occupy.
#: ``flags`` is special: the genome IS the options delta, so its
#: "hook" is a sentinel that matches no CompilerOptions field.
_HOOK_BY_CASE = {
    "hyperblock": "hyperblock_priority",
    "regalloc": "spill_priority",
    "prefetch": "prefetch_priority",
    "scheduling": "schedule_priority",
    "inline": "inline_priority",
    "unroll": "unroll_priority",
    "flags": "flags",
}

#: Cases whose candidates steer :func:`repro.passes.pipeline.prepare`
#: rather than a backend stage.  Their evaluation re-runs prepare per
#: candidate (memoized) and never forks pipeline snapshots — there is
#: no shared prefix when the front of the pipeline itself varies.
PREPARE_CASES = frozenset({"inline", "unroll", "flags"})

_DEFAULT_MACHINE = {
    "hyperblock": DEFAULT_EPIC,
    "regalloc": REGALLOC_MACHINE,
    "prefetch": ITANIUM_MACHINE,
    "scheduling": SCHEDULING_MACHINE,
    "inline": DEFAULT_EPIC,
    "unroll": DEFAULT_EPIC,
    "flags": DEFAULT_EPIC,
}


def _identity_adapter(priority):
    return priority


def _scheduling_adapter(priority):
    from repro.metaopt.scheduling import make_schedule_priority

    return make_schedule_priority(priority)


#: Adapts an env-callable into the hook's native signature.
_ADAPTER_BY_CASE = {
    "hyperblock": _identity_adapter,
    "regalloc": _identity_adapter,
    "prefetch": _identity_adapter,
    "scheduling": _scheduling_adapter,
    "inline": _identity_adapter,
    "unroll": _identity_adapter,
}


@dataclass(frozen=True)
class CaseStudy:
    """One of the paper's case studies (or the scheduling extension),
    fully configured."""

    name: str
    machine: MachineDescription
    options: CompilerOptions
    hook: str

    @property
    def pset(self):
        return PSETS[self.name]

    def baseline_tree(self):
        return BASELINE_TREES[self.name]()

    def options_for(self, priority) -> CompilerOptions:
        """Compiler options with ``priority`` installed in this case's
        hook (adapted to the hook's native signature if needed).  For
        the flags case the candidate is a genome and installs itself
        across several option fields."""
        if self.name == "flags":
            return priority.install(self.options)
        adapted = _ADAPTER_BY_CASE[self.name](priority)
        return replace(self.options, **{self.hook: adapted})


def case_study(name: str,
               machine: MachineDescription | None = None) -> CaseStudy:
    """Build a case study with the paper's experimental setup.

    * hyperblock — Table 3 EPIC machine, full pipeline;
    * regalloc — same machine with small register files (Section 6.1);
    * prefetch — Itanium-like machine, prefetch pass enabled, fitness
      measured with real-machine noise handled by the caller;
    * scheduling — extension: the Section 2 list-scheduling priority,
      evolved on the Table 3 machine;
    * inline / unroll — prepare-stage extensions: inlining priority
      and unroll-factor score, evolved on the Table 3 machine;
    * flags — FOGA-style outer GA over CompilerOptions flags and the
      hyperblock/prefetch stage order (docs/CASES.md).
    """
    if name not in _HOOK_BY_CASE:
        raise ValueError(f"unknown case study {name!r}")
    machine = machine or _DEFAULT_MACHINE[name]
    options = CompilerOptions(
        machine=machine,
        prefetch=(name == "prefetch"),
    )
    return CaseStudy(
        name=name,
        machine=machine,
        options=options,
        hook=_HOOK_BY_CASE[name],
    )


#: Registry assigning each native callable a process-unique sequence
#: number for memo keys.  Keying by raw ``id()`` would be unsound:
#: CPython reuses addresses after garbage collection, so two distinct
#: (short-lived) natives could silently alias one memo entry.  The
#: registry holds a reference to every callable it has numbered, which
#: pins the id for the life of the process.
_NATIVE_KEY_LOCK = threading.Lock()
_NATIVE_KEYS: dict[int, tuple[object, int]] = {}
_NATIVE_SEQ = itertools.count()


def _native_sequence(priority) -> int:
    with _NATIVE_KEY_LOCK:
        entry = _NATIVE_KEYS.get(id(priority))
        if entry is None or entry[0] is not priority:
            entry = (priority, next(_NATIVE_SEQ))
            _NATIVE_KEYS[id(priority)] = entry
        return entry[1]


def _priority_key(priority) -> tuple:
    if isinstance(priority, Node):
        return ("tree",) + priority.structural_key()
    if isinstance(priority, PriorityFunction):
        return ("tree",) + priority.tree.structural_key()
    if isinstance(priority, FlagsGenome):
        return priority.structural_key()  # ("flags", gene values...)
    # Distinct native callables must not share memo entries (every
    # lambda has __qualname__ "<lambda>"), so include a kept-alive
    # registry sequence number.
    return ("native", getattr(priority, "__qualname__", ""),
            _native_sequence(priority))


def _as_hook(priority):
    if isinstance(priority, Node):
        return PriorityFunction(priority)
    return priority


class EvaluationHarness:
    """Compiles and simulates benchmarks under candidate priorities.

    All evaluation knobs live in one frozen :class:`EvalSettings`
    record (``settings``); equal settings produce bit-identical
    fitness values no matter which process or host holds the harness.
    ``settings.noise_stddev`` injects multiplicative Gaussian noise
    into cycle counts (Section 7.1's real-machine noise); the noise
    seed is derived from the memo key so repeated evaluations of the
    same candidate are reproducible, like the paper's memoized
    fitnesses.

    The pre-``EvalSettings`` keyword arguments (``noise_stddev``,
    ``verify_outputs``, ``use_snapshots``) keep working for one
    release behind a :class:`DeprecationWarning`.
    """

    def __init__(self, case: CaseStudy,
                 settings: EvalSettings | None = None,
                 *,
                 max_interp_steps: int = 10_000_000,
                 fitness_cache: "FitnessCache | None" = None,
                 snapshot_cache: SnapshotCache | None = None,
                 **deprecated) -> None:
        settings = settings_from_kwargs(settings, deprecated,
                                        "EvaluationHarness")
        self.case = case
        self.settings = settings
        #: convenience mirrors of ``settings`` fields, kept because the
        #: pre-EvalSettings attribute surface is public API
        self.noise_stddev = settings.noise_stddev
        self.verify_outputs = settings.verify_outputs
        self.use_snapshots = settings.use_snapshots
        self.max_interp_steps = max_interp_steps
        #: optional persistent layer (repro.metaopt.fitness_cache);
        #: injectable, else built from ``settings.fitness_cache_dir``
        if fitness_cache is None and settings.fitness_cache_dir is not None:
            from repro.metaopt.fitness_cache import FitnessCache

            fitness_cache = FitnessCache(settings.fitness_cache_dir)
        self.fitness_cache = fitness_cache
        #: compilation forking (docs/FORKING.md): injectable for tests
        #: / sharing; built here when ``use_snapshots`` is on and none
        #: was supplied
        self.snapshot_cache = snapshot_cache
        if self.use_snapshots and self.snapshot_cache is None:
            disk_dir = None
            if (self.fitness_cache is not None
                    and self.fitness_cache.root is not None):
                disk_dir = self.fitness_cache.root / "snapshots"
            self.snapshot_cache = SnapshotCache(disk_dir=disk_dir)
        self._prepared: dict[str, PreparedProgram] = {}
        #: per-(candidate, benchmark) prepare results for the
        #: prepare-stage cases (inline/unroll/flags), bounded: prepared
        #: modules are much heavier than cycle counts.
        self._candidate_prepared: "OrderedDict[tuple, PreparedProgram]" \
            = OrderedDict()
        self._candidate_prepared_cap = 64
        self._cycles_memo: dict[tuple, SimResult] = {}
        #: content-addressed simulation memo keyed by scheduled-binary
        #: digest: distinct candidates frequently reach identical
        #: binaries, whose simulations are identical under zero noise
        self._binary_memo: dict[tuple, SimResult] = {}
        self._baseline_tree = None
        #: per-(benchmark, dataset) interpreter reference observables
        self._reference_memo: dict[tuple, tuple] = {}
        #: memo keys whose simulation diverged from the interpreter
        self._diverged: set = set()
        #: (benchmark, dataset, Divergence) records for reporting
        self.divergences: list = []
        self.compile_count = 0
        self.sim_count = 0
        self.cache_hits = 0
        #: simulations skipped because an identical binary was already run
        self.binary_hits = 0
        #: total simulated machine cycles across fresh (uncached) runs —
        #: the "simulated time" counterpart of wall-clock telemetry
        self.sim_cycles = 0

    # -- candidate-independent stages ------------------------------------
    def prepared(self, benchmark: str) -> PreparedProgram:
        cached = self._prepared.get(benchmark)
        if cached is None:
            bench = get_benchmark(benchmark)
            module = compile_source(bench.source, bench.name)
            cached = prepare(module, bench.inputs("train"),
                             self.case.options,
                             max_steps=self.max_interp_steps)
            self._prepared[benchmark] = cached
        return cached

    def _prepared_for(self, priority_key: tuple, benchmark: str,
                      options: CompilerOptions) -> PreparedProgram:
        """Per-candidate prepare for the prepare-stage cases: the
        candidate steers inlining/unrolling (or the whole flag set), so
        the "candidate-independent" prefix must be rebuilt per genome.
        Bounded LRU — one entry per (candidate, benchmark)."""
        key = (priority_key, benchmark)
        cached = self._candidate_prepared.get(key)
        if cached is not None:
            self._candidate_prepared.move_to_end(key)
            return cached
        bench = get_benchmark(benchmark)
        module = compile_source(bench.source, bench.name)
        prep = prepare(module, bench.inputs("train"), options,
                       max_steps=self.max_interp_steps)
        self._candidate_prepared[key] = prep
        while len(self._candidate_prepared) > self._candidate_prepared_cap:
            self._candidate_prepared.popitem(last=False)
        return prep

    # -- evaluation --------------------------------------------------------
    def simulate(self, priority, benchmark: str,
                 dataset: str = "train") -> SimResult:
        """Compile with ``priority`` installed and simulate on
        ``dataset``; memoized."""
        key = (_priority_key(priority), benchmark, dataset)
        cached = self._cycles_memo.get(key)
        if cached is not None:
            return cached

        persist_key = None
        persist_meta = None
        if self.fitness_cache is not None:
            persist_key = self.fitness_cache.result_key(
                case_name=self.case.name,
                machine=self.case.machine,
                noise_stddev=self.noise_stddev,
                priority_key=key[0],
                benchmark=benchmark,
                dataset=dataset,
                verified=self.verify_outputs,
            )
        if persist_key is not None:
            stored = self.fitness_cache.get(persist_key)
            if stored is not None:
                self._cycles_memo[key] = stored
                self.cache_hits += 1
                obs.inc("harness.persistent_cache_hits")
                return stored
            persist_meta = self._persist_meta(priority, benchmark, dataset)

        options = self.case.options_for(_as_hook(priority))
        if self.case.name in PREPARE_CASES:
            prep = self._prepared_for(key[0], benchmark, options)
        else:
            prep = self.prepared(benchmark)
        scheduled, _report = self._compile(prep, options, benchmark)
        self.compile_count += 1
        obs.inc("harness.compiles")

        # Content-addressed layer: two candidates that reached the
        # same binary have the same cycle count (noise is keyed per
        # candidate and the differential guard wants a live simulator,
        # so both disable the shortcut).  Rides the snapshot switch so
        # ``--no-snapshot`` is the exact seed path, digest cost included.
        digest_key = None
        if (self.use_snapshots and self.noise_stddev == 0.0
                and not self.verify_outputs):
            digest_key = (scheduled.content_digest(), benchmark, dataset)
            stored = self._binary_memo.get(digest_key)
            if stored is not None:
                self.binary_hits += 1
                obs.inc("harness.binary_cache_hits")
                self._cycles_memo[key] = stored
                if persist_key is not None:
                    self.fitness_cache.put(persist_key, stored,
                                           meta=persist_meta)
                return stored

        bench = get_benchmark(benchmark)
        simulator = Simulator(
            scheduled,
            self.case.machine,
            noise_stddev=self.noise_stddev,
            # crc32, not hash(): stable across interpreter runs so
            # memoized noisy measurements are reproducible.
            noise_seed=zlib.crc32(repr(key).encode()),
        )
        for name, values in bench.inputs(dataset).items():
            simulator.set_global(name, values)
        result = simulator.run()
        self.sim_count += 1
        self.sim_cycles += result.cycles
        obs.inc("harness.sims")
        self._cycles_memo[key] = result
        if digest_key is not None:
            self._binary_memo[digest_key] = result
        diverged = False
        if self.verify_outputs:
            diverged = self._check_against_reference(
                key, benchmark, dataset, simulator, result, scheduled)
        if persist_key is not None and not diverged:
            self.fitness_cache.put(persist_key, result, meta=persist_meta)
        return result

    def _persist_meta(self, priority, benchmark: str,
                      dataset: str) -> dict:
        """Provenance record stored beside a persisted result so
        :meth:`FitnessCache.scan` (and the surrogate trainer mining it)
        can recover the expression behind each cycle count.  Only built
        for tree-keyed priorities, which are the only persistable ones.
        """
        tree = priority.tree if isinstance(priority, PriorityFunction) \
            else priority
        return {
            "expression": expression_text(tree),
            "case": self.case.name,
            "benchmark": benchmark,
            "dataset": dataset,
            "noise_stddev": self.noise_stddev,
            "verified": self.verify_outputs,
        }

    def _compile(self, prep: PreparedProgram, options: CompilerOptions,
                 benchmark: str):
        """``compile_backend``, through the forking layer when on: the
        shared prefix is restored from a snapshot and only the hook's
        suffix runs (docs/FORKING.md).  Prepare-stage cases have no
        shared prefix (``STAGE_BY_HOOK`` carries no entry for their
        hooks) and always take the full backend path."""
        stage = STAGE_BY_HOOK.get(self.case.hook)
        if stage is None or not self.use_snapshots \
                or self.snapshot_cache is None:
            return compile_backend(prep, options)
        snapshot = self.snapshot_cache.get_or_build(
            benchmark, prep, options, stage)
        return compile_backend(prep, options, snapshot=snapshot)

    # -- differential guard ------------------------------------------------
    def _reference(self, benchmark: str, dataset: str) -> tuple:
        """Interpreter observables for (benchmark, dataset): a
        ``(result, globals, fault)`` triple, memoized."""
        ref_key = (benchmark, dataset)
        cached = self._reference_memo.get(ref_key)
        if cached is not None:
            return cached
        from repro.ir.interp import Interpreter, InterpError

        prep = self.prepared(benchmark)
        bench = get_benchmark(benchmark)
        interp = Interpreter(prep.module, max_steps=self.max_interp_steps)
        for name, values in bench.inputs(dataset).items():
            interp.set_global(name, values)
        result = fault = None
        globals_snapshot: dict[str, list] = {}
        try:
            result = interp.run()
            globals_snapshot = {
                name: interp.read_global(name)
                for name in prep.module.globals
            }
        except InterpError as exc:
            fault = str(exc)
        cached = (result, globals_snapshot, fault)
        self._reference_memo[ref_key] = cached
        return cached

    def _check_against_reference(self, key, benchmark: str, dataset: str,
                                 simulator: Simulator, result: SimResult,
                                 scheduled) -> bool:
        """Compare a fresh simulation against the interpreter; record
        and flag any divergence.  Returns True when diverged."""
        from repro.verify.differential import compare_executions

        interp_result, interp_globals, interp_fault = self._reference(
            benchmark, dataset)
        sim_globals = {
            name: simulator.read_global(name)
            for name in scheduled.module.globals
        }
        divergences = compare_executions(
            interp_result, result, interp_globals, sim_globals,
            interp_fault=interp_fault, sim_fault=None,
        )
        if not divergences:
            return False
        self._diverged.add(key)
        for divergence in divergences:
            self.divergences.append((benchmark, dataset, divergence))
        return True

    def baseline_tree(self):
        """The case's baseline expression, built once per harness (a
        fresh ``Node`` tree per call would be pure allocation churn —
        ``baseline_result`` runs inside every ``speedup``)."""
        if self._baseline_tree is None:
            self._baseline_tree = self.case.baseline_tree()
        return self._baseline_tree

    def baseline_result(self, benchmark: str,
                        dataset: str = "train") -> SimResult:
        return self.simulate(self.baseline_tree(), benchmark, dataset)

    def speedup(self, priority, benchmark: str,
                dataset: str = "train") -> float:
        """Execution-time speedup of ``priority`` over the baseline.

        With ``verify_outputs`` on, a candidate whose binary diverged
        from the interpreter gets worst-case fitness (0.0): a wrong
        answer computed quickly must never look like a speedup.
        """
        baseline = self.baseline_result(benchmark, dataset).cycles
        candidate = self.simulate(priority, benchmark, dataset).cycles
        if (_priority_key(priority), benchmark, dataset) in self._diverged:
            return 0.0
        if candidate <= 0:
            return 0.0
        return baseline / candidate

    def stats(self) -> dict[str, int]:
        """Telemetry counters for event streams and progress reports."""
        counters = {
            "compiles": self.compile_count,
            "sims": self.sim_count,
            "sim_cycles": self.sim_cycles,
            "persistent_cache_hits": self.cache_hits,
            "binary_cache_hits": self.binary_hits,
        }
        if self.verify_outputs:
            counters["divergences"] = len(self.divergences)
        if self.use_snapshots and self.snapshot_cache is not None:
            for key, value in self.snapshot_cache.stats().items():
                counters[f"snapshot_{key}"] = value
        if self.fitness_cache is not None:
            for key, value in self.fitness_cache.stats().items():
                counters[f"fitness_cache_{key}"] = value
        return counters

    def evaluator(self, dataset: str = "train") -> "HarnessEvaluator":
        """A ``(tree, benchmark) -> speedup`` callable for the GP
        engine (fitness = speedup over baseline, Table 2).  The object
        also implements ``evaluate_batch`` so the engine's generation-
        batching fast path works uniformly; here the batch is simply
        evaluated in order, preserving the serial seed semantics."""
        return HarnessEvaluator(self, dataset)


@dataclass
class HarnessEvaluator:
    """Serial fitness evaluator bound to one harness and dataset.

    Implements both halves of the engine's evaluator protocol: the
    single-pair ``__call__`` and the generation-level
    ``evaluate_batch``.  The batch form is the reference semantics the
    parallel and fleet evaluators must reproduce bit-identically.
    Implements :class:`~repro.metaopt.parallel.EvaluatorProtocol` so
    serial, process-pool, and fleet evaluation interchange freely.
    """

    harness: EvaluationHarness
    dataset: str = "train"

    def __call__(self, tree: Node, benchmark: str) -> float:
        return self.harness.speedup(tree, benchmark, self.dataset)

    def evaluate_batch(self, jobs) -> list[float]:
        return [
            self.harness.speedup(tree, benchmark, self.dataset)
            for tree, benchmark in jobs
        ]

    def stats(self) -> dict[str, int]:
        return dict(self.harness.stats())

    def close(self) -> None:
        """Nothing to release: the harness is owned by the caller."""

    def __enter__(self) -> "HarnessEvaluator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
