"""Priority-function wrappers.

The compiler hooks accept plain callables (feature env -> value).  This
module adapts GP expression trees — and their textual s-expression form
— into those callables, with the defensive behaviour evolution needs:
an expression that raises or returns NaN scores as 0 / False rather
than aborting a compile (fitness evaluation must be total).
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field
from typing import Callable

from repro.gp.generate import PrimitiveSet
from repro.gp.nodes import Node
from repro.gp.parse import parse, unparse
from repro.gp.types import BOOL, REAL


@dataclass
class PriorityFunction:
    """A GP expression usable as a compiler priority hook.

    Call it with a feature environment; it returns a float (real-typed
    trees) or bool (Boolean-typed trees).
    """

    tree: Node
    name: str = "candidate"

    def __call__(self, env: Mapping[str, float | bool]):
        try:
            value = self.tree.evaluate(env)
        except (KeyError, ArithmeticError, ValueError, OverflowError):
            return False if self.tree.result_type is BOOL else 0.0
        if self.tree.result_type is BOOL:
            return bool(value)
        value = float(value)
        if value != value:  # NaN
            return 0.0
        return value

    @property
    def text(self) -> str:
        return unparse(self.tree)

    @classmethod
    def from_text(cls, text: str, pset: PrimitiveSet,
                  name: str = "candidate") -> "PriorityFunction":
        tree = parse(text, pset.bool_feature_set())
        if tree.result_type is not pset.result_type:
            raise TypeError(
                f"{name}: expression returns {tree.result_type.value}, "
                f"hook needs {pset.result_type.value}"
            )
        return cls(tree=tree, name=name)


#: A hook that is either a wrapped GP tree or a native Python callable.
PriorityLike = Callable[[Mapping[str, float | bool]], object]
