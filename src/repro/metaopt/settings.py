"""The unified evaluation-settings record.

Fitness evaluation used to thread four independent keyword arguments —
``noise_stddev``, ``fitness_cache_dir`` (or a ``fitness_cache``
object), ``verify_outputs``, ``use_snapshots`` — through every layer
that builds an :class:`~repro.metaopt.harness.EvaluationHarness`: the
harness itself, the process-pool workers, the serving daemon's
per-thread pool, and now the fleet coordinator and its remote shards.
Each layer re-declared the same defaults, and adding a flag meant
touching five signatures.

:class:`EvalSettings` collapses that sprawl into one frozen dataclass
that travels everywhere a harness is built — including over the wire
in ``POST /v1/evaluate-batch`` requests, via :meth:`to_json_dict` /
:meth:`from_json_dict`.  Two settings objects that compare equal
produce bit-identical fitness values, which is what lets the serial
path, the process pool, and the fleet interchange freely.

The old keyword arguments keep working for one release: constructors
accept them, fold them into a settings object, and emit a
:class:`DeprecationWarning` (see :func:`settings_from_kwargs`).
"""

from __future__ import annotations

import dataclasses
import warnings
from dataclasses import dataclass

#: Deprecated keyword arguments folded into :class:`EvalSettings`,
#: mapped to their settings field.
_DEPRECATED_KWARGS = {
    "noise_stddev": "noise_stddev",
    "fitness_cache_dir": "fitness_cache_dir",
    "verify_outputs": "verify_outputs",
    "use_snapshots": "use_snapshots",
    "collect_metrics": "collect_metrics",
}


@dataclass(frozen=True)
class EvalSettings:
    """Everything that parameterizes fitness evaluation, in one frozen,
    hashable, JSON-round-trip record.

    * ``noise_stddev`` — multiplicative Gaussian cycle noise (Section
      7.1); the noise seed derives from the memo key, so any evaluator
      holding equal settings reproduces the same noisy measurement.
    * ``fitness_cache_dir`` — persistent fitness cache directory
      (:mod:`repro.metaopt.fitness_cache`); writes are atomic, so
      processes and fleet workers may share one directory.
    * ``verify_outputs`` — differential guard: check fresh simulations
      against the interpreter, score miscompiles 0.0.
    * ``use_snapshots`` — compilation forking (docs/FORKING.md).
    * ``collect_metrics`` — ship :mod:`repro.obs` metric deltas back
      from pool workers (observational only; never affects fitness).
    """

    noise_stddev: float = 0.0
    fitness_cache_dir: str | None = None
    verify_outputs: bool = False
    use_snapshots: bool = True
    collect_metrics: bool = False

    def __post_init__(self) -> None:
        if self.noise_stddev < 0.0:
            raise ValueError("noise_stddev must be >= 0")
        if self.fitness_cache_dir is not None:
            # Normalize Path objects so equal settings hash equally.
            object.__setattr__(self, "fitness_cache_dir",
                               str(self.fitness_cache_dir))

    # -- serialization (the /v1/evaluate-batch wire form) ----------------
    def to_json_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_json_dict(cls, data: dict) -> "EvalSettings":
        unknown = set(data) - {f.name for f in dataclasses.fields(cls)}
        if unknown:
            raise ValueError(
                f"unknown EvalSettings fields: {sorted(unknown)}")
        return cls(**data)

    def replace(self, **changes) -> "EvalSettings":
        return dataclasses.replace(self, **changes)


def settings_from_kwargs(settings: EvalSettings | None, kwargs: dict,
                         owner: str,
                         defaults: EvalSettings | None = None,
                         ) -> EvalSettings:
    """Fold deprecated per-flag keyword arguments into a settings
    object (warning once per call site), or return ``settings`` /
    ``defaults`` untouched.

    Passing both ``settings`` and a deprecated kwarg is an error —
    silently preferring one over the other would hide a conflict.
    """
    unknown = set(kwargs) - set(_DEPRECATED_KWARGS)
    if unknown:
        raise TypeError(
            f"{owner} got unexpected keyword argument(s) "
            f"{sorted(unknown)}")
    if not kwargs:
        return settings if settings is not None else (
            defaults if defaults is not None else EvalSettings())
    if settings is not None:
        raise TypeError(
            f"{owner}: pass either settings=EvalSettings(...) or the "
            f"deprecated keyword(s) {sorted(kwargs)}, not both")
    warnings.warn(
        f"{owner}: the keyword(s) {sorted(kwargs)} are deprecated — "
        "pass settings=EvalSettings(...) instead",
        DeprecationWarning, stacklevel=3)
    base = defaults if defaults is not None else EvalSettings()
    return base.replace(**{_DEPRECATED_KWARGS[key]: value
                           for key, value in kwargs.items()})
