"""Application-specific heuristics (Sections 5.4.1, 6.1.1, 7.2.1).

Training on a single benchmark produces a *specialized* priority
function — the paper's "advanced form of feedback directed
optimization".  The result records the train-data and novel-data
speedups (the dark and light bars of Figures 4, 9 and 13) plus the
fitness-over-generations curve (Figures 5, 10 and 14).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gp.engine import GenerationStats, GPEngine, GPParams
from repro.gp.genome import expression_text
from repro.gp.nodes import Node
from repro.metaopt.harness import CaseStudy, EvaluationHarness


@dataclass
class SpecializationResult:
    """Outcome of one per-benchmark evolution."""

    benchmark: str
    best_tree: Node
    train_speedup: float
    novel_speedup: float
    history: list[GenerationStats]
    evaluations: int
    baseline_cycles_train: int
    best_cycles_train: int

    @property
    def best_expression(self) -> str:
        return expression_text(self.best_tree)

    def fitness_curve(self) -> list[float]:
        return [stats.best_fitness for stats in self.history]


def build_specialize_engine(
    case: CaseStudy,
    benchmark: str,
    params: GPParams,
    harness: EvaluationHarness,
    seed_baseline: bool = True,
    evaluator=None,
    extra_seeds: tuple[Node, ...] = (),
) -> GPEngine:
    """The GP engine of a specialization campaign, not yet run.

    ``evaluator`` overrides the fitness evaluator driving the GP loop
    (e.g. a :class:`~repro.metaopt.parallel.ParallelEvaluator`); the
    final train/novel re-scores always run on ``harness``.  Stepping
    this engine yourself (checkpointing between generations) is what
    :class:`repro.experiments.ExperimentRunner` does.  ``extra_seeds``
    joins the initial population after the baseline — an autopilot
    campaign seeds the incumbent champion here.
    """
    seeds = (case.baseline_tree(),) if seed_baseline else ()
    seeds = seeds + tuple(extra_seeds)
    return GPEngine(
        pset=case.pset,
        evaluator=evaluator if evaluator is not None
        else harness.evaluator("train"),
        benchmarks=(benchmark,),
        params=params,
        seed_trees=seeds,
    )


def finalize_specialization(
    harness: EvaluationHarness,
    benchmark: str,
    result,
) -> SpecializationResult:
    """Score the evolved champion on train and novel data.

    ``result`` is the :class:`~repro.gp.engine.GPResult` of a finished
    specialize engine.  Re-scores always run on ``harness`` (the serial
    reference path), so parallel and resumed runs finalize identically.
    """
    best = result.best.tree
    return SpecializationResult(
        benchmark=benchmark,
        best_tree=best,
        train_speedup=harness.speedup(best, benchmark, "train"),
        novel_speedup=harness.speedup(best, benchmark, "novel"),
        history=result.history,
        evaluations=result.evaluations,
        baseline_cycles_train=harness.baseline_result(benchmark).cycles,
        best_cycles_train=harness.simulate(best, benchmark).cycles,
    )
