"""The human-written baseline priority functions, as GP expressions.

Each case study's baseline is expressed in the GP language itself so it
can seed the initial population (Section 4: "we seed the initial
population with the compiler writer's best guess ... the priority
function distributed with the compiler").  Native-callable equivalents
live next to the passes (:func:`repro.passes.hyperblock.impact_priority`
etc.); tests assert the tree and native forms agree.
"""

from __future__ import annotations

from repro.gp.genome import FlagsGenome
from repro.gp.nodes import Node
from repro.gp.parse import parse
from repro.metaopt.psets import (
    FLAGS_SPACE,
    HYPERBLOCK_PSET,
    INLINE_PSET,
    PREFETCH_PSET,
    REGALLOC_PSET,
    UNROLL_PSET,
)
from repro.metaopt.scheduling import (
    LATENCY_WEIGHTED_DEPTH_TEXT,
    SCHEDULE_PSET,
)

#: Equation 1 — IMPACT's hyperblock path priority.
IMPACT_HYPERBLOCK_TEXT = (
    "(mul exec_ratio"
    " (mul (tern (or mem_hazard has_unsafe_jsr) 0.25 1.0)"
    "      (sub 2.1 (add (div dep_height dep_height_max)"
    "                    (div num_ops num_ops_max)))))"
)

#: Equation 2 — Chow–Hennessy per-block savings.
CHOW_HENNESSY_TEXT = "(mul w (add (mul ld_save uses) (mul st_save defs)))"

#: ORC's prefetch confidence: trip count estimable and large enough to
#: amortize the prefetch instructions.
ORC_PREFETCH_TEXT = (
    "(or (and trip_known (gt static_trip 7.5))"
    "    (and (not trip_known) (gt est_trip_count 7.5)))"
)

#: The historical inlining policy as a priority: positive exactly when
#: the callee fits the fixed 24-instruction budget, so the seeded
#: baseline reproduces ``inline_module``'s default decisions exactly.
SIZE_THRESHOLD_INLINE_TEXT = "(sub 24.5 callee_ops)"

#: The historical unrolling policy as a factor score: strictly positive
#: only at factor 2 among the candidates {2, 4, 8}, so argmax picks the
#: stock factor and rolled loops stay rolled when 2 is illegal.
FIXED_FACTOR_UNROLL_TEXT = "(sub 3.0 factor)"


def impact_hyperblock_tree() -> Node:
    return parse(IMPACT_HYPERBLOCK_TEXT, HYPERBLOCK_PSET.bool_feature_set())


def chow_hennessy_tree() -> Node:
    return parse(CHOW_HENNESSY_TEXT, REGALLOC_PSET.bool_feature_set())


def orc_prefetch_tree() -> Node:
    return parse(ORC_PREFETCH_TEXT, PREFETCH_PSET.bool_feature_set())


def latency_weighted_depth_tree() -> Node:
    """Gibbons-Muchnick list-scheduling priority (extension case)."""
    return parse(LATENCY_WEIGHTED_DEPTH_TEXT,
                 SCHEDULE_PSET.bool_feature_set())


def size_threshold_inline_tree() -> Node:
    return parse(SIZE_THRESHOLD_INLINE_TEXT,
                 INLINE_PSET.bool_feature_set())


def fixed_factor_unroll_tree() -> Node:
    return parse(FIXED_FACTOR_UNROLL_TEXT,
                 UNROLL_PSET.bool_feature_set())


def default_flags_genome() -> FlagsGenome:
    """The stock CompilerOptions as a flags genome (fitness 1.0 by
    construction — it compiles exactly the baseline pipeline)."""
    return FLAGS_SPACE.default_genome()


BASELINE_TREES = {
    "hyperblock": impact_hyperblock_tree,
    "regalloc": chow_hennessy_tree,
    "prefetch": orc_prefetch_tree,
    "scheduling": latency_weighted_depth_tree,
    "inline": size_threshold_inline_tree,
    "unroll": fixed_factor_unroll_tree,
    "flags": default_flags_genome,
}
