"""The human-written baseline priority functions, as GP expressions.

Each case study's baseline is expressed in the GP language itself so it
can seed the initial population (Section 4: "we seed the initial
population with the compiler writer's best guess ... the priority
function distributed with the compiler").  Native-callable equivalents
live next to the passes (:func:`repro.passes.hyperblock.impact_priority`
etc.); tests assert the tree and native forms agree.
"""

from __future__ import annotations

from repro.gp.nodes import Node
from repro.gp.parse import parse
from repro.metaopt.psets import (
    HYPERBLOCK_PSET,
    PREFETCH_PSET,
    REGALLOC_PSET,
)
from repro.metaopt.scheduling import (
    LATENCY_WEIGHTED_DEPTH_TEXT,
    SCHEDULE_PSET,
)

#: Equation 1 — IMPACT's hyperblock path priority.
IMPACT_HYPERBLOCK_TEXT = (
    "(mul exec_ratio"
    " (mul (tern (or mem_hazard has_unsafe_jsr) 0.25 1.0)"
    "      (sub 2.1 (add (div dep_height dep_height_max)"
    "                    (div num_ops num_ops_max)))))"
)

#: Equation 2 — Chow–Hennessy per-block savings.
CHOW_HENNESSY_TEXT = "(mul w (add (mul ld_save uses) (mul st_save defs)))"

#: ORC's prefetch confidence: trip count estimable and large enough to
#: amortize the prefetch instructions.
ORC_PREFETCH_TEXT = (
    "(or (and trip_known (gt static_trip 7.5))"
    "    (and (not trip_known) (gt est_trip_count 7.5)))"
)


def impact_hyperblock_tree() -> Node:
    return parse(IMPACT_HYPERBLOCK_TEXT, HYPERBLOCK_PSET.bool_feature_set())


def chow_hennessy_tree() -> Node:
    return parse(CHOW_HENNESSY_TEXT, REGALLOC_PSET.bool_feature_set())


def orc_prefetch_tree() -> Node:
    return parse(ORC_PREFETCH_TEXT, PREFETCH_PSET.bool_feature_set())


def latency_weighted_depth_tree() -> Node:
    """Gibbons-Muchnick list-scheduling priority (extension case)."""
    return parse(LATENCY_WEIGHTED_DEPTH_TEXT,
                 SCHEDULE_PSET.bool_feature_set())


BASELINE_TREES = {
    "hyperblock": impact_hyperblock_tree,
    "regalloc": chow_hennessy_tree,
    "prefetch": orc_prefetch_tree,
    "scheduling": latency_weighted_depth_tree,
}
