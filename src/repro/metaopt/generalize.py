"""General-purpose heuristics (Sections 5.4.2, 6.1.2, 7.2.2).

Evolving over a *training set* of benchmarks with dynamic subset
selection yields one priority function intended to replace the
compiler's stock heuristic.  Cross-validation applies that function to
an unrelated *test set* — the paper's measure of generality (Figures
7, 12 and 16, the latter two on two target architectures).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gp.dss import DSSState
from repro.gp.engine import GenerationStats, GPEngine, GPParams
from repro.gp.genome import expression_text
from repro.gp.nodes import Node
from repro.metaopt.harness import CaseStudy, EvaluationHarness
from repro.metaopt.settings import EvalSettings


@dataclass
class BenchmarkScore:
    benchmark: str
    train_speedup: float
    novel_speedup: float


@dataclass
class GeneralizationResult:
    """Outcome of one DSS multi-benchmark evolution."""

    best_tree: Node
    training: list[BenchmarkScore]
    history: list[GenerationStats]
    evaluations: int

    @property
    def best_expression(self) -> str:
        return expression_text(self.best_tree)

    def average_train_speedup(self) -> float:
        """Mean train-data speedup across the training benchmarks.

        Raises :class:`ValueError` when no training scores were
        recorded (the documented contract — previously this surfaced as
        a bare ``ZeroDivisionError``).
        """
        return _mean([s.train_speedup for s in self.training],
                     "GeneralizationResult.training")

    def average_novel_speedup(self) -> float:
        """Mean novel-data speedup; raises :class:`ValueError` when no
        training scores were recorded."""
        return _mean([s.novel_speedup for s in self.training],
                     "GeneralizationResult.training")

    def fitness_curve(self) -> list[float]:
        return [stats.best_fitness for stats in self.history]


def _mean(values: list[float], what: str) -> float:
    if not values:
        raise ValueError(
            f"cannot average over an empty {what} list — the run "
            "recorded no benchmark scores")
    return sum(values) / len(values)


def build_generalize_engine(
    case: CaseStudy,
    training_set: tuple[str, ...],
    params: GPParams,
    harness: EvaluationHarness,
    subset_size: int | None = None,
    seed_baseline: bool = True,
    evaluator=None,
    extra_seeds: tuple = (),
) -> GPEngine:
    """The DSS-driven GP engine of a generalization campaign, not yet
    run.  Stepping it yourself (checkpointing between generations,
    including the attached :class:`~repro.gp.dss.DSSState`) is what
    :class:`repro.experiments.ExperimentRunner` does."""
    if not training_set:
        raise ValueError("training set must not be empty")
    if subset_size is None:
        subset_size = max(1, min(len(training_set), len(training_set) // 2 + 1))

    import random as _random

    dss = DSSState(
        benchmarks=tuple(training_set),
        subset_size=subset_size,
        rng=_random.Random(params.seed + 10_007),
    )
    seeds = (case.baseline_tree(),) if seed_baseline else ()
    seeds = seeds + tuple(extra_seeds)
    return GPEngine(
        pset=case.pset,
        evaluator=evaluator if evaluator is not None
        else harness.evaluator("train"),
        benchmarks=tuple(training_set),
        params=params,
        seed_trees=seeds,
        dss=dss,
    )


def finalize_generalization(
    case: CaseStudy,
    harness: EvaluationHarness,
    training_set: tuple[str, ...],
    result,
    seed_baseline: bool = True,
) -> GeneralizationResult:
    """Re-rank the final population on the full training set and score
    the winner.

    With DSS each individual's last fitness reflects only its last
    subset, so the top slice of the population (plus the baseline, when
    seeded) is re-scored on every training benchmark.  The baseline
    always competes here, so the champion is never worse than the stock
    heuristic on the training suite.  Re-scores run on ``harness`` (the
    serial reference path), so parallel and resumed runs finalize
    identically.
    """
    best_tree = None
    best_score = float("-inf")
    candidates = {result.best.tree.structural_key(): result.best.tree}
    if seed_baseline:
        baseline = case.baseline_tree()
        candidates.setdefault(baseline.structural_key(), baseline)
    ranked = sorted(
        result.population,
        key=lambda ind: ind.fitness if ind.fitness is not None else -1.0,
        reverse=True,
    )
    for individual in ranked[: max(3, len(ranked) // 20)]:
        candidates.setdefault(individual.tree.structural_key(),
                              individual.tree)
    for tree in candidates.values():
        score = sum(
            harness.speedup(tree, benchmark, "train")
            for benchmark in training_set
        ) / len(training_set)
        if score > best_score:
            best_score = score
            best_tree = tree

    training_scores = [
        BenchmarkScore(
            benchmark=benchmark,
            train_speedup=harness.speedup(best_tree, benchmark, "train"),
            novel_speedup=harness.speedup(best_tree, benchmark, "novel"),
        )
        for benchmark in training_set
    ]
    return GeneralizationResult(
        best_tree=best_tree,
        training=training_scores,
        history=result.history,
        evaluations=result.evaluations,
    )


@dataclass
class CrossValidationResult:
    """Best general-purpose function applied to an unseen test set."""

    scores: list[BenchmarkScore]
    machine_name: str

    def average_train_speedup(self) -> float:
        """Raises :class:`ValueError` on an empty test set (same
        contract as :class:`GeneralizationResult`)."""
        return _mean([s.train_speedup for s in self.scores],
                     "CrossValidationResult.scores")

    def average_novel_speedup(self) -> float:
        return _mean([s.novel_speedup for s in self.scores],
                     "CrossValidationResult.scores")


def cross_validate(
    case: CaseStudy,
    tree: Node,
    test_set: tuple[str, ...],
    harness: EvaluationHarness | None = None,
    settings: "EvalSettings | None" = None,
) -> CrossValidationResult:
    """Apply an evolved priority function to benchmarks it never saw.

    Pass a ``case`` built for a different machine to reproduce the
    two-architecture variants of Figures 12 and 16.
    """
    harness = harness or EvaluationHarness(case, settings)
    scores = [
        BenchmarkScore(
            benchmark=benchmark,
            train_speedup=harness.speedup(tree, benchmark, "train"),
            novel_speedup=harness.speedup(tree, benchmark, "novel"),
        )
        for benchmark in test_set
    ]
    return CrossValidationResult(scores=scores,
                                 machine_name=case.machine.name)
