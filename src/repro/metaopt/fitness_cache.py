"""Persistent, content-addressed fitness cache.

The paper memoizes benchmark fitnesses in memory because "fitness
evaluations for our problem are costly".  That memo dies with the
process, so every figure script and every resumed run re-simulates the
same candidates from scratch.  This module adds the missing layer: a
disk-backed store of :class:`~repro.machine.sim.SimResult` records,
content-addressed by everything that determines a simulation's outcome:

* the candidate expression's structural key (native-callable
  priorities are *never* persisted — their identity is process-local);
* the benchmark name and dataset;
* a fingerprint of the machine description;
* a fingerprint of the compiler + simulator source ("pipeline
  fingerprint"), so any change to a pass, the IR, the frontend or the
  simulator invalidates the whole cache rather than serving stale
  cycle counts;
* the harness noise level (noisy measurements are seeded from the memo
  key, hence reproducible, hence cacheable — but only at the same
  noise setting).

Entries are one JSON file each under ``root/<xx>/<digest>.json`` (two-
level fan-out keeps directories small); writes go to a temp file in the
same directory followed by :func:`os.replace`, so concurrent workers
sharing a cache directory can never observe a torn entry — last writer
wins with identical bytes.  An in-memory write-through dict serves
repeated lookups without touching the filesystem.

Entries written by this version carry a ``meta`` sidecar (expression
text, case, benchmark, dataset, noise, verified flag) so the cache can
be mined offline — :meth:`FitnessCache.scan` iterates every persisted
record, and that stream is the training corpus for the learned
surrogate fitness model (:mod:`repro.surrogate.train`).  Pre-meta
entries (bare ``SimResult`` dicts) still load through :meth:`get`; the
key schema is unchanged, only the on-disk envelope grew.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
import threading
from collections.abc import Iterator
from pathlib import Path
from typing import NamedTuple

from repro.machine.descr import MachineDescription
from repro.machine.sim import SimResult

#: Bump manually on semantic changes that the source fingerprint cannot
#: see (e.g. a change in how cache keys themselves are formed).
CACHE_FORMAT_VERSION = 1

#: On-disk envelope version for entries that carry a ``meta`` record.
#: Version 1 entries were bare ``SimResult`` dicts; version 2 wraps the
#: result and adds provenance so :meth:`FitnessCache.scan` can recover
#: the expression behind each cycle count.
ENTRY_SCHEMA = 2


class CacheRecord(NamedTuple):
    """One persisted simulation, as yielded by :meth:`FitnessCache.scan`.

    ``meta`` is ``None`` for entries written before the meta envelope
    existed (they are still valid results, just unattributable).
    """

    key: str
    result: SimResult
    meta: dict | None

_PIPELINE_FINGERPRINT: str | None = None


def pipeline_fingerprint() -> str:
    """Digest of every ``repro`` source file that can affect a cycle
    count.  Computed once per process; any edit to the compiler, IR,
    simulator, suite or GP evaluation semantics changes the digest and
    therefore invalidates all previously cached fitnesses."""
    global _PIPELINE_FINGERPRINT
    if _PIPELINE_FINGERPRINT is None:
        import repro

        package_root = Path(repro.__file__).parent
        digest = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            digest.update(str(path.relative_to(package_root)).encode())
            digest.update(b"\x00")
            digest.update(path.read_bytes())
            digest.update(b"\x00")
        _PIPELINE_FINGERPRINT = digest.hexdigest()[:16]
    return _PIPELINE_FINGERPRINT


def machine_fingerprint(machine: MachineDescription) -> str:
    """Stable digest of a machine description (frozen dataclass repr)."""
    return hashlib.sha256(repr(machine).encode()).hexdigest()[:16]


def is_persistable_priority_key(priority_key: tuple) -> bool:
    """Only expression trees have process-independent identity; native
    callables are keyed by ``id()`` and must stay in-memory only."""
    return bool(priority_key) and priority_key[0] == "tree"


class FitnessCache:
    """Disk-backed simulation-result store with a write-through memory
    layer.

    ``root=None`` builds a memory-only cache (useful for tests and for
    keeping one in-process layer of indirection regardless of whether
    persistence is enabled).
    """

    def __init__(self, root: str | os.PathLike | None) -> None:
        self.root = Path(root) if root is not None else None
        if self.root is not None:
            self.root.mkdir(parents=True, exist_ok=True)
        self._memory: dict[str, SimResult] = {}
        # One instance may be shared by the serving daemon's worker
        # threads; the lock covers the memory layer and the counters
        # (disk entries were already safe: atomic-rename writes).
        self._lock = threading.Lock()
        self.hits = 0
        self.disk_hits = 0
        self.misses = 0
        self.stores = 0

    # -- keys -----------------------------------------------------------
    def result_key(
        self,
        case_name: str,
        machine: MachineDescription,
        noise_stddev: float,
        priority_key: tuple,
        benchmark: str,
        dataset: str,
        verified: bool = False,
    ) -> str | None:
        """Content address for one simulation, or ``None`` when the
        priority has no stable cross-process identity.

        ``verified`` marks entries produced under the harness's
        differential guard (``verify_outputs=True``).  It is part of
        the key so a guarded run never reuses an unverified entry —
        and vice versa — even for the same candidate.
        """
        if not is_persistable_priority_key(priority_key):
            return None
        payload = repr((
            CACHE_FORMAT_VERSION,
            pipeline_fingerprint(),
            case_name,
            machine_fingerprint(machine),
            float(noise_stddev),
            priority_key,
            benchmark,
            dataset,
            bool(verified),
        ))
        return hashlib.sha256(payload.encode()).hexdigest()

    # -- lookup / store -------------------------------------------------
    def _path_for(self, key: str) -> Path:
        assert self.root is not None
        return self.root / key[:2] / f"{key}.json"

    @staticmethod
    def _parse_entry(data) -> tuple[SimResult | None, dict | None]:
        """Decode one on-disk entry in either envelope: a version-2
        ``{"schema", "result", "meta"}`` wrapper or a legacy bare
        ``SimResult`` dict.  Undecodable entries parse to ``None`` —
        a stale schema is a miss, never an error."""
        if not isinstance(data, dict):
            return None, None
        meta = None
        if "schema" in data and "result" in data:
            raw = data.get("result")
            candidate_meta = data.get("meta")
            if isinstance(candidate_meta, dict):
                meta = candidate_meta
            if not isinstance(raw, dict):
                return None, None
        else:
            raw = data
        try:
            return SimResult(**raw), meta
        except TypeError:
            return None, None

    def get(self, key: str) -> SimResult | None:
        with self._lock:
            cached = self._memory.get(key)
            if cached is not None:
                self.hits += 1
                return cached
        if self.root is not None:
            path = self._path_for(key)
            try:
                data = json.loads(path.read_text())
            except (OSError, ValueError):
                data = None
            if data is not None:
                result, _meta = self._parse_entry(data)
                if result is not None:
                    with self._lock:
                        self._memory[key] = result
                        self.hits += 1
                        self.disk_hits += 1
                    return result
        with self._lock:
            self.misses += 1
        return None

    def put(self, key: str, result: SimResult,
            meta: dict | None = None) -> None:
        """Store ``result`` under ``key``.  ``meta`` is free-form
        provenance (expression text, case, benchmark, dataset, …)
        persisted alongside the result for :meth:`scan`; it never
        affects lookups."""
        with self._lock:
            self._memory[key] = result
            self.stores += 1
        if self.root is None:
            return
        path = self._path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        data = {
            "schema": ENTRY_SCHEMA,
            "result": dataclasses.asdict(result),
        }
        if meta is not None:
            data["meta"] = meta
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(data, handle)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    # -- offline mining --------------------------------------------------
    def scan(self) -> Iterator[CacheRecord]:
        """Iterate every decodable persisted record, read-only.

        Yields :class:`CacheRecord` in deterministic (sorted-path)
        order.  Undecodable or stale-schema files are skipped silently,
        matching :meth:`get`'s treatment of them as misses.  Memory-only
        caches yield nothing: the scan surface is the disk corpus.
        """
        if self.root is None:
            return
        for path in sorted(self.root.glob("??/*.json")):
            if path.name.startswith(".tmp-"):
                continue
            try:
                data = json.loads(path.read_text())
            except (OSError, ValueError):
                continue
            result, meta = self._parse_entry(data)
            if result is None:
                continue
            yield CacheRecord(key=path.stem, result=result, meta=meta)

    # -- maintenance ----------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)

    def clear_memory(self) -> None:
        """Drop the in-memory layer (disk entries survive)."""
        with self._lock:
            self._memory.clear()

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "hits": self.hits,
                "disk_hits": self.disk_hits,
                "misses": self.misses,
                "stores": self.stores,
                "in_memory": len(self._memory),
            }


def cache_from_env(
    explicit_dir: str | None = None,
    disabled: bool = False,
    env_var: str = "REPRO_FITNESS_CACHE",
) -> FitnessCache | None:
    """Resolve CLI/env configuration into a cache (or ``None``).

    Precedence: ``disabled`` beats everything; an explicit directory
    beats the ``REPRO_FITNESS_CACHE`` environment variable; with
    neither set, persistence is off.
    """
    if disabled:
        return None
    directory = explicit_dir or os.environ.get(env_var)
    if not directory:
        return None
    return FitnessCache(directory)
