"""Deprecated alias for :mod:`repro.metaopt.psets`.

This module held the case studies' primitive sets under a misleading
name (they are GP primitive vocabularies, not feature extraction).
Import :mod:`repro.metaopt.psets` instead; this shim re-exports the
same names for one release and will then be removed.  The ``features``
name is now used by the surrogate fitness subsystem's expression
feature extractor, :mod:`repro.surrogate.features`.
"""

from __future__ import annotations

import warnings

from repro.metaopt.psets import (  # noqa: F401
    HYPERBLOCK_PSET,
    PREFETCH_PSET,
    PSETS,
    REGALLOC_PSET,
    SCHEDULE_PSET,
)

warnings.warn(
    "repro.metaopt.features is deprecated — the primitive sets moved "
    "to repro.metaopt.psets (the 'features' name now belongs to the "
    "surrogate feature extractor, repro.surrogate.features)",
    DeprecationWarning,
    stacklevel=2,
)
