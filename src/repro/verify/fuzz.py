"""Seeded MiniC fuzzer for the differential oracle.

Generates random but *well-defined* MiniC programs — every construct
that would be undefined behaviour is closed off by construction, so any
interpreter↔simulator disagreement is a compiler bug, never a property
of the program:

* integer divisors are ``((e & 7) + 1)`` and float divisors
  ``(e * e + 0.125)`` — never zero;
* array indices are masked with ``& (size - 1)`` against power-of-two
  array sizes — never out of bounds;
* loops use dedicated counter variables that nothing else assigns,
  with literal bounds (2–10) and nesting ≤ 2 — always terminating;
* helper calls are non-recursive (at most one helper, which calls
  nothing).

Floats may still produce ``inf``/``nan`` — that is fine, because both
engines run identical IEEE-double arithmetic and the oracle compares
bit patterns.

The generator builds a small statement tree, renders it to source, and
keeps the tree attached to the :class:`FuzzProgram` so the greedy
minimizer can delete subtrees (statements, whole loops, arms) and
re-test, shrinking a divergent program to a near-minimal reproducer.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.passes.pipeline import CompilerOptions
from repro.verify.differential import DifferentialResult, run_differential

#: power-of-two sizes keep index masking trivially in bounds
_ARRAY_SIZES = (8, 16, 32, 64)
_INDENT = "  "


@dataclass
class _Stmt:
    """One node of the generated statement tree."""

    text: str = ""  # simple statement (used when header is empty)
    header: str = ""  # "if (...)", "for (...)", "while (...)"
    body: list["_Stmt"] = field(default_factory=list)
    orelse: list["_Stmt"] = field(default_factory=list)
    #: minimizer may try deleting this node (declarations and loop
    #: counter updates are pinned: deleting them either breaks
    #: compilation or termination)
    deletable: bool = True

    def render(self, lines: list[str], depth: int) -> None:
        pad = _INDENT * depth
        if not self.header:
            lines.append(pad + self.text)
            return
        lines.append(f"{pad}{self.header} {{")
        for stmt in self.body:
            stmt.render(lines, depth + 1)
        lines.append(pad + "}")
        if self.orelse:
            lines.append(pad + "else {")
            for stmt in self.orelse:
                stmt.render(lines, depth + 1)
            lines.append(pad + "}")


@dataclass
class _FuncTree:
    signature: str  # e.g. "void main()" or "int h0(int a0, int a1)"
    decls: list[_Stmt]
    stmts: list[_Stmt]
    tail: list[_Stmt]  # outs / return — pinned


@dataclass
class FuzzProgram:
    """One generated test case."""

    seed: int
    source: str
    inputs: dict[str, list]
    _globals: list[str] = field(default_factory=list, repr=False)
    _funcs: list[_FuncTree] = field(default_factory=list, repr=False)

    def render(self) -> str:
        lines = [f"// fuzz seed={self.seed}"]
        lines.extend(self._globals)
        for func in self._funcs:
            lines.append("")
            lines.append(f"{func.signature} {{")
            for stmt in func.decls + func.stmts + func.tail:
                stmt.render(lines, 1)
            lines.append("}")
        return "\n".join(lines) + "\n"


class _Generator:
    """Builds one random program from a seeded RNG."""

    def __init__(self, seed: int) -> None:
        self.rng = random.Random(seed)
        self.seed = seed
        self.int_arrays: list[tuple[str, int]] = []
        self.float_arrays: list[tuple[str, int]] = []
        self._counter = 0

    def _fresh(self, prefix: str) -> str:
        self._counter += 1
        return f"{prefix}{self._counter}"

    # -- expressions -----------------------------------------------------
    def int_expr(self, ivars: list[str], depth: int) -> str:
        rng = self.rng
        if depth <= 0 or rng.random() < 0.3:
            if ivars and rng.random() < 0.6:
                return rng.choice(ivars)
            return str(rng.randint(-64, 64))
        pick = rng.random()
        a = self.int_expr(ivars, depth - 1)
        if pick < 0.10 and self.int_arrays:
            name, size = rng.choice(self.int_arrays)
            return f"{name}[({a}) & {size - 1}]"
        b = self.int_expr(ivars, depth - 1)
        if pick < 0.45:
            op = rng.choice(("+", "-", "*"))
            return f"({a} {op} {b})"
        if pick < 0.60:
            op = rng.choice(("&", "|", "^"))
            return f"({a} {op} {b})"
        if pick < 0.70:
            op = rng.choice(("/", "%"))
            return f"({a} {op} (({b} & 7) + 1))"
        if pick < 0.78:
            op = rng.choice(("<<", ">>"))
            return f"({a} {op} ({b} & 7))"
        if pick < 0.90:
            rel = rng.choice(("<", "<=", ">", ">=", "==", "!="))
            return f"({a} {rel} {b})"
        if pick < 0.95:
            return f"abs({a})"
        return f"(-{a})"

    def float_expr(self, ivars: list[str], fvars: list[str],
                   depth: int) -> str:
        rng = self.rng
        if depth <= 0 or rng.random() < 0.3:
            if fvars and rng.random() < 0.6:
                return rng.choice(fvars)
            return f"{rng.uniform(-8.0, 8.0):.3f}"
        pick = rng.random()
        a = self.float_expr(ivars, fvars, depth - 1)
        if pick < 0.10 and self.float_arrays:
            name, size = rng.choice(self.float_arrays)
            index = self.int_expr(ivars, depth - 1)
            return f"{name}[({index}) & {size - 1}]"
        if pick < 0.20:
            return f"sqrt(fabs({a}))"
        if pick < 0.28:
            return f"fabs({a})"
        b = self.float_expr(ivars, fvars, depth - 1)
        if pick < 0.70:
            op = rng.choice(("+", "-", "*"))
            return f"({a} {op} {b})"
        if pick < 0.82:
            return f"({a} / ({b} * {b} + 0.125))"
        # mixed int/float arithmetic exercises itof
        return f"({self.int_expr(ivars, depth - 1)} + {a})"

    def cond(self, ivars: list[str], depth: int) -> str:
        a = self.int_expr(ivars, depth)
        b = self.int_expr(ivars, depth)
        rel = self.rng.choice(("<", "<=", ">", ">=", "==", "!="))
        return f"({a} {rel} {b})"

    # -- statements ------------------------------------------------------
    def _block(self, ivars: list[str], fvars: list[str],
               decls: list[_Stmt], stmt_budget: int, loop_depth: int,
               allow_call: str | None) -> list[_Stmt]:
        rng = self.rng
        stmts: list[_Stmt] = []
        while stmt_budget > 0:
            stmt_budget -= 1
            pick = rng.random()
            if pick < 0.28 and ivars:
                target = rng.choice(ivars)
                stmts.append(_Stmt(
                    text=f"{target} = {self.int_expr(ivars, 3)};"))
            elif pick < 0.40 and fvars:
                target = rng.choice(fvars)
                stmts.append(_Stmt(
                    text=f"{target} = "
                         f"{self.float_expr(ivars, fvars, 3)};"))
            elif pick < 0.52 and (self.int_arrays or self.float_arrays):
                pool = ([(n, s, "int") for n, s in self.int_arrays]
                        + [(n, s, "float") for n, s in self.float_arrays])
                name, size, kind = rng.choice(pool)
                index = self.int_expr(ivars, 2)
                value = (self.int_expr(ivars, 3) if kind == "int"
                         else self.float_expr(ivars, fvars, 3))
                stmts.append(_Stmt(
                    text=f"{name}[({index}) & {size - 1}] = {value};"))
            elif pick < 0.60:
                value = (self.int_expr(ivars, 3) if rng.random() < 0.7
                         or not fvars
                         else self.float_expr(ivars, fvars, 3))
                stmts.append(_Stmt(text=f"out({value});"))
            elif pick < 0.66 and allow_call and ivars:
                target = rng.choice(ivars)
                args = f"{self.int_expr(ivars, 2)}, " \
                       f"{self.int_expr(ivars, 2)}"
                stmts.append(_Stmt(
                    text=f"{target} = {allow_call}({args});"))
            elif pick < 0.82:
                body = self._block(ivars, fvars, decls,
                                   rng.randint(1, 3), loop_depth,
                                   allow_call)
                node = _Stmt(header=f"if {self.cond(ivars, 2)}",
                             body=body)
                if rng.random() < 0.5:
                    node.orelse = self._block(ivars, fvars, decls,
                                              rng.randint(1, 2),
                                              loop_depth, allow_call)
                stmts.append(node)
            elif loop_depth < 2:
                counter = self._fresh("l")
                decls.append(_Stmt(text=f"int {counter} = 0;",
                                   deletable=False))
                bound = rng.randint(2, 10)
                body = self._block(ivars, fvars, decls,
                                   rng.randint(1, 3), loop_depth + 1,
                                   allow_call)
                if rng.random() < 0.5:
                    stmts.append(_Stmt(
                        header=f"for ({counter} = 0; {counter} < {bound};"
                               f" {counter} = {counter} + 1)",
                        body=body))
                else:
                    # while form: the counter update is pinned so the
                    # minimizer cannot create an infinite loop
                    body.append(_Stmt(
                        text=f"{counter} = {counter} + 1;",
                        deletable=False))
                    stmts.append(_Stmt(
                        header=f"while ({counter} < {bound})",
                        body=body))
        return stmts

    def _function(self, name: str, params: list[str],
                  returns_int: bool, stmt_budget: int,
                  allow_call: str | None) -> _FuncTree:
        rng = self.rng
        ivars = list(params)
        fvars: list[str] = []
        decls: list[_Stmt] = []
        for _ in range(rng.randint(2, 4)):
            var = self._fresh("i")
            decls.append(_Stmt(text=f"int {var} = {rng.randint(-32, 32)};",
                               deletable=False))
            ivars.append(var)
        for _ in range(rng.randint(1, 3)):
            var = self._fresh("f")
            decls.append(_Stmt(
                text=f"float {var} = {rng.uniform(-4.0, 4.0):.3f};",
                deletable=False))
            fvars.append(var)

        stmts = self._block(ivars, fvars, decls, stmt_budget, 0,
                            allow_call)

        tail: list[_Stmt] = []
        if returns_int:
            tail.append(_Stmt(text=f"return {self.int_expr(ivars, 2)};",
                              deletable=False))
            signature = (f"int {name}("
                         + ", ".join(f"int {p}" for p in params) + ")")
        else:
            # observe every scalar so dead-code elimination cannot hide
            # a miscompiled computation
            for var in ivars:
                tail.append(_Stmt(text=f"out({var});", deletable=False))
            for var in fvars:
                tail.append(_Stmt(text=f"out({var});", deletable=False))
            signature = f"void {name}()"
        return _FuncTree(signature=signature, decls=decls, stmts=stmts,
                         tail=tail)

    # -- whole program ---------------------------------------------------
    def program(self) -> FuzzProgram:
        rng = self.rng
        globals_src: list[str] = []
        inputs: dict[str, list] = {}
        for index in range(rng.randint(2, 4)):
            name = f"g{index}"
            size = rng.choice(_ARRAY_SIZES)
            if rng.random() < 0.65:
                globals_src.append(f"int {name}[{size}];")
                self.int_arrays.append((name, size))
                inputs[name] = [rng.randint(-100, 100)
                                for _ in range(size)]
            else:
                globals_src.append(f"float {name}[{size}];")
                self.float_arrays.append((name, size))
                inputs[name] = [round(rng.uniform(-8.0, 8.0), 3)
                                for _ in range(size)]

        funcs: list[_FuncTree] = []
        helper_name = None
        if rng.random() < 0.5:
            helper_name = "h0"
            funcs.append(self._function(
                helper_name, ["a0", "a1"], returns_int=True,
                stmt_budget=rng.randint(2, 5), allow_call=None))
        funcs.append(self._function(
            "main", [], returns_int=False,
            stmt_budget=rng.randint(4, 9), allow_call=helper_name))

        program = FuzzProgram(seed=self.seed, source="", inputs=inputs,
                              _globals=globals_src, _funcs=funcs)
        program.source = program.render()
        return program


def generate_program(seed: int) -> FuzzProgram:
    """One deterministic random program for ``seed``."""
    return _Generator(seed).program()


# ---------------------------------------------------------------------------
# Minimization
# ---------------------------------------------------------------------------


def _deletable_nodes(program: FuzzProgram) -> list[tuple[list, int]]:
    """(container, index) of every node the minimizer may remove,
    deepest first so inner statements go before their enclosing loop."""
    found: list[tuple[list, int]] = []

    def walk(container: list[_Stmt]) -> None:
        for index, stmt in enumerate(container):
            walk(stmt.body)
            walk(stmt.orelse)
            if stmt.deletable:
                found.append((container, index))

    for func in program._funcs:
        walk(func.stmts)
    return found


def minimize(
    program: FuzzProgram,
    options: CompilerOptions | None = None,
    max_steps: int = 500_000,
) -> tuple[FuzzProgram, int]:
    """Greedy divergence-preserving shrink.

    Repeatedly deletes statements (deepest first) as long as the
    program still diverges, until a fixed point.  Returns the shrunk
    program and the number of deleted statements.  A program without
    its generator tree is returned unchanged.
    """
    if not program._funcs:
        return program, 0

    def still_fails(candidate: FuzzProgram) -> bool:
        try:
            result = run_differential(candidate.source, candidate.inputs,
                                      options, max_steps=max_steps)
        except Exception:
            return False  # deletion broke compilation: reject
        return not result.equivalent

    removed = 0
    changed = True
    while changed:
        changed = False
        for container, index in _deletable_nodes(program):
            stmt = container[index]
            del container[index]
            program.source = program.render()
            if still_fails(program):
                removed += 1
                changed = True
                break  # node list is stale; re-walk
            container.insert(index, stmt)
            program.source = program.render()
    return program, removed


# ---------------------------------------------------------------------------
# Campaign driver
# ---------------------------------------------------------------------------


@dataclass
class FuzzFailure:
    """One divergent case, with its shrunk reproducer."""

    seed: int
    source: str
    minimized_source: str
    inputs: dict[str, list]
    result: DifferentialResult
    removed_stmts: int = 0


@dataclass
class FuzzReport:
    """Outcome of one fuzzing campaign."""

    count: int
    seed: int
    passed: int = 0
    agreed_faults: int = 0  # both engines faulted identically
    failures: list[FuzzFailure] = field(default_factory=list)
    generator_errors: list[tuple[int, str]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures and not self.generator_errors

    def to_json_dict(self) -> dict:
        return {
            "count": self.count,
            "seed": self.seed,
            "passed": self.passed,
            "agreed_faults": self.agreed_faults,
            "failures": [
                {
                    "seed": f.seed,
                    "source": f.source,
                    "minimized_source": f.minimized_source,
                    "inputs": f.inputs,
                    "removed_stmts": f.removed_stmts,
                    "report": f.result.to_json_dict(),
                }
                for f in self.failures
            ],
            "generator_errors": [
                {"seed": s, "error": e} for s, e in self.generator_errors
            ],
        }


def case_seed(campaign_seed: int, index: int) -> int:
    """Stable per-case seed: reproducible independently of ``count``."""
    return (campaign_seed << 20) ^ index


def fuzz(
    count: int,
    seed: int = 0,
    options: CompilerOptions | None = None,
    max_steps: int = 500_000,
    shrink: bool = True,
    on_case=None,
) -> FuzzReport:
    """Run ``count`` generated programs through the differential oracle.

    ``on_case(index, seed, equivalent)`` is an optional progress hook.
    Divergent cases are greedily minimized (``shrink=False`` skips it).
    """
    report = FuzzReport(count=count, seed=seed)
    for index in range(count):
        this_seed = case_seed(seed, index)
        try:
            program = generate_program(this_seed)
            result = run_differential(program.source, program.inputs,
                                      options, max_steps=max_steps)
        except Exception as exc:  # generator produced invalid MiniC
            report.generator_errors.append((this_seed, repr(exc)))
            if on_case is not None:
                on_case(index, this_seed, False)
            continue
        if result.equivalent:
            report.passed += 1
            if result.interp_fault is not None:
                report.agreed_faults += 1
        else:
            original = program.source
            removed = 0
            if shrink:
                program, removed = minimize(program, options,
                                            max_steps=max_steps)
            report.failures.append(FuzzFailure(
                seed=this_seed,
                source=original,
                minimized_source=program.source,
                inputs=program.inputs,
                result=result,
                removed_stmts=removed,
            ))
        if on_case is not None:
            on_case(index, this_seed, result.equivalent)
    return report
