"""Interpreter↔simulator differential oracle.

The functional interpreter (:mod:`repro.ir.interp`) defines MiniC's
reference semantics on the *unoptimized-backend* IR; the timing
simulator (:mod:`repro.machine.sim`) executes the fully optimized,
register-allocated, scheduled binary.  If the pipeline is correct the
two must agree bit-for-bit on every observable:

* the entry function's return value,
* the ``out()`` stream (order and values),
* the final contents of every global array (the program's I/O surface),
* *whether* the program faults (division by zero, step overrun) — both
  engines faulting counts as agreement, since the optimizer is free to
  reorder the fault point but not to add or remove one on the executed
  path.

``run_differential`` compiles one MiniC source under a given
:class:`~repro.passes.pipeline.CompilerOptions`, runs both engines on
the same inputs, and reports the first difference as a structured
:class:`Divergence` naming the channel (return value / out stream /
global) and the pass configuration that produced the binary — which is
exactly what a GP-evolved priority function needs attached to its
fitness report when it miscompiles.

Float comparison is by bit pattern (NaN equals NaN, ``-0.0`` differs
from ``0.0``): both engines run the same IEEE-double Python arithmetic,
so any difference is a transformation bug, never roundoff.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.frontend import compile_source
from repro.ir.interp import Interpreter, InterpError, RunResult
from repro.machine.descr import MachineDescription
from repro.machine.sim import SimError, SimResult, Simulator
from repro.passes.pipeline import (
    CompilerOptions,
    compile_backend,
    prepare,
)
from repro.verify.ir_verifier import IRVerifyError

Inputs = dict[str, list]


def values_equal(left, right) -> bool:
    """Bit-level observable equality: ints exact; floats by bit pattern
    so NaN == NaN and 0.0 != -0.0; int 1 and float 1.0 differ."""
    if isinstance(left, bool) or isinstance(right, bool):
        return left is right
    if isinstance(left, float) != isinstance(right, float):
        return False
    if isinstance(left, float):
        if math.isnan(left) or math.isnan(right):
            return math.isnan(left) and math.isnan(right)
        return left == right and math.copysign(1.0, left) == \
            math.copysign(1.0, right)
    return left == right


def _first_diff(left: list, right: list) -> int | None:
    """Index of the first differing element, or None when identical."""
    for index in range(max(len(left), len(right))):
        if index >= len(left) or index >= len(right):
            return index
        if not values_equal(left[index], right[index]):
            return index
    return None


@dataclass(frozen=True)
class Divergence:
    """One observable difference between the two engines."""

    channel: str  # "fault" | "return" | "out" | "global" | "verify"
    detail: str
    #: differing global's name ("" for non-global channels)
    symbol: str = ""
    #: first differing index within the channel (-1 if not applicable)
    index: int = -1
    interp_value: object = None
    sim_value: object = None

    def to_json_dict(self) -> dict:
        return {
            "channel": self.channel,
            "detail": self.detail,
            "symbol": self.symbol,
            "index": self.index,
            "interp_value": _jsonable(self.interp_value),
            "sim_value": _jsonable(self.sim_value),
        }

    def __str__(self) -> str:
        where = self.channel
        if self.symbol:
            where += f" {self.symbol}"
        if self.index >= 0:
            where += f"[{self.index}]"
        return (f"{where}: interp={self.interp_value!r} "
                f"sim={self.sim_value!r} ({self.detail})")


def _jsonable(value):
    if isinstance(value, float):
        if math.isnan(value):
            return "nan"
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
    return value


@dataclass
class DifferentialResult:
    """Outcome of one differential run."""

    equivalent: bool
    divergences: list[Divergence] = field(default_factory=list)
    interp_fault: str | None = None
    sim_fault: str | None = None
    interp_result: RunResult | None = None
    sim_result: SimResult | None = None
    options_summary: dict = field(default_factory=dict)

    @property
    def first(self) -> Divergence | None:
        return self.divergences[0] if self.divergences else None

    def to_json_dict(self) -> dict:
        return {
            "equivalent": self.equivalent,
            "interp_fault": self.interp_fault,
            "sim_fault": self.sim_fault,
            "divergences": [d.to_json_dict() for d in self.divergences],
            "options": self.options_summary,
        }


def options_summary(options: CompilerOptions) -> dict:
    """The pass configuration recorded in a divergence report."""
    return {
        "machine": options.machine.name,
        "inline": options.inline,
        "unroll_factor": options.unroll_factor,
        "hyperblock": options.hyperblock,
        "prefetch": options.prefetch,
        "hyperblock_threshold": options.hyperblock_threshold,
        "verify_ir": options.verify_ir,
        "custom_hyperblock_priority":
            options.hyperblock_priority.__name__ != "impact_priority",
        "custom_spill_priority":
            options.spill_priority.__name__ != "chow_hennessy_savings",
        "custom_prefetch_priority":
            options.prefetch_priority.__name__ != "orc_confidence",
    }


def compare_executions(
    interp_result: RunResult | None,
    sim_result: SimResult | None,
    interp_globals: dict[str, list] | None,
    sim_globals: dict[str, list] | None,
    interp_fault: str | None = None,
    sim_fault: str | None = None,
) -> list[Divergence]:
    """Compare the observables of two completed (or faulted) runs."""
    if interp_fault is not None or sim_fault is not None:
        if interp_fault is not None and sim_fault is not None:
            return []  # both faulted: agreement
        return [Divergence(
            channel="fault",
            detail="one engine faulted and the other completed",
            interp_value=interp_fault,
            sim_value=sim_fault,
        )]

    divergences: list[Divergence] = []
    assert interp_result is not None and sim_result is not None
    if not values_equal(interp_result.return_value,
                        sim_result.return_value):
        divergences.append(Divergence(
            channel="return",
            detail="entry function return value differs",
            interp_value=interp_result.return_value,
            sim_value=sim_result.return_value,
        ))
    diff = _first_diff(interp_result.outputs, sim_result.outputs)
    if diff is not None:
        divergences.append(Divergence(
            channel="out",
            detail=f"out() stream differs at position {diff} "
                   f"(lengths {len(interp_result.outputs)}/"
                   f"{len(sim_result.outputs)})",
            index=diff,
            interp_value=(interp_result.outputs[diff]
                          if diff < len(interp_result.outputs) else None),
            sim_value=(sim_result.outputs[diff]
                       if diff < len(sim_result.outputs) else None),
        ))
    for name in sorted(interp_globals or ()):
        left = (interp_globals or {}).get(name, [])
        right = (sim_globals or {}).get(name, [])
        diff = _first_diff(left, right)
        if diff is not None:
            divergences.append(Divergence(
                channel="global",
                detail=f"final memory of global {name!r} differs",
                symbol=name,
                index=diff,
                interp_value=left[diff] if diff < len(left) else None,
                sim_value=right[diff] if diff < len(right) else None,
            ))
    return divergences


def run_differential(
    source: str,
    inputs: Inputs | None = None,
    options: CompilerOptions | None = None,
    entry: str = "main",
    max_steps: int = 10_000_000,
    name: str = "program",
) -> DifferentialResult:
    """Compile ``source`` and execute it on both engines.

    The interpreter runs the *prepared* (pre-backend) module — the last
    point where the IR is machine-independent — and the simulator runs
    the scheduled binary, so the comparison covers every candidate-
    dependent transformation: hyperblock formation, prefetching,
    register allocation and scheduling.
    """
    options = options or CompilerOptions()
    inputs = inputs or {}
    module = compile_source(source, name)
    summary = options_summary(options)

    try:
        prepared = prepare(module, inputs, options, max_steps=max_steps)
        scheduled, _report = compile_backend(prepared)
    except IRVerifyError as exc:
        return DifferentialResult(
            equivalent=False,
            divergences=[Divergence(
                channel="verify",
                detail=f"IR verifier failed at stage {exc.stage!r}: "
                       f"{exc.issues[0]}",
                sim_value=str(exc.issues[0]),
            )],
            options_summary=summary,
        )

    interp_fault = sim_fault = None
    interp_result = sim_result = None
    interp_globals: dict[str, list] = {}
    sim_globals: dict[str, list] = {}

    interp = Interpreter(prepared.module, max_steps=max_steps)
    for global_name, values in inputs.items():
        interp.set_global(global_name, values)
    try:
        interp_result = interp.run(entry=entry)
        interp_globals = {
            global_name: interp.read_global(global_name)
            for global_name in prepared.module.globals
        }
    except InterpError as exc:
        interp_fault = str(exc)

    simulator = Simulator(scheduled, options.machine,
                          max_cycles=100 * max_steps)
    for global_name, values in inputs.items():
        simulator.set_global(global_name, values)
    try:
        sim_result = simulator.run(entry=entry)
        sim_globals = {
            global_name: simulator.read_global(global_name)
            for global_name in scheduled.module.globals
        }
    except SimError as exc:
        sim_fault = str(exc)

    divergences = compare_executions(
        interp_result, sim_result, interp_globals, sim_globals,
        interp_fault, sim_fault,
    )
    return DifferentialResult(
        equivalent=not divergences,
        divergences=divergences,
        interp_fault=interp_fault,
        sim_fault=sim_fault,
        interp_result=interp_result,
        sim_result=sim_result,
        options_summary=summary,
    )
