"""``repro.verify`` — the compiler's correctness substrate.

Three layers, each usable on its own:

* :mod:`repro.verify.ir_verifier` — structural IR invariant checks
  (CFG/terminator consistency, def-before-use along the dominator
  tree, predicate-use legality after if-conversion, register-
  assignment validity after allocation, VLIW bundle sanity), runnable
  between any two pipeline stages via ``CompilerOptions(verify_ir=True)``;
* :mod:`repro.verify.differential` — the interpreter↔simulator
  differential oracle: compile a MiniC program, execute it on both
  engines, and demand bit-identical observables (``out`` stream,
  return value, final global memory);
* :mod:`repro.verify.fuzz` — a seeded random MiniC program generator
  plus input generator and greedy test-case minimizer, driving the
  oracle at scale (``repro fuzz``).

Exports are resolved lazily (PEP 562) so that
:mod:`repro.passes.pipeline` can import the verifier without creating
an import cycle through :mod:`repro.compiler`.
"""

from __future__ import annotations

_EXPORTS = {
    "IRVerifyError": "repro.verify.ir_verifier",
    "VerifyIssue": "repro.verify.ir_verifier",
    "verify_function": "repro.verify.ir_verifier",
    "verify_module": "repro.verify.ir_verifier",
    "verify_scheduled": "repro.verify.ir_verifier",
    "Divergence": "repro.verify.differential",
    "DifferentialResult": "repro.verify.differential",
    "run_differential": "repro.verify.differential",
    "values_equal": "repro.verify.differential",
    "FuzzProgram": "repro.verify.fuzz",
    "FuzzReport": "repro.verify.fuzz",
    "generate_program": "repro.verify.fuzz",
    "fuzz": "repro.verify.fuzz",
    "minimize": "repro.verify.fuzz",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
