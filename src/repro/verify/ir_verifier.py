"""Structural IR invariant verifier.

The GP loop swaps compiler heuristics on every candidate, so each
generation runs the backend under priority functions nobody hand-
checked.  A transformation bug that *drops* work looks like a fitness
win; this module is the first line of defence, checking the invariants
every pass must preserve:

* **CFG consistency** — every block closed by exactly one trailing
  terminator, every branch target resolvable, ``block_order`` and the
  block map in agreement, terminators never guarded;
* **operand discipline** — per-opcode source arity, destination
  presence, ``rel`` only on compares, ``dest2`` only on ``cmpp``,
  symbol references resolvable, stack slots inside the frame, call
  signatures matching the callee;
* **def-before-use** — forward must-defined (definite assignment)
  analysis: every register read needs an unconditional definition on
  every path from entry (which subsumes the dominator-tree check and
  also accepts variables assigned in both arms of a diamond); reads
  that feed only prefetch hints are exempt, because speculative
  prefetch address arithmetic is unguarded by design;
* **liveness sanity** — for unpredicated functions, no virtual
  register may be live into the entry block unless it is a parameter
  (the may-analysis complement of the dominator check);
* **predicate-use legality** (after hyperblock formation) — guards
  are predicate-typed, and a register whose only definitions so far in
  its block are guarded may be read only under the same guard (the
  if-conversion invariant that arms never observe each other's temps);
* **register-assignment validity** (after allocation) — no virtual
  registers survive, and every physical register index fits its
  machine register file;
* **bundle sanity** (after scheduling) — issue-width and functional-
  unit slot limits respected, terminators in final position, and no
  instruction in a bundle reading a register written *later* in the
  same bundle (the dependence-safe order the simulator relies on).

``verify_module`` raises :class:`IRVerifyError` carrying every issue
found, each naming function, block and instruction, plus the pipeline
stage the check ran at — so a fuzzer or CI failure pinpoints the pass
that broke the invariant.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.cfg import predecessors, reachable, reverse_postorder
from repro.ir.function import Function, Module
from repro.ir.instr import Instr, Opcode, TERMINATORS
from repro.ir.liveness import analyze as liveness_analyze
from repro.ir.values import (
    FLOAT,
    INT,
    Imm,
    PRED,
    PReg,
    StackSlot,
    SymRef,
    VReg,
    is_register,
)
from repro.machine.descr import MachineDescription
from repro.machine.vliw import ScheduledModule


@dataclass(frozen=True)
class VerifyIssue:
    """One violated invariant, locatable down to the instruction."""

    function: str
    block: str | None
    instr: str | None
    message: str

    def __str__(self) -> str:
        where = self.function
        if self.block is not None:
            where += f"/{self.block}"
        if self.instr is not None:
            where += f": `{self.instr}`"
        return f"{where}: {self.message}"


class IRVerifyError(RuntimeError):
    """Raised when verification finds one or more violated invariants."""

    def __init__(self, stage: str, issues: list[VerifyIssue]) -> None:
        self.stage = stage
        self.issues = list(issues)
        lines = [f"IR verification failed at stage {stage!r} "
                 f"({len(issues)} issue(s)):"]
        lines.extend(f"  - {issue}" for issue in issues)
        super().__init__("\n".join(lines))


#: Exact source-operand arity per opcode (None = unconstrained).
_SRC_ARITY: dict[Opcode, int | None] = {
    Opcode.ADD: 2, Opcode.SUB: 2, Opcode.MUL: 2, Opcode.DIV: 2,
    Opcode.REM: 2, Opcode.AND: 2, Opcode.OR: 2, Opcode.XOR: 2,
    Opcode.SHL: 2, Opcode.SHR: 2, Opcode.FADD: 2, Opcode.FSUB: 2,
    Opcode.FMUL: 2, Opcode.FDIV: 2, Opcode.CMP: 2, Opcode.CMPP: 2,
    Opcode.NEG: 1, Opcode.FNEG: 1, Opcode.FSQRT: 1, Opcode.ITOF: 1,
    Opcode.FTOI: 1, Opcode.MOV: 1, Opcode.LEA: 1, Opcode.LOAD: 1,
    Opcode.PREFETCH: 1, Opcode.OUT: 1, Opcode.STORE: 2,
    Opcode.BR: 1, Opcode.JMP: 0,
    Opcode.RET: None,  # 0 or 1, checked separately
    Opcode.CALL: None,
}

#: Opcodes that must define a destination register.
_NEEDS_DEST = frozenset({
    Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.DIV, Opcode.REM,
    Opcode.NEG, Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.SHL,
    Opcode.SHR, Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV,
    Opcode.FNEG, Opcode.FSQRT, Opcode.ITOF, Opcode.FTOI, Opcode.CMP,
    Opcode.CMPP, Opcode.MOV, Opcode.LEA, Opcode.LOAD,
})

#: Opcodes that must NOT define a destination.
_NO_DEST = frozenset({
    Opcode.STORE, Opcode.PREFETCH, Opcode.OUT,
    Opcode.BR, Opcode.JMP, Opcode.RET,
})

#: Opcodes whose destination, when type-known, must be FLOAT.
_FLOAT_DEST = frozenset({
    Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV, Opcode.FNEG,
    Opcode.FSQRT, Opcode.ITOF,
})

#: Branch target arity.
_TARGET_ARITY = {Opcode.BR: 2, Opcode.JMP: 1}


class _FunctionVerifier:
    def __init__(
        self,
        function: Function,
        module: Module | None,
        allocated: bool,
        machine: MachineDescription | None,
    ) -> None:
        self.function = function
        self.module = module
        self.allocated = allocated
        self.machine = machine
        self.issues: list[VerifyIssue] = []

    def _issue(self, message: str, block: str | None = None,
               instr: Instr | None = None) -> None:
        self.issues.append(VerifyIssue(
            function=self.function.name,
            block=block,
            instr=str(instr) if instr is not None else None,
            message=message,
        ))

    # -- CFG structure -------------------------------------------------
    def _check_structure(self) -> bool:
        """Shape checks; returns False when too broken to analyse."""
        function = self.function
        if not function.block_order:
            self._issue("function has no blocks")
            return False
        if set(function.block_order) != set(function.blocks):
            self._issue(
                "block_order and block map disagree: "
                f"order={sorted(function.block_order)} "
                f"map={sorted(function.blocks)}"
            )
            return False
        if len(set(function.block_order)) != len(function.block_order):
            self._issue("duplicate labels in block_order")
            return False

        sound = True
        for label in function.block_order:
            block = function.blocks[label]
            if block.label != label:
                self._issue(f"block keyed {label!r} carries label "
                            f"{block.label!r}", block=label)
            if not block.instrs or not block.instrs[-1].is_terminator:
                self._issue("block is not terminated", block=label)
                sound = False
                continue
            for position, instr in enumerate(block.instrs):
                if instr.is_terminator and position != len(block.instrs) - 1:
                    self._issue("terminator mid-block", block=label,
                                instr=instr)
                    sound = False
            term = block.instrs[-1]
            if term.guard is not None:
                self._issue("terminator must not be guarded", block=label,
                            instr=term)
            expected = _TARGET_ARITY.get(term.op)
            if expected is not None and len(term.targets) != expected:
                self._issue(
                    f"{term.op.value} needs {expected} target(s), "
                    f"has {len(term.targets)}", block=label, instr=term)
                sound = False
            for target in term.targets:
                if target not in function.blocks:
                    self._issue(f"branch to unknown block {target!r}",
                                block=label, instr=term)
                    sound = False
        return sound

    # -- per-instruction operand discipline ----------------------------
    def _check_instr(self, label: str, instr: Instr) -> None:
        op = instr.op
        arity = _SRC_ARITY.get(op)
        if arity is not None and len(instr.srcs) != arity:
            self._issue(f"{op.value} expects {arity} source(s), "
                        f"has {len(instr.srcs)}", block=label, instr=instr)
        if op is Opcode.RET and len(instr.srcs) > 1:
            self._issue("ret takes at most one source", block=label,
                        instr=instr)

        if op in _NEEDS_DEST and instr.dest is None:
            self._issue(f"{op.value} requires a destination", block=label,
                        instr=instr)
        if op in _NO_DEST and instr.dest is not None:
            self._issue(f"{op.value} must not define a destination",
                        block=label, instr=instr)

        if (op in (Opcode.CMP, Opcode.CMPP)) != (instr.rel is not None):
            self._issue("rel must be set exactly on cmp/cmpp",
                        block=label, instr=instr)
        if op is Opcode.CMPP:
            if instr.dest2 is None:
                self._issue("cmpp requires a complement destination",
                            block=label, instr=instr)
            else:
                if instr.dest is not None and instr.dest == instr.dest2:
                    self._issue("cmpp destinations must be distinct",
                                block=label, instr=instr)
                for reg in (instr.dest, instr.dest2):
                    if is_register(reg) and reg.vtype is not PRED:
                        self._issue("cmpp destination must be a predicate "
                                    "register", block=label, instr=instr)
        elif instr.dest2 is not None:
            self._issue("dest2 is only legal on cmpp", block=label,
                        instr=instr)

        if op in _FLOAT_DEST and is_register(instr.dest) \
                and instr.dest.vtype is not FLOAT:
            self._issue(f"{op.value} destination must be float-typed",
                        block=label, instr=instr)
        if op is Opcode.FTOI and is_register(instr.dest) \
                and instr.dest.vtype is not INT:
            self._issue("ftoi destination must be int-typed",
                        block=label, instr=instr)

        if instr.guard is not None:
            if not is_register(instr.guard):
                self._issue("guard must be a register", block=label,
                            instr=instr)
            elif instr.guard.vtype is not PRED:
                self._issue("guard must be predicate-typed", block=label,
                            instr=instr)

        if op is Opcode.CALL:
            if instr.callee is None:
                self._issue("call lacks a callee", block=label, instr=instr)
            elif self.module is not None:
                callee = self.module.functions.get(instr.callee)
                if callee is None:
                    self._issue(f"call to unknown function "
                                f"{instr.callee!r}", block=label,
                                instr=instr)
                elif len(instr.srcs) != len(callee.params):
                    self._issue(
                        f"call passes {len(instr.srcs)} argument(s); "
                        f"{instr.callee} takes {len(callee.params)}",
                        block=label, instr=instr)
        elif instr.callee is not None:
            self._issue("callee is only legal on call", block=label,
                        instr=instr)

        for operand in instr.srcs:
            if isinstance(operand, SymRef) and self.module is not None \
                    and operand.symbol not in self.module.globals:
                self._issue(f"reference to unknown global "
                            f"{operand.symbol!r}", block=label, instr=instr)
            if isinstance(operand, StackSlot):
                if not 0 <= operand.offset < max(
                        self.function.frame_words, 1):
                    self._issue(
                        f"stack slot offset {operand.offset} outside "
                        f"frame of {self.function.frame_words} word(s)",
                        block=label, instr=instr)

        if self.allocated:
            self._check_allocated_operands(label, instr)

    def _check_allocated_operands(self, label: str, instr: Instr) -> None:
        regs = list(instr.reads()) + list(instr.writes())
        for reg in regs:
            if isinstance(reg, VReg):
                self._issue(f"virtual register {reg} survives register "
                            "allocation", block=label, instr=instr)
            elif isinstance(reg, PReg) and self.machine is not None:
                capacity = {
                    INT: self.machine.gp_registers,
                    FLOAT: self.machine.fp_registers,
                    PRED: self.machine.pred_registers,
                }[reg.vtype]
                if not 0 <= reg.index < capacity:
                    self._issue(
                        f"physical register {reg} outside the "
                        f"{reg.vtype.value} file of {capacity}",
                        block=label, instr=instr)

    # -- def-before-use / predicate legality ---------------------------
    def _speculative_uids(self) -> set[int]:
        """Instructions whose results feed *only* prefetch hints.

        The prefetch pass intentionally emits unguarded address
        arithmetic next to guarded loads (speculative prefetching of a
        possibly-garbage address is harmless: prefetches are
        non-faulting cache hints and never reach the interpreter's
        observable state), so definite-assignment does not apply to
        this slice.
        """
        speculative: set[int] = set()
        for block in self.function.ordered_blocks():
            for index, instr in enumerate(block.instrs):
                if instr.op is not Opcode.PREFETCH:
                    continue
                wanted = {r for r in instr.srcs if is_register(r)}
                # The nearest producer of each prefetch address is the
                # pass-inserted arithmetic; a block-local scan stays
                # correct even after register allocation reuses
                # physical registers across live ranges.
                for prev in reversed(block.instrs[:index]):
                    if not wanted:
                        break
                    hits = [r for r in prev.writes() if r in wanted]
                    if not hits:
                        continue
                    wanted.difference_update(hits)
                    if not prev.has_side_effects:
                        speculative.add(prev.uid)
        return speculative

    def _check_dataflow(self) -> None:
        """Definite assignment (forward must-defined analysis: a read
        needs an unconditional definition on *every* path from entry)
        plus the same-block predicate-consistency rule for guarded
        code."""
        function = self.function
        order = reverse_postorder(function)
        preds = predecessors(function)
        reach = set(order)
        params = set(function.params)
        speculative = self._speculative_uids()

        # Definite defs per block: guard-free writes, plus registers
        # written under *both* halves of a cmpp's complementary
        # predicate pair (exactly one half is true, so one write
        # executes) — the pattern if-conversion produces for variables
        # assigned in both arms of a diamond.
        uncond_defs: dict[str, set] = {
            label: _definite_defs(function.blocks[label])
            for label in order
        }

        # must_in[b] = params (entry) | ∩ over reachable preds p of
        # (must_in[p] ∪ uncond_defs[p]).  Initialised to ⊤ (None) and
        # shrunk to a fixed point; variables assigned in both arms of a
        # diamond are correctly defined at the join, which a dominator-
        # based check would miss.
        must_in: dict[str, set | None] = {label: None for label in order}
        must_in[order[0]] = set(params)
        changed = True
        while changed:
            changed = False
            for label in order[1:]:
                flows = [
                    must_in[p] | uncond_defs[p]
                    for p in preds[label]
                    if p in reach and must_in[p] is not None
                ]
                if not flows:
                    continue
                new = set.intersection(*flows)
                if must_in[label] is None or new != must_in[label]:
                    must_in[label] = new
                    changed = True

        for label in order:
            avail = set(must_in[label] or ())
            #: regs whose only defs so far in this block are guarded:
            #: reg -> set of guards that defined it
            cond_defs: dict[object, set] = {}
            #: predicate implication: q -> guards whose truth is implied
            #: by q being true.  Hyperblock formation clears every inner
            #: predicate (``mov p, 0``) before the guarded ``cmpp`` that
            #: may set it, so p=true proves the cmpp's guard held —
            #: which is what makes nested predication legal (an op
            #: guarded by an inner predicate may read values defined
            #: under the outer one).
            implied: dict[object, set] = {}
            #: predicates currently known false unless a guarded def fires
            cleared: set = set()
            #: cmpp pairs: predicate -> (complement, cmpp's own guard)
            pairs: dict[object, tuple[object, object]] = {}

            def _read_ok(reg, guard) -> tuple[bool, set | None]:
                if reg in avail:
                    return True, None
                guards = cond_defs.get(reg)
                if guards is None:
                    return False, None
                if guard is not None:
                    known = {guard} | implied.get(guard, set())
                    if guards & known:
                        return True, guards
                return False, guards

            for instr in function.blocks[label].instrs:
                for reg in instr.reads():
                    if not is_register(reg):
                        continue
                    if instr.uid in speculative:
                        continue
                    ok, guards = _read_ok(reg, instr.guard)
                    if ok:
                        continue
                    if guards is not None:
                        self._issue(
                            f"read of {reg} defined only under "
                            f"unrelated predicate(s) "
                            f"{sorted(str(g) for g in guards)}",
                            block=label, instr=instr)
                    else:
                        self._issue(
                            f"read of {reg} with no dominating "
                            "definition", block=label, instr=instr)
                is_clearing_mov = (
                    instr.op is Opcode.MOV and instr.guard is None
                    and len(instr.srcs) == 1
                    and isinstance(instr.srcs[0], Imm)
                    and instr.srcs[0].value == 0
                )
                if instr.op is Opcode.CMPP and instr.dest is not None \
                        and instr.dest2 is not None:
                    pairs[instr.dest] = (instr.dest2, instr.guard)
                    pairs[instr.dest2] = (instr.dest, instr.guard)
                for reg in instr.writes():
                    if not is_register(reg):
                        continue
                    if instr.guard is None:
                        avail.add(reg)
                        cond_defs.pop(reg, None)
                        if reg.vtype is PRED:
                            if is_clearing_mov:
                                cleared.add(reg)
                                implied.pop(reg, None)
                            else:
                                cleared.discard(reg)
                                implied[reg] = set()
                    else:
                        if reg not in avail:
                            _note_guarded_def(reg, instr.guard, avail,
                                              cond_defs, pairs)
                        if reg.vtype is PRED:
                            facts = {instr.guard} | implied.get(
                                instr.guard, set())
                            if reg in cleared:
                                cleared.discard(reg)
                                implied[reg] = facts
                            elif reg in implied:
                                # Another possible truth-def: only the
                                # common implications survive.
                                implied[reg] &= facts
                            else:
                                implied[reg] = set()

    def _check_entry_liveness(self) -> None:
        """For unpredicated code, liveness must not expose any use of a
        non-parameter register to the entry block (a path-sensitive
        complement of the dominator check)."""
        function = self.function
        has_guards = any(
            instr.guard is not None for instr in function.instructions()
        )
        if has_guards:
            # Guarded defs count as uses in the liveness equations (a
            # squashed write preserves the old value), which makes
            # entry-liveness unusable as an invariant; the dominator
            # and predicate-consistency checks cover predicated code.
            return
        live_in = liveness_analyze(function)[function.block_order[0]].live_in
        loose = {reg for reg in live_in if reg not in set(function.params)}
        for reg in sorted(loose, key=str):
            self._issue(f"{reg} is live into the entry block but is not "
                        "a parameter (use without a definition on some "
                        "path)", block=function.block_order[0])

    # -- driver --------------------------------------------------------
    def run(self) -> list[VerifyIssue]:
        if not self._check_structure():
            return self.issues
        for label in self.function.block_order:
            for instr in self.function.blocks[label].instrs:
                self._check_instr(label, instr)
        if self.issues:
            # Operand-level breakage makes dataflow results unreliable.
            return self.issues
        reach = reachable(self.function)
        if reach:
            self._check_dataflow()
            self._check_entry_liveness()
        return self.issues


def _note_guarded_def(reg, guard, avail: set, cond_defs: dict,
                      pairs: dict) -> None:
    """Record a write of ``reg`` under ``guard``; when both halves of a
    complementary predicate pair have written it, promote the register
    to definitely-assigned (one half is always true).  A pair whose
    cmpp was itself guarded promotes to a def under the cmpp's guard
    instead, which handles nested if-conversion."""
    while True:
        guards = cond_defs.setdefault(reg, set())
        guards.add(guard)
        pair = pairs.get(guard)
        if pair is None:
            return
        partner, outer = pair
        if partner not in guards:
            return
        if outer is None:
            avail.add(reg)
            cond_defs.pop(reg, None)
            return
        guard = outer


def _definite_defs(block) -> set:
    """Registers definitely assigned by the end of ``block`` regardless
    of entry state: unguarded writes plus complement-pair writes."""
    avail: set = set()
    cond_defs: dict = {}
    pairs: dict = {}
    for instr in block.instrs:
        if instr.op is Opcode.CMPP and instr.dest is not None \
                and instr.dest2 is not None:
            pairs[instr.dest] = (instr.dest2, instr.guard)
            pairs[instr.dest2] = (instr.dest, instr.guard)
        for reg in instr.writes():
            if not is_register(reg):
                continue
            if instr.guard is None:
                avail.add(reg)
                cond_defs.pop(reg, None)
            elif reg not in avail:
                _note_guarded_def(reg, instr.guard, avail, cond_defs,
                                  pairs)
    return avail


def verify_function(
    function: Function,
    module: Module | None = None,
    allocated: bool = False,
    machine: MachineDescription | None = None,
) -> list[VerifyIssue]:
    """Check one function; returns the (possibly empty) issue list."""
    return _FunctionVerifier(function, module, allocated, machine).run()


def verify_module(
    module: Module,
    stage: str = "ir",
    allocated: bool = False,
    machine: MachineDescription | None = None,
) -> None:
    """Check every function in ``module``; raises :class:`IRVerifyError`
    (tagged with ``stage``) when any invariant is violated."""
    issues: list[VerifyIssue] = []
    for function in module.functions.values():
        issues.extend(verify_function(function, module,
                                      allocated=allocated, machine=machine))
    if issues:
        raise IRVerifyError(stage, issues)


def verify_scheduled(
    scheduled: ScheduledModule,
    machine: MachineDescription,
    stage: str = "schedule",
) -> None:
    """Bundle-level invariants of scheduled code.

    The simulator executes each bundle sequentially and relies on the
    scheduler emitting dependence-safe intra-bundle order; this check
    makes that contract explicit.
    """
    issues: list[VerifyIssue] = []

    def issue(func: str, block: str, instr: Instr | None,
              message: str) -> None:
        issues.append(VerifyIssue(
            function=func, block=block,
            instr=str(instr) if instr is not None else None,
            message=message))

    slots = machine.slots()
    for func in scheduled.functions.values():
        if set(func.block_order) != set(func.blocks):
            issue(func.name, "<layout>", None,
                  "block_order and block map disagree")
            continue
        for label in func.block_order:
            block = func.blocks[label]
            flat = block.flat_instructions()
            if not flat or not flat[-1].is_terminator:
                issue(func.name, label, None,
                      "scheduled block does not end with its terminator")
            for position, instr in enumerate(flat):
                if instr.is_terminator and position != len(flat) - 1:
                    issue(func.name, label, instr,
                          "terminator not in final bundle position")
            for succ in (flat[-1].targets if flat
                         and flat[-1].op in TERMINATORS else ()):
                if succ not in func.blocks:
                    issue(func.name, label, None,
                          f"branch to unknown block {succ!r}")
            for bundle in block.bundles:
                if len(bundle) > machine.issue_width:
                    issue(func.name, label, None,
                          f"bundle of {len(bundle)} ops exceeds issue "
                          f"width {machine.issue_width}")
                by_class: dict = {}
                written: set = set()
                for instr in bundle:
                    by_class[instr.fu_class] = \
                        by_class.get(instr.fu_class, 0) + 1
                    # RAW edges carry the producer's latency (>= 1), so
                    # a true dependence can never be satisfied inside
                    # one cycle; only WAR/WAW may share a bundle, and
                    # the scheduler keeps source order for those.  A
                    # sequential walk that reads a register written
                    # earlier in the same bundle is therefore a
                    # same-cycle RAW — exactly the hazard that would
                    # make the simulator's sequential execution diverge
                    # from VLIW timing.
                    reads = list(instr.reads())
                    if instr.guard is not None:
                        # A squashed write preserves the old value: a
                        # guarded def implicitly reads its destinations.
                        reads.extend(instr.writes())
                    for reg in reads:
                        if is_register(reg) and reg in written:
                            issue(func.name, label, instr,
                                  f"reads {reg} written earlier in the "
                                  "same bundle (same-cycle RAW)")
                    written.update(
                        reg for reg in instr.writes() if is_register(reg))
                for fu_class, used in by_class.items():
                    if used > slots[fu_class]:
                        issue(func.name, label, None,
                              f"bundle issues {used} {fu_class.value} "
                              f"op(s); machine has {slots[fu_class]}")
    if issues:
        raise IRVerifyError(stage, issues)
