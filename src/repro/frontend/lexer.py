"""MiniC lexer.

Tokenizes the small C-like benchmark language.  Supported lexemes:

* keywords: ``int float void if else while for return break continue out``
* identifiers, decimal integer literals, floating literals (``1.5``,
  ``.5``, ``2.``), punctuation and operators including ``&& || == != <=
  >= << >>``
* comments: ``// line`` and ``/* block */``
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.frontend.errors import LexError, SourceLocation


class TokKind(enum.Enum):
    IDENT = "ident"
    INT_LIT = "int_lit"
    FLOAT_LIT = "float_lit"
    KEYWORD = "keyword"
    PUNCT = "punct"
    EOF = "eof"


KEYWORDS = frozenset(
    {"int", "float", "void", "if", "else", "while", "for",
     "return", "break", "continue", "out"}
)

#: Multi-character operators, longest-match-first.
_MULTI_PUNCT = ("<<", ">>", "<=", ">=", "==", "!=", "&&", "||")
_SINGLE_PUNCT = set("+-*/%<>=!&|^(){}[];,")


@dataclass(frozen=True, slots=True)
class Token:
    kind: TokKind
    text: str
    location: SourceLocation

    def is_punct(self, text: str) -> bool:
        return self.kind is TokKind.PUNCT and self.text == text

    def is_keyword(self, text: str) -> bool:
        return self.kind is TokKind.KEYWORD and self.text == text

    def __str__(self) -> str:
        return f"{self.kind.value}({self.text!r})@{self.location}"


def tokenize(source: str) -> list[Token]:
    """Lex ``source`` into tokens, ending with an EOF token."""
    tokens: list[Token] = []
    line = 1
    column = 1
    index = 0
    length = len(source)

    def here() -> SourceLocation:
        return SourceLocation(line, column)

    def advance(count: int = 1) -> None:
        nonlocal index, line, column
        for _ in range(count):
            if index < length and source[index] == "\n":
                line += 1
                column = 1
            else:
                column += 1
            index += 1

    while index < length:
        char = source[index]
        # Whitespace
        if char in " \t\r\n":
            advance()
            continue
        # Comments
        if source.startswith("//", index):
            while index < length and source[index] != "\n":
                advance()
            continue
        if source.startswith("/*", index):
            start = here()
            advance(2)
            while index < length and not source.startswith("*/", index):
                advance()
            if index >= length:
                raise LexError("unterminated block comment", start)
            advance(2)
            continue
        # Numbers
        if char.isdigit() or (char == "." and index + 1 < length
                              and source[index + 1].isdigit()):
            start = here()
            begin = index
            seen_dot = False
            while index < length and (source[index].isdigit()
                                      or (source[index] == "." and not seen_dot)):
                if source[index] == ".":
                    seen_dot = True
                advance()
            # Trailing '.': "2." is a float literal
            text = source[begin:index]
            if index < length and source[index].isalpha():
                raise LexError(f"malformed number near {text!r}", start)
            kind = TokKind.FLOAT_LIT if seen_dot else TokKind.INT_LIT
            tokens.append(Token(kind, text, start))
            continue
        # Identifiers / keywords
        if char.isalpha() or char == "_":
            start = here()
            begin = index
            while index < length and (source[index].isalnum()
                                      or source[index] == "_"):
                advance()
            text = source[begin:index]
            kind = TokKind.KEYWORD if text in KEYWORDS else TokKind.IDENT
            tokens.append(Token(kind, text, start))
            continue
        # Operators / punctuation
        matched = False
        for punct in _MULTI_PUNCT:
            if source.startswith(punct, index):
                tokens.append(Token(TokKind.PUNCT, punct, here()))
                advance(len(punct))
                matched = True
                break
        if matched:
            continue
        if char in _SINGLE_PUNCT:
            tokens.append(Token(TokKind.PUNCT, char, here()))
            advance()
            continue
        raise LexError(f"unexpected character {char!r}", here())

    tokens.append(Token(TokKind.EOF, "", here()))
    return tokens
