"""MiniC recursive-descent parser.

Grammar (EBNF, left-recursion removed)::

    program    := (global_decl | func_decl)*
    global_decl:= type IDENT ('[' INT ']')? ('=' '{' literal,* '}' | '=' literal)? ';'
    func_decl  := ('void' | type) IDENT '(' params? ')' block
    params     := type IDENT (',' type IDENT)*
    block      := '{' stmt* '}'
    stmt       := decl | assign ';' | if | while | for | return ';'
                | 'break' ';' | 'continue' ';' | 'out' '(' expr ')' ';'
                | expr ';' | block
    decl       := type IDENT ('[' INT ']')? ('=' expr)? ';'
    assign     := lvalue '=' expr
    if         := 'if' '(' expr ')' block ('else' (block | if))?
    while      := 'while' '(' expr ')' block
    for        := 'for' '(' assign? ';' expr? ';' assign? ')' block
    expr       := or_expr
    or_expr    := and_expr ('||' and_expr)*
    and_expr   := bitor ('&&' bitor)*
    bitor      := bitxor ('|' bitxor)*
    bitxor     := bitand ('^' bitand)*
    bitand     := equality ('&' equality)*
    equality   := relational (('=='|'!=') relational)*
    relational := shift (('<'|'<='|'>'|'>=') shift)*
    shift      := additive (('<<'|'>>') additive)*
    additive   := multiplicative (('+'|'-') multiplicative)*
    multiplicative := unary (('*'|'/'|'%') unary)*
    unary      := ('-'|'!') unary | postfix
    postfix    := IDENT '(' args? ')' | IDENT '[' expr ']' | IDENT
                | literal | '(' expr ')'

Braces are mandatory on ``if``/``while``/``for`` bodies (except
``else if`` chains), which keeps benchmark sources unambiguous.
"""

from __future__ import annotations

from repro.frontend import astnodes as ast
from repro.frontend.errors import SyntaxErrorMC
from repro.frontend.lexer import TokKind, Token, tokenize


class Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token helpers ----------------------------------------------------
    def _peek(self, ahead: int = 0) -> Token:
        index = min(self._pos + ahead, len(self._tokens) - 1)
        return self._tokens[index]

    def _next(self) -> Token:
        token = self._peek()
        if token.kind is not TokKind.EOF:
            self._pos += 1
        return token

    def _expect_punct(self, text: str) -> Token:
        token = self._next()
        if not token.is_punct(text):
            raise SyntaxErrorMC(f"expected {text!r}, got {token.text!r}",
                                token.location)
        return token

    def _expect_ident(self) -> Token:
        token = self._next()
        if token.kind is not TokKind.IDENT:
            raise SyntaxErrorMC(f"expected identifier, got {token.text!r}",
                                token.location)
        return token

    def _at_type(self) -> bool:
        return self._peek().is_keyword("int") or self._peek().is_keyword("float")

    def _parse_type(self) -> str:
        token = self._next()
        if token.is_keyword("int") or token.is_keyword("float"):
            return token.text
        raise SyntaxErrorMC(f"expected type, got {token.text!r}", token.location)

    # -- program ------------------------------------------------------------
    def parse_program(self) -> ast.Program:
        start = self._peek().location
        globals_: list[ast.GlobalDecl] = []
        functions: list[ast.FuncDecl] = []
        while self._peek().kind is not TokKind.EOF:
            if self._peek().is_keyword("void"):
                functions.append(self._parse_function())
                continue
            if not self._at_type():
                raise SyntaxErrorMC(
                    f"expected declaration, got {self._peek().text!r}",
                    self._peek().location,
                )
            # Distinguish function from global: type IDENT '(' ...
            if self._peek(2).is_punct("("):
                functions.append(self._parse_function())
            else:
                globals_.append(self._parse_global())
        return ast.Program(start, globals_, functions)

    def _parse_global(self) -> ast.GlobalDecl:
        ctype = self._parse_type()
        name_token = self._expect_ident()
        array_size: int | None = None
        if self._peek().is_punct("["):
            self._next()
            size_token = self._next()
            if size_token.kind is not TokKind.INT_LIT:
                raise SyntaxErrorMC("array size must be an integer literal",
                                    size_token.location)
            array_size = int(size_token.text)
            self._expect_punct("]")
        init: list[float | int] = []
        if self._peek().is_punct("="):
            self._next()
            if self._peek().is_punct("{"):
                self._next()
                while not self._peek().is_punct("}"):
                    init.append(self._parse_literal_value(ctype))
                    if self._peek().is_punct(","):
                        self._next()
                self._expect_punct("}")
            else:
                init.append(self._parse_literal_value(ctype))
        self._expect_punct(";")
        return ast.GlobalDecl(name_token.location, ctype, name_token.text,
                              array_size, init)

    def _parse_literal_value(self, ctype: str) -> float | int:
        negative = False
        if self._peek().is_punct("-"):
            self._next()
            negative = True
        token = self._next()
        if token.kind is TokKind.INT_LIT:
            value: float | int = int(token.text)
        elif token.kind is TokKind.FLOAT_LIT:
            value = float(token.text)
        else:
            raise SyntaxErrorMC("expected literal initializer", token.location)
        if ctype == "float":
            value = float(value)
        elif isinstance(value, float):
            raise SyntaxErrorMC("float initializer for int object",
                                token.location)
        return -value if negative else value

    def _parse_function(self) -> ast.FuncDecl:
        token = self._next()
        if token.is_keyword("void"):
            return_type = "void"
        elif token.is_keyword("int") or token.is_keyword("float"):
            return_type = token.text
        else:
            raise SyntaxErrorMC("expected return type", token.location)
        name_token = self._expect_ident()
        self._expect_punct("(")
        params: list[ast.Param] = []
        if not self._peek().is_punct(")"):
            while True:
                ptype = self._parse_type()
                pname = self._expect_ident()
                params.append(ast.Param(pname.location, ptype, pname.text))
                if self._peek().is_punct(","):
                    self._next()
                    continue
                break
        self._expect_punct(")")
        body = self._parse_block()
        return ast.FuncDecl(name_token.location, return_type,
                            name_token.text, params, body)

    # -- statements -----------------------------------------------------------
    def _parse_block(self) -> ast.BlockStmt:
        open_token = self._expect_punct("{")
        body: list[ast.Stmt] = []
        while not self._peek().is_punct("}"):
            if self._peek().kind is TokKind.EOF:
                raise SyntaxErrorMC("unterminated block", open_token.location)
            body.append(self._parse_stmt())
        self._expect_punct("}")
        return ast.BlockStmt(open_token.location, body)

    def _parse_stmt(self) -> ast.Stmt:
        token = self._peek()
        if token.is_punct("{"):
            return self._parse_block()
        if self._at_type():
            return self._parse_decl()
        if token.is_keyword("if"):
            return self._parse_if()
        if token.is_keyword("while"):
            return self._parse_while()
        if token.is_keyword("for"):
            return self._parse_for()
        if token.is_keyword("return"):
            self._next()
            value = None
            if not self._peek().is_punct(";"):
                value = self._parse_expr()
            self._expect_punct(";")
            return ast.ReturnStmt(token.location, value)
        if token.is_keyword("break"):
            self._next()
            self._expect_punct(";")
            return ast.BreakStmt(token.location)
        if token.is_keyword("continue"):
            self._next()
            self._expect_punct(";")
            return ast.ContinueStmt(token.location)
        if token.is_keyword("out"):
            self._next()
            self._expect_punct("(")
            value = self._parse_expr()
            self._expect_punct(")")
            self._expect_punct(";")
            return ast.OutStmt(token.location, value)
        # assignment or expression statement
        statement = self._parse_assign_or_expr()
        self._expect_punct(";")
        return statement

    def _parse_decl(self) -> ast.DeclStmt:
        ctype = self._parse_type()
        name_token = self._expect_ident()
        array_size: int | None = None
        if self._peek().is_punct("["):
            self._next()
            size_token = self._next()
            if size_token.kind is not TokKind.INT_LIT:
                raise SyntaxErrorMC("array size must be an integer literal",
                                    size_token.location)
            array_size = int(size_token.text)
            self._expect_punct("]")
        init = None
        if self._peek().is_punct("="):
            if array_size is not None:
                raise SyntaxErrorMC("local arrays cannot have initializers",
                                    self._peek().location)
            self._next()
            init = self._parse_expr()
        self._expect_punct(";")
        return ast.DeclStmt(name_token.location, ctype, name_token.text,
                            array_size, init)

    def _parse_assign_or_expr(self) -> ast.Stmt:
        checkpoint = self._pos
        token = self._peek()
        if token.kind is TokKind.IDENT:
            lvalue = self._try_parse_lvalue()
            if lvalue is not None and self._peek().is_punct("="):
                self._next()
                value = self._parse_expr()
                return ast.AssignStmt(token.location, lvalue, value)
            self._pos = checkpoint
        expr = self._parse_expr()
        return ast.ExprStmt(token.location, expr)

    def _try_parse_lvalue(self) -> ast.VarRef | ast.ArrayRef | None:
        token = self._next()
        if self._peek().is_punct("["):
            self._next()
            index = self._parse_expr()
            if not self._peek().is_punct("]"):
                return None
            self._next()
            return ast.ArrayRef(token.location, token.text, index)
        return ast.VarRef(token.location, token.text)

    def _parse_if(self) -> ast.IfStmt:
        token = self._next()  # 'if'
        self._expect_punct("(")
        condition = self._parse_expr()
        self._expect_punct(")")
        then_body = self._parse_block()
        else_body = None
        if self._peek().is_keyword("else"):
            self._next()
            if self._peek().is_keyword("if"):
                nested = self._parse_if()
                else_body = ast.BlockStmt(nested.location, [nested])
            else:
                else_body = self._parse_block()
        return ast.IfStmt(token.location, condition, then_body, else_body)

    def _parse_while(self) -> ast.WhileStmt:
        token = self._next()
        self._expect_punct("(")
        condition = self._parse_expr()
        self._expect_punct(")")
        body = self._parse_block()
        return ast.WhileStmt(token.location, condition, body)

    def _parse_for(self) -> ast.ForStmt:
        token = self._next()
        self._expect_punct("(")
        init = None
        if not self._peek().is_punct(";"):
            parsed = self._parse_assign_or_expr()
            if not isinstance(parsed, ast.AssignStmt):
                raise SyntaxErrorMC("for-init must be an assignment",
                                    token.location)
            init = parsed
        self._expect_punct(";")
        condition = None
        if not self._peek().is_punct(";"):
            condition = self._parse_expr()
        self._expect_punct(";")
        step = None
        if not self._peek().is_punct(")"):
            parsed = self._parse_assign_or_expr()
            if not isinstance(parsed, ast.AssignStmt):
                raise SyntaxErrorMC("for-step must be an assignment",
                                    token.location)
            step = parsed
        self._expect_punct(")")
        body = self._parse_block()
        return ast.ForStmt(token.location, init, condition, step, body)

    # -- expressions -----------------------------------------------------------
    def _parse_expr(self) -> ast.Expr:
        return self._parse_binary(0)

    _PRECEDENCE: list[tuple[str, ...]] = [
        ("||",),
        ("&&",),
        ("|",),
        ("^",),
        ("&",),
        ("==", "!="),
        ("<", "<=", ">", ">="),
        ("<<", ">>"),
        ("+", "-"),
        ("*", "/", "%"),
    ]

    def _parse_binary(self, level: int) -> ast.Expr:
        if level >= len(self._PRECEDENCE):
            return self._parse_unary()
        operators = self._PRECEDENCE[level]
        left = self._parse_binary(level + 1)
        while (self._peek().kind is TokKind.PUNCT
               and self._peek().text in operators):
            op_token = self._next()
            right = self._parse_binary(level + 1)
            left = ast.Binary(op_token.location, op_token.text, left, right)
        return left

    def _parse_unary(self) -> ast.Expr:
        token = self._peek()
        if token.is_punct("-") or token.is_punct("!"):
            self._next()
            operand = self._parse_unary()
            return ast.Unary(token.location, token.text, operand)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        token = self._next()
        if token.kind is TokKind.INT_LIT:
            return ast.IntLit(token.location, int(token.text))
        if token.kind is TokKind.FLOAT_LIT:
            return ast.FloatLit(token.location, float(token.text))
        if token.is_punct("("):
            expr = self._parse_expr()
            self._expect_punct(")")
            return expr
        if token.kind is TokKind.IDENT:
            if self._peek().is_punct("("):
                self._next()
                args: list[ast.Expr] = []
                if not self._peek().is_punct(")"):
                    while True:
                        args.append(self._parse_expr())
                        if self._peek().is_punct(","):
                            self._next()
                            continue
                        break
                self._expect_punct(")")
                return ast.Call(token.location, token.text, args)
            if self._peek().is_punct("["):
                self._next()
                index = self._parse_expr()
                self._expect_punct("]")
                return ast.ArrayRef(token.location, token.text, index)
            return ast.VarRef(token.location, token.text)
        raise SyntaxErrorMC(f"unexpected token {token.text!r}", token.location)


def parse_source(source: str) -> ast.Program:
    """Lex and parse a MiniC translation unit."""
    return Parser(tokenize(source)).parse_program()
