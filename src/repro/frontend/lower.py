"""Lowering: MiniC AST -> three-address IR.

Decisions that matter downstream:

* **Scalars in registers.**  Locals and parameters live in virtual
  registers; global scalars live in memory (size-1 arrays) and are
  loaded/stored at each access.
* **Short-circuit control flow.**  ``&&``/``||`` lower to branches, so
  integer benchmarks produce exactly the dense, small-block control flow
  that makes hyperblock formation interesting (Figure 3's motivation).
* **Hazard marking.**  A load/store whose address depends on another
  load in the same expression (``a[b[i]]``) is flagged as a hazard, as
  are all calls — these feed the Table 4 hyperblock features and the
  IMPACT baseline's hazard penalty.
* **Word addressing.**  ``a[i]`` is at ``base + i`` (every element is
  one word); the cache model scales to bytes itself.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.frontend import astnodes as ast
from repro.frontend.errors import SemanticError
from repro.frontend.parser import parse_source
from repro.frontend.sema import Symbol, analyze
from repro.ir.block import Block
from repro.ir.function import Function, GlobalArray, Module
from repro.ir.instr import (
    Instr,
    Opcode,
    Rel,
    binop,
    br,
    call,
    cmp,
    jmp,
    lea,
    load,
    mov,
    out,
    ret,
    store,
)
from repro.ir.values import FLOAT, INT, Imm, IRType, Operand, StackSlot, SymRef, VReg

_ARITH_INT = {"+": Opcode.ADD, "-": Opcode.SUB, "*": Opcode.MUL,
              "/": Opcode.DIV, "%": Opcode.REM}
_ARITH_FLOAT = {"+": Opcode.FADD, "-": Opcode.FSUB, "*": Opcode.FMUL,
                "/": Opcode.FDIV}
_BITWISE = {"&": Opcode.AND, "|": Opcode.OR, "^": Opcode.XOR,
            "<<": Opcode.SHL, ">>": Opcode.SHR}
_RELS = {"<": Rel.LT, "<=": Rel.LE, ">": Rel.GT, ">=": Rel.GE,
         "==": Rel.EQ, "!=": Rel.NE}


def _ir_type(ctype: str) -> IRType:
    return FLOAT if ctype == "float" else INT


@dataclass
class _Value:
    """An expression result: the operand plus a memory-taint flag."""

    operand: Operand
    ctype: str
    tainted: bool = False


class _FunctionLowerer:
    def __init__(self, module: Module, func: ast.FuncDecl) -> None:
        self.module = module
        params = []
        self._slots: dict[int, object] = {}
        self.function = Function(
            func.name, [], None if func.return_type == "void"
            else _ir_type(func.return_type),
        )
        for param in func.params:
            symbol: Symbol = param.symbol  # type: ignore[attr-defined]
            reg = self.function.new_vreg(_ir_type(param.ctype), param.name)
            self.function.params.append(reg)
            self._slots[symbol.uid] = reg
        self.func_ast = func
        self.block = self.function.new_block("entry")
        #: (break_target, continue_target) stack
        self._loop_stack: list[tuple[str, str]] = []

    # -- block plumbing ------------------------------------------------------
    def _emit(self, instr: Instr) -> None:
        self.block.append(instr)

    def _start_block(self, hint: str) -> Block:
        new_block = self.function.new_block(hint)
        self.block = new_block
        return new_block

    def _close_with(self, instr: Instr) -> None:
        if not self.block.is_closed():
            self.block.append(instr)

    # -- registers ------------------------------------------------------------
    def _temp(self, ctype: str, name: str = "t") -> VReg:
        return self.function.new_vreg(_ir_type(ctype), name)

    def _coerce(self, value: _Value, want: str) -> _Value:
        if value.ctype == want:
            return value
        if isinstance(value.operand, Imm):
            raw = value.operand.value
            converted = float(raw) if want == "float" else int(raw)
            return _Value(Imm(converted, _ir_type(want)), want, value.tainted)
        dest = self._temp(want, "cv")
        op = Opcode.ITOF if want == "float" else Opcode.FTOI
        self._emit(Instr(op, dest=dest, srcs=(value.operand,)))
        return _Value(dest, want, value.tainted)

    # -- program entry -----------------------------------------------------------
    def lower(self) -> Function:
        self._lower_block(self.func_ast.body)
        if not self.block.is_closed():
            if self.function.return_type is None:
                self._close_with(ret())
            else:
                zero = Imm(0 if self.function.return_type is INT else 0.0,
                           self.function.return_type)
                self._close_with(ret(zero))
        self.function.validate()
        return self.function

    # -- statements -----------------------------------------------------------------
    def _lower_block(self, block: ast.BlockStmt) -> None:
        for stmt in block.body:
            if self.block.is_closed():
                # Unreachable code after return/break: skip quietly.
                break
            self._lower_stmt(stmt)

    def _lower_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.BlockStmt):
            self._lower_block(stmt)
        elif isinstance(stmt, ast.DeclStmt):
            self._lower_decl(stmt)
        elif isinstance(stmt, ast.AssignStmt):
            self._lower_assign(stmt)
        elif isinstance(stmt, ast.IfStmt):
            self._lower_if(stmt)
        elif isinstance(stmt, ast.WhileStmt):
            self._lower_while(stmt)
        elif isinstance(stmt, ast.ForStmt):
            self._lower_for(stmt)
        elif isinstance(stmt, ast.ReturnStmt):
            if stmt.value is None:
                self._close_with(ret())
            else:
                value = self._lower_expr(stmt.value)
                want = ("float" if self.function.return_type is FLOAT else "int")
                value = self._coerce(value, want)
                self._close_with(ret(value.operand))
        elif isinstance(stmt, ast.BreakStmt):
            self._close_with(jmp(self._loop_stack[-1][0]))
        elif isinstance(stmt, ast.ContinueStmt):
            self._close_with(jmp(self._loop_stack[-1][1]))
        elif isinstance(stmt, ast.OutStmt):
            value = self._lower_expr(stmt.value)
            operand = value.operand
            if isinstance(operand, Imm):
                temp = self._temp(value.ctype)
                self._emit(mov(temp, operand))
                operand = temp
            self._emit(out(operand))
        elif isinstance(stmt, ast.ExprStmt):
            self._lower_expr(stmt.expr, result_used=False)
        else:  # pragma: no cover
            raise SemanticError(f"cannot lower {stmt!r}", stmt.location)

    def _lower_decl(self, stmt: ast.DeclStmt) -> None:
        symbol: Symbol = stmt.symbol  # type: ignore[attr-defined]
        if symbol.kind == "local_array":
            offset = self.function.alloc_stack(symbol.array_size, symbol.name)
            self._slots[symbol.uid] = StackSlot(offset, symbol.name)
            return
        reg = self.function.new_vreg(_ir_type(symbol.ctype), symbol.name)
        self._slots[symbol.uid] = reg
        if stmt.init is not None:
            value = self._coerce(self._lower_expr(stmt.init), symbol.ctype)
            self._emit(mov(reg, value.operand))
        else:
            zero = Imm(0 if symbol.ctype == "int" else 0.0, _ir_type(symbol.ctype))
            self._emit(mov(reg, zero))

    def _lower_assign(self, stmt: ast.AssignStmt) -> None:
        target = stmt.target
        symbol: Symbol = target.symbol  # type: ignore[attr-defined]
        value = self._coerce(self._lower_expr(stmt.value), symbol.ctype)
        if isinstance(target, ast.VarRef):
            if symbol.kind == "global":
                addr = self._temp("int", "ga")
                self._emit(lea(addr, SymRef(symbol.name)))
                self._emit(store(addr, self._materialize(value)))
            else:
                reg = self._slots[symbol.uid]
                self._emit(mov(reg, value.operand))
        else:  # ArrayRef
            addr, hazard = self._array_address(target)
            self._emit(store(addr, self._materialize(value), hazard=hazard))

    def _materialize(self, value: _Value) -> Operand:
        """Stores take register operands; move immediates into a temp."""
        if isinstance(value.operand, Imm):
            temp = self._temp(value.ctype)
            self._emit(mov(temp, value.operand))
            return temp
        return value.operand

    def _lower_if(self, stmt: ast.IfStmt) -> None:
        condition = self._lower_expr(stmt.condition)
        then_block = self.function.new_block("then")
        join_label: str | None = None
        if stmt.else_body is not None:
            else_block = self.function.new_block("else")
            self._close_with(br(self._materialize(condition),
                                then_block.label, else_block.label))
            self.block = then_block
            self._lower_block(stmt.then_body)
            then_tail = self.block
            self.block = else_block
            self._lower_block(stmt.else_body)
            else_tail = self.block
            if not then_tail.is_closed() or not else_tail.is_closed():
                join = self.function.new_block("join")
                join_label = join.label
                if not then_tail.is_closed():
                    then_tail.append(jmp(join.label))
                if not else_tail.is_closed():
                    else_tail.append(jmp(join.label))
                self.block = join
            else:
                # Both arms return/break: continue in a fresh dead block
                # that lowering of the remaining statements will skip.
                self.block = then_tail
        else:
            join = self.function.new_block("join")
            self._close_with(br(self._materialize(condition),
                                then_block.label, join.label))
            self.block = then_block
            self._lower_block(stmt.then_body)
            if not self.block.is_closed():
                self.block.append(jmp(join.label))
            self.block = join

    def _lower_while(self, stmt: ast.WhileStmt) -> None:
        header = self.function.new_block("while_head")
        self._close_with(jmp(header.label))
        self.block = header
        condition = self._lower_expr(stmt.condition)
        body = self.function.new_block("while_body")
        exit_block = self.function.new_block("while_exit")
        self._close_with(br(self._materialize(condition),
                            body.label, exit_block.label))
        self._loop_stack.append((exit_block.label, header.label))
        self.block = body
        self._lower_block(stmt.body)
        if not self.block.is_closed():
            self.block.append(jmp(header.label))
        self._loop_stack.pop()
        self.block = exit_block

    def _lower_for(self, stmt: ast.ForStmt) -> None:
        if stmt.init is not None:
            self._lower_assign(stmt.init)
        header = self.function.new_block("for_head")
        self._close_with(jmp(header.label))
        self.block = header
        body = self.function.new_block("for_body")
        step_block = self.function.new_block("for_step")
        exit_block = self.function.new_block("for_exit")
        if stmt.condition is not None:
            condition = self._lower_expr(stmt.condition)
            self._close_with(br(self._materialize(condition),
                                body.label, exit_block.label))
        else:
            self._close_with(jmp(body.label))
        self._loop_stack.append((exit_block.label, step_block.label))
        self.block = body
        self._lower_block(stmt.body)
        if not self.block.is_closed():
            self.block.append(jmp(step_block.label))
        self._loop_stack.pop()
        self.block = step_block
        if stmt.step is not None:
            self._lower_assign(stmt.step)
        self._close_with(jmp(header.label))
        self.block = exit_block

    # -- expressions ---------------------------------------------------------------
    def _lower_expr(self, expr: ast.Expr, result_used: bool = True) -> _Value:
        if isinstance(expr, ast.IntLit):
            return _Value(Imm(expr.value, INT), "int")
        if isinstance(expr, ast.FloatLit):
            return _Value(Imm(expr.value, FLOAT), "float")
        if isinstance(expr, ast.VarRef):
            return self._lower_varref(expr)
        if isinstance(expr, ast.ArrayRef):
            addr, hazard = self._array_address(expr)
            dest = self._temp(expr.ctype, "ld")
            self._emit(load(dest, addr, hazard=hazard))
            return _Value(dest, expr.ctype, tainted=True)
        if isinstance(expr, ast.Unary):
            return self._lower_unary(expr)
        if isinstance(expr, ast.Binary):
            return self._lower_binary(expr)
        if isinstance(expr, ast.Call):
            return self._lower_call(expr, result_used)
        raise SemanticError(f"cannot lower {expr!r}", expr.location)

    def _lower_varref(self, expr: ast.VarRef) -> _Value:
        symbol: Symbol = expr.symbol  # type: ignore[attr-defined]
        if symbol.kind == "global":
            addr = self._temp("int", "ga")
            self._emit(lea(addr, SymRef(symbol.name)))
            dest = self._temp(symbol.ctype, symbol.name)
            self._emit(load(dest, addr))
            return _Value(dest, symbol.ctype, tainted=True)
        return _Value(self._slots[symbol.uid], symbol.ctype)

    def _array_address(self, ref: ast.ArrayRef) -> tuple[Operand, bool]:
        """Compute the word address of ``ref``; returns (operand, hazard)."""
        symbol: Symbol = ref.symbol  # type: ignore[attr-defined]
        index = self._coerce(self._lower_expr(ref.index), "int")
        if symbol.kind == "local_array":
            base_target: SymRef | StackSlot = self._slots[symbol.uid]
        else:
            base_target = SymRef(symbol.name)
        base = self._temp("int", "base")
        self._emit(lea(base, base_target))
        if isinstance(index.operand, Imm) and index.operand.value == 0:
            return base, index.tainted
        addr = self._temp("int", "addr")
        self._emit(binop(Opcode.ADD, addr, base, index.operand))
        return addr, index.tainted

    def _lower_unary(self, expr: ast.Unary) -> _Value:
        value = self._lower_expr(expr.operand)
        if expr.op == "-":
            if isinstance(value.operand, Imm):
                return _Value(
                    Imm(-value.operand.value, value.operand.vtype),
                    value.ctype, value.tainted,
                )
            dest = self._temp(value.ctype, "neg")
            op = Opcode.FNEG if value.ctype == "float" else Opcode.NEG
            self._emit(Instr(op, dest=dest, srcs=(value.operand,)))
            return _Value(dest, value.ctype, value.tainted)
        # '!' : int -> int
        dest = self._temp("int", "not")
        self._emit(cmp(dest, Rel.EQ, value.operand, Imm(0, INT)))
        return _Value(dest, "int", value.tainted)

    def _lower_binary(self, expr: ast.Binary) -> _Value:
        if expr.op in ("&&", "||"):
            return self._lower_logical(expr)
        left = self._lower_expr(expr.left)
        right = self._lower_expr(expr.right)
        tainted = left.tainted or right.tainted

        if expr.op in _RELS:
            # Promote to a common type for comparison.
            if "float" in (left.ctype, right.ctype):
                left = self._coerce(left, "float")
                right = self._coerce(right, "float")
            dest = self._temp("int", "cmp")
            self._emit(cmp(dest, _RELS[expr.op], left.operand, right.operand))
            return _Value(dest, "int", tainted)

        if expr.op in _BITWISE:
            dest = self._temp("int", "bit")
            self._emit(binop(_BITWISE[expr.op], dest, left.operand,
                             right.operand))
            return _Value(dest, "int", tainted)

        # Arithmetic
        if expr.ctype == "float":
            left = self._coerce(left, "float")
            right = self._coerce(right, "float")
            dest = self._temp("float", "ar")
            self._emit(binop(_ARITH_FLOAT[expr.op], dest, left.operand,
                             right.operand))
            return _Value(dest, "float", tainted)
        dest = self._temp("int", "ar")
        self._emit(binop(_ARITH_INT[expr.op], dest, left.operand,
                         right.operand))
        return _Value(dest, "int", tainted)

    def _lower_logical(self, expr: ast.Binary) -> _Value:
        """Short-circuit ``&&`` / ``||`` via control flow."""
        result = self._temp("int", "sc")
        right_block = self.function.new_block("sc_rhs")
        done = self.function.new_block("sc_done")

        left = self._lower_expr(expr.left)
        default = 0 if expr.op == "&&" else 1
        self._emit(mov(result, Imm(default, INT)))
        left_operand = self._materialize(left)
        if expr.op == "&&":
            self._close_with(br(left_operand, right_block.label, done.label))
        else:
            self._close_with(br(left_operand, done.label, right_block.label))

        self.block = right_block
        right = self._lower_expr(expr.right)
        normalized = self._temp("int", "nz")
        self._emit(cmp(normalized, Rel.NE, right.operand, Imm(0, INT)))
        self._emit(mov(result, normalized))
        self._close_with(jmp(done.label))

        self.block = done
        return _Value(result, "int", left.tainted or right.tainted)

    def _lower_call(self, expr: ast.Call, result_used: bool) -> _Value:
        if expr.builtin:  # type: ignore[attr-defined]
            return self._lower_builtin(expr)
        param_types = expr.param_types  # type: ignore[attr-defined]
        args = []
        for arg, want in zip(expr.args, param_types):
            value = self._coerce(self._lower_expr(arg), want)
            args.append(self._materialize(value))
        if expr.returns_void:  # type: ignore[attr-defined]
            self._emit(call(None, expr.name, tuple(args)))
            return _Value(Imm(0, INT), "int")
        dest = self._temp(expr.ctype, "call")
        self._emit(call(dest, expr.name, tuple(args)))
        return _Value(dest, expr.ctype, tainted=True)

    def _lower_builtin(self, expr: ast.Call) -> _Value:
        name = expr.name
        value = self._lower_expr(expr.args[0])
        if name == "sqrt":
            value = self._coerce(value, "float")
            dest = self._temp("float", "sq")
            self._emit(Instr(Opcode.FSQRT, dest=dest, srcs=(value.operand,)))
            return _Value(dest, "float", value.tainted)
        if name == "abs":
            # Branchless: t = x >> 63; result = (x ^ t) - t
            sign = self._temp("int", "sg")
            self._emit(binop(Opcode.SHR, sign, self._materialize(value),
                             Imm(63, INT)))
            flipped = self._temp("int", "fx")
            self._emit(binop(Opcode.XOR, flipped, value.operand, sign))
            dest = self._temp("int", "abs")
            self._emit(binop(Opcode.SUB, dest, flipped, sign))
            return _Value(dest, "int", value.tainted)
        if name == "fabs":
            # FSQRT already takes |x|; square-then-sqrt would lose
            # precision, so lower as a compare/branch diamond.
            value = self._coerce(value, "float")
            operand = self._materialize(value)
            result = self._temp("float", "fa")
            self._emit(mov(result, operand))
            negative = self._temp("int", "ng")
            self._emit(cmp(negative, Rel.LT, operand, Imm(0.0, FLOAT)))
            flip = self.function.new_block("fabs_flip")
            done = self.function.new_block("fabs_done")
            self._close_with(br(negative, flip.label, done.label))
            self.block = flip
            negated = self._temp("float", "fn")
            self._emit(Instr(Opcode.FNEG, dest=negated, srcs=(operand,)))
            self._emit(mov(result, negated))
            self._close_with(jmp(done.label))
            self.block = done
            return _Value(result, "float", value.tainted)
        raise SemanticError(f"unknown builtin {name!r}", expr.location)


def lower_program(program: ast.Program, name: str = "module") -> Module:
    """Lower an analyzed AST to an IR module."""
    module = Module(name)
    for decl in program.globals:
        symbol: Symbol = decl.symbol  # type: ignore[attr-defined]
        module.add_global(GlobalArray(
            name=decl.name,
            size=symbol.array_size or 1,
            elem_type=_ir_type(decl.ctype),
            init=tuple(decl.init),
        ))
    for func in program.functions:
        module.add_function(_FunctionLowerer(module, func).lower())
    module.validate()
    return module


def compile_source(source: str, name: str = "module") -> Module:
    """Front-end driver: source text -> validated IR module."""
    program = analyze(parse_source(source))
    return lower_program(program, name)
