"""Diagnostics for the MiniC frontend."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class SourceLocation:
    """1-based line/column position in a source buffer."""

    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.line}:{self.column}"


class FrontendError(Exception):
    """Base class for lexing, parsing and semantic errors."""

    def __init__(self, message: str, location: SourceLocation | None = None):
        self.location = location
        if location is not None:
            message = f"{location}: {message}"
        super().__init__(message)


class LexError(FrontendError):
    """Invalid character or malformed literal."""


class SyntaxErrorMC(FrontendError):
    """Token stream does not match the grammar."""


class SemanticError(FrontendError):
    """Type errors, undeclared names, arity mismatches, etc."""
