"""MiniC frontend: lexer, parser, semantic analysis, IR lowering."""

from repro.frontend.errors import (
    FrontendError,
    LexError,
    SemanticError,
    SourceLocation,
    SyntaxErrorMC,
)
from repro.frontend.lexer import Token, TokKind, tokenize
from repro.frontend.lower import compile_source, lower_program
from repro.frontend.parser import parse_source
from repro.frontend.sema import analyze

__all__ = [
    "FrontendError",
    "LexError",
    "SemanticError",
    "SourceLocation",
    "SyntaxErrorMC",
    "Token",
    "TokKind",
    "analyze",
    "compile_source",
    "lower_program",
    "parse_source",
    "tokenize",
]
