"""MiniC abstract syntax tree.

Plain dataclasses; the semantic analyzer annotates expressions with a
``ctype`` field (``"int"`` or ``"float"``) in place.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.frontend.errors import SourceLocation

CType = str  # "int" | "float" | "void"


@dataclass
class Node:
    location: SourceLocation


# -- expressions ------------------------------------------------------------


@dataclass
class Expr(Node):
    #: filled in by sema
    ctype: CType = field(default="", init=False)


@dataclass
class IntLit(Expr):
    value: int


@dataclass
class FloatLit(Expr):
    value: float


@dataclass
class VarRef(Expr):
    name: str


@dataclass
class ArrayRef(Expr):
    name: str
    index: Expr


@dataclass
class Unary(Expr):
    op: str  # '-' | '!'
    operand: Expr


@dataclass
class Binary(Expr):
    op: str  # arithmetic, comparison, bitwise, logical
    left: Expr
    right: Expr


@dataclass
class Call(Expr):
    name: str
    args: list[Expr]


# -- statements -------------------------------------------------------------


@dataclass
class Stmt(Node):
    pass


@dataclass
class DeclStmt(Stmt):
    ctype: CType
    name: str
    array_size: Optional[int]  # None for scalars
    init: Optional[Expr]


@dataclass
class AssignStmt(Stmt):
    target: VarRef | ArrayRef
    value: Expr


@dataclass
class IfStmt(Stmt):
    condition: Expr
    then_body: "BlockStmt"
    else_body: Optional["BlockStmt"]


@dataclass
class WhileStmt(Stmt):
    condition: Expr
    body: "BlockStmt"


@dataclass
class ForStmt(Stmt):
    init: Optional[AssignStmt]
    condition: Optional[Expr]
    step: Optional[AssignStmt]
    body: "BlockStmt"


@dataclass
class ReturnStmt(Stmt):
    value: Optional[Expr]


@dataclass
class BreakStmt(Stmt):
    pass


@dataclass
class ContinueStmt(Stmt):
    pass


@dataclass
class OutStmt(Stmt):
    value: Expr


@dataclass
class ExprStmt(Stmt):
    expr: Expr


@dataclass
class BlockStmt(Stmt):
    body: list[Stmt]


# -- top level ---------------------------------------------------------------


@dataclass
class Param(Node):
    ctype: CType
    name: str


@dataclass
class FuncDecl(Node):
    return_type: CType
    name: str
    params: list[Param]
    body: BlockStmt


@dataclass
class GlobalDecl(Node):
    ctype: CType
    name: str
    array_size: Optional[int]  # None => scalar (size-1 array in IR)
    init: list[float | int]


@dataclass
class Program(Node):
    globals: list[GlobalDecl]
    functions: list[FuncDecl]
