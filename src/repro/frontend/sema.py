"""MiniC semantic analysis.

Resolves names, checks types, and annotates the AST in place:

* every ``Expr`` gets ``ctype`` (``"int"`` or ``"float"``);
* every ``VarRef``/``ArrayRef``/``DeclStmt``/``Param`` gets a ``symbol``
  attribute pointing at its :class:`Symbol`;
* every ``Call`` gets ``signature`` (the callee's
  ``(param_types, return_type)``) or ``builtin`` set.

Conversion rules (C-like, simplified): arithmetic between ``int`` and
``float`` promotes to ``float``; comparisons yield ``int``; logical and
bitwise operators require ``int`` operands; assignment/argument/return
positions convert implicitly in either direction.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.frontend import astnodes as ast
from repro.frontend.errors import SemanticError

#: builtin name -> (param types, return type)
BUILTINS: dict[str, tuple[tuple[str, ...], str]] = {
    "sqrt": (("float",), "float"),
    "fabs": (("float",), "float"),
    "abs": (("int",), "int"),
}

_symbol_ids = itertools.count()


@dataclass
class Symbol:
    """One declared object (global, parameter or local)."""

    name: str
    ctype: str  # element type for arrays
    kind: str  # "global" | "param" | "local" | "local_array"
    array_size: int | None = None
    uid: int = field(default_factory=lambda: next(_symbol_ids))

    @property
    def is_array(self) -> bool:
        return self.array_size is not None


@dataclass
class FuncSig:
    name: str
    param_types: tuple[str, ...]
    return_type: str


class Scope:
    def __init__(self, parent: "Scope | None" = None) -> None:
        self.parent = parent
        self.symbols: dict[str, Symbol] = {}

    def declare(self, symbol: Symbol, location) -> None:
        if symbol.name in self.symbols:
            raise SemanticError(f"redeclaration of {symbol.name!r}", location)
        self.symbols[symbol.name] = symbol

    def lookup(self, name: str) -> Symbol | None:
        scope: Scope | None = self
        while scope is not None:
            if name in scope.symbols:
                return scope.symbols[name]
            scope = scope.parent
        return None


class SemanticAnalyzer:
    def __init__(self, program: ast.Program) -> None:
        self.program = program
        self.global_scope = Scope()
        self.functions: dict[str, FuncSig] = {}
        self._loop_depth = 0
        self._current_return: str = "void"

    # -- entry point -------------------------------------------------------
    def analyze(self) -> ast.Program:
        for decl in self.program.globals:
            symbol = Symbol(
                name=decl.name,
                ctype=decl.ctype,
                kind="global",
                array_size=decl.array_size,
            )
            self.global_scope.declare(symbol, decl.location)
            decl.symbol = symbol  # type: ignore[attr-defined]
            decl.is_scalar = decl.array_size is None  # type: ignore[attr-defined]

        for func in self.program.functions:
            if func.name in self.functions or func.name in BUILTINS:
                raise SemanticError(f"redefinition of {func.name!r}",
                                    func.location)
            self.functions[func.name] = FuncSig(
                func.name,
                tuple(param.ctype for param in func.params),
                func.return_type,
            )

        if "main" not in self.functions:
            raise SemanticError("program must define main", self.program.location)
        if self.functions["main"].param_types:
            raise SemanticError("main must take no parameters",
                                self.program.location)

        for func in self.program.functions:
            self._check_function(func)
        return self.program

    # -- functions -----------------------------------------------------------
    def _check_function(self, func: ast.FuncDecl) -> None:
        scope = Scope(self.global_scope)
        self._current_return = func.return_type
        seen = set()
        for param in func.params:
            if param.name in seen:
                raise SemanticError(f"duplicate parameter {param.name!r}",
                                    param.location)
            seen.add(param.name)
            symbol = Symbol(param.name, param.ctype, "param")
            scope.declare(symbol, param.location)
            param.symbol = symbol  # type: ignore[attr-defined]
        self._check_block(func.body, scope)

    def _check_block(self, block: ast.BlockStmt, parent: Scope) -> None:
        scope = Scope(parent)
        for stmt in block.body:
            self._check_stmt(stmt, scope)

    # -- statements ------------------------------------------------------------
    def _check_stmt(self, stmt: ast.Stmt, scope: Scope) -> None:
        if isinstance(stmt, ast.BlockStmt):
            self._check_block(stmt, scope)
        elif isinstance(stmt, ast.DeclStmt):
            kind = "local_array" if stmt.array_size is not None else "local"
            symbol = Symbol(stmt.name, stmt.ctype, kind, stmt.array_size)
            scope.declare(symbol, stmt.location)
            stmt.symbol = symbol  # type: ignore[attr-defined]
            if stmt.init is not None:
                self._check_expr(stmt.init, scope)
        elif isinstance(stmt, ast.AssignStmt):
            self._check_lvalue(stmt.target, scope)
            self._check_expr(stmt.value, scope)
        elif isinstance(stmt, ast.IfStmt):
            self._require_int(self._check_expr(stmt.condition, scope),
                              stmt.condition, "if condition")
            self._check_block(stmt.then_body, scope)
            if stmt.else_body is not None:
                self._check_block(stmt.else_body, scope)
        elif isinstance(stmt, ast.WhileStmt):
            self._require_int(self._check_expr(stmt.condition, scope),
                              stmt.condition, "while condition")
            self._loop_depth += 1
            self._check_block(stmt.body, scope)
            self._loop_depth -= 1
        elif isinstance(stmt, ast.ForStmt):
            if stmt.init is not None:
                self._check_stmt(stmt.init, scope)
            if stmt.condition is not None:
                self._require_int(self._check_expr(stmt.condition, scope),
                                  stmt.condition, "for condition")
            if stmt.step is not None:
                self._check_stmt(stmt.step, scope)
            self._loop_depth += 1
            self._check_block(stmt.body, scope)
            self._loop_depth -= 1
        elif isinstance(stmt, ast.ReturnStmt):
            if stmt.value is None:
                if self._current_return != "void":
                    raise SemanticError("non-void function must return a value",
                                        stmt.location)
            else:
                if self._current_return == "void":
                    raise SemanticError("void function cannot return a value",
                                        stmt.location)
                self._check_expr(stmt.value, scope)
        elif isinstance(stmt, (ast.BreakStmt, ast.ContinueStmt)):
            if self._loop_depth == 0:
                raise SemanticError("break/continue outside a loop",
                                    stmt.location)
        elif isinstance(stmt, ast.OutStmt):
            self._check_expr(stmt.value, scope)
        elif isinstance(stmt, ast.ExprStmt):
            self._check_expr(stmt.expr, scope)
        else:  # pragma: no cover - exhaustive
            raise SemanticError(f"unknown statement {stmt!r}", stmt.location)

    def _check_lvalue(self, target, scope: Scope) -> None:
        if isinstance(target, ast.VarRef):
            symbol = scope.lookup(target.name)
            if symbol is None:
                raise SemanticError(f"undeclared variable {target.name!r}",
                                    target.location)
            if symbol.is_array:
                raise SemanticError(f"cannot assign whole array {target.name!r}",
                                    target.location)
            target.symbol = symbol  # type: ignore[attr-defined]
            target.ctype = symbol.ctype
        elif isinstance(target, ast.ArrayRef):
            self._check_array_ref(target, scope)
        else:  # pragma: no cover
            raise SemanticError("invalid assignment target", target.location)

    # -- expressions --------------------------------------------------------------
    def _check_expr(self, expr: ast.Expr, scope: Scope) -> str:
        if isinstance(expr, ast.IntLit):
            expr.ctype = "int"
        elif isinstance(expr, ast.FloatLit):
            expr.ctype = "float"
        elif isinstance(expr, ast.VarRef):
            symbol = scope.lookup(expr.name)
            if symbol is None:
                raise SemanticError(f"undeclared variable {expr.name!r}",
                                    expr.location)
            if symbol.is_array:
                raise SemanticError(
                    f"array {expr.name!r} used without subscript", expr.location
                )
            expr.symbol = symbol  # type: ignore[attr-defined]
            expr.ctype = symbol.ctype
        elif isinstance(expr, ast.ArrayRef):
            self._check_array_ref(expr, scope)
        elif isinstance(expr, ast.Unary):
            inner = self._check_expr(expr.operand, scope)
            if expr.op == "!":
                self._require_int(inner, expr.operand, "operand of !")
                expr.ctype = "int"
            else:  # unary minus
                expr.ctype = inner
        elif isinstance(expr, ast.Binary):
            left = self._check_expr(expr.left, scope)
            right = self._check_expr(expr.right, scope)
            if expr.op in ("&&", "||", "&", "|", "^", "<<", ">>", "%"):
                self._require_int(left, expr.left, f"operand of {expr.op}")
                self._require_int(right, expr.right, f"operand of {expr.op}")
                expr.ctype = "int"
            elif expr.op in ("<", "<=", ">", ">=", "==", "!="):
                expr.ctype = "int"
            else:  # + - * /
                expr.ctype = "float" if "float" in (left, right) else "int"
        elif isinstance(expr, ast.Call):
            self._check_call(expr, scope)
        else:  # pragma: no cover
            raise SemanticError(f"unknown expression {expr!r}", expr.location)
        return expr.ctype

    def _check_array_ref(self, ref: ast.ArrayRef, scope: Scope) -> None:
        symbol = scope.lookup(ref.name)
        if symbol is None:
            raise SemanticError(f"undeclared array {ref.name!r}", ref.location)
        if not symbol.is_array:
            raise SemanticError(f"{ref.name!r} is not an array", ref.location)
        index_type = self._check_expr(ref.index, scope)
        self._require_int(index_type, ref.index, "array index")
        ref.symbol = symbol  # type: ignore[attr-defined]
        ref.ctype = symbol.ctype

    def _check_call(self, call: ast.Call, scope: Scope) -> None:
        if call.name in BUILTINS:
            param_types, return_type = BUILTINS[call.name]
            call.builtin = True  # type: ignore[attr-defined]
        else:
            signature = self.functions.get(call.name)
            if signature is None:
                raise SemanticError(f"call to undefined function {call.name!r}",
                                    call.location)
            param_types = signature.param_types
            return_type = signature.return_type
            call.builtin = False  # type: ignore[attr-defined]
        if len(call.args) != len(param_types):
            raise SemanticError(
                f"{call.name} expects {len(param_types)} arguments, "
                f"got {len(call.args)}",
                call.location,
            )
        for arg in call.args:
            self._check_expr(arg, scope)
        if return_type == "void":
            call.ctype = "int"  # value must not be used; flagged below
            call.returns_void = True  # type: ignore[attr-defined]
        else:
            call.ctype = return_type
            call.returns_void = False  # type: ignore[attr-defined]
        call.param_types = param_types  # type: ignore[attr-defined]

    @staticmethod
    def _require_int(ctype: str, node: ast.Expr, what: str) -> None:
        if ctype != "int":
            raise SemanticError(f"{what} must be int, got {ctype}",
                                node.location)


def analyze(program: ast.Program) -> ast.Program:
    """Run semantic analysis, annotating and returning the program."""
    return SemanticAnalyzer(program).analyze()
