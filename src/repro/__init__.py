"""Meta Optimization — PLDI 2003 reproduction.

Genetic-programming search over compiler priority functions, with a
complete MiniC -> predicated-EPIC compiler and cycle-level simulator as
the substrate.  See DESIGN.md for the system inventory and
EXPERIMENTS.md for paper-vs-measured results.

Quick start::

    from repro.gp import GPParams
    from repro.metaopt import case_study, specialize

    case = case_study("hyperblock")
    result = specialize(case, "rawcaudio",
                        GPParams(population_size=50, generations=20))
    print(result.train_speedup, result.best_expression)
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
