"""Meta Optimization — PLDI 2003 reproduction.

Genetic-programming search over compiler priority functions, with a
complete MiniC -> predicated-EPIC compiler and cycle-level simulator as
the substrate.  See DESIGN.md for the system inventory and
EXPERIMENTS.md for paper-vs-measured results.

Quick start::

    from repro.experiments import ExperimentConfig, run_experiment
    from repro.gp import GPParams

    outcome = run_experiment(ExperimentConfig(
        mode="specialize", case="hyperblock", benchmark="rawcaudio",
        params=GPParams(population_size=50, generations=20)))
    result = outcome.specialization
    print(result.train_speedup, result.best_expression)
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
