"""Deployment and serving of evolved heuristics.

The paper's end product is an *artifact*: an evolved priority function
that a compiler then uses on every future compile.  This package is the
missing train-to-deploy layer of the reproduction:

* :mod:`repro.serve.artifact` — the versioned, content-addressed
  artifact document (s-expression + pass kind + training-config and
  pipeline fingerprints + fitness metadata);
* :mod:`repro.serve.registry` — the on-disk artifact store with
  ``save``/``load``/``list``/``verify`` APIs;
* :mod:`repro.serve.jobs` — the bounded job queue + warm worker pool
  the daemon runs compile/evaluate requests on;
* :mod:`repro.serve.server` — the zero-dependency HTTP daemon
  (``repro serve``): ``POST /v1/compile``, ``POST /v1/evaluate``,
  ``GET /v1/jobs/<id>``, ``GET /v1/artifacts``, ``GET /healthz``,
  ``GET /metrics``, with explicit backpressure and SIGTERM drain;
* :mod:`repro.serve.client` — the stdlib HTTP client with
  retry/backoff (``repro submit``, ``tools/bench_serve.py``).

See ``docs/SERVING.md`` for the artifact lifecycle and API reference.
"""

from repro.serve.artifact import (
    ARTIFACT_SCHEMA,
    ArtifactError,
    HeuristicArtifact,
    build_artifact,
)
from repro.serve.client import ServeClient, ServeError, ServerBusy
from repro.serve.jobs import Job, JobQueue, QueueFull
from repro.serve.registry import ArtifactRegistry, registry_from_env
from repro.serve.server import ReproServer

__all__ = [
    "ARTIFACT_SCHEMA",
    "ArtifactError",
    "ArtifactRegistry",
    "HeuristicArtifact",
    "Job",
    "JobQueue",
    "QueueFull",
    "ReproServer",
    "ServeClient",
    "ServeError",
    "ServerBusy",
    "build_artifact",
    "registry_from_env",
]
