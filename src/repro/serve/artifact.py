"""The heuristic artifact: a deployable evolved priority function.

An artifact is the unit the train-to-deploy loop moves around: the
evolved s-expression, the case study (pass kind) whose hook it fills,
fingerprints of the machine description, compiler pipeline, and
training configuration that produced it, and the fitness metadata the
campaign measured.  The document is plain JSON; its identity is the
SHA-256 of the canonical serialization minus the id itself, so an
artifact can always be re-verified against its own content
(:meth:`HeuristicArtifact.verify`).

``heuristic_artifact=`` on :class:`~repro.passes.pipeline.
CompilerOptions` accepts one of these; :meth:`HeuristicArtifact.
install` swaps the artifact's compiled priority into the matching hook
so any compile — CLI, harness, or serving daemon — runs under the
deployed heuristic.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field

#: Version of the artifact document format.  Bump on any change a
#: loader of the previous version could misread.
ARTIFACT_SCHEMA = 1

#: Case studies an artifact may target (mirrors experiments.config).
ARTIFACT_CASES = ("hyperblock", "regalloc", "prefetch", "scheduling")


class ArtifactError(ValueError):
    """A malformed, corrupt, or unusable artifact document."""


def _config_fingerprint(config_dict: dict) -> str:
    canonical = json.dumps(config_dict, sort_keys=True)
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


@dataclass(frozen=True)
class HeuristicArtifact:
    """One packaged evolved heuristic, immutable and JSON-round-trip.

    ``expression`` is canonical s-expression text (``unparse(parse(
    text))``); ``training_config`` is the full
    :class:`~repro.experiments.config.ExperimentConfig` JSON dict of
    the campaign that evolved it (self-describing provenance), and
    ``metrics`` carries whatever fitness/speedup numbers the campaign
    measured.  Everything participates in the content address.
    """

    case: str
    expression: str
    machine_name: str
    machine_fingerprint: str
    pipeline_fingerprint: str
    config_fingerprint: str
    training_config: dict = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)
    created_at: float = 0.0
    schema: int = ARTIFACT_SCHEMA
    #: Content id of the artifact this one was evolved from (autopilot
    #: re-optimization campaigns seed from an incumbent).  ``None`` for
    #: root artifacts; serialized only when set, so pre-lineage
    #: documents keep their content digests.
    parent_id: str | None = None

    # -- identity --------------------------------------------------------
    def content_digest(self) -> str:
        """SHA-256 of the canonical document (everything but the id)."""
        canonical = json.dumps(self.to_json_dict(include_id=False),
                               sort_keys=True)
        return hashlib.sha256(canonical.encode()).hexdigest()

    @property
    def artifact_id(self) -> str:
        return self.content_digest()

    @property
    def short_id(self) -> str:
        return self.artifact_id[:12]

    # -- serialization ---------------------------------------------------
    def to_json_dict(self, include_id: bool = True) -> dict:
        data = {
            "schema": self.schema,
            "case": self.case,
            "expression": self.expression,
            "machine_name": self.machine_name,
            "machine_fingerprint": self.machine_fingerprint,
            "pipeline_fingerprint": self.pipeline_fingerprint,
            "config_fingerprint": self.config_fingerprint,
            "training_config": self.training_config,
            "metrics": self.metrics,
            "created_at": self.created_at,
        }
        if self.parent_id is not None:
            data["parent_id"] = self.parent_id
        if include_id:
            data["artifact_id"] = self.content_digest()
        return data

    @classmethod
    def from_json_dict(cls, data: dict) -> "HeuristicArtifact":
        data = dict(data)
        stored_id = data.pop("artifact_id", None)
        unknown = set(data) - {
            "schema", "case", "expression", "machine_name",
            "machine_fingerprint", "pipeline_fingerprint",
            "config_fingerprint", "training_config", "metrics",
            "created_at", "parent_id",
        }
        if unknown:
            raise ArtifactError(
                f"unknown artifact fields: {sorted(unknown)}")
        try:
            artifact = cls(**data)
        except TypeError as exc:
            raise ArtifactError(f"malformed artifact document: {exc}")
        if stored_id is not None and stored_id != artifact.content_digest():
            raise ArtifactError(
                f"artifact id {stored_id[:12]} does not match content "
                f"digest {artifact.short_id} — document was tampered "
                "with or corrupted")
        return artifact

    # -- validation ------------------------------------------------------
    def verify(self) -> list[str]:
        """Deep check; returns a list of problems (empty = valid).

        Checks the schema version, the case name, that the expression
        parses and typechecks against the case's primitive set, that
        its text is canonical, and that the pipeline fingerprint still
        matches the current source tree (a mismatch is a *warning*-
        grade problem: the artifact is usable but its recorded
        fitnesses were measured by a different compiler).
        """
        problems: list[str] = []
        if self.schema != ARTIFACT_SCHEMA:
            problems.append(
                f"unsupported schema {self.schema!r} "
                f"(this build reads {ARTIFACT_SCHEMA})")
            return problems
        if self.case not in ARTIFACT_CASES:
            problems.append(f"unknown case {self.case!r}")
            return problems
        if self.parent_id is not None and not (
                len(self.parent_id) == 64
                and all(ch in "0123456789abcdef" for ch in self.parent_id)):
            problems.append(
                f"parent_id {self.parent_id!r} is not a content digest")
        from repro.gp.parse import parse, unparse
        from repro.metaopt.psets import PSETS

        pset = PSETS[self.case]
        try:
            tree = parse(self.expression, pset.bool_feature_set())
        except Exception as exc:
            problems.append(f"expression does not parse: {exc}")
            return problems
        if tree.result_type is not pset.result_type:
            problems.append(
                f"expression returns {tree.result_type.value}, the "
                f"{self.case} hook needs {pset.result_type.value}")
        if unparse(tree) != self.expression:
            problems.append("expression text is not canonical "
                            "(unparse(parse(text)) != text)")
        from repro.metaopt.fitness_cache import pipeline_fingerprint

        if self.pipeline_fingerprint != pipeline_fingerprint():
            problems.append(
                "stale pipeline fingerprint: artifact was trained "
                f"under {self.pipeline_fingerprint}, this tree is "
                f"{pipeline_fingerprint()} (recorded fitnesses may "
                "not reproduce)")
        return problems

    # -- deployment ------------------------------------------------------
    def tree(self):
        """The parsed expression tree (typechecked for the case)."""
        from repro.metaopt.psets import PSETS
        from repro.metaopt.priority import PriorityFunction

        priority = PriorityFunction.from_text(
            self.expression, PSETS[self.case], name=self.short_id)
        return priority.tree

    def priority(self):
        """The expression as a callable compiler hook."""
        from repro.metaopt.psets import PSETS
        from repro.metaopt.priority import PriorityFunction

        return PriorityFunction.from_text(
            self.expression, PSETS[self.case], name=self.short_id)

    def install(self, options):
        """Compiler options with this artifact's priority in its hook.

        The duck-typed counterpart of ``CompilerOptions(
        heuristic_artifact=...)``: :func:`repro.passes.pipeline.
        compile_backend` calls this to resolve the hook swap without
        the pipeline importing the serving layer.
        """
        from dataclasses import replace

        from repro.metaopt.harness import _ADAPTER_BY_CASE, _HOOK_BY_CASE

        adapted = _ADAPTER_BY_CASE[self.case](self.priority())
        return replace(options, heuristic_artifact=None,
                       **{_HOOK_BY_CASE[self.case]: adapted})


def build_artifact(
    case: str,
    expression: str,
    machine,
    training_config: dict | None = None,
    metrics: dict | None = None,
    created_at: float | None = None,
    parent_id: str | None = None,
) -> HeuristicArtifact:
    """Assemble an artifact from campaign outputs, canonicalizing the
    expression and computing every fingerprint."""
    from repro.gp.parse import parse, unparse
    from repro.metaopt.psets import PSETS
    from repro.metaopt.fitness_cache import (
        machine_fingerprint,
        pipeline_fingerprint,
    )

    if case not in ARTIFACT_CASES:
        raise ArtifactError(f"unknown case {case!r}")
    canonical = unparse(parse(expression, PSETS[case].bool_feature_set()))
    training_config = dict(training_config or {})
    return HeuristicArtifact(
        case=case,
        expression=canonical,
        machine_name=machine.name,
        machine_fingerprint=machine_fingerprint(machine),
        pipeline_fingerprint=pipeline_fingerprint(),
        config_fingerprint=_config_fingerprint(training_config),
        training_config=training_config,
        metrics=dict(metrics or {}),
        created_at=time.time() if created_at is None else created_at,
        parent_id=parent_id,
    )
