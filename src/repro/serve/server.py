"""The serving daemon: a zero-dependency compile/evaluate HTTP service.

``repro serve`` runs a :class:`ThreadingHTTPServer` JSON API in front
of the bounded :class:`~repro.serve.jobs.JobQueue`:

==============================  =========================================
``GET  /v1/capabilities``       schema version + supported endpoints
``POST /v1/evaluate-batch``     synchronous batched fitness evaluation,
                                streamed as NDJSON (the fleet protocol)
``POST /v1/compile``            enqueue a MiniC compile (``202`` + job id)
``POST /v1/evaluate``           enqueue a benchmark simulation, baseline
                                or under a deployed artifact
``GET  /v1/jobs/<id>``          poll a job's state and result
``POST /v1/jobs/<id>/cancel``   cancel a queued or in-flight job
``GET  /v1/artifacts``          list the artifact store
``GET  /v1/artifacts/<id>``     one artifact document
``GET  /v1/artifacts/<id>/lineage``  ancestry chain via ``parent_id``
``GET  /v1/channels``           every (case, machine) deployment track
``GET  /v1/channels/<case>/<machine>``  one track's pointers + log
``POST /v1/channels/<case>/<machine>``  point stable/canary at an artifact
``POST /v1/channels/<case>/<machine>/promote``   canary → stable
``POST /v1/channels/<case>/<machine>/rollback``  discard the canary
``GET  /v1/autopilot/status``   the self-improvement loop's live state
``GET  /healthz``               liveness + queue depth (``ok``/``draining``)
``GET  /metrics``               server/queue counters + repro.obs snapshot
==============================  =========================================

Every error — 400/404/405/409/413/429/500/503 — is one structured JSON
shape, ``{"schema": 1, "ok": false, "error": "..."}``, and every
backpressure path (429 full queue, 429 saturated batch lanes, 503
draining) carries ``Retry-After``.  A known path hit with the wrong
method answers ``405`` with an ``Allow`` header.  Overload never blocks
or grows the queue: a full queue answers ``429``, an oversized body
``413``.  ``SIGTERM``/``SIGINT`` trigger a graceful drain — stop
accepting, finish every in-flight and queued job, flush a final metrics
snapshot — before the process exits.  Request handling rides
:mod:`repro.obs`: every request is a ``serve:request`` span and a
``serve.requests.*`` counter.

See ``docs/SERVING.md`` for the full API reference and curl examples,
and ``docs/FLEET.md`` for how ``/v1/evaluate-batch`` powers the
distributed evolution fleet.
"""

from __future__ import annotations

import json
import signal
import sys
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro import obs
from repro.serve.jobs import (
    HarnessPool,
    JobQueue,
    QueueFull,
    run_compile,
    run_evaluate,
    run_evaluate_batch,
)

#: Largest request body accepted (bytes) — beyond this is a 413.
MAX_BODY_BYTES = 1 << 20

#: API version prefix of every resource route.
API_PREFIX = "/v1"

#: Version of the HTTP API schema advertised by ``/v1/capabilities``
#: and stamped on every response body.
API_SCHEMA = 1

#: Endpoints advertised by ``/v1/capabilities``.
ENDPOINTS = (
    "GET /v1/capabilities",
    "POST /v1/evaluate-batch",
    "POST /v1/evaluate",
    "POST /v1/compile",
    "GET /v1/jobs/<id>",
    "POST /v1/jobs/<id>/cancel",
    "GET /v1/artifacts",
    "GET /v1/artifacts/<id>",
    "GET /v1/artifacts/<id>/lineage",
    "GET /v1/channels",
    "GET /v1/channels/<case>/<machine>",
    "POST /v1/channels/<case>/<machine>",
    "POST /v1/channels/<case>/<machine>/promote",
    "POST /v1/channels/<case>/<machine>/rollback",
    "GET /v1/autopilot/status",
    "GET /healthz",
    "GET /metrics",
)


class _ApiError(Exception):
    """An error with a fixed HTTP status, rendered as the structured
    JSON error shape."""

    def __init__(self, status: int, message: str,
                 headers: dict | None = None) -> None:
        super().__init__(message)
        self.status = status
        self.headers = headers or {}


class ReproServer:
    """The daemon: HTTP front, job queue, warm workers, drain logic."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        capacity: int = 16,
        job_timeout: float | None = None,
        registry=None,
        fitness_cache_dir: str | None = None,
        handler=None,
        use_snapshots: bool = True,
        batch_concurrency: int = 4,
        autopilot_config=None,
    ) -> None:
        if batch_concurrency < 1:
            raise ValueError("batch_concurrency must be >= 1")
        self.registry = registry
        self.harness_pool = HarnessPool(fitness_cache_dir=fitness_cache_dir,
                                        use_snapshots=use_snapshots)
        #: bounds concurrent ``/v1/evaluate-batch`` streams; a request
        #: that cannot get a lane immediately is shed with 429 rather
        #: than queued (the fleet coordinator retries with backoff)
        self.batch_concurrency = batch_concurrency
        self._batch_lanes = threading.Semaphore(batch_concurrency)
        self.queue = JobQueue(
            handler=handler if handler is not None else self._execute,
            workers=workers,
            capacity=capacity,
            job_timeout=job_timeout,
        )
        #: the self-improvement loop (docs/AUTOPILOT.md), or None
        self.autopilot = None
        if autopilot_config is not None:
            from repro.autopilot import Autopilot

            if registry is None:
                raise ValueError(
                    "the autopilot requires an artifact registry")
            self.autopilot = Autopilot(
                autopilot_config,
                registry=registry,
                harness_pool=self.harness_pool,
                submit=self.queue.submit,
                current_job=self.queue.current_job,
                fitness_cache_dir=fitness_cache_dir,
                use_snapshots=use_snapshots,
            )
            # re-enqueue campaigns a previous daemon left mid-evolution
            self.autopilot.recover()
        self.request_counters: dict[str, int] = {}
        self._counter_lock = threading.Lock()
        self._draining = threading.Event()
        self._drained = threading.Event()
        self._serve_thread: threading.Thread | None = None
        handler_cls = _make_handler(self)
        self.httpd = ThreadingHTTPServer((host, port), handler_cls)
        self.httpd.daemon_threads = True

    # -- addresses -------------------------------------------------------
    @property
    def host(self) -> str:
        return self.httpd.server_address[0]

    @property
    def port(self) -> int:
        return self.httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- job execution ---------------------------------------------------
    def _execute(self, kind: str, params: dict) -> dict:
        with obs.span(f"serve:job:{kind}"):
            if kind == "evaluate":
                router = (self.autopilot.canary_router
                          if self.autopilot is not None else None)
                payload = run_evaluate(params, self.harness_pool,
                                       registry=self.registry,
                                       canary_router=router)
                if self.autopilot is not None:
                    try:
                        self.autopilot.observe_evaluation(params, payload)
                        self.autopilot.kick_stalled()
                    except Exception as exc:  # noqa: BLE001 — the
                        # evaluate result is good; a monitor hiccup
                        # must not fail the interactive job
                        obs.inc("autopilot.observe_errors")
                        print(f"autopilot: observation failed: {exc}",
                              file=sys.stderr)
                return payload
            if kind == "compile":
                return run_compile(params, registry=self.registry)
            if kind == "autopilot-step":
                if self.autopilot is None:
                    raise ValueError("the autopilot is not enabled")
                return self.autopilot.campaign_step(params)
            raise ValueError(f"unknown job kind {kind!r}")

    # -- lifecycle -------------------------------------------------------
    def start(self) -> None:
        """Serve in a background thread (tests, in-process embedding)."""
        self._serve_thread = threading.Thread(
            target=self.httpd.serve_forever, name="serve-http", daemon=True)
        self._serve_thread.start()

    def drain(self, timeout: float | None = None) -> bool:
        """Graceful shutdown: refuse new jobs, finish in-flight ones,
        stop the HTTP listener.  Idempotent; returns True when every
        job finished within ``timeout``."""
        already = self._draining.is_set()
        self._draining.set()
        if already:
            self._drained.wait(timeout=timeout)
            return self._drained.is_set()
        if self.autopilot is not None:
            # stop re-enqueueing campaign steps *before* the queue
            # drain cancels the queued ones, or a running step would
            # immediately replace its cancelled successor
            self.autopilot.begin_drain()
        drained = self.queue.drain(timeout=timeout)
        if self.autopilot is not None:
            self.autopilot.finish_drain()
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=5.0)
        self._drained.set()
        return drained

    def serve_forever(self, drain_timeout: float | None = None) -> int:
        """Blocking entry point of ``repro serve``: installs SIGTERM /
        SIGINT handlers that trigger a graceful drain."""
        stop = threading.Event()

        def request_drain(signum, frame):
            stop.set()

        previous = {}
        for signum in (signal.SIGTERM, signal.SIGINT):
            previous[signum] = signal.signal(signum, request_drain)
        self.start()
        try:
            stop.wait()
            print("serve: drain requested — finishing in-flight jobs",
                  file=sys.stderr)
            drained = self.drain(timeout=drain_timeout)
            snapshot = self.metrics_payload()
            print("serve: final metrics "
                  + json.dumps(snapshot["queue"], sort_keys=True),
                  file=sys.stderr)
            print("serve: drained" if drained
                  else "serve: drain timed out with jobs unfinished",
                  file=sys.stderr)
            return 0 if drained else 1
        finally:
            for signum, old in previous.items():
                signal.signal(signum, old)

    # -- introspection ---------------------------------------------------
    def count_request(self, key: str) -> None:
        with self._counter_lock:
            self.request_counters[key] = (
                self.request_counters.get(key, 0) + 1)
        obs.inc(f"serve.requests.{key}")

    def health_payload(self) -> dict:
        stats = self.queue.stats()
        return {
            "status": "draining" if self._draining.is_set() else "ok",
            "queue_depth": stats["depth"],
            "running": stats["running"],
            "capacity": stats["capacity"],
            "workers": stats["workers"],
        }

    def capabilities_payload(self) -> dict:
        from repro import __version__
        from repro.metaopt.fitness_cache import pipeline_fingerprint

        return {
            "schema": API_SCHEMA,
            "ok": True,
            "server": "repro-serve",
            "version": __version__,
            "endpoints": list(ENDPOINTS),
            "batch_concurrency": self.batch_concurrency,
            "pipeline_fingerprint": pipeline_fingerprint(),
            "max_body_bytes": MAX_BODY_BYTES,
        }

    def metrics_payload(self) -> dict:
        from repro.machine.sim import codegen_cache_stats

        registry = obs.metrics()
        return {
            "schema": 1,
            "queue": self.queue.stats(),
            "requests": dict(sorted(self.request_counters.items())),
            "codegen_cache": codegen_cache_stats(),
            "obs": registry.snapshot() if registry is not None else None,
        }


def _make_handler(server: ReproServer):
    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        # Quiet by default; errors still reach the error log.
        def log_message(self, format, *args):  # noqa: A002
            pass

        # -- plumbing ----------------------------------------------------
        def _send_json(self, status: int, payload: dict,
                       headers: dict | None = None) -> None:
            body = (json.dumps(payload, indent=2, sort_keys=True)
                    + "\n").encode()
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            for name, value in (headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(body)
            server.count_request(str(status))

        def _read_body(self) -> dict:
            length = int(self.headers.get("Content-Length") or 0)
            if length > MAX_BODY_BYTES:
                raise _ApiError(
                    413, f"request body {length} bytes exceeds the "
                         f"{MAX_BODY_BYTES}-byte limit")
            raw = self.rfile.read(length) if length else b""
            if not raw:
                return {}
            try:
                data = json.loads(raw)
            except ValueError as exc:
                raise _ApiError(400, f"request body is not JSON: {exc}")
            if not isinstance(data, dict):
                raise _ApiError(400, "request body must be a JSON object")
            return data

        def _submit(self, kind: str) -> None:
            params = self._read_body()
            try:
                job = server.queue.submit(kind, params)
            except QueueFull as exc:
                raise _ApiError(
                    429, str(exc),
                    headers={"Retry-After":
                             f"{max(1, round(exc.retry_after))}"})
            except RuntimeError as exc:
                raise _ApiError(503, str(exc),
                                headers={"Retry-After": "5"})
            self._send_json(202, {
                "job_id": job.id,
                "state": job.state,
                "href": f"{API_PREFIX}/jobs/{job.id}",
            })

        # -- routing -----------------------------------------------------
        def _dispatch(self, method: str, path: str) -> None:
            if path == "/healthz":
                self._allow(method, "GET")
                self._send_json(200, server.health_payload())
            elif path == "/metrics":
                self._allow(method, "GET")
                self._send_json(200, server.metrics_payload())
            elif path == f"{API_PREFIX}/capabilities":
                self._allow(method, "GET")
                self._send_json(200, server.capabilities_payload())
            elif path == f"{API_PREFIX}/evaluate-batch":
                self._allow(method, "POST")
                self._evaluate_batch()
            elif path == f"{API_PREFIX}/evaluate":
                self._allow(method, "POST")
                self._submit("evaluate")
            elif path == f"{API_PREFIX}/compile":
                self._allow(method, "POST")
                self._submit("compile")
            elif path == f"{API_PREFIX}/artifacts":
                self._allow(method, "GET")
                if server.registry is None:
                    raise _ApiError(404, "no artifact store configured")
                self._send_json(200, {"artifacts": server.registry.list()})
            elif (path.startswith(f"{API_PREFIX}/artifacts/")
                    and path.endswith("/lineage")):
                self._allow(method, "GET")
                ref = path[len(f"{API_PREFIX}/artifacts/"):
                           -len("/lineage")]
                self._get_lineage(ref)
            elif path.startswith(f"{API_PREFIX}/artifacts/"):
                self._allow(method, "GET")
                self._get_artifact(path[len(f"{API_PREFIX}/artifacts/"):])
            elif path == f"{API_PREFIX}/autopilot/status":
                self._allow(method, "GET")
                self._autopilot_status()
            elif path == f"{API_PREFIX}/channels":
                self._allow(method, "GET")
                if server.registry is None:
                    raise _ApiError(404, "no artifact store configured")
                self._send_json(200, {
                    "schema": API_SCHEMA, "ok": True,
                    "channels": server.registry.channels()})
            elif path.startswith(f"{API_PREFIX}/channels/"):
                self._channels(method,
                               path[len(f"{API_PREFIX}/channels/"):])
            elif (path.startswith(f"{API_PREFIX}/jobs/")
                    and path.endswith("/cancel")):
                self._allow(method, "POST")
                job_id = path[len(f"{API_PREFIX}/jobs/"):-len("/cancel")]
                self._cancel_job(job_id)
            elif path.startswith(f"{API_PREFIX}/jobs/"):
                self._allow(method, "GET")
                self._get_job(path[len(f"{API_PREFIX}/jobs/"):])
            else:
                raise _ApiError(404, f"no route {method} {path}")

        def _allow(self, method: str, allowed: str) -> None:
            """405 (with ``Allow``) for a known path, wrong method."""
            if method != allowed:
                raise _ApiError(
                    405, f"method {method} not allowed here",
                    headers={"Allow": allowed})

        def _route(self) -> None:
            path = self.path.split("?", 1)[0].rstrip("/")
            method = self.command
            with obs.span("serve:request", method=method, path=path):
                self._dispatch(method, path)

        # -- the fleet protocol ------------------------------------------
        def _evaluate_batch(self) -> None:
            """Synchronous batched evaluation, streamed as NDJSON.

            Validation happens *before* the 200 status line goes out,
            so protocol errors surface as clean 4xx responses; per-item
            evaluation failures after that are streamed in-band as
            ``{"ok": false}`` lines.
            """
            from repro.serve.jobs import parse_evaluate_batch

            if server._draining.is_set():
                raise _ApiError(503, "server is draining",
                                headers={"Retry-After": "5"})
            params = self._read_body()
            try:
                parse_evaluate_batch(params)
            except ValueError as exc:
                raise _ApiError(400, str(exc))
            if not server._batch_lanes.acquire(blocking=False):
                obs.inc("serve.batch_shed")
                raise _ApiError(
                    429,
                    f"all {server.batch_concurrency} batch lanes busy",
                    headers={"Retry-After": "1"})
            try:
                with obs.span("serve:batch",
                              items=len(params.get("items", ()))):
                    self._stream_batch(params)
            finally:
                server._batch_lanes.release()

        def _stream_batch(self, params: dict) -> None:
            self.send_response(200)
            self.send_header("Content-Type", "application/x-ndjson")
            self.send_header("Transfer-Encoding", "chunked")
            self.end_headers()
            count = 0
            try:
                try:
                    for item in run_evaluate_batch(params,
                                                   server.harness_pool):
                        self._write_chunk(item)
                        count += 1
                except ValueError as exc:
                    # late validation (e.g. fingerprint mismatch): the
                    # status line is gone, so report in-band and end
                    self._write_chunk({"ok": False, "fatal": True,
                                       "error": str(exc)})
                self._write_chunk({"done": True, "count": count})
                self.wfile.write(b"0\r\n\r\n")
            except (BrokenPipeError, ConnectionResetError):
                # The coordinator hung up mid-stream (it saw a fatal
                # record, or died).  Nobody is listening — just drop
                # the connection without a traceback.
                self.close_connection = True
                obs.inc("serve.batch_client_gone")
                return
            server.count_request("batch")

        def _write_chunk(self, payload: dict) -> None:
            line = (json.dumps(payload, sort_keys=True) + "\n").encode()
            self.wfile.write(b"%x\r\n" % len(line) + line + b"\r\n")
            self.wfile.flush()

        def _get_artifact(self, ref: str) -> None:
            from repro.serve.artifact import ArtifactError

            if server.registry is None:
                raise _ApiError(404, "no artifact store configured")
            try:
                artifact = server.registry.load(ref)
            except ArtifactError as exc:
                raise _ApiError(404, str(exc))
            self._send_json(200, artifact.to_json_dict())

        def _get_lineage(self, ref: str) -> None:
            from repro.serve.artifact import ArtifactError

            if server.registry is None:
                raise _ApiError(404, "no artifact store configured")
            try:
                chain = server.registry.lineage(ref)
            except ArtifactError as exc:
                raise _ApiError(404, str(exc))
            self._send_json(200, {
                "schema": API_SCHEMA, "ok": True, "lineage": chain})

        def _autopilot_status(self) -> None:
            if server.autopilot is None:
                self._send_json(200, {
                    "schema": API_SCHEMA, "ok": True, "enabled": False})
                return
            self._send_json(200, server.autopilot.status())

        def _channels(self, method: str, rest: str) -> None:
            """The channel-pointer API under /v1/channels/<case>/<machine>:
            GET a track, POST a pointer move, POST <track>/promote or
            <track>/rollback."""
            from repro.serve.artifact import ArtifactError

            if server.registry is None:
                raise _ApiError(404, "no artifact store configured")
            parts = rest.split("/")
            action = None
            if len(parts) == 3 and parts[2] in ("promote", "rollback"):
                case, machine, action = parts
            elif len(parts) == 2:
                case, machine = parts
            else:
                raise _ApiError(404, f"no channels route {rest!r}")
            try:
                if action is not None:
                    self._allow(method, "POST")
                    move = (server.registry.promote(case, machine)
                            if action == "promote"
                            else server.registry.rollback(case, machine))
                    self._send_json(200, {
                        "schema": API_SCHEMA, "ok": True,
                        "action": action, **move})
                elif method == "POST":
                    body = self._read_body()
                    if "channel" not in body:
                        raise _ApiError(400, "body requires 'channel'")
                    move = server.registry.set_channel(
                        case, machine, body["channel"],
                        body.get("artifact"))
                    self._send_json(200, {
                        "schema": API_SCHEMA, "ok": True,
                        "action": "set", **move})
                else:
                    self._allow(method, "GET")
                    track = server.registry.channels().get(
                        f"{case}/{machine}")
                    if track is None:
                        raise _ApiError(
                            404, f"no {case}/{machine} track")
                    self._send_json(200, {
                        "schema": API_SCHEMA, "ok": True, **track})
            except ArtifactError as exc:
                raise _ApiError(409, str(exc))

        def _get_job(self, job_id: str) -> None:
            job = server.queue.get(job_id)
            if job is None:
                raise _ApiError(404, f"unknown job {job_id!r}")
            self._send_json(200, job.to_json_dict())

        def _cancel_job(self, job_id: str) -> None:
            job = server.queue.get(job_id)
            if job is None:
                raise _ApiError(404, f"unknown job {job_id!r}")
            cancelled = server.queue.cancel(job_id)
            self._send_json(200, {
                "job_id": job_id,
                "cancelled": cancelled,
                "cancel_requested": job.cancel_requested,
                "state": job.state,
            })

        def _handle(self) -> None:
            try:
                self._route()
            except _ApiError as exc:
                self._send_json(
                    exc.status,
                    {"schema": API_SCHEMA, "ok": False, "error": str(exc)},
                    headers=exc.headers)
            except Exception as exc:  # noqa: BLE001 — keep serving
                self._send_json(500, {
                    "schema": API_SCHEMA, "ok": False,
                    "error": f"{type(exc).__name__}: {exc}"})

        def do_GET(self) -> None:  # noqa: N802
            self._handle()

        def do_POST(self) -> None:  # noqa: N802
            self._handle()

    return Handler
