"""Bounded job queue + warm worker pool for the serving daemon.

Design goals, in order:

* **Explicit backpressure.**  The queue is bounded; :meth:`JobQueue.
  submit` raises :class:`QueueFull` (with a suggested retry delay)
  instead of blocking or growing without bound, and the HTTP layer
  turns that into ``429 Retry-After``.  A saturated server sheds load,
  it never deadlocks or OOMs.
* **Warm workers.**  Each worker thread keeps an
  :class:`~repro.metaopt.harness.EvaluationHarness` per case study
  (prepared programs, baseline cycles, candidate memo) alive across
  requests, and all workers share the module-level simulator codegen
  cache and optional persistent fitness cache — the Compilation-
  Forking insight that a long-lived compiler service amortizes warm
  state over many requests.
* **Bounded job lifecycle.**  Queued jobs can be cancelled; every job
  carries a deadline.  A job still queued at its deadline is marked
  ``timeout`` without running; a job whose handler outlives the
  deadline has its result discarded and is marked ``timeout`` (the
  simulator's own cycle budget bounds actual handler runtime).
  Running jobs accept a *cooperative* cancel: :meth:`JobQueue.cancel`
  sets :attr:`Job.cancel_requested`, which long-running handlers (the
  autopilot's campaign steps) poll via :meth:`JobQueue.current_job`
  and honor at their next safe point.
* **Two priorities.**  ``interactive`` (the default) always runs
  before ``background``; the autopilot's evolution campaign steps ride
  the ``background`` class, so live traffic preempts self-improvement
  work at generation granularity.
* **Graceful drain.**  :meth:`JobQueue.drain` stops intake, cancels
  *queued* background jobs (they are resumable checkpointed steps),
  finishes every in-flight and queued interactive job, and joins the
  workers — the SIGTERM path of :mod:`repro.serve.server`.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field

from repro import obs

#: Job states; ``queued`` and ``running`` are live, the rest terminal.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled", "timeout")

#: Finished jobs retained for ``GET /v1/jobs/<id>`` before eviction.
FINISHED_JOBS_RETAINED = 1024

#: Job priority classes, in scheduling order.
JOB_PRIORITIES = ("interactive", "background")


class QueueFull(RuntimeError):
    """The bounded queue rejected a submission (shed, don't block)."""

    def __init__(self, capacity: int, retry_after: float) -> None:
        super().__init__(
            f"job queue at capacity ({capacity}); retry in "
            f"{retry_after:.1f}s")
        self.capacity = capacity
        self.retry_after = retry_after


@dataclass
class Job:
    """One unit of server work and its full lifecycle record."""

    id: str
    kind: str
    params: dict
    deadline: float | None
    priority: str = "interactive"
    state: str = "queued"
    result: dict | None = None
    error: str | None = None
    cancel_requested: bool = False
    created_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None

    def to_json_dict(self) -> dict:
        return {
            "id": self.id,
            "kind": self.kind,
            "priority": self.priority,
            "state": self.state,
            "result": self.result,
            "error": self.error,
            "cancel_requested": self.cancel_requested,
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }

    @property
    def finished(self) -> bool:
        return self.state in ("done", "failed", "cancelled", "timeout")


class JobQueue:
    """Fixed worker pool draining a bounded FIFO of :class:`Job`.

    ``handler(kind, params)`` runs on a worker thread and returns the
    job's JSON result dict (or raises; the exception text becomes the
    job's ``error``).
    """

    def __init__(
        self,
        handler,
        workers: int = 2,
        capacity: int = 16,
        job_timeout: float | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.handler = handler
        self.capacity = capacity
        self.job_timeout = job_timeout
        self._pending: deque[Job] = deque()
        self._background: deque[Job] = deque()
        self._jobs: OrderedDict[str, Job] = OrderedDict()
        self._current = threading.local()
        self._lock = threading.Lock()
        self._work_ready = threading.Condition(self._lock)
        self._idle = threading.Condition(self._lock)
        self._running = 0
        self._accepting = True
        self._stopped = False
        self._ids = itertools.count(1)
        self.counters = {
            "submitted": 0, "rejected": 0, "done": 0, "failed": 0,
            "cancelled": 0, "timeout": 0,
        }
        self._workers = [
            threading.Thread(target=self._worker_loop,
                             name=f"serve-worker-{index}", daemon=True)
            for index in range(workers)
        ]
        for worker in self._workers:
            worker.start()

    # -- intake ----------------------------------------------------------
    def submit(self, kind: str, params: dict,
               priority: str = "interactive") -> Job:
        """Enqueue a job or raise :class:`QueueFull`/:class:`
        RuntimeError` (draining).  Capacity is accounted per priority
        class, so a deep background backlog can never shed interactive
        traffic (or vice versa)."""
        if priority not in JOB_PRIORITIES:
            raise ValueError(f"unknown job priority {priority!r}")
        with self._lock:
            if not self._accepting:
                raise RuntimeError("queue is draining; not accepting jobs")
            pending = (self._pending if priority == "interactive"
                       else self._background)
            if len(pending) >= self.capacity:
                self.counters["rejected"] += 1
                obs.inc("serve.jobs_rejected")
                # Suggest waiting roughly one queue-drain interval:
                # scale with backlog so clients back off harder when
                # the queue is deeper.
                retry = max(0.1, 0.05 * len(pending))
                raise QueueFull(self.capacity, retry)
            deadline = (time.monotonic() + self.job_timeout
                        if self.job_timeout is not None
                        and priority == "interactive" else None)
            job = Job(id=f"job-{next(self._ids):06d}", kind=kind,
                      params=params, deadline=deadline, priority=priority)
            self._jobs[job.id] = job
            self._evict_finished_locked()
            pending.append(job)
            self.counters["submitted"] += 1
            obs.inc("serve.jobs_submitted")
            self._work_ready.notify()
            return job

    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def cancel(self, job_id: str) -> bool:
        """Cancel a *queued* job immediately; flag a *running* job for
        cooperative cancellation (long-running handlers poll
        :meth:`current_job` and stop at their next safe point — for a
        campaign step, between engine generations).  Returns True when
        the job transitioned to ``cancelled`` right now."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                return False
            if job.state == "running":
                job.cancel_requested = True
                obs.inc("serve.jobs_cancel_requested")
                return False
            if job.state != "queued":
                return False
            job.state = "cancelled"
            job.cancel_requested = True
            job.finished_at = time.time()
            self.counters["cancelled"] += 1
            obs.inc("serve.jobs_cancelled")
            return True

    def cancel_background_queued(self) -> int:
        """Cancel every still-queued background job (the drain path:
        queued campaign steps are resumable from their checkpoints, so
        there is no reason to run them while shutting down)."""
        with self._lock:
            return self._cancel_background_locked()

    def _cancel_background_locked(self) -> int:
        cancelled = 0
        for job in self._background:
            if job.state != "queued":
                continue
            job.state = "cancelled"
            job.cancel_requested = True
            job.error = "cancelled by drain"
            job.finished_at = time.time()
            self.counters["cancelled"] += 1
            obs.inc("serve.jobs_cancelled")
            cancelled += 1
        return cancelled

    def current_job(self) -> Job | None:
        """The job the *calling worker thread* is executing, if any.
        Handlers use this to poll ``cancel_requested`` mid-run without
        the ``handler(kind, params)`` signature growing a job handle."""
        return getattr(self._current, "job", None)

    # -- worker side -----------------------------------------------------
    def _next_job_locked(self) -> Job | None:
        # Interactive traffic strictly preempts background work: a
        # background job is only picked when no interactive job waits.
        for pending in (self._pending, self._background):
            while pending:
                job = pending.popleft()
                if job.state != "queued":
                    continue  # cancelled while waiting
                if (job.deadline is not None
                        and time.monotonic() > job.deadline):
                    job.state = "timeout"
                    job.error = "timed out waiting in queue"
                    job.finished_at = time.time()
                    self.counters["timeout"] += 1
                    obs.inc("serve.jobs_timeout")
                    continue
                return job
        return None

    def _worker_loop(self) -> None:
        while True:
            with self._lock:
                job = self._next_job_locked()
                while job is None and not self._stopped:
                    self._idle.notify_all()
                    self._work_ready.wait()
                    job = self._next_job_locked()
                if job is None:
                    self._idle.notify_all()
                    return
                job.state = "running"
                job.started_at = time.time()
                self._running += 1
            obs.observe(f"serve.wait_seconds.{job.priority}",
                        job.started_at - job.created_at)
            started = time.monotonic()
            self._current.job = job
            try:
                result = self.handler(job.kind, job.params)
                error = None
            except Exception as exc:  # noqa: BLE001 — job isolation
                result = None
                error = f"{type(exc).__name__}: {exc}"
            finally:
                self._current.job = None
            elapsed = time.monotonic() - started
            with self._lock:
                self._running -= 1
                if (job.deadline is not None
                        and time.monotonic() > job.deadline):
                    job.state = "timeout"
                    job.error = (f"exceeded job timeout "
                                 f"({self.job_timeout:.1f}s); result "
                                 "discarded")
                    job.result = None
                    self.counters["timeout"] += 1
                    obs.inc("serve.jobs_timeout")
                elif error is not None:
                    job.state = "failed"
                    job.error = error
                    self.counters["failed"] += 1
                    obs.inc("serve.jobs_failed")
                else:
                    job.state = "done"
                    job.result = result
                    self.counters["done"] += 1
                    obs.inc("serve.jobs_done")
                    obs.observe("serve.job_seconds", elapsed)
                job.finished_at = time.time()
                self._idle.notify_all()

    def _evict_finished_locked(self) -> None:
        finished = [job_id for job_id, job in self._jobs.items()
                    if job.finished]
        excess = len(finished) - FINISHED_JOBS_RETAINED
        for job_id in finished[:max(0, excess)]:
            del self._jobs[job_id]

    # -- lifecycle -------------------------------------------------------
    @property
    def accepting(self) -> bool:
        with self._lock:
            return self._accepting

    def depth(self) -> int:
        with self._lock:
            return len(self._pending)

    def background_depth(self) -> int:
        with self._lock:
            return len(self._background)

    def drain(self, timeout: float | None = None) -> bool:
        """Stop intake, cancel queued background jobs (resumable), wait
        for everything queued + running to finish, stop the workers.
        Returns True when fully drained."""
        deadline = (time.monotonic() + timeout
                    if timeout is not None else None)
        with self._lock:
            self._accepting = False
            self._cancel_background_locked()
            while self._pending or self._background or self._running:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._work_ready.notify_all()
                if not self._idle.wait(timeout=remaining):
                    return False
            self._stopped = True
            self._work_ready.notify_all()
        for worker in self._workers:
            worker.join(timeout=5.0)
        return True

    def stats(self) -> dict:
        with self._lock:
            return {
                **self.counters,
                "depth": len(self._pending),
                "background_depth": len(self._background),
                "running": self._running,
                "capacity": self.capacity,
                "workers": len(self._workers),
                "accepting": self._accepting,
            }


# ---------------------------------------------------------------------------
# Domain handlers: the work the daemon actually runs.
# ---------------------------------------------------------------------------

class HarnessPool:
    """Per-thread :class:`EvaluationHarness` instances, keyed by
    (case, :class:`~repro.metaopt.settings.EvalSettings`): each worker
    keeps its own warm compile/simulate caches while all workers share
    the process-wide codegen cache and any persistent fitness cache
    directory.

    Because ``http.client`` keep-alive pins one fleet connection to
    one ``ThreadingHTTPServer`` handler thread, a coordinator that
    reuses its connections also reuses these warm harnesses across
    generations — the fleet's answer to the process pool's
    copy-on-write prewarm.
    """

    def __init__(self, fitness_cache_dir: str | None = None,
                 use_snapshots: bool = True) -> None:
        self.fitness_cache_dir = fitness_cache_dir
        #: compilation forking (docs/FORKING.md): each thread's harness
        #: keeps a warm snapshot cache, so repeat ``/v1/evaluate`` hits
        #: replay only the hook's suffix instead of the full backend
        self.use_snapshots = use_snapshots
        self._local = threading.local()

    def _resolve(self, settings):
        """Pin the host-local fields: the cache directory and snapshot
        switch belong to *this* server's configuration, never to the
        requester (a remote coordinator must not name local paths).
        Neither field affects fitness values, so overriding them keeps
        results bit-identical to the requested settings."""
        return settings.replace(
            fitness_cache_dir=self.fitness_cache_dir,
            use_snapshots=self.use_snapshots,
            collect_metrics=False,
        )

    def get_for_settings(self, case_name: str, settings):
        from repro.metaopt.harness import EvaluationHarness, case_study

        harnesses = getattr(self._local, "harnesses", None)
        if harnesses is None:
            harnesses = self._local.harnesses = {}
        settings = self._resolve(settings)
        key = (case_name, settings)
        harness = harnesses.get(key)
        if harness is None:
            harness = EvaluationHarness(case_study(case_name), settings)
            harnesses[key] = harness
        return harness

    def get(self, case_name: str, noise_stddev: float = 0.0):
        from repro.metaopt.settings import EvalSettings

        return self.get_for_settings(
            case_name, EvalSettings(noise_stddev=float(noise_stddev)))


def simulation_payload(case_name: str, machine_name: str, benchmark: str,
                       dataset: str, result,
                       artifact_id: str | None = None) -> dict:
    """The canonical simulation-result document.

    Single source of truth for ``repro simulate --json``, ``POST
    /v1/evaluate`` results, and ``repro submit`` — byte-identical (as
    canonical sorted-keys JSON) no matter which path produced it.
    """
    payload = {
        "schema": 1,
        "benchmark": benchmark,
        "dataset": dataset,
        "machine": machine_name,
        "case": case_name,
        "outputs": result.outputs,
        "return_value": result.return_value,
        "cycles": result.cycles,
        "dynamic_ops": result.dynamic_ops,
        "squashed_ops": result.squashed_ops,
        "memory_stall_cycles": result.memory_stall_cycles,
        "branch_stall_cycles": result.branch_stall_cycles,
        "l1_hit_rate": result.l1_hit_rate,
        "branch_accuracy": result.branch_accuracy,
        "prefetch_count": result.prefetch_count,
    }
    if artifact_id is not None:
        payload["artifact"] = artifact_id
    return payload


def resolve_channel_artifact(registry, case_name: str, machine: str,
                             channel: str, benchmark: str, dataset: str,
                             canary_router=None) -> tuple[str, bool]:
    """Resolve a channel request to a concrete artifact id.

    ``channel="canary"`` demands the canary pointer.  ``"stable"``
    resolves to the stable pointer — unless a canary is live *and* the
    ``canary_router`` (the autopilot's deterministic hash slice) claims
    this traffic key, in which case the canary rides the request.
    Returns ``(artifact_id, routed_to_canary)``.
    """
    from repro.serve.artifact import ArtifactError

    if channel not in ("stable", "canary"):
        raise ValueError(f"unknown channel {channel!r} "
                         "(expected 'stable' or 'canary')")
    if registry is None:
        raise ArtifactError("no artifact store configured")
    chosen = registry.get_channel(case_name, machine, channel)
    if channel == "stable":
        if chosen is None:
            raise ArtifactError(
                f"no stable artifact on the {case_name}/{machine} track")
        canary = registry.get_channel(case_name, machine, "canary")
        if (canary is not None and canary_router is not None
                and canary_router(case_name, machine, benchmark, dataset)):
            return canary, True
        return chosen, False
    if chosen is None:
        raise ArtifactError(
            f"no canary artifact on the {case_name}/{machine} track")
    return chosen, False


def run_evaluate(params: dict, harness_pool: HarnessPool,
                 registry=None, canary_router=None) -> dict:
    """Execute one evaluate request: simulate a suite benchmark under
    the case baseline, a deployed artifact, or a channel pointer
    (``"channel": "stable"`` rides the autopilot's canary slice when
    one is live)."""
    from repro.metaopt.harness import case_study
    from repro.serve.artifact import ArtifactError

    benchmark = params.get("benchmark")
    if not benchmark:
        raise ValueError("evaluate requires 'benchmark'")
    case_name = params.get("case", "hyperblock")
    dataset = params.get("dataset", "train")
    if dataset not in ("train", "novel"):
        raise ValueError(f"unknown dataset {dataset!r}")
    noise = float(params.get("noise", 0.0))
    artifact_ref = params.get("artifact")
    channel = params.get("channel")
    if channel and artifact_ref:
        raise ValueError("'artifact' and 'channel' are mutually exclusive")

    routed_canary = False
    if channel:
        machine = case_study(case_name).machine.name
        artifact_ref, routed_canary = resolve_channel_artifact(
            registry, case_name, machine, channel, benchmark, dataset,
            canary_router=canary_router)

    artifact = None
    if artifact_ref:
        if registry is None:
            raise ArtifactError("no artifact store configured")
        artifact = registry.load(artifact_ref)
        if artifact.case != case_name:
            if "case" in params:
                raise ArtifactError(
                    f"artifact {artifact.short_id} targets "
                    f"{artifact.case}, request says {case_name}")
            case_name = artifact.case

    harness = harness_pool.get(case_name, noise)
    if artifact is not None:
        result = harness.simulate(artifact.tree(), benchmark, dataset)
    else:
        result = harness.baseline_result(benchmark, dataset)
    payload = simulation_payload(
        case_name, harness.case.machine.name, benchmark, dataset, result,
        artifact_id=artifact.artifact_id if artifact is not None else None)
    if channel:
        payload["channel"] = channel
        payload["routed_canary"] = routed_canary
    return payload


def parse_evaluate_batch(params: dict) -> tuple:
    """Validate a ``POST /v1/evaluate-batch`` body.

    Returns ``(case_name, dataset, settings, items)`` or raises
    :class:`ValueError`.  ``items`` is the raw list of
    ``{"index", "tree", "benchmark"}`` dicts; indices must be unique
    (they key the coordinator's order-independent reduction).
    """
    from repro.metaopt.harness import _HOOK_BY_CASE
    from repro.metaopt.settings import EvalSettings

    if params.get("schema") != 1:
        raise ValueError("evaluate-batch requires 'schema': 1")
    case_name = params.get("case")
    if case_name not in _HOOK_BY_CASE:
        raise ValueError(f"unknown case {case_name!r}")
    dataset = params.get("dataset", "train")
    if dataset not in ("train", "novel"):
        raise ValueError(f"unknown dataset {dataset!r}")
    try:
        settings = EvalSettings.from_json_dict(params.get("settings") or {})
    except (TypeError, ValueError) as exc:
        raise ValueError(f"bad settings: {exc}")
    items = params.get("items")
    if not isinstance(items, list) or not items:
        raise ValueError("'items' must be a non-empty list")
    seen = set()
    for item in items:
        if not isinstance(item, dict):
            raise ValueError("each item must be a JSON object")
        index = item.get("index")
        if not isinstance(index, int) or index < 0:
            raise ValueError("each item needs a non-negative 'index'")
        if index in seen:
            raise ValueError(f"duplicate item index {index}")
        seen.add(index)
        if not item.get("tree") or not isinstance(item["tree"], str):
            raise ValueError("each item needs a 'tree' s-expression")
        if not item.get("benchmark"):
            raise ValueError("each item needs a 'benchmark'")
    return case_name, dataset, settings, items


def check_fingerprints(params: dict, machine) -> None:
    """Reject a batch whose coordinator compiled against different
    source or machine tables: silently mixing fingerprints would break
    the fleet's bit-identical guarantee.  Absent fields are not
    checked (same-source deployments may skip them)."""
    wanted = params.get("fingerprint") or {}
    if not isinstance(wanted, dict):
        raise ValueError("'fingerprint' must be a JSON object")
    if not wanted:
        return
    from repro.metaopt.fitness_cache import (
        machine_fingerprint,
        pipeline_fingerprint,
    )

    pipeline = wanted.get("pipeline")
    if pipeline is not None and pipeline != pipeline_fingerprint():
        raise ValueError(
            f"pipeline fingerprint mismatch: coordinator has "
            f"{pipeline}, worker has {pipeline_fingerprint()}")
    fingerprint = wanted.get("machine")
    if (fingerprint is not None
            and fingerprint != machine_fingerprint(machine)):
        raise ValueError(
            f"machine fingerprint mismatch for {machine.name!r}")


def run_evaluate_batch(params: dict, harness_pool: HarnessPool):
    """Execute one evaluate-batch request as a generator of per-item
    result dicts (streamed as NDJSON by the HTTP layer).

    Every item is evaluated independently; a candidate that fails to
    parse or evaluate yields ``{"ok": false}`` for *that index only*,
    so one bad candidate cannot poison a shard.  Values are speedups
    from ``EvaluationHarness.speedup`` — bit-identical to the serial
    path because the harness derives noise seeds from the memo key,
    not from which host or thread runs the simulation.
    """
    from repro.metaopt.priority import PriorityFunction

    case_name, dataset, settings, items = parse_evaluate_batch(params)
    harness = harness_pool.get_for_settings(case_name, settings)
    check_fingerprints(params, harness.case.machine)
    for item in items:
        index = item["index"]
        try:
            priority = PriorityFunction.from_text(item["tree"],
                                                  harness.case.pset)
            value = harness.speedup(priority.tree, item["benchmark"],
                                    dataset)
            obs.inc("serve.batch_items")
            yield {"index": index, "ok": True, "value": value}
        except Exception as exc:  # noqa: BLE001 — item isolation
            obs.inc("serve.batch_item_errors")
            yield {"index": index, "ok": False,
                   "error": f"{type(exc).__name__}: {exc}"}


def run_compile(params: dict, registry=None) -> dict:
    """Execute one compile request: MiniC source through the full
    pipeline (optionally under an artifact), returning static stats
    and, when inputs are supplied, a simulation of the binary."""
    from repro.cli import MACHINES
    from repro.compiler import compile_program
    from repro.passes.pipeline import CompilerOptions
    from repro.serve.artifact import ArtifactError

    source = params.get("source")
    if not source:
        raise ValueError("compile requires 'source' (MiniC text)")
    machine_name = params.get("machine", "epic")
    if machine_name not in MACHINES:
        raise ValueError(f"unknown machine {machine_name!r}")

    artifact = None
    if params.get("artifact"):
        if registry is None:
            raise ArtifactError("no artifact store configured")
        artifact = registry.load(params["artifact"])

    options = CompilerOptions(
        machine=MACHINES[machine_name],
        prefetch=bool(params.get("prefetch", False)),
        unroll_factor=int(params.get("unroll", 2)),
        heuristic_artifact=artifact,
    )
    inputs = params.get("inputs") or {}
    if not isinstance(inputs, dict):
        raise ValueError("'inputs' must be a JSON object of globals")
    program = compile_program(source, profile_inputs=inputs,
                              options=options,
                              name=params.get("name", "request"))
    functions = {
        name: {
            "blocks": len(func.block_order),
            "static_cycles": func.static_cycles(),
            "frame_words": func.frame_words,
        }
        for name, func in program.scheduled.functions.items()
    }
    payload = {
        "schema": 1,
        "machine": machine_name,
        "functions": functions,
        "artifact": (artifact.artifact_id
                     if artifact is not None else None),
    }
    if params.get("run", False):
        result = program.run(inputs)
        payload["simulation"] = {
            "outputs": result.outputs,
            "return_value": result.return_value,
            "cycles": result.cycles,
            "dynamic_ops": result.dynamic_ops,
        }
    return payload
