"""Stdlib HTTP client for the serving daemon.

Used by ``repro submit`` and ``tools/bench_serve.py``.  Transient
failures — connection refused, ``429`` (queue full), ``503``
(draining) — are retried with exponential backoff, honouring the
server's ``Retry-After`` hint when present; anything else raises
:class:`ServeError` carrying the server's JSON error body.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request


class ServeError(RuntimeError):
    """A request the server definitively rejected (no retry)."""

    def __init__(self, message: str, status: int | None = None,
                 payload: dict | None = None) -> None:
        super().__init__(message)
        self.status = status
        self.payload = payload or {}


class ServerBusy(ServeError):
    """Retries exhausted against 429/503/connection failures."""


class JobFailed(ServeError):
    """The job finished in a non-``done`` state."""


#: Statuses worth retrying: shed load (429) and draining (503).
_RETRYABLE = (429, 503)


class ServeClient:
    """Thin, dependency-free client over the ``/v1`` JSON API."""

    def __init__(
        self,
        base_url: str,
        timeout: float = 30.0,
        retries: int = 5,
        backoff: float = 0.1,
        max_backoff: float = 2.0,
        sleep=time.sleep,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.max_backoff = max_backoff
        self._sleep = sleep
        self.retry_count = 0

    # -- transport -------------------------------------------------------
    def _request(self, method: str, path: str,
                 body: dict | None = None) -> dict:
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode()
            headers["Content-Type"] = "application/json"
        delay = self.backoff
        last_error: Exception | None = None
        for attempt in range(self.retries + 1):
            request = urllib.request.Request(
                self.base_url + path, data=data, headers=headers,
                method=method)
            try:
                with urllib.request.urlopen(
                        request, timeout=self.timeout) as response:
                    return json.loads(response.read() or b"{}")
            except urllib.error.HTTPError as exc:
                payload = self._error_payload(exc)
                if exc.code not in _RETRYABLE:
                    raise ServeError(
                        payload.get("error", f"HTTP {exc.code}"),
                        status=exc.code, payload=payload)
                last_error = ServeError(
                    payload.get("error", f"HTTP {exc.code}"),
                    status=exc.code, payload=payload)
                retry_after = exc.headers.get("Retry-After")
                if retry_after is not None:
                    try:
                        delay = max(delay, float(retry_after))
                    except ValueError:
                        pass
            except (urllib.error.URLError, ConnectionError,
                    TimeoutError) as exc:
                last_error = exc
            if attempt < self.retries:
                self.retry_count += 1
                self._sleep(min(delay, self.max_backoff))
                delay *= 2
        raise ServerBusy(
            f"{method} {path} failed after {self.retries + 1} attempts: "
            f"{last_error}",
            status=getattr(last_error, "status", None))

    @staticmethod
    def _error_payload(exc: urllib.error.HTTPError) -> dict:
        try:
            payload = json.loads(exc.read() or b"{}")
        except ValueError:
            payload = {}
        return payload if isinstance(payload, dict) else {}

    # -- API surface -----------------------------------------------------
    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def metrics(self) -> dict:
        return self._request("GET", "/metrics")

    def capabilities(self) -> dict:
        """``GET /v1/capabilities``: schema version, endpoint list,
        batch concurrency, pipeline fingerprint."""
        return self._request("GET", "/v1/capabilities")

    def artifacts(self) -> list[dict]:
        return self._request("GET", "/v1/artifacts")["artifacts"]

    def artifact(self, ref: str) -> dict:
        return self._request("GET", f"/v1/artifacts/{ref}")

    def lineage(self, ref: str) -> list[dict]:
        """``GET /v1/artifacts/<ref>/lineage``: ancestry chain,
        artifact first then parents."""
        return self._request(
            "GET", f"/v1/artifacts/{ref}/lineage")["lineage"]

    def channels(self) -> dict:
        """Every (case, machine) deployment track."""
        return self._request("GET", "/v1/channels")["channels"]

    def channel_track(self, case: str, machine: str) -> dict:
        return self._request("GET", f"/v1/channels/{case}/{machine}")

    def set_channel(self, case: str, machine: str, channel: str,
                    artifact: str | None) -> dict:
        """Point a track's ``stable``/``canary`` at an artifact (or
        clear it with ``artifact=None``)."""
        return self._request(
            "POST", f"/v1/channels/{case}/{machine}",
            body={"channel": channel, "artifact": artifact})

    def promote(self, case: str, machine: str) -> dict:
        """Atomically make the track's canary the new stable."""
        return self._request(
            "POST", f"/v1/channels/{case}/{machine}/promote")

    def rollback(self, case: str, machine: str) -> dict:
        """Atomically discard the track's canary."""
        return self._request(
            "POST", f"/v1/channels/{case}/{machine}/rollback")

    def autopilot_status(self) -> dict:
        return self._request("GET", "/v1/autopilot/status")

    def submit(self, kind: str, params: dict) -> dict:
        """Enqueue a job; returns ``{job_id, state, href}``."""
        return self._request("POST", f"/v1/{kind}", body=params)

    def job(self, job_id: str) -> dict:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def cancel(self, job_id: str) -> dict:
        return self._request("POST", f"/v1/jobs/{job_id}/cancel")

    def wait(self, job_id: str, timeout: float = 60.0,
             poll: float = 0.05) -> dict:
        """Poll until the job reaches a terminal state (or raise
        :class:`TimeoutError`); returns the final job document."""
        deadline = time.monotonic() + timeout
        while True:
            job = self.job(job_id)
            if job["state"] in ("done", "failed", "cancelled", "timeout"):
                return job
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still {job['state']} after {timeout}s")
            self._sleep(poll)

    # -- conveniences ----------------------------------------------------
    def run(self, kind: str, params: dict, timeout: float = 60.0) -> dict:
        """Submit, wait, and return the job's ``result`` payload;
        raises :class:`JobFailed` on any non-``done`` outcome."""
        submitted = self.submit(kind, params)
        job = self.wait(submitted["job_id"], timeout=timeout)
        if job["state"] != "done":
            raise JobFailed(
                f"job {job['id']} ended {job['state']}: {job['error']}",
                payload=job)
        return job["result"]

    def evaluate(self, benchmark: str, case: str | None = None,
                 dataset: str = "train", artifact: str | None = None,
                 channel: str | None = None, noise: float = 0.0,
                 timeout: float = 60.0) -> dict:
        params: dict = {"benchmark": benchmark, "dataset": dataset}
        if case is not None:
            params["case"] = case
        if artifact is not None:
            params["artifact"] = artifact
        if channel is not None:
            params["channel"] = channel
        if noise:
            params["noise"] = noise
        return self.run("evaluate", params, timeout=timeout)

    def compile(self, source: str, machine: str = "epic",
                artifact: str | None = None, run: bool = False,
                inputs: dict | None = None,
                timeout: float = 60.0) -> dict:
        params: dict = {"source": source, "machine": machine}
        if artifact is not None:
            params["artifact"] = artifact
        if run:
            params["run"] = True
        if inputs:
            params["inputs"] = inputs
        return self.run("compile", params, timeout=timeout)
