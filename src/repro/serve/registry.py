"""Content-addressed on-disk store of heuristic artifacts.

Layout mirrors the fitness cache: one JSON document per artifact under
``root/<id[:2]>/<id>.json``, written via temp-file + ``os.replace`` so
concurrent publishers can never leave a torn document (identical
content produces identical bytes, so the last writer wins benignly).
Lookup accepts unambiguous id prefixes, like git.

On top of the content-addressed documents the registry keeps one small
mutable index, ``channels.json``: per-(case, machine) *tracks* that
assign each published artifact a monotonically increasing version and
hold two channel pointers, ``stable`` and ``canary``.  Pointer moves
(publish / promote / rollback) are appended to the track's log and the
whole file is rewritten atomically under the registry lock, so a
killed daemon can never leave a torn index and the pointers survive
restarts.  Content documents stay immutable; only the index moves.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from pathlib import Path

from repro.serve.artifact import ArtifactError, HeuristicArtifact

#: Environment variable naming the default artifact store directory.
ARTIFACT_STORE_ENV = "REPRO_ARTIFACT_STORE"

#: Fallback store location when neither a flag nor the env var is set.
DEFAULT_STORE_DIR = "artifacts"

#: Version of the ``channels.json`` index format.
CHANNELS_SCHEMA = 1

#: Channel pointer names a track maintains.
CHANNELS = ("stable", "canary")


class ArtifactRegistry:
    """Save/load/list/verify heuristic artifacts under one directory."""

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()

    # -- paths -----------------------------------------------------------
    def path_for(self, artifact_id: str) -> Path:
        return self.root / artifact_id[:2] / f"{artifact_id}.json"

    @property
    def channels_path(self) -> Path:
        return self.root / "channels.json"

    def _iter_paths(self):
        for shard in sorted(self.root.iterdir()):
            if not shard.is_dir() or len(shard.name) != 2:
                continue
            yield from sorted(shard.glob("*.json"))

    # -- store -----------------------------------------------------------
    def save(self, artifact: HeuristicArtifact) -> str:
        """Write the artifact; returns its content-address id.
        Idempotent: re-saving identical content rewrites identical
        bytes."""
        artifact_id = artifact.artifact_id
        path = self.path_for(artifact_id)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(artifact.to_json_dict(), indent=2,
                             sort_keys=True) + "\n"
        with self._lock:
            fd, tmp_name = tempfile.mkstemp(
                dir=path.parent, prefix=".tmp-", suffix=".json")
            try:
                with os.fdopen(fd, "w") as handle:
                    handle.write(payload)
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        return artifact_id

    # -- lookup ----------------------------------------------------------
    def resolve(self, ref: str) -> str:
        """Expand an id or unambiguous prefix to the full artifact id."""
        if not ref:
            raise ArtifactError("empty artifact reference")
        exact = self.path_for(ref)
        if exact.exists():
            return ref
        matches = [path.stem for path in self._iter_paths()
                   if path.stem.startswith(ref)]
        if not matches:
            raise ArtifactError(
                f"no artifact matching {ref!r} in {self.root}")
        if len(matches) > 1:
            raise ArtifactError(
                f"ambiguous artifact reference {ref!r}: matches "
                f"{', '.join(m[:12] for m in sorted(matches))}")
        return matches[0]

    def load(self, ref: str) -> HeuristicArtifact:
        artifact_id = self.resolve(ref)
        path = self.path_for(artifact_id)
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            raise ArtifactError(f"cannot read artifact {ref!r}: {exc}")
        artifact = HeuristicArtifact.from_json_dict(data)
        if artifact.artifact_id != artifact_id:
            raise ArtifactError(
                f"store corruption: {path} holds content "
                f"{artifact.short_id}, filed under {artifact_id[:12]}")
        return artifact

    def __contains__(self, artifact_id: str) -> bool:
        return self.path_for(artifact_id).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self._iter_paths())

    # -- channel tracks ---------------------------------------------------
    @staticmethod
    def track_key(case: str, machine: str) -> str:
        return f"{case}/{machine}"

    def _read_channels_locked(self) -> dict:
        try:
            data = json.loads(self.channels_path.read_text())
        except OSError:
            return {"schema": CHANNELS_SCHEMA, "tracks": {}}
        except ValueError as exc:
            raise ArtifactError(
                f"corrupt channel index {self.channels_path}: {exc}")
        if data.get("schema") != CHANNELS_SCHEMA:
            raise ArtifactError(
                f"unsupported channel index schema {data.get('schema')!r} "
                f"(this build reads {CHANNELS_SCHEMA})")
        return data

    def _write_channels_locked(self, data: dict) -> None:
        payload = json.dumps(data, indent=2, sort_keys=True) + "\n"
        fd, tmp_name = tempfile.mkstemp(
            dir=self.root, prefix=".tmp-channels-", suffix=".json")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, self.channels_path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def _track_locked(self, data: dict, case: str, machine: str) -> dict:
        return data["tracks"].setdefault(self.track_key(case, machine), {
            "case": case,
            "machine": machine,
            "next_version": 1,
            "versions": {},
            "stable": None,
            "canary": None,
            "log": [],
        })

    @staticmethod
    def _log_locked(track: dict, action: str, channel: str | None,
                    artifact_id: str | None, version: int | None) -> None:
        track["log"].append({
            "schema": CHANNELS_SCHEMA,
            "seq": len(track["log"]) + 1,
            "action": action,
            "channel": channel,
            "artifact_id": artifact_id,
            "version": version,
        })

    def register_version(self, case: str, machine: str,
                         artifact_id: str) -> int:
        """Assign the artifact the track's next version (idempotent)."""
        with self._lock:
            data = self._read_channels_locked()
            track = self._track_locked(data, case, machine)
            if artifact_id in track["versions"]:
                return track["versions"][artifact_id]
            version = track["next_version"]
            track["next_version"] = version + 1
            track["versions"][artifact_id] = version
            self._log_locked(track, "version", None, artifact_id, version)
            self._write_channels_locked(data)
            return version

    def set_channel(self, case: str, machine: str, channel: str,
                    artifact_id: str | None) -> dict:
        """Point ``stable``/``canary`` at an artifact (or clear it).

        The artifact must exist in the store and is assigned a track
        version if it does not have one yet.  Returns the move:
        ``{"channel", "artifact_id", "version", "previous"}``.
        """
        if channel not in CHANNELS:
            raise ArtifactError(
                f"unknown channel {channel!r} (expected one of "
                f"{', '.join(CHANNELS)})")
        if artifact_id is not None:
            artifact_id = self.resolve(artifact_id)
            loaded = self.load(artifact_id)
            if loaded.case != case or loaded.machine_name != machine:
                raise ArtifactError(
                    f"artifact {artifact_id[:12]} is for "
                    f"{loaded.case}/{loaded.machine_name}, not the "
                    f"{case}/{machine} track")
        with self._lock:
            data = self._read_channels_locked()
            track = self._track_locked(data, case, machine)
            version = None
            if artifact_id is not None:
                version = track["versions"].get(artifact_id)
                if version is None:
                    version = track["next_version"]
                    track["next_version"] = version + 1
                    track["versions"][artifact_id] = version
                    self._log_locked(track, "version", None, artifact_id,
                                     version)
            previous = track[channel]
            track[channel] = artifact_id
            self._log_locked(track, "set", channel, artifact_id, version)
            self._write_channels_locked(data)
            return {"channel": channel, "artifact_id": artifact_id,
                    "version": version, "previous": previous}

    def get_channel(self, case: str, machine: str,
                    channel: str) -> str | None:
        if channel not in CHANNELS:
            raise ArtifactError(
                f"unknown channel {channel!r} (expected one of "
                f"{', '.join(CHANNELS)})")
        with self._lock:
            data = self._read_channels_locked()
            track = data["tracks"].get(self.track_key(case, machine))
            return track[channel] if track else None

    def promote(self, case: str, machine: str) -> dict:
        """Atomically make the canary the new stable (canary cleared)."""
        with self._lock:
            data = self._read_channels_locked()
            track = data["tracks"].get(self.track_key(case, machine))
            if not track or track["canary"] is None:
                raise ArtifactError(
                    f"no canary to promote on the {case}/{machine} track")
            canary = track["canary"]
            previous = track["stable"]
            track["stable"] = canary
            track["canary"] = None
            self._log_locked(track, "promote", "stable", canary,
                             track["versions"].get(canary))
            self._write_channels_locked(data)
            return {"stable": canary, "previous_stable": previous,
                    "version": track["versions"].get(canary)}

    def rollback(self, case: str, machine: str) -> dict:
        """Atomically discard the canary; stable is untouched."""
        with self._lock:
            data = self._read_channels_locked()
            track = data["tracks"].get(self.track_key(case, machine))
            if not track or track["canary"] is None:
                raise ArtifactError(
                    f"no canary to roll back on the {case}/{machine} track")
            canary = track["canary"]
            track["canary"] = None
            self._log_locked(track, "rollback", "canary", canary,
                             track["versions"].get(canary))
            self._write_channels_locked(data)
            return {"rolled_back": canary, "stable": track["stable"],
                    "version": track["versions"].get(canary)}

    def version_of(self, case: str, machine: str,
                   artifact_id: str) -> int | None:
        with self._lock:
            data = self._read_channels_locked()
            track = data["tracks"].get(self.track_key(case, machine))
            return track["versions"].get(artifact_id) if track else None

    def channels(self) -> dict:
        """Deep copy of every track, for the status/channels APIs."""
        with self._lock:
            data = self._read_channels_locked()
        return json.loads(json.dumps(data["tracks"]))

    # -- lineage ----------------------------------------------------------
    def lineage(self, ref: str, limit: int = 64) -> list[dict]:
        """Ancestry chain, artifact first then parents.

        Each row is a :meth:`list`-style summary plus ``parent_id``;
        a parent missing from the store ends the chain with a
        ``{"artifact_id": ..., "error": "missing"}`` row.
        """
        chain: list[dict] = []
        seen: set[str] = set()
        artifact_id: str | None = self.resolve(ref)
        while artifact_id is not None and len(chain) < limit:
            if artifact_id in seen:
                chain.append({"artifact_id": artifact_id, "error": "cycle"})
                break
            seen.add(artifact_id)
            try:
                artifact = self.load(artifact_id)
            except ArtifactError:
                chain.append({"artifact_id": artifact_id,
                              "error": "missing"})
                break
            row = self._summary_row(artifact)
            chain.append(row)
            artifact_id = artifact.parent_id
        return chain

    # -- listing / verification ------------------------------------------
    def _summary_row(self, artifact: HeuristicArtifact) -> dict:
        return {
            "artifact_id": artifact.artifact_id,
            "case": artifact.case,
            "machine": artifact.machine_name,
            "expression": artifact.expression,
            "metrics": artifact.metrics,
            "created_at": artifact.created_at,
            "parent_id": artifact.parent_id,
        }

    def list(self, case: str | None = None, machine: str | None = None,
             channel: str | None = None) -> list[dict]:
        """Summaries of stored artifacts, sorted by (case, version).

        Filters are conjunctive; ``channel`` keeps only artifacts a
        ``stable``/``canary`` pointer currently names.  Every row is
        annotated with its track ``version`` (None if never published
        to a track) and the ``channels`` pointing at it.  The sort —
        (case, machine, version, created_at, id) — is total and stable
        so scripted consumers see a deterministic order.
        """
        tracks = self.channels()
        by_id_version: dict[str, int] = {}
        by_id_channels: dict[str, list[str]] = {}
        for track in tracks.values():
            for artifact_id, version in track["versions"].items():
                by_id_version[artifact_id] = version
            for name in CHANNELS:
                if track[name] is not None:
                    by_id_channels.setdefault(track[name], []).append(name)
        rows = []
        for path in self._iter_paths():
            try:
                artifact = HeuristicArtifact.from_json_dict(
                    json.loads(path.read_text()))
            except (OSError, ValueError):
                if case is None and machine is None and channel is None:
                    rows.append({"artifact_id": path.stem, "case": "?",
                                 "error": "unreadable", "created_at": 0.0,
                                 "version": None, "channels": []})
                continue
            if case is not None and artifact.case != case:
                continue
            if machine is not None and artifact.machine_name != machine:
                continue
            pointers = sorted(by_id_channels.get(artifact.artifact_id, []))
            if channel is not None and channel not in pointers:
                continue
            row = self._summary_row(artifact)
            row["version"] = by_id_version.get(artifact.artifact_id)
            row["channels"] = pointers
            rows.append(row)
        rows.sort(key=lambda row: (
            row.get("case") or "",
            row.get("machine") or "",
            row.get("version") if row.get("version") is not None else 1 << 30,
            row.get("created_at", 0.0),
            row["artifact_id"],
        ))
        return rows

    def verify(self, ref: str) -> list[str]:
        """Problems with one stored artifact (empty list = valid)."""
        try:
            artifact = self.load(ref)
        except ArtifactError as exc:
            return [str(exc)]
        return artifact.verify()


def registry_from_env(explicit_dir: str | None = None) -> ArtifactRegistry:
    """Resolve the artifact store: explicit flag beats
    ``$REPRO_ARTIFACT_STORE`` beats ``./artifacts``."""
    directory = (explicit_dir or os.environ.get(ARTIFACT_STORE_ENV)
                 or DEFAULT_STORE_DIR)
    return ArtifactRegistry(directory)
