"""Content-addressed on-disk store of heuristic artifacts.

Layout mirrors the fitness cache: one JSON document per artifact under
``root/<id[:2]>/<id>.json``, written via temp-file + ``os.replace`` so
concurrent publishers can never leave a torn document (identical
content produces identical bytes, so the last writer wins benignly).
Lookup accepts unambiguous id prefixes, like git.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from pathlib import Path

from repro.serve.artifact import ArtifactError, HeuristicArtifact

#: Environment variable naming the default artifact store directory.
ARTIFACT_STORE_ENV = "REPRO_ARTIFACT_STORE"

#: Fallback store location when neither a flag nor the env var is set.
DEFAULT_STORE_DIR = "artifacts"


class ArtifactRegistry:
    """Save/load/list/verify heuristic artifacts under one directory."""

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()

    # -- paths -----------------------------------------------------------
    def path_for(self, artifact_id: str) -> Path:
        return self.root / artifact_id[:2] / f"{artifact_id}.json"

    def _iter_paths(self):
        for shard in sorted(self.root.iterdir()):
            if not shard.is_dir() or len(shard.name) != 2:
                continue
            yield from sorted(shard.glob("*.json"))

    # -- store -----------------------------------------------------------
    def save(self, artifact: HeuristicArtifact) -> str:
        """Write the artifact; returns its content-address id.
        Idempotent: re-saving identical content rewrites identical
        bytes."""
        artifact_id = artifact.artifact_id
        path = self.path_for(artifact_id)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(artifact.to_json_dict(), indent=2,
                             sort_keys=True) + "\n"
        with self._lock:
            fd, tmp_name = tempfile.mkstemp(
                dir=path.parent, prefix=".tmp-", suffix=".json")
            try:
                with os.fdopen(fd, "w") as handle:
                    handle.write(payload)
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        return artifact_id

    # -- lookup ----------------------------------------------------------
    def resolve(self, ref: str) -> str:
        """Expand an id or unambiguous prefix to the full artifact id."""
        if not ref:
            raise ArtifactError("empty artifact reference")
        exact = self.path_for(ref)
        if exact.exists():
            return ref
        matches = [path.stem for path in self._iter_paths()
                   if path.stem.startswith(ref)]
        if not matches:
            raise ArtifactError(
                f"no artifact matching {ref!r} in {self.root}")
        if len(matches) > 1:
            raise ArtifactError(
                f"ambiguous artifact reference {ref!r}: matches "
                f"{', '.join(m[:12] for m in sorted(matches))}")
        return matches[0]

    def load(self, ref: str) -> HeuristicArtifact:
        artifact_id = self.resolve(ref)
        path = self.path_for(artifact_id)
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            raise ArtifactError(f"cannot read artifact {ref!r}: {exc}")
        artifact = HeuristicArtifact.from_json_dict(data)
        if artifact.artifact_id != artifact_id:
            raise ArtifactError(
                f"store corruption: {path} holds content "
                f"{artifact.short_id}, filed under {artifact_id[:12]}")
        return artifact

    def __contains__(self, artifact_id: str) -> bool:
        return self.path_for(artifact_id).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self._iter_paths())

    # -- listing / verification ------------------------------------------
    def list(self) -> list[dict]:
        """Summaries of every stored artifact, newest first."""
        rows = []
        for path in self._iter_paths():
            try:
                artifact = HeuristicArtifact.from_json_dict(
                    json.loads(path.read_text()))
            except (OSError, ValueError):
                rows.append({"artifact_id": path.stem, "case": "?",
                             "error": "unreadable", "created_at": 0.0})
                continue
            rows.append({
                "artifact_id": artifact.artifact_id,
                "case": artifact.case,
                "machine": artifact.machine_name,
                "expression": artifact.expression,
                "metrics": artifact.metrics,
                "created_at": artifact.created_at,
            })
        rows.sort(key=lambda row: (-row["created_at"], row["artifact_id"]))
        return rows

    def verify(self, ref: str) -> list[str]:
        """Problems with one stored artifact (empty list = valid)."""
        try:
            artifact = self.load(ref)
        except ArtifactError as exc:
            return [str(exc)]
        return artifact.verify()


def registry_from_env(explicit_dir: str | None = None) -> ArtifactRegistry:
    """Resolve the artifact store: explicit flag beats
    ``$REPRO_ARTIFACT_STORE`` beats ``./artifacts``."""
    directory = (explicit_dir or os.environ.get(ARTIFACT_STORE_ENV)
                 or DEFAULT_STORE_DIR)
    return ArtifactRegistry(directory)
