"""Type system for GP expressions.

The paper's genetic-programming system (Table 1) is *strongly typed*:
every primitive is either real-valued or Boolean-valued, and each
argument slot has a fixed type.  Strong typing keeps crossover and
mutation closed over well-formed expressions, which the paper relies on
("the underlying algorithm ensures optimization legality" -- only the
priority function is evolved, and it must always produce a value of the
right kind).
"""

from __future__ import annotations

import enum


class GPType(enum.Enum):
    """The two value kinds a GP expression node may produce."""

    REAL = "real"
    BOOL = "bool"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GPType.{self.name}"


REAL = GPType.REAL
BOOL = GPType.BOOL
