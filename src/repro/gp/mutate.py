"""Mutation operators (Figure 1(d); Banzhaf et al. [2]).

The paper mutates roughly 5% of newly created expressions.  We implement
the standard operator mix from the Banzhaf et al. reference:

* **subtree mutation** — a randomly generated expression supplants a
  randomly chosen node (the operator illustrated in Figure 1(d));
* **point mutation** — a single node is replaced by another primitive of
  the same signature (constants are perturbed);
* **shrink mutation** — an interior node is replaced by one of its
  same-typed descendants, a mild parsimony aid.

All operators preserve typing, so mutation is closed over well-formed
expressions.
"""

from __future__ import annotations

import random

from repro.gp.crossover import depth_fair_pick, replace_subtree
from repro.gp.generate import TreeGenerator
from repro.gp.nodes import (
    FUNCTION_CLASSES,
    BConst,
    Node,
    RConst,
)


def subtree_mutation(
    tree: Node, generator: TreeGenerator, rng: random.Random, max_depth: int = 4
) -> Node:
    """Replace a depth-fairly chosen node with a freshly grown subtree."""
    mutant = tree.copy()
    pick = depth_fair_pick(mutant, rng)
    if pick is None:  # pragma: no cover
        return mutant
    node, parent, slot = pick
    replacement = generator.grow(max_depth, node.result_type)
    return replace_subtree(mutant, parent, slot, replacement)


def point_mutation(
    tree: Node, generator: TreeGenerator, rng: random.Random
) -> Node:
    """Swap one primitive for another of identical signature.

    Constants are perturbed multiplicatively instead of resampled, which
    lets evolution fine-tune coefficients.
    """
    mutant = tree.copy()
    pick = depth_fair_pick(mutant, rng)
    if pick is None:  # pragma: no cover
        return mutant
    node, parent, slot = pick

    if isinstance(node, RConst):
        scale = rng.uniform(0.5, 1.5)
        new_node: Node = RConst(
            round(node.value * scale, generator.pset.const_digits)
        )
    elif isinstance(node, BConst):
        new_node = BConst(not node.value)
    elif not node.children:
        new_node = generator.random_terminal(node.result_type)
    else:
        compatible = [
            cls
            for cls in FUNCTION_CLASSES.values()
            if cls.result_type is node.result_type
            and cls.arg_types == node.arg_types
            and cls.op_name != node.op_name
            and cls.op_name in generator.pset.functions
        ]
        if not compatible:
            return mutant
        cls = rng.choice(compatible)
        new_node = cls(*(child.copy() for child in node.children))
    return replace_subtree(mutant, parent, slot, new_node)


def shrink_mutation(tree: Node, rng: random.Random) -> Node:
    """Replace an interior node with one of its same-typed descendants."""
    mutant = tree.copy()
    interior = [
        (node, parent, slot)
        for node, parent, slot, _depth in mutant.walk_with_context()
        if node.children
    ]
    if not interior:
        return mutant
    node, parent, slot = rng.choice(interior)
    descendants = [
        candidate
        for candidate in node.walk()
        if candidate is not node and candidate.result_type is node.result_type
    ]
    if not descendants:
        return mutant
    return replace_subtree(mutant, parent, slot, rng.choice(descendants).copy())


def mutate(
    tree: Node,
    generator: TreeGenerator,
    rng: random.Random,
    max_depth: int = 17,
) -> Node:
    """Apply one randomly selected mutation operator.

    The mix is weighted toward subtree mutation, the paper's
    illustrated operator.
    """
    roll = rng.random()
    if roll < 0.6:
        mutant = subtree_mutation(tree, generator, rng)
    elif roll < 0.85:
        mutant = point_mutation(tree, generator, rng)
    else:
        mutant = shrink_mutation(tree, rng)
    if mutant.depth() > max_depth:
        return tree.copy()
    return mutant
