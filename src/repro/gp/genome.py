"""Genome abstraction: expression trees and flag vectors, one engine.

The paper's GP evolves priority-function *expression trees*; the FOGA
line of work (PAPERS.md) instead runs a GA over the compiler's
*option/flag space*.  Both searches share everything above the genome —
tournament selection, generational replacement, elitism, memoized
fitness, DSS, checkpointing — so :class:`~repro.gp.engine.GPEngine`
delegates the four genome-specific operations (generate, crossover,
mutate, textual round-trip) to a ``GenomeOps`` strategy object:

* :class:`TreeGenomeOps` wraps the existing tree operators verbatim —
  same functions, same argument order, same RNG draws — so a tree
  campaign's evolution is byte-identical to the pre-abstraction engine;
* :class:`FlagsGenomeOps` operates on :class:`FlagsGenome`, a fixed-
  length vector of enum genes over ``CompilerOptions`` (uniform
  crossover, single-gene mutation).

:func:`genome_ops_for` picks the right strategy from the pset object,
so every existing call site that passes a
:class:`~repro.gp.generate.PrimitiveSet` keeps working unchanged.

A :class:`FlagsGenome` duck-types the small surface of
:class:`~repro.gp.nodes.Node` the engine and selection code touch
(``copy``, ``size``, ``depth``, ``structural_key``, equality/hash), and
serializes to a single s-expression-shaped line
``(flags inline=1 unroll=2 ...)`` for checkpoints and result files.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.gp.crossover import crossover as tree_crossover
from repro.gp.generate import PrimitiveSet, TreeGenerator
from repro.gp.mutate import mutate as tree_mutate
from repro.gp.nodes import Node
from repro.gp.parse import ParseError, parse, unparse

#: Gene name -> ordered value choices.  ``order`` selects the backend
#: stage permutation (only the two region-shaping stages may swap; see
#: ``repro.passes.pipeline.validate_backend_order``).
FLAG_GENES: tuple[tuple[str, tuple], ...] = (
    ("inline", (False, True)),
    ("unroll", (1, 2, 4, 8)),
    ("hyperblock", (False, True)),
    ("threshold", (0.05, 0.1, 0.2, 0.4)),
    ("prefetch", (False, True)),
    ("order", ("hyperblock-first", "prefetch-first")),
)

_ORDER_TUPLES = {
    "hyperblock-first": ("hyperblock", "prefetch", "regalloc", "schedule"),
    "prefetch-first": ("prefetch", "hyperblock", "regalloc", "schedule"),
}


@dataclass(frozen=True)
class FlagsSpace:
    """The searchable flag space — the flags campaign's "pset".

    Carries the gene table plus the couple of attributes generic code
    reads off a pset (``feature_names`` for display).  Anything
    tree-only (``bool_feature_set``, ``result_type``) is deliberately
    absent so misuse fails loudly.
    """

    genes: tuple[tuple[str, tuple], ...] = FLAG_GENES

    @property
    def feature_names(self) -> tuple[str, ...]:
        return tuple(name for name, _choices in self.genes)

    def default_genome(self) -> "FlagsGenome":
        """The genome matching stock ``CompilerOptions`` defaults —
        the campaign's seeded baseline (fitness exactly 1.0)."""
        return FlagsGenome(values=(True, 2, True, 0.1, False,
                                   "hyperblock-first"), space=self)


class FlagsGenome:
    """One point in the flag space; duck-types the Node surface the
    engine touches."""

    __slots__ = ("values", "space")

    #: Node-compat: the engine never descends into flag genomes.
    children: tuple = ()

    def __init__(self, values: tuple, space: FlagsSpace) -> None:
        if len(values) != len(space.genes):
            raise ValueError(
                f"flags genome needs {len(space.genes)} genes, "
                f"got {len(values)}")
        for value, (name, choices) in zip(values, space.genes):
            if value not in choices:
                raise ValueError(
                    f"gene {name!r}: {value!r} not in {choices}")
        self.values = tuple(values)
        self.space = space

    # -- Node-surface duck typing ---------------------------------------
    def copy(self) -> "FlagsGenome":
        return FlagsGenome(self.values, self.space)

    def size(self) -> int:
        return len(self.values)

    def depth(self) -> int:
        return 1

    def structural_key(self) -> tuple:
        return ("flags",) + self.values

    def __eq__(self, other) -> bool:
        return (isinstance(other, FlagsGenome)
                and self.values == other.values)

    def __hash__(self) -> int:
        return hash(("flags", self.values))

    def __repr__(self) -> str:
        return f"FlagsGenome({self.text()})"

    # -- semantics ------------------------------------------------------
    def option_changes(self) -> dict:
        """``CompilerOptions`` field values this genome pins (plain
        data only, so this layer needs no compiler imports)."""
        genes = dict(zip(self.space.feature_names, self.values))
        return {
            "inline": genes["inline"],
            "unroll_factor": genes["unroll"],
            "hyperblock": genes["hyperblock"],
            "hyperblock_threshold": genes["threshold"],
            "prefetch": genes["prefetch"],
            "backend_order": _ORDER_TUPLES[genes["order"]],
        }

    def install(self, options):
        """A ``CompilerOptions`` copy with this genome's flags set."""
        return dataclasses.replace(options, **self.option_changes())

    # -- textual round-trip ---------------------------------------------
    def text(self) -> str:
        parts = []
        for value, (name, _choices) in zip(self.values, self.space.genes):
            if isinstance(value, bool):
                rendered = "1" if value else "0"
            else:
                rendered = repr(value) if isinstance(value, float) else str(value)
            parts.append(f"{name}={rendered}")
        return "(flags " + " ".join(parts) + ")"

    @classmethod
    def from_text(cls, text: str, space: FlagsSpace) -> "FlagsGenome":
        stripped = text.strip()
        if not (stripped.startswith("(flags") and stripped.endswith(")")):
            raise ParseError(f"not a flags genome: {text!r}")
        assignments = {}
        for token in stripped[len("(flags"):-1].split():
            name, _, raw = token.partition("=")
            assignments[name] = raw
        values = []
        for name, choices in space.genes:
            if name not in assignments:
                raise ParseError(f"flags genome missing gene {name!r}")
            raw = assignments[name]
            sample = choices[0]
            if isinstance(sample, bool):
                values.append(raw == "1")
            elif isinstance(sample, float):
                values.append(float(raw))
            elif isinstance(sample, int):
                values.append(int(raw))
            else:
                values.append(raw)
        return cls(tuple(values), space)


def is_flags_text(text: str) -> bool:
    """True when ``text`` serializes a flags genome rather than an
    expression tree."""
    return text.lstrip().startswith("(flags")


class _FlagsGenerator:
    """Random-genome source; duck-types the slice of
    :class:`~repro.gp.generate.TreeGenerator` the engine uses."""

    def __init__(self, space: FlagsSpace, rng) -> None:
        self.space = space
        self.rng = rng

    def random_genome(self) -> FlagsGenome:
        values = tuple(self.rng.choice(choices)
                       for _name, choices in self.space.genes)
        return FlagsGenome(values, self.space)

    def ramped_half_and_half(self, count: int, min_depth: int = 2,
                             max_depth: int = 6) -> list[FlagsGenome]:
        # Depth is meaningless for fixed-length genomes; the signature
        # matches so the engine's population seeding works unchanged.
        return [self.random_genome() for _ in range(count)]


class TreeGenomeOps:
    """Expression-tree genome: thin pass-throughs to the existing
    operators.  Call order and argument shapes are identical to the
    pre-abstraction engine, so RNG streams (and therefore whole
    campaigns) stay byte-identical."""

    kind = "tree"

    def __init__(self, pset: PrimitiveSet) -> None:
        self.pset = pset

    def make_generator(self, rng) -> TreeGenerator:
        return TreeGenerator(self.pset, rng=rng)

    def crossover(self, mother: Node, father: Node, rng, max_depth: int):
        return tree_crossover(mother, father, rng, max_depth)

    def mutate(self, tree: Node, generator, rng, max_depth: int) -> Node:
        return tree_mutate(tree, generator, rng, max_depth)

    def unparse(self, tree: Node) -> str:
        return unparse(tree)

    def parse(self, text: str) -> Node:
        return parse(text, self.pset.bool_feature_set())


class FlagsGenomeOps:
    """Flag-vector genome: uniform crossover, single-gene mutation."""

    kind = "flags"

    def __init__(self, space: FlagsSpace) -> None:
        self.space = space

    def make_generator(self, rng) -> _FlagsGenerator:
        return _FlagsGenerator(self.space, rng)

    def crossover(self, mother: FlagsGenome, father: FlagsGenome, rng,
                  max_depth: int):
        left, right = [], []
        for index in range(len(mother.values)):
            if rng.random() < 0.5:
                left.append(mother.values[index])
                right.append(father.values[index])
            else:
                left.append(father.values[index])
                right.append(mother.values[index])
        return (FlagsGenome(tuple(left), self.space),
                FlagsGenome(tuple(right), self.space))

    def mutate(self, genome: FlagsGenome, generator, rng,
               max_depth: int) -> FlagsGenome:
        index = rng.randrange(len(genome.values))
        _name, choices = self.space.genes[index]
        alternatives = [value for value in choices
                        if value != genome.values[index]]
        values = list(genome.values)
        values[index] = rng.choice(alternatives)
        return FlagsGenome(tuple(values), self.space)

    def unparse(self, genome: FlagsGenome) -> str:
        return genome.text()

    def parse(self, text: str) -> FlagsGenome:
        return FlagsGenome.from_text(text, self.space)


def genome_ops_for(pset):
    """The genome strategy matching a pset-like object."""
    if isinstance(pset, FlagsSpace):
        return FlagsGenomeOps(pset)
    return TreeGenomeOps(pset)


def expression_text(tree) -> str:
    """Text form of any genome — flags line or s-expression."""
    if isinstance(tree, FlagsGenome):
        return tree.text()
    return unparse(tree)
