"""Dynamic subset selection (Gathercole, 1998).

Training a general-purpose priority function means evaluating every
candidate on every benchmark — far too costly when one fitness
evaluation is a full compile-and-simulate.  DSS instead evaluates each
generation on a *subset* of the training benchmarks, biased toward
benchmarks that are currently "difficult" (the candidate pool performs
poorly on them relative to the baseline) and benchmarks that have not
been selected recently.

Each benchmark ``b`` carries

* a difficulty score ``D(b)``  — how far below baseline the recent
  population average is on ``b`` (benchmarks the pool already handles
  well fade out), and
* an age ``A(b)``              — generations since last selection.

Selection weight follows Gathercole's formulation
``W(b) = D(b)**d + A(b)**a`` and a subset of fixed size is drawn by
weighted sampling without replacement.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field


@dataclass
class DSSState:
    """Per-benchmark bookkeeping for dynamic subset selection."""

    benchmarks: tuple[str, ...]
    subset_size: int
    difficulty_exponent: float = 1.0
    age_exponent: float = 3.5
    rng: random.Random = field(default_factory=random.Random)
    difficulty: dict[str, float] = field(init=False)
    age: dict[str, int] = field(init=False)

    def __post_init__(self) -> None:
        if not self.benchmarks:
            raise ValueError("DSS needs at least one benchmark")
        if not 1 <= self.subset_size <= len(self.benchmarks):
            raise ValueError(
                f"subset_size must be in [1, {len(self.benchmarks)}], "
                f"got {self.subset_size}"
            )
        # All benchmarks start maximally difficult so the first few
        # generations explore the whole suite.
        self.difficulty = {name: 1.0 for name in self.benchmarks}
        self.age = {name: 1 for name in self.benchmarks}

    def weights(self) -> dict[str, float]:
        """Current selection weight of every benchmark."""
        return {
            name: self.difficulty[name] ** self.difficulty_exponent
            + self.age[name] ** self.age_exponent
            for name in self.benchmarks
        }

    def select_subset(self) -> list[str]:
        """Draw the next generation's benchmark subset."""
        weights = self.weights()
        pool = list(self.benchmarks)
        chosen: list[str] = []
        for _ in range(self.subset_size):
            total = sum(weights[name] for name in pool)
            roll = self.rng.uniform(0.0, total)
            cumulative = 0.0
            picked = pool[-1]
            for name in pool:
                cumulative += weights[name]
                if roll <= cumulative:
                    picked = name
                    break
            chosen.append(picked)
            pool.remove(picked)
        for name in self.benchmarks:
            if name in chosen:
                self.age[name] = 1
            else:
                self.age[name] += 1
        return chosen

    def state_dict(self) -> dict:
        """Picklable snapshot of difficulty, age, and the sampler RNG —
        what resuming a checkpointed DSS run needs to keep drawing the
        same subsets as the uninterrupted run."""
        return {
            "version": 1,
            "difficulty": dict(self.difficulty),
            "age": dict(self.age),
            "rng_state": self.rng.getstate(),
        }

    def restore_state(self, state: dict) -> None:
        if state.get("version") != 1:
            raise ValueError(
                f"unsupported DSS state version {state.get('version')!r}")
        if set(state["difficulty"]) != set(self.benchmarks):
            raise ValueError("DSS snapshot covers a different benchmark set")
        self.difficulty = dict(state["difficulty"])
        self.age = dict(state["age"])
        self.rng.setstate(state["rng_state"])

    def record_results(self, speedups: dict[str, float]) -> None:
        """Update difficulty from this generation's population results.

        ``speedups`` maps benchmark name to the population's average
        speedup over the baseline on that benchmark.  A benchmark where
        the pool averages below 1.0 is difficult; one where the pool is
        comfortably ahead decays toward easy.  An exponential moving
        average smooths generation-to-generation noise.
        """
        for name, speedup in speedups.items():
            if name not in self.difficulty:
                raise KeyError(f"unknown benchmark {name!r}")
            # Map speedup to difficulty in [0, 1]: 1.0 at speedup <= 1,
            # falling off as the pool pulls ahead of the baseline.
            hardness = max(0.0, min(1.0, 1.0 / max(speedup, 1e-9)))
            self.difficulty[name] = 0.5 * self.difficulty[name] + 0.5 * hardness
