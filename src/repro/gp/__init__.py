"""Genetic-programming engine (the paper's Section 3).

Public surface:

* :class:`~repro.gp.generate.PrimitiveSet` — what the compiler writer
  registers: feature names, result type, constant range.
* :func:`~repro.gp.parse.parse` / :func:`~repro.gp.parse.unparse` —
  the s-expression syntax of Table 1.
* :class:`~repro.gp.engine.GPEngine` / :class:`~repro.gp.engine.GPParams`
  — the generational loop with the Table 2 defaults.
* :class:`~repro.gp.dss.DSSState` — Gathercole's dynamic subset
  selection for multi-benchmark training.
* :func:`~repro.gp.simplify.simplify` — presentation-quality cleanup of
  evolved expressions.
"""

from repro.gp.dss import DSSState
from repro.gp.engine import GenerationStats, GPEngine, GPParams, GPResult
from repro.gp.generate import PrimitiveSet, TreeGenerator
from repro.gp.nodes import Node
from repro.gp.parse import ParseError, infix, parse, unparse
from repro.gp.select import Individual
from repro.gp.simplify import find_introns, simplify
from repro.gp.types import BOOL, REAL, GPType

__all__ = [
    "BOOL",
    "DSSState",
    "GenerationStats",
    "GPEngine",
    "GPParams",
    "GPResult",
    "GPType",
    "Individual",
    "Node",
    "ParseError",
    "PrimitiveSet",
    "REAL",
    "TreeGenerator",
    "find_introns",
    "infix",
    "parse",
    "simplify",
    "unparse",
]
