"""Selection: tournament selection with parsimony pressure.

The paper uses tournament selection with tournament size 7 (Table 2) and
"rewards parsimony by selecting the smaller of two otherwise equally fit
expressions" (Section 3).  Fitness here follows the paper's convention:
*higher is better* (fitness is the average speedup over the baseline
heuristic).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.gp.nodes import Node


@dataclass
class Individual:
    """An expression paired with its evaluation results.

    ``fitness`` is ``None`` until evaluated.  ``evaluations`` counts how
    many distinct benchmark subsets contributed to the fitness (used by
    dynamic subset selection to keep running averages honest).
    """

    tree: Node
    fitness: float | None = None
    evaluations: int = 0
    origin: str = "random"
    metadata: dict = field(default_factory=dict)

    @property
    def size(self) -> int:
        return self.tree.size()

    def copy_tree(self) -> Node:
        return self.tree.copy()


def better(left: Individual, right: Individual) -> Individual:
    """Compare two evaluated individuals: higher fitness wins; ties go
    to the smaller expression (parsimony pressure)."""
    left_fit = left.fitness if left.fitness is not None else float("-inf")
    right_fit = right.fitness if right.fitness is not None else float("-inf")
    if left_fit > right_fit:
        return left
    if right_fit > left_fit:
        return right
    if left.size <= right.size:
        return left
    return right


def tournament(
    population: list[Individual],
    rng: random.Random,
    size: int = 7,
) -> Individual:
    """Draw ``size`` individuals uniformly and return the best.

    Small tournaments lower selection pressure: an expression only has
    to beat the other ``size - 1`` entrants, not the whole population.
    """
    if not population:
        raise ValueError("cannot select from an empty population")
    entrants = [population[rng.randrange(len(population))] for _ in range(size)]
    champion = entrants[0]
    for challenger in entrants[1:]:
        champion = better(champion, challenger)
    return champion


def best_of(population: list[Individual]) -> Individual:
    """The fittest evaluated individual (parsimony breaking ties)."""
    if not population:
        raise ValueError("empty population")
    champion = population[0]
    for challenger in population[1:]:
        champion = better(champion, challenger)
    return champion
