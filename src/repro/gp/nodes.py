"""Expression-tree nodes implementing the paper's Table 1 primitives.

Real-valued functions::

    (add r r)  (sub r r)  (mul r r)  (div r r)  (sqrt r)
    (tern b r r)   -- r1 if b else r2
    (cmul b r r)   -- r1 * r2 if b else r2     (conditional multiply)
    (rconst K)     -- real constant
    (rarg name)    -- real feature from the evaluation environment

Boolean-valued functions::

    (and b b)  (or b b)  (not b)
    (lt r r)  (gt r r)  (eq r r)
    (bconst {true,false})
    (barg name)    -- Boolean feature from the evaluation environment

Arithmetic is *protected* in the usual GP sense so that every expression
is total: division by zero yields 1.0 and square root operates on the
absolute value.  Evaluation therefore never raises, which matters
because the compiler evaluates candidate priority functions on whatever
feature values a program throws at them.
"""

from __future__ import annotations

import math
from collections.abc import Iterator, Mapping
from typing import Union

from repro.gp.types import BOOL, REAL, GPType

Env = Mapping[str, Union[float, bool]]

#: Values larger than this are clamped; keeps runaway (mul (mul ...))
#: chains from overflowing to inf and poisoning comparisons downstream.
_CLAMP = 1e150


def _clamp(value: float) -> float:
    if value != value:  # NaN
        return 0.0
    if value > _CLAMP:
        return _CLAMP
    if value < -_CLAMP:
        return -_CLAMP
    return value


class Node:
    """Base class for all expression-tree nodes.

    Subclasses define ``op_name`` (the s-expression head), ``result_type``
    and ``arg_types``.  A node owns its children; trees are never shared
    between individuals (``copy`` performs a deep copy).
    """

    __slots__ = ("children",)

    op_name: str = "?"
    result_type: GPType = REAL
    arg_types: tuple[GPType, ...] = ()

    def __init__(self, *children: "Node") -> None:
        expected = self.arg_types
        if len(children) != len(expected):
            raise ValueError(
                f"{self.op_name} expects {len(expected)} children, "
                f"got {len(children)}"
            )
        for child, want in zip(children, expected):
            if child.result_type is not want:
                raise TypeError(
                    f"{self.op_name}: child {child.op_name} returns "
                    f"{child.result_type.value}, expected {want.value}"
                )
        self.children: list[Node] = list(children)

    # -- evaluation ---------------------------------------------------
    def evaluate(self, env: Env) -> Union[float, bool]:
        """Evaluate the expression against a feature environment."""
        raise NotImplementedError

    # -- structure ----------------------------------------------------
    def size(self) -> int:
        """Total number of nodes in the subtree rooted here."""
        return 1 + sum(child.size() for child in self.children)

    def depth(self) -> int:
        """Depth of the subtree; a lone terminal has depth 1."""
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children)

    def walk(self) -> Iterator["Node"]:
        """Pre-order traversal of the subtree."""
        yield self
        for child in self.children:
            yield from child.walk()

    def walk_with_context(
        self, depth: int = 0
    ) -> Iterator[tuple["Node", "Node | None", int, int]]:
        """Pre-order traversal yielding ``(node, parent, slot, depth)``."""
        yield self, None, -1, depth
        stack: list[tuple[Node, int]] = [(self, depth)]
        while stack:
            parent, pdepth = stack.pop()
            for slot, child in enumerate(parent.children):
                yield child, parent, slot, pdepth + 1
                stack.append((child, pdepth + 1))

    def copy(self) -> "Node":
        """Deep copy of the subtree."""
        return type(self)(*(child.copy() for child in self.children))

    # -- comparison / hashing ------------------------------------------
    def structural_key(self) -> tuple:
        """A hashable key identifying the tree's exact structure."""
        return (self.op_name,) + tuple(
            child.structural_key() for child in self.children
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Node):
            return NotImplemented
        return self.structural_key() == other.structural_key()

    def __hash__(self) -> int:
        return hash(self.structural_key())

    def __repr__(self) -> str:
        from repro.gp.parse import unparse

        return f"<{type(self).__name__} {unparse(self)!r}>"


# ---------------------------------------------------------------------------
# Real-valued primitives
# ---------------------------------------------------------------------------


class Add(Node):
    __slots__ = ()
    op_name = "add"
    result_type = REAL
    arg_types = (REAL, REAL)

    def evaluate(self, env: Env) -> float:
        return _clamp(self.children[0].evaluate(env) + self.children[1].evaluate(env))


class Sub(Node):
    __slots__ = ()
    op_name = "sub"
    result_type = REAL
    arg_types = (REAL, REAL)

    def evaluate(self, env: Env) -> float:
        return _clamp(self.children[0].evaluate(env) - self.children[1].evaluate(env))


class Mul(Node):
    __slots__ = ()
    op_name = "mul"
    result_type = REAL
    arg_types = (REAL, REAL)

    def evaluate(self, env: Env) -> float:
        return _clamp(self.children[0].evaluate(env) * self.children[1].evaluate(env))


class Div(Node):
    """Protected division: x / 0 evaluates to 1.0 (Koza's convention)."""

    __slots__ = ()
    op_name = "div"
    result_type = REAL
    arg_types = (REAL, REAL)

    def evaluate(self, env: Env) -> float:
        denominator = self.children[1].evaluate(env)
        if denominator == 0.0:
            return 1.0
        return _clamp(self.children[0].evaluate(env) / denominator)


class Sqrt(Node):
    """Protected square root: operates on the absolute value."""

    __slots__ = ()
    op_name = "sqrt"
    result_type = REAL
    arg_types = (REAL,)

    def evaluate(self, env: Env) -> float:
        return math.sqrt(abs(self.children[0].evaluate(env)))


class Tern(Node):
    """``r1 if b else r2`` — the paper's ternary select."""

    __slots__ = ()
    op_name = "tern"
    result_type = REAL
    arg_types = (BOOL, REAL, REAL)

    def evaluate(self, env: Env) -> float:
        if self.children[0].evaluate(env):
            return self.children[1].evaluate(env)
        return self.children[2].evaluate(env)


class Cmul(Node):
    """Conditional multiply: ``r1 * r2 if b else r2``."""

    __slots__ = ()
    op_name = "cmul"
    result_type = REAL
    arg_types = (BOOL, REAL, REAL)

    def evaluate(self, env: Env) -> float:
        second = self.children[2].evaluate(env)
        if self.children[0].evaluate(env):
            return _clamp(self.children[1].evaluate(env) * second)
        return second


class RConst(Node):
    """Real constant terminal ``(rconst K)``."""

    __slots__ = ("value",)
    op_name = "rconst"
    result_type = REAL
    arg_types = ()

    def __init__(self, value: float) -> None:
        super().__init__()
        self.value = float(value)

    def evaluate(self, env: Env) -> float:
        return self.value

    def copy(self) -> "RConst":
        return RConst(self.value)

    def structural_key(self) -> tuple:
        return (self.op_name, self.value)


class RArg(Node):
    """Real-valued feature terminal; reads ``name`` from the environment."""

    __slots__ = ("name",)
    op_name = "rarg"
    result_type = REAL
    arg_types = ()

    def __init__(self, name: str) -> None:
        super().__init__()
        self.name = name

    def evaluate(self, env: Env) -> float:
        return float(env[self.name])

    def copy(self) -> "RArg":
        return RArg(self.name)

    def structural_key(self) -> tuple:
        return (self.op_name, self.name)


# ---------------------------------------------------------------------------
# Boolean-valued primitives
# ---------------------------------------------------------------------------


class And(Node):
    __slots__ = ()
    op_name = "and"
    result_type = BOOL
    arg_types = (BOOL, BOOL)

    def evaluate(self, env: Env) -> bool:
        return bool(self.children[0].evaluate(env)) and bool(
            self.children[1].evaluate(env)
        )


class Or(Node):
    __slots__ = ()
    op_name = "or"
    result_type = BOOL
    arg_types = (BOOL, BOOL)

    def evaluate(self, env: Env) -> bool:
        return bool(self.children[0].evaluate(env)) or bool(
            self.children[1].evaluate(env)
        )


class Not(Node):
    __slots__ = ()
    op_name = "not"
    result_type = BOOL
    arg_types = (BOOL,)

    def evaluate(self, env: Env) -> bool:
        return not self.children[0].evaluate(env)


class Lt(Node):
    __slots__ = ()
    op_name = "lt"
    result_type = BOOL
    arg_types = (REAL, REAL)

    def evaluate(self, env: Env) -> bool:
        return self.children[0].evaluate(env) < self.children[1].evaluate(env)


class Gt(Node):
    __slots__ = ()
    op_name = "gt"
    result_type = BOOL
    arg_types = (REAL, REAL)

    def evaluate(self, env: Env) -> bool:
        return self.children[0].evaluate(env) > self.children[1].evaluate(env)


class Eq(Node):
    __slots__ = ()
    op_name = "eq"
    result_type = BOOL
    arg_types = (REAL, REAL)

    def evaluate(self, env: Env) -> bool:
        return self.children[0].evaluate(env) == self.children[1].evaluate(env)


class BConst(Node):
    """Boolean constant terminal ``(bconst true|false)``."""

    __slots__ = ("value",)
    op_name = "bconst"
    result_type = BOOL
    arg_types = ()

    def __init__(self, value: bool) -> None:
        super().__init__()
        self.value = bool(value)

    def evaluate(self, env: Env) -> bool:
        return self.value

    def copy(self) -> "BConst":
        return BConst(self.value)

    def structural_key(self) -> tuple:
        return (self.op_name, self.value)


class BArg(Node):
    """Boolean feature terminal; reads ``name`` from the environment."""

    __slots__ = ("name",)
    op_name = "barg"
    result_type = BOOL
    arg_types = ()

    def __init__(self, name: str) -> None:
        super().__init__()
        self.name = name

    def evaluate(self, env: Env) -> bool:
        return bool(env[self.name])

    def copy(self) -> "BArg":
        return BArg(self.name)

    def structural_key(self) -> tuple:
        return (self.op_name, self.name)


#: Function (non-terminal) node classes, keyed by s-expression head.
FUNCTION_CLASSES: dict[str, type[Node]] = {
    cls.op_name: cls
    for cls in (Add, Sub, Mul, Div, Sqrt, Tern, Cmul, And, Or, Not, Lt, Gt, Eq)
}

#: Terminal node classes, keyed by s-expression head.
TERMINAL_CLASSES: dict[str, type[Node]] = {
    cls.op_name: cls for cls in (RConst, RArg, BConst, BArg)
}

ALL_CLASSES: dict[str, type[Node]] = {**FUNCTION_CLASSES, **TERMINAL_CLASSES}
