"""The generational GP loop (Figure 2, parameters from Table 2).

The engine is deliberately generic: it knows nothing about compilers.
It is handed a *fitness evaluator* — a callable mapping ``(tree,
benchmark_name) -> speedup`` — and evolves expressions that maximize the
average speedup across the benchmark set active in each generation.
The Meta Optimization harness (:mod:`repro.metaopt.harness`) supplies
an evaluator that compiles and simulates benchmarks with the candidate
priority function installed.

Paper parameters (Table 2), kept as defaults:

============================  =======================================
Population size               400 expressions
Number of generations         50
Generational replacement      22% of the population
Mutation rate                 5%
Tournament size               7
Elitism                       best expression guaranteed survival
Fitness                       average speedup over the baseline
============================  =======================================

Fitness evaluations are memoized per ``(expression, benchmark)`` because
they are costly — the paper notes the same ("Our system memoizes
benchmark fitnesses").

The loop is *resumable*: :meth:`GPEngine.step` advances exactly one
generation, and :meth:`GPEngine.state_dict` /
:meth:`GPEngine.restore_state` serialize everything the remaining
generations depend on (population, RNG state, fitness memo, DSS state,
history).  A run checkpointed after generation *k* and restored into a
fresh engine continues bit-identically to the run that never stopped —
the substrate for :mod:`repro.experiments`.
"""

from __future__ import annotations

import copy
import random
import time
from dataclasses import dataclass, field
from typing import Callable, Protocol

from repro import obs
from repro.gp.dss import DSSState
from repro.gp.generate import PrimitiveSet
from repro.gp.genome import genome_ops_for
from repro.gp.nodes import Node
from repro.gp.select import Individual, best_of, tournament


class FitnessEvaluator(Protocol):
    """Evaluates one expression on one benchmark.

    Returns the speedup of the candidate-compiled benchmark over the
    baseline-compiled benchmark (>1.0 means the candidate wins).

    Evaluators may additionally expose ``evaluate_batch(jobs) ->
    list[float]`` over ``(tree, benchmark)`` pairs; the engine then
    ships every uncached pair of a generation in one call, which is
    what lets a process-pool or fleet evaluator keep all workers busy
    instead of receiving one-job batches.  Batch results must be
    identical to calling the evaluator pairwise (the pairs of a batch
    are independent) and must come back in job order regardless of
    completion order, so batching never changes the evolution.  The
    full multi-backend contract lives in
    :class:`repro.metaopt.parallel.EvaluatorProtocol`, with
    :func:`repro.metaopt.parallel.make_evaluator` as the constructor
    entry point.
    """

    def __call__(self, tree: Node, benchmark: str) -> float: ...


@dataclass(frozen=True)
class GPParams:
    """Knobs of the evolutionary search; defaults follow Table 2."""

    population_size: int = 400
    generations: int = 50
    replacement_fraction: float = 0.22
    mutation_rate: float = 0.05
    tournament_size: int = 7
    elitism: bool = True
    max_tree_depth: int = 17
    init_min_depth: int = 2
    init_max_depth: int = 6
    seed: int = 0

    def __post_init__(self) -> None:
        if self.population_size < 2:
            raise ValueError("population_size must be >= 2")
        if not 0.0 < self.replacement_fraction <= 1.0:
            raise ValueError("replacement_fraction must be in (0, 1]")
        if not 0.0 <= self.mutation_rate <= 1.0:
            raise ValueError("mutation_rate must be in [0, 1]")
        if self.tournament_size < 1:
            raise ValueError("tournament_size must be >= 1")


@dataclass
class GenerationStats:
    """Progress record for one generation (feeds Figures 5, 10, 14)."""

    generation: int
    subset: tuple[str, ...]
    best_fitness: float
    mean_fitness: float
    best_size: int
    best_expression: str
    baseline_rank: int | None = None
    #: structurally distinct expressions in the population — the
    #: diversity measure behind the paper's inbreeding observation
    #: ("the population soon becomes inbred with copies of the top
    #: expression", Section 7.2.1)
    unique_structures: int = 0
    mean_size: float = 0.0


@dataclass
class GPResult:
    """Outcome of a run: the champion and the full evolution history."""

    best: Individual
    history: list[GenerationStats]
    population: list[Individual]
    evaluations: int

    @property
    def best_tree(self) -> Node:
        return self.best.tree

    def fitness_curve(self) -> list[float]:
        """Best fitness per generation — the y-axis of Figures 5/10/14."""
        return [stats.best_fitness for stats in self.history]


def _timed(registry, name: str, fn, *args):
    """Call ``fn(*args)``, timing it into ``registry``'s histogram
    ``name`` when metrics are enabled (plain call when disabled)."""
    if registry is None:
        return fn(*args)
    start = time.perf_counter()
    result = fn(*args)
    registry.observe(name, time.perf_counter() - start)
    return result


class GPEngine:
    """Drives the evolutionary search of Figure 2."""

    def __init__(
        self,
        pset: PrimitiveSet,
        evaluator: FitnessEvaluator,
        benchmarks: tuple[str, ...],
        params: GPParams | None = None,
        seed_trees: tuple[Node, ...] = (),
        dss: DSSState | None = None,
        on_generation: Callable[[GenerationStats], None] | None = None,
        genome_ops=None,
    ) -> None:
        self.pset = pset
        self.evaluator = evaluator
        self.benchmarks = tuple(benchmarks)
        if not self.benchmarks:
            raise ValueError("need at least one benchmark")
        self.params = params or GPParams()
        self.seed_trees = tuple(seed_trees)
        self.dss = dss
        self.on_generation = on_generation
        #: Genome strategy (trees vs flag vectors, docs/CASES.md);
        #: resolved from the pset when not supplied.  The tree strategy
        #: reproduces the historical operator calls exactly, keeping
        #: RNG streams — and therefore checkpoints — byte-identical.
        self.genome_ops = genome_ops or genome_ops_for(pset)
        self.rng = random.Random(self.params.seed)
        self.generator = self.genome_ops.make_generator(self.rng)
        self._memo: dict[tuple, float] = {}
        self.evaluations = 0
        #: lazily built by the first :meth:`step` (or restored from a
        #: checkpoint); between steps it holds the population the next
        #: generation will evaluate.
        self.population: list[Individual] | None = None
        self.generation = 0
        self.history: list[GenerationStats] = []

    # -- fitness --------------------------------------------------------
    def _speedup(self, tree: Node, benchmark: str) -> float:
        key = (tree.structural_key(), benchmark)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        speedup = float(self.evaluator(tree, benchmark))
        self._memo[key] = speedup
        self.evaluations += 1
        return speedup

    def _prefetch_fitness(
        self, population: list[Individual], subset: tuple[str, ...]
    ) -> None:
        """Generation batching: collect every uncached, structurally
        distinct ``(tree, benchmark)`` pair and dispatch them through
        the evaluator's ``evaluate_batch`` in one shot, filling the
        memo so the per-individual loop below is pure lookups."""
        batch_evaluate = getattr(self.evaluator, "evaluate_batch", None)
        if batch_evaluate is None:
            return
        pending: list[tuple[Node, str, tuple]] = []
        queued: set[tuple] = set()
        for individual in population:
            tree_key = individual.tree.structural_key()
            for name in subset:
                key = (tree_key, name)
                if key in self._memo or key in queued:
                    continue
                queued.add(key)
                pending.append((individual.tree, name, key))
        if not pending:
            return
        values = batch_evaluate([(tree, name) for tree, name, _ in pending])
        for (_, _, key), value in zip(pending, values):
            self._memo[key] = float(value)
            self.evaluations += 1

    def _assign_fitness(
        self, population: list[Individual], subset: tuple[str, ...]
    ) -> dict[str, float]:
        """Evaluate the population on ``subset``; returns per-benchmark
        population-average speedups (for DSS difficulty updates)."""
        self._prefetch_fitness(population, subset)
        per_benchmark_totals = {name: 0.0 for name in subset}
        for individual in population:
            speedups = [
                self._speedup(individual.tree, name) for name in subset
            ]
            individual.fitness = sum(speedups) / len(speedups)
            individual.evaluations += len(subset)
            for name, value in zip(subset, speedups):
                per_benchmark_totals[name] += value
        count = len(population)
        return {name: total / count for name, total in per_benchmark_totals.items()}

    # -- population construction ----------------------------------------
    def initial_population(self) -> list[Individual]:
        """Seeds (the compiler writer's best guess) + random expressions."""
        population: list[Individual] = [
            Individual(tree=tree.copy(), origin="seed") for tree in self.seed_trees
        ]
        needed = self.params.population_size - len(population)
        if needed < 0:
            raise ValueError("more seeds than population_size")
        random_trees = self.generator.ramped_half_and_half(
            needed,
            min_depth=self.params.init_min_depth,
            max_depth=self.params.init_max_depth,
        )
        population.extend(Individual(tree=tree) for tree in random_trees)
        return population

    def _offspring(self, population: list[Individual]) -> Individual:
        """One new expression: crossover of tournament winners, with a
        ``mutation_rate`` chance of an additional mutation."""
        registry = obs.metrics()
        mother = tournament(population, self.rng, self.params.tournament_size)
        father = tournament(population, self.rng, self.params.tournament_size)
        child_tree, _ = _timed(registry, "gp.crossover_seconds",
                               self.genome_ops.crossover,
                               mother.tree, father.tree, self.rng,
                               self.params.max_tree_depth)
        if registry is not None:
            registry.inc("gp.crossovers")
        origin = "crossover"
        if self.rng.random() < self.params.mutation_rate:
            child_tree = _timed(registry, "gp.mutation_seconds",
                                self.genome_ops.mutate,
                                child_tree, self.generator, self.rng,
                                self.params.max_tree_depth)
            origin = "mutation"
        # Anti-clone guard: crossover between near-identical parents (a
        # common state once a small population converges) can reproduce
        # a parent exactly; force a mutation so replacement always
        # injects new genetic material.
        if child_tree == mother.tree or child_tree == father.tree:
            child_tree = _timed(registry, "gp.mutation_seconds",
                                self.genome_ops.mutate,
                                child_tree, self.generator, self.rng,
                                self.params.max_tree_depth)
            origin = "mutation"
        if registry is not None and origin == "mutation":
            registry.inc("gp.mutations")
        return Individual(tree=child_tree, origin=origin)

    # -- main loop --------------------------------------------------------
    @property
    def done(self) -> bool:
        """True once every generation has been evaluated."""
        return self.generation >= self.params.generations

    def step(self) -> GenerationStats:
        """Advance the evolution by exactly one generation.

        Evaluates the current population (on the DSS subset when DSS is
        active), records stats, and — unless this was the final
        generation — breeds the next population.  The engine is in a
        checkpointable state between any two calls: serializing with
        :meth:`state_dict` here and restoring later continues the run
        bit-identically.
        """
        if self.done:
            raise RuntimeError("evolution already finished")
        if self.population is None:
            self.population = self.initial_population()
        population = self.population
        registry = obs.metrics()

        with obs.span("engine:generation", generation=self.generation):
            if self.dss is not None:
                subset = tuple(self.dss.select_subset())
            else:
                subset = self.benchmarks
            evaluations_before = self.evaluations
            eval_start = time.perf_counter()
            with obs.span("engine:evaluation", generation=self.generation,
                          benchmarks=len(subset)):
                bench_means = self._assign_fitness(population, subset)
            if registry is not None:
                registry.observe("gp.eval_seconds",
                                 time.perf_counter() - eval_start)
                registry.inc("gp.evaluations",
                             self.evaluations - evaluations_before)
            if self.dss is not None:
                self.dss.record_results(bench_means)

            champion = best_of(population)
            stats = GenerationStats(
                generation=self.generation,
                subset=subset,
                best_fitness=champion.fitness or 0.0,
                mean_fitness=sum(ind.fitness or 0.0 for ind in population)
                / len(population),
                best_size=champion.size,
                best_expression=self.genome_ops.unparse(champion.tree),
                baseline_rank=self._baseline_rank(population),
                unique_structures=len(
                    {ind.tree.structural_key() for ind in population}
                ),
                mean_size=sum(ind.size for ind in population)
                / len(population),
            )
            self.history.append(stats)
            if registry is not None:
                registry.set_gauge("gp.generation", self.generation)
                registry.set_gauge("gp.best_fitness", stats.best_fitness)
                registry.set_gauge("gp.unique_structures",
                                   stats.unique_structures)
                registry.set_gauge("gp.population_size", len(population))
                registry.set_gauge("gp.memo_size", len(self._memo))
                registry.set_gauge("gp.dss_subset_size", len(subset))
            if self.on_generation is not None:
                self.on_generation(stats)

            self.generation += 1
            if not self.done:
                breed_start = time.perf_counter()
                with obs.span("engine:breed", generation=stats.generation):
                    self.population = self._next_generation(
                        population, champion)
                if registry is not None:
                    registry.observe("gp.breed_seconds",
                                     time.perf_counter() - breed_start)
        return stats

    def result(self) -> GPResult:
        """The champion and history of the generations run so far."""
        if self.population is None:
            raise RuntimeError("evolution has not started")
        return GPResult(
            best=best_of(self.population),
            history=self.history,
            population=self.population,
            evaluations=self.evaluations,
        )

    def run(self) -> GPResult:
        while not self.done:
            self.step()
        if self.population is None:  # degenerate generations <= 0
            self.population = self.initial_population()
        return self.result()

    # -- checkpointing ----------------------------------------------------
    def state_dict(self) -> dict:
        """Everything the remaining generations depend on, as picklable
        plain data.  Trees travel as s-expression text
        (``parse(unparse(t))`` is structurally exact, so memo keys and
        noise seeds match bit-for-bit after a round-trip)."""
        return {
            "version": 1,
            "generation": self.generation,
            "evaluations": self.evaluations,
            "rng_state": self.rng.getstate(),
            "memo": dict(self._memo),
            "population": None if self.population is None else [
                {
                    "tree": self.genome_ops.unparse(ind.tree),
                    "fitness": ind.fitness,
                    "evaluations": ind.evaluations,
                    "origin": ind.origin,
                }
                for ind in self.population
            ],
            "history": copy.deepcopy(self.history),
            "dss": None if self.dss is None else self.dss.state_dict(),
        }

    def restore_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot into this engine.

        The engine must have been constructed with the same pset,
        params, benchmarks, seeds, and evaluator configuration as the
        one that produced the snapshot; only the mutable run state is
        carried by the snapshot itself.
        """
        if state.get("version") != 1:
            raise ValueError(
                f"unsupported engine state version {state.get('version')!r}")
        self.generation = state["generation"]
        self.evaluations = state["evaluations"]
        self.rng.setstate(state["rng_state"])
        self._memo = dict(state["memo"])
        if state["population"] is None:
            self.population = None
        else:
            self.population = [
                Individual(
                    tree=self.genome_ops.parse(entry["tree"]),
                    fitness=entry["fitness"],
                    evaluations=entry["evaluations"],
                    origin=entry["origin"],
                )
                for entry in state["population"]
            ]
        self.history = copy.deepcopy(state["history"])
        if state["dss"] is not None:
            if self.dss is None:
                raise ValueError("snapshot carries DSS state but this "
                                 "engine has no DSSState attached")
            self.dss.restore_state(state["dss"])

    def _next_generation(
        self, population: list[Individual], champion: Individual
    ) -> list[Individual]:
        """Randomly replace ``replacement_fraction`` of the population
        with crossover offspring; the champion is never replaced."""
        next_population = list(population)
        replace_count = max(
            1, round(self.params.replacement_fraction * len(population))
        )
        champion_index = population.index(champion)
        candidates = [
            index
            for index in range(len(population))
            if not (self.params.elitism and index == champion_index)
        ]
        replace_count = min(replace_count, len(candidates))
        for index in self.rng.sample(candidates, replace_count):
            next_population[index] = self._offspring(population)
        return next_population

    def _baseline_rank(self, population: list[Individual]) -> int | None:
        """1-based fitness rank of the seed expression, if it survives.

        The paper observes that for hyperblock formation and prefetching
        the seed is "quickly obscured and weeded out", while for
        register allocation it survives several generations; this
        statistic lets experiments verify that claim.
        """
        def fitness_of(ind: Individual) -> float:
            return ind.fitness if ind.fitness is not None else -1.0

        best_seed = None
        best_seed_position = -1
        for position, individual in enumerate(population):
            if individual.origin != "seed":
                continue
            if best_seed is None or fitness_of(individual) > fitness_of(best_seed):
                best_seed = individual
                best_seed_position = position
        if best_seed is None:
            return None
        # Rank = how many individuals sort ahead of the best seed in a
        # stable descending sort: strictly fitter ones, plus equal-
        # fitness ones appearing earlier in population order.
        seed_fitness = fitness_of(best_seed)
        rank = 0
        for position, individual in enumerate(population):
            value = fitness_of(individual)
            if value > seed_fitness or (
                value == seed_fitness and position < best_seed_position
            ):
                rank += 1
        return rank + 1
