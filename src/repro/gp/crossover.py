"""Depth-fair crossover (Kessler & Haynes, SAC 1999).

Crossover swaps randomly chosen subtrees between two parents
(Figure 1(c) in the paper).  Naive uniform node selection is biased
toward leaves — in a full binary tree more than half of the nodes are
leaves — so the paper uses *depth-fair* selection, which first picks a
depth level uniformly and then a node uniformly within that level
(footnote 1 / reference [12]).

Crossover is *typed*: the node chosen in the second parent must produce
the same type as the node chosen in the first, so offspring always
remain well-formed.
"""

from __future__ import annotations

import random
from collections import defaultdict

from repro.gp.nodes import Node
from repro.gp.types import GPType


def nodes_by_depth(tree: Node) -> dict[int, list[tuple[Node, Node | None, int]]]:
    """Group every node as ``(node, parent, slot)`` by its depth level."""
    levels: dict[int, list[tuple[Node, Node | None, int]]] = defaultdict(list)
    for node, parent, slot, depth in tree.walk_with_context():
        levels[depth].append((node, parent, slot))
    return levels


def depth_fair_pick(
    tree: Node,
    rng: random.Random,
    want_type: GPType | None = None,
) -> tuple[Node, Node | None, int] | None:
    """Pick a node depth-fairly, optionally restricted to ``want_type``.

    Each depth level receives equal probability mass; within a level
    nodes are drawn uniformly.  Returns ``(node, parent, slot)`` where
    ``parent is None`` means the root was chosen.  Returns ``None`` when
    no node of the requested type exists.
    """
    levels = nodes_by_depth(tree)
    if want_type is not None:
        levels = {
            depth: [
                entry for entry in entries if entry[0].result_type is want_type
            ]
            for depth, entries in levels.items()
        }
        levels = {depth: entries for depth, entries in levels.items() if entries}
    if not levels:
        return None
    depth = rng.choice(sorted(levels))
    return rng.choice(levels[depth])


def replace_subtree(
    root: Node, parent: Node | None, slot: int, replacement: Node
) -> Node:
    """Substitute ``replacement`` at the position described by
    ``(parent, slot)``; returns the (possibly new) root."""
    if parent is None:
        return replacement
    if parent.children[slot].result_type is not replacement.result_type:
        raise TypeError("replacement subtree has the wrong type")
    parent.children[slot] = replacement
    return root


def crossover(
    left: Node,
    right: Node,
    rng: random.Random,
    max_depth: int = 17,
) -> tuple[Node, Node]:
    """Produce two offspring by swapping depth-fairly chosen subtrees.

    Offspring exceeding ``max_depth`` are replaced by a copy of the
    corresponding parent (the standard Koza depth guard; the paper's
    parsimony pressure does the rest of the bloat control).
    """
    child_left = left.copy()
    child_right = right.copy()

    pick_left = depth_fair_pick(child_left, rng)
    if pick_left is None:  # pragma: no cover - trees always have >= 1 node
        return child_left, child_right
    node_left, parent_left, slot_left = pick_left

    pick_right = depth_fair_pick(child_right, rng, node_left.result_type)
    if pick_right is None:
        # No compatible node in the mate; crossover degenerates to cloning.
        return child_left, child_right
    node_right, parent_right, slot_right = pick_right

    child_left = replace_subtree(
        child_left, parent_left, slot_left, node_right.copy()
    )
    child_right = replace_subtree(
        child_right, parent_right, slot_right, node_left.copy()
    )

    if child_left.depth() > max_depth:
        child_left = left.copy()
    if child_right.depth() > max_depth:
        child_right = right.copy()
    return child_left, child_right
