"""S-expression parser and printer for GP priority functions.

The compiler hook reads priority functions in the textual form used by
the paper's Table 1, e.g.::

    (add (mul exec_ratio 0.8720) (cmul (not mem_hazard) 0.6727 num_paths))

Grammar::

    expr     := atom | '(' head expr* ')'
    atom     := number | 'true' | 'false' | identifier
    head     := identifier

Bare numbers parse as ``(rconst K)``; ``true``/``false`` as ``bconst``;
other bare identifiers become feature terminals whose kind (real or
Boolean) is resolved from the ``bool_features`` set passed to
:func:`parse` — exactly mirroring how the compiler writer registers the
feature list with the expression evaluator.
"""

from __future__ import annotations

from repro.gp import nodes
from repro.gp.nodes import ALL_CLASSES, BArg, BConst, Node, RArg, RConst


class ParseError(ValueError):
    """Raised when an s-expression is malformed or ill-typed."""


def tokenize(text: str) -> list[str]:
    """Split an s-expression string into parenthesis and atom tokens."""
    tokens: list[str] = []
    current: list[str] = []
    for char in text:
        if char in "()":
            if current:
                tokens.append("".join(current))
                current = []
            tokens.append(char)
        elif char.isspace():
            if current:
                tokens.append("".join(current))
                current = []
        else:
            current.append(char)
    if current:
        tokens.append("".join(current))
    return tokens


def _is_number(token: str) -> bool:
    try:
        float(token)
    except ValueError:
        return False
    return True


class _Parser:
    def __init__(self, tokens: list[str], bool_features: frozenset[str]) -> None:
        self._tokens = tokens
        self._pos = 0
        self._bool_features = bool_features

    def _peek(self) -> str | None:
        if self._pos < len(self._tokens):
            return self._tokens[self._pos]
        return None

    def _next(self) -> str:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of expression")
        self._pos += 1
        return token

    def parse_expr(self) -> Node:
        token = self._next()
        if token == ")":
            raise ParseError("unexpected ')'")
        if token != "(":
            return self._atom(token)
        head = self._next()
        if head in ("(", ")"):
            raise ParseError(f"expected operator name, got {head!r}")
        args: list[Node | str] = []
        while True:
            look = self._peek()
            if look is None:
                raise ParseError("missing ')'")
            if look == ")":
                self._next()
                break
            if head in ("rconst", "bconst", "rarg", "barg"):
                args.append(self._next())
            else:
                args.append(self.parse_expr())
        return self._build(head, args)

    def _atom(self, token: str) -> Node:
        if _is_number(token):
            return RConst(float(token))
        if token == "true":
            return BConst(True)
        if token == "false":
            return BConst(False)
        if token in self._bool_features:
            return BArg(token)
        return RArg(token)

    def _build(self, head: str, args: list) -> Node:
        if head == "rconst":
            if len(args) != 1 or not isinstance(args[0], str):
                raise ParseError("(rconst K) takes one numeric literal")
            return RConst(float(args[0]))
        if head == "bconst":
            if len(args) != 1 or args[0] not in ("true", "false"):
                raise ParseError("(bconst true|false)")
            return BConst(args[0] == "true")
        if head == "rarg":
            if len(args) != 1 or not isinstance(args[0], str):
                raise ParseError("(rarg name) takes one identifier")
            return RArg(args[0])
        if head == "barg":
            if len(args) != 1 or not isinstance(args[0], str):
                raise ParseError("(barg name) takes one identifier")
            return BArg(args[0])
        cls = ALL_CLASSES.get(head)
        if cls is None:
            raise ParseError(f"unknown operator {head!r}")
        try:
            return cls(*args)
        except (TypeError, ValueError) as exc:
            raise ParseError(str(exc)) from exc

    def finish(self) -> None:
        if self._pos != len(self._tokens):
            raise ParseError(
                f"trailing tokens after expression: {self._tokens[self._pos:]}"
            )


def parse(text: str, bool_features: frozenset[str] | set[str] = frozenset()) -> Node:
    """Parse an s-expression into a typed GP tree.

    ``bool_features`` names the feature identifiers that should parse as
    Boolean terminals; every other bare identifier parses as a
    real-valued feature.
    """
    tokens = tokenize(text)
    if not tokens:
        raise ParseError("empty expression")
    parser = _Parser(tokens, frozenset(bool_features))
    tree = parser.parse_expr()
    parser.finish()
    return tree


def _format_real(value: float) -> str:
    text = f"{value:.4f}"
    if float(text) == value:
        return text
    return repr(value)


def unparse(node: Node) -> str:
    """Render a GP tree back to its s-expression form.

    ``parse(unparse(t))`` reproduces ``t`` structurally for any tree
    whose feature names are declared consistently.
    """
    if isinstance(node, RConst):
        return _format_real(node.value)
    if isinstance(node, BConst):
        return "true" if node.value else "false"
    if isinstance(node, (RArg, BArg)):
        return node.name
    args = " ".join(unparse(child) for child in node.children)
    return f"({node.op_name} {args})"


def infix(node: Node) -> str:
    """Render a GP tree as free-form arithmetic, for human readability.

    This is the form used when the paper presents evolved heuristics
    (e.g. Figure 8's hand-simplified expression).
    """
    if isinstance(node, RConst):
        return _format_real(node.value)
    if isinstance(node, BConst):
        return "true" if node.value else "false"
    if isinstance(node, (RArg, BArg)):
        return node.name
    kids = [infix(child) for child in node.children]
    if isinstance(node, nodes.Add):
        return f"({kids[0]} + {kids[1]})"
    if isinstance(node, nodes.Sub):
        return f"({kids[0]} - {kids[1]})"
    if isinstance(node, nodes.Mul):
        return f"({kids[0]} * {kids[1]})"
    if isinstance(node, nodes.Div):
        return f"({kids[0]} / {kids[1]})"
    if isinstance(node, nodes.Sqrt):
        return f"sqrt({kids[0]})"
    if isinstance(node, nodes.Tern):
        return f"({kids[1]} if {kids[0]} else {kids[2]})"
    if isinstance(node, nodes.Cmul):
        return f"(({kids[1]} * {kids[2]}) if {kids[0]} else {kids[2]})"
    if isinstance(node, nodes.And):
        return f"({kids[0]} and {kids[1]})"
    if isinstance(node, nodes.Or):
        return f"({kids[0]} or {kids[1]})"
    if isinstance(node, nodes.Not):
        return f"(not {kids[0]})"
    if isinstance(node, nodes.Lt):
        return f"({kids[0]} < {kids[1]})"
    if isinstance(node, nodes.Gt):
        return f"({kids[0]} > {kids[1]})"
    if isinstance(node, nodes.Eq):
        return f"({kids[0]} == {kids[1]})"
    raise TypeError(f"unknown node {node!r}")  # pragma: no cover
