"""Random expression generation.

The paper seeds each run with 399 randomly generated expressions of
varying heights plus the compiler writer's best guess (Section 4).  We
use Koza's *ramped half-and-half* initialization: trees are grown to a
ramp of depth limits, half with the "full" method (every branch reaches
the depth limit) and half with the "grow" method (branches may terminate
early).

A :class:`PrimitiveSet` bundles what the compiler writer registers with
the system: the real and Boolean feature names, and the range from which
ephemeral random constants are drawn.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.gp.nodes import (
    FUNCTION_CLASSES,
    BArg,
    BConst,
    Node,
    RArg,
    RConst,
)
from repro.gp.types import BOOL, REAL, GPType


@dataclass(frozen=True)
class PrimitiveSet:
    """The vocabulary available to evolved expressions.

    Parameters
    ----------
    real_features:
        Names of real-valued features the compiler supplies.
    bool_features:
        Names of Boolean features the compiler supplies.
    result_type:
        Type the whole expression must produce (real for hyperblock and
        register allocation, Boolean for prefetching).
    const_range:
        Ephemeral random constants are drawn uniformly from this range.
    const_digits:
        Constants are rounded to this many digits (the paper's evolved
        expressions show 4-digit constants).
    """

    real_features: tuple[str, ...]
    bool_features: tuple[str, ...] = ()
    result_type: GPType = REAL
    const_range: tuple[float, float] = (0.0, 2.0)
    const_digits: int = 4
    functions: tuple[str, ...] = tuple(sorted(FUNCTION_CLASSES))

    def __post_init__(self) -> None:
        overlap = set(self.real_features) & set(self.bool_features)
        if overlap:
            raise ValueError(f"features declared both real and bool: {overlap}")
        unknown = set(self.functions) - set(FUNCTION_CLASSES)
        if unknown:
            raise ValueError(f"unknown function primitives: {unknown}")

    @property
    def feature_names(self) -> tuple[str, ...]:
        return self.real_features + self.bool_features

    def bool_feature_set(self) -> frozenset[str]:
        return frozenset(self.bool_features)


@dataclass
class TreeGenerator:
    """Grows random, well-typed expression trees.

    The generator guarantees closure: every produced tree type-checks
    and evaluates without raising on any environment that supplies the
    declared features.
    """

    pset: PrimitiveSet
    rng: random.Random = field(default_factory=random.Random)

    def __post_init__(self) -> None:
        self._functions_by_type: dict[GPType, list[type[Node]]] = {
            REAL: [],
            BOOL: [],
        }
        for name in self.pset.functions:
            cls = FUNCTION_CLASSES[name]
            self._functions_by_type[cls.result_type].append(cls)
        # Without Boolean features we can still build Boolean subtrees
        # out of comparisons and constants, so both lists stay nonempty
        # as long as the default primitive set is used.
        for gp_type, classes in self._functions_by_type.items():
            if not classes:
                raise ValueError(f"no function primitives return {gp_type.value}")

    # -- terminals ------------------------------------------------------
    def random_terminal(self, gp_type: GPType) -> Node:
        """Draw a random terminal of the requested type."""
        if gp_type is REAL:
            choices = len(self.pset.real_features) + 1
            pick = self.rng.randrange(choices)
            if pick < len(self.pset.real_features):
                return RArg(self.pset.real_features[pick])
            low, high = self.pset.const_range
            value = round(self.rng.uniform(low, high), self.pset.const_digits)
            return RConst(value)
        choices = len(self.pset.bool_features) + 1
        pick = self.rng.randrange(choices)
        if pick < len(self.pset.bool_features):
            return BArg(self.pset.bool_features[pick])
        return BConst(self.rng.random() < 0.5)

    # -- trees ----------------------------------------------------------
    def grow(self, max_depth: int, gp_type: GPType | None = None) -> Node:
        """Grow method: interior nodes may be terminals before the limit."""
        return self._build(max_depth, gp_type or self.pset.result_type, full=False)

    def full(self, max_depth: int, gp_type: GPType | None = None) -> Node:
        """Full method: every branch extends to exactly ``max_depth``."""
        return self._build(max_depth, gp_type or self.pset.result_type, full=True)

    def _build(self, depth_left: int, gp_type: GPType, full: bool) -> Node:
        if depth_left <= 1:
            return self.random_terminal(gp_type)
        if not full and self.rng.random() < 0.3:
            return self.random_terminal(gp_type)
        cls = self.rng.choice(self._functions_by_type[gp_type])
        children = [
            self._build(depth_left - 1, arg_type, full)
            for arg_type in cls.arg_types
        ]
        return cls(*children)

    def ramped_half_and_half(
        self, count: int, min_depth: int = 2, max_depth: int = 6
    ) -> list[Node]:
        """Koza's standard initialization: a ramp of depths, half grow
        and half full at each depth."""
        if min_depth < 1 or max_depth < min_depth:
            raise ValueError("need 1 <= min_depth <= max_depth")
        trees: list[Node] = []
        depths = list(range(min_depth, max_depth + 1))
        for index in range(count):
            depth = depths[index % len(depths)]
            if index % 2 == 0:
                trees.append(self.grow(depth))
            else:
                trees.append(self.full(depth))
        return trees
