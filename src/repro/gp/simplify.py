"""Expression simplification for presentation.

The expressions shown in the paper (e.g. Figure 8) are "hand simplified
for ease of discussion".  This module mechanizes the easy parts:
constant folding, algebraic identities, and Boolean simplification.
Semantics are preserved exactly — protected division and clamping are
folded with the same rules the evaluator applies.

The module also exposes :func:`find_introns`, which detects subtrees
whose value cannot affect the result (the paper discusses introns as
useful padding during crossover but noise when reading a solution).
Intron detection here is *empirical*: a subtree is flagged when
replacing it with a constant leaves the expression's value unchanged on
a caller-supplied sample of environments.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.gp import nodes
from repro.gp.nodes import (
    Add,
    And,
    BConst,
    Div,
    Eq,
    Gt,
    Lt,
    Mul,
    Node,
    Not,
    Or,
    RConst,
    Sqrt,
    Sub,
    Tern,
    Cmul,
)


def _const(node: Node) -> float | bool | None:
    """The node's constant value, or None when it is not a constant."""
    if isinstance(node, RConst):
        return node.value
    if isinstance(node, BConst):
        return node.value
    return None


def simplify(tree: Node) -> Node:
    """Return an equivalent, usually smaller, expression."""
    previous = tree
    while True:
        simplified = _simplify_once(previous)
        if simplified.structural_key() == previous.structural_key():
            return simplified
        previous = simplified


def _simplify_once(tree: Node) -> Node:
    children = [_simplify_once(child) for child in tree.children]
    if children:
        tree = type(tree)(*children)

    # Constant folding: all children constant => evaluate now.  The
    # empty environment suffices because constant subtrees reference no
    # features.
    if tree.children and all(_const(child) is not None for child in tree.children):
        value = tree.evaluate({})
        if isinstance(value, bool):
            return BConst(value)
        return RConst(value)

    left = tree.children[0] if tree.children else None
    right = tree.children[1] if len(tree.children) > 1 else None

    if isinstance(tree, Add):
        if _const(left) == 0.0:
            return right
        if _const(right) == 0.0:
            return left
    elif isinstance(tree, Sub):
        if _const(right) == 0.0:
            return left
        if left.structural_key() == right.structural_key():
            return RConst(0.0)
    elif isinstance(tree, Mul):
        if _const(left) == 1.0:
            return right
        if _const(right) == 1.0:
            return left
        if _const(left) == 0.0 or _const(right) == 0.0:
            return RConst(0.0)
    elif isinstance(tree, Div):
        if _const(right) == 1.0:
            return left
        if left.structural_key() == right.structural_key():
            # x/x is 1.0 except at x == 0 where protected division also
            # yields 1.0, so the rewrite is exact.
            return RConst(1.0)
    elif isinstance(tree, Tern):
        condition = _const(tree.children[0])
        if condition is True:
            return tree.children[1]
        if condition is False:
            return tree.children[2]
        if tree.children[1].structural_key() == tree.children[2].structural_key():
            return tree.children[1]
    elif isinstance(tree, Cmul):
        condition = _const(tree.children[0])
        if condition is True:
            return Mul(tree.children[1], tree.children[2])
        if condition is False:
            return tree.children[2]
        if _const(tree.children[1]) == 1.0:
            return tree.children[2]
    elif isinstance(tree, And):
        if _const(left) is True:
            return right
        if _const(right) is True:
            return left
        if _const(left) is False or _const(right) is False:
            return BConst(False)
        if left.structural_key() == right.structural_key():
            return left
    elif isinstance(tree, Or):
        if _const(left) is False:
            return right
        if _const(right) is False:
            return left
        if _const(left) is True or _const(right) is True:
            return BConst(True)
        if left.structural_key() == right.structural_key():
            return left
    elif isinstance(tree, Not):
        if isinstance(left, Not):
            return left.children[0]
    elif isinstance(tree, (Lt, Gt)):
        if left.structural_key() == right.structural_key():
            return BConst(False)
    elif isinstance(tree, Eq):
        if left.structural_key() == right.structural_key():
            return BConst(True)
    elif isinstance(tree, Sqrt):
        inner = _const(left)
        if inner is not None:
            return RConst(abs(inner) ** 0.5)
    return tree


def find_introns(
    tree: Node,
    environments: Iterable[Mapping[str, float | bool]],
    tolerance: float = 0.0,
) -> list[Node]:
    """Subtrees whose removal is undetectable on the given sample.

    For each non-root subtree, the subtree is replaced by a constant (its
    value in the first environment) and the whole expression re-evaluated
    on every environment; if no output changes by more than ``tolerance``
    the subtree is reported as an intron.  Purely empirical — a subtree
    may matter on inputs outside the sample.
    """
    env_list = list(environments)
    if not env_list:
        raise ValueError("need at least one environment")
    baseline = [tree.evaluate(env) for env in env_list]
    introns: list[Node] = []
    for node, parent, slot, _depth in tree.walk_with_context():
        if parent is None or not node.children:
            continue
        pinned_value = node.evaluate(env_list[0])
        replacement: Node
        if isinstance(pinned_value, bool):
            replacement = BConst(pinned_value)
        else:
            replacement = RConst(pinned_value)
        original = parent.children[slot]
        parent.children[slot] = replacement
        try:
            changed = False
            for env, want in zip(env_list, baseline):
                got = tree.evaluate(env)
                if isinstance(want, bool) or isinstance(got, bool):
                    if bool(got) != bool(want):
                        changed = True
                        break
                elif abs(float(got) - float(want)) > tolerance:
                    changed = True
                    break
        finally:
            parent.children[slot] = original
        if not changed:
            introns.append(node)
    return introns
