"""Checkpointable, observable experiment campaigns.

The layer between the GP machinery (:mod:`repro.gp`,
:mod:`repro.metaopt`) and anything long-running: campaigns execute in
run directories with durable config, JSONL telemetry, per-generation
checkpoints, and a final canonical ``result.json`` — and a killed run
resumes bit-identically.  See ``docs/EXPERIMENTS_API.md``.
"""

from repro.experiments.checkpoint import (
    CHECKPOINT_VERSION,
    load_checkpoint,
    save_checkpoint,
)
from repro.experiments.config import CASES, MODES, ExperimentConfig
from repro.experiments.events import (
    EVENT_TYPES,
    SCHEMA_VERSION,
    EventSink,
    JsonlSink,
    MemorySink,
    MultiSink,
    PrettySink,
)
from repro.experiments.runner import (
    RESULT_SCHEMA,
    ExperimentResult,
    ExperimentRunner,
    ExperimentSession,
    run_experiment,
)

__all__ = [
    "CASES",
    "CHECKPOINT_VERSION",
    "EVENT_TYPES",
    "EventSink",
    "ExperimentConfig",
    "ExperimentResult",
    "ExperimentRunner",
    "ExperimentSession",
    "JsonlSink",
    "MODES",
    "MemorySink",
    "MultiSink",
    "PrettySink",
    "RESULT_SCHEMA",
    "SCHEMA_VERSION",
    "load_checkpoint",
    "run_experiment",
    "save_checkpoint",
]
