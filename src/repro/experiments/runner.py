"""The checkpointable experiment runner.

:class:`ExperimentRunner` executes a specialize or generalize campaign
described by an :class:`~repro.experiments.config.ExperimentConfig`
inside a *run directory*::

    runs/<name>/
        config.json          the campaign description (self-describing)
        events.jsonl         append-only structured telemetry
        checkpoint.pkl       atomic snapshot after each generation
        populations/         per-generation population dumps (JSONL)
        result.json          final scores, canonical JSON

Checkpoints capture the full engine state (population, RNG, fitness
memo, DSS state, history), so a run killed at any generation and
restarted with ``resume=True`` produces a ``result.json`` byte-identical
to the uninterrupted run — for the serial and the process-pool
evaluator alike.  Without a run directory the runner still works
(events to the given sinks, no persistence) — handy for tests and
one-off in-memory campaigns.
"""

from __future__ import annotations

import json
import time
from contextlib import nullcontext
from dataclasses import dataclass
from pathlib import Path

from repro.experiments.checkpoint import load_checkpoint, save_checkpoint
from repro.experiments.config import ExperimentConfig
from repro.experiments.events import (
    SCHEMA_VERSION,
    EventSink,
    JsonlSink,
    MultiSink,
)

#: Version stamp of the ``result.json`` payload.
RESULT_SCHEMA = 1

CONFIG_FILENAME = "config.json"
EVENTS_FILENAME = "events.jsonl"
CHECKPOINT_FILENAME = "checkpoint.pkl"
RESULT_FILENAME = "result.json"
POPULATIONS_DIRNAME = "populations"
SURROGATE_FILENAME = "surrogate.json"


@dataclass
class ExperimentResult:
    """What :meth:`ExperimentRunner.run` hands back.

    ``interrupted`` runs carry no scores — only ``next_generation``,
    the generation a resume will continue from.  Finished runs carry
    the mode-specific result object plus ``payload``, the exact dict
    serialized to ``result.json``.
    """

    config: ExperimentConfig
    run_dir: Path | None
    resumed: bool
    interrupted: bool = False
    next_generation: int | None = None
    specialization: object | None = None
    generalization: object | None = None
    cross_validation: object | None = None
    payload: dict | None = None
    #: content address of the heuristic artifact written at campaign
    #: end (``publish_dir`` set and the run finished), else None
    artifact_id: str | None = None


class ExperimentRunner:
    """Drives one campaign; every future scaling layer plugs in here."""

    def __init__(
        self,
        config: ExperimentConfig,
        run_dir=None,
        sinks: tuple[EventSink, ...] = (),
        harness=None,
        stop_after_generation: int | None = None,
        collect_metrics: bool = False,
        publish_dir=None,
        use_snapshots: bool = True,
        fleet: str | None = None,
        surrogate: bool = False,
        surrogate_top_k: int = 8,
        publish_parent_id: str | None = None,
        publish_created_at: float | None = None,
    ) -> None:
        self.config = config
        self.run_dir = Path(run_dir) if run_dir is not None else None
        self.sinks = tuple(sinks)
        self._harness = harness
        #: deterministic interruption point (0-based generation index);
        #: the runner checkpoints that generation and stops as if
        #: killed — the testable stand-in for a real SIGKILL.
        self.stop_after_generation = stop_after_generation
        #: emit a per-generation ``metrics`` event (repro.obs snapshot
        #: delta).  A runner-level switch, not an ExperimentConfig
        #: field: metrics are observational, never part of the
        #: run's identity or its result.json.
        self.collect_metrics = collect_metrics
        #: artifact store directory: when set, the best evolved
        #: expression is packaged as a content-addressed
        #: :class:`~repro.serve.artifact.HeuristicArtifact` at campaign
        #: end.  Runner-level like ``collect_metrics`` — publishing is
        #: a deployment side effect, never part of the run's identity,
        #: so result.json (and resume byte-identity) are unaffected.
        self.publish_dir = publish_dir
        #: compilation forking (docs/FORKING.md).  Runner-level like
        #: ``collect_metrics``: bit-identical either way, so it is a
        #: performance switch, never part of the run's identity.
        self.use_snapshots = use_snapshots
        #: fleet spec (``"local:N"`` or ``"host:port,..."``): shard each
        #: generation across serve workers (docs/FLEET.md).  Runner-level
        #: like ``use_snapshots`` — the fleet is bit-identical to serial
        #: evaluation, so it describes *where* a run executes, never
        #: *what* it computes, and a resume may use a different fleet
        #: (or none) without perturbing result.json.
        self.fleet = fleet
        #: learned surrogate fitness (docs/SURROGATE.md): prescreen
        #: each generation with a model trained from the persistent
        #: fitness cache and simulate only the top of the ranking.
        #: Runner-level like ``fleet`` — never in config.json — but
        #: unlike the other switches it changes the search trajectory
        #: (tail fitnesses are predictions), so a resumed run must use
        #: the same flag as the original; the surrogate's own state
        #: rides ``surrogate.json`` beside the checkpoint to keep
        #: kill+resume byte-identical.
        self.surrogate = surrogate
        self.surrogate_top_k = surrogate_top_k
        #: lineage of a published artifact: the autopilot stamps the
        #: incumbent champion's id as the child's parent and pins
        #: ``created_at`` so a resumed campaign publishes the same
        #: content address.  Runner-level like ``publish_dir`` —
        #: deployment metadata, never part of the run's identity.
        self.publish_parent_id = publish_parent_id
        self.publish_created_at = publish_created_at
        #: the live SurrogateEvaluator of the current run (telemetry)
        self._surrogate_evaluator = None

    @classmethod
    def from_run_dir(cls, run_dir, sinks: tuple[EventSink, ...] = (),
                     stop_after_generation: int | None = None,
                     collect_metrics: bool = False,
                     publish_dir=None,
                     use_snapshots: bool = True,
                     fleet: str | None = None,
                     surrogate: bool = False,
                     surrogate_top_k: int = 8,
                     publish_parent_id: str | None = None,
                     publish_created_at: float | None = None,
                     ) -> "ExperimentRunner":
        """Reconstruct a runner from a run directory's ``config.json``
        (the entry point of ``--resume``)."""
        run_dir = Path(run_dir)
        config_path = run_dir / CONFIG_FILENAME
        if not config_path.exists():
            raise FileNotFoundError(
                f"{config_path} not found — not a run directory")
        config = ExperimentConfig.from_json_dict(
            json.loads(config_path.read_text()))
        return cls(config, run_dir=run_dir, sinks=sinks,
                   stop_after_generation=stop_after_generation,
                   collect_metrics=collect_metrics,
                   publish_dir=publish_dir,
                   use_snapshots=use_snapshots,
                   fleet=fleet,
                   surrogate=surrogate,
                   surrogate_top_k=surrogate_top_k,
                   publish_parent_id=publish_parent_id,
                   publish_created_at=publish_created_at)

    # -- assembly --------------------------------------------------------
    def _settings(self):
        from repro.metaopt.settings import EvalSettings

        return EvalSettings(
            noise_stddev=self.config.noise_stddev,
            fitness_cache_dir=self.config.fitness_cache_dir,
            verify_outputs=self.config.verify_outputs,
            use_snapshots=self.use_snapshots,
        )

    def _build_harness(self):
        from repro.metaopt.harness import EvaluationHarness, case_study

        if self._harness is not None:
            return self._harness
        return EvaluationHarness(case_study(self.config.case),
                                 self._settings())

    def _build_surrogate(self, harness, inner, skip_train: bool):
        """Wrap ``inner`` (or the serial harness evaluator) in a
        :class:`~repro.surrogate.SurrogateEvaluator`.  The initial
        model trains from the harness's persistent fitness cache;
        ``skip_train`` (resume with a saved ``surrogate.json``) leaves
        the model to the state restore instead."""
        from repro.surrogate import SurrogateEvaluator, train_from_cache

        if inner is None:
            inner = harness.evaluator("train")
        model = None
        if not skip_train and harness.fitness_cache is not None:
            model, _report = train_from_cache(
                harness.fitness_cache, self.config.case,
                seed=self.config.params.seed)
        surrogate = SurrogateEvaluator(
            inner, self.config.case, model,
            top_k=self.surrogate_top_k,
            seed=self.config.params.seed)
        self._surrogate_evaluator = surrogate
        return surrogate

    def _surrogate_path(self):
        return self.run_dir / SURROGATE_FILENAME

    def _save_surrogate_state(self) -> None:
        path = self._surrogate_path()
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(json.dumps(
            self._surrogate_evaluator.state_dict(),
            indent=2, sort_keys=True) + "\n")
        tmp.replace(path)

    def _extra_seeds(self, harness):
        if not self.config.seed_expressions:
            return ()
        from repro.gp.parse import parse

        pset = harness.case.pset
        return tuple(parse(text, pset.bool_feature_set())
                     for text in self.config.seed_expressions)

    def _build_engine(self, harness, evaluator):
        config = self.config
        extra_seeds = self._extra_seeds(harness)
        if config.mode == "specialize":
            from repro.metaopt.specialize import build_specialize_engine

            return build_specialize_engine(
                harness.case, config.benchmark, config.params, harness,
                seed_baseline=config.seed_baseline, evaluator=evaluator,
                extra_seeds=extra_seeds,
            )
        from repro.metaopt.generalize import build_generalize_engine

        return build_generalize_engine(
            harness.case, config.training_set, config.params, harness,
            subset_size=config.subset_size,
            seed_baseline=config.seed_baseline, evaluator=evaluator,
            extra_seeds=extra_seeds,
        )

    def _finalize(self, harness, gp_result):
        config = self.config
        if config.mode == "specialize":
            from repro.metaopt.specialize import finalize_specialization

            spec = finalize_specialization(harness, config.benchmark,
                                           gp_result)
            return spec, None, None
        from repro.metaopt.generalize import (
            cross_validate,
            finalize_generalization,
        )

        gen = finalize_generalization(
            harness.case, harness, config.training_set, gp_result,
            seed_baseline=config.seed_baseline,
        )
        cross = None
        if config.test_set:
            cross = cross_validate(harness.case, gen.best_tree,
                                   config.test_set, harness=harness)
        return None, gen, cross

    # -- run-dir plumbing -------------------------------------------------
    def _prepare_run_dir(self, resume: bool):
        checkpoint_path = self.run_dir / CHECKPOINT_FILENAME
        self.run_dir.mkdir(parents=True, exist_ok=True)
        if resume:
            if not checkpoint_path.exists():
                raise FileNotFoundError(
                    f"cannot resume: {checkpoint_path} does not exist")
        else:
            if checkpoint_path.exists():
                raise FileExistsError(
                    f"{self.run_dir} already holds a run — pass "
                    "resume=True (--resume) to continue it, or choose "
                    "a fresh run directory")
            config_path = self.run_dir / CONFIG_FILENAME
            config_path.write_text(
                json.dumps(self.config.to_json_dict(), indent=2,
                           sort_keys=True) + "\n")
        (self.run_dir / POPULATIONS_DIRNAME).mkdir(exist_ok=True)
        return checkpoint_path

    def _snapshot_population(self, generation: int, population) -> None:
        from repro.gp.genome import expression_text

        path = (self.run_dir / POPULATIONS_DIRNAME /
                f"gen_{generation:04d}.jsonl")
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            for index, individual in enumerate(population):
                json.dump(
                    {
                        "index": index,
                        "expression": expression_text(individual.tree),
                        "fitness": individual.fitness,
                        "origin": individual.origin,
                        "size": individual.size,
                    },
                    handle, sort_keys=True)
                handle.write("\n")
        tmp.replace(path)

    def _counters(self, harness, evaluator) -> dict[str, int]:
        counters = dict(harness.stats())
        if evaluator is not None:
            counters.update(evaluator.stats())
        return counters

    # -- result payload ----------------------------------------------------
    def _history_payload(self, history) -> list[dict]:
        return [
            {
                "generation": stats.generation,
                "subset": list(stats.subset),
                "best_fitness": stats.best_fitness,
                "mean_fitness": stats.mean_fitness,
                "best_size": stats.best_size,
                "mean_size": stats.mean_size,
                "unique_structures": stats.unique_structures,
                "baseline_rank": stats.baseline_rank,
                "best_expression": stats.best_expression,
            }
            for stats in history
        ]

    def _result_payload(self, spec, gen, cross) -> dict:
        config = self.config
        payload = {
            "schema": RESULT_SCHEMA,
            "mode": config.mode,
            "case": config.case,
            "config": config.to_json_dict(),
        }
        if spec is not None:
            payload.update({
                "benchmark": spec.benchmark,
                "best_expression": spec.best_expression,
                "train_speedup": spec.train_speedup,
                "novel_speedup": spec.novel_speedup,
                "baseline_cycles_train": spec.baseline_cycles_train,
                "best_cycles_train": spec.best_cycles_train,
                "evaluations": spec.evaluations,
                "history": self._history_payload(spec.history),
            })
        if gen is not None:
            payload.update({
                "best_expression": gen.best_expression,
                "training": [
                    {
                        "benchmark": score.benchmark,
                        "train_speedup": score.train_speedup,
                        "novel_speedup": score.novel_speedup,
                    }
                    for score in gen.training
                ],
                "average_train_speedup": gen.average_train_speedup(),
                "average_novel_speedup": gen.average_novel_speedup(),
                "evaluations": gen.evaluations,
                "history": self._history_payload(gen.history),
            })
            payload["cross_validation"] = None if cross is None else {
                "machine": cross.machine_name,
                "scores": [
                    {
                        "benchmark": score.benchmark,
                        "train_speedup": score.train_speedup,
                        "novel_speedup": score.novel_speedup,
                    }
                    for score in cross.scores
                ],
                "average_train_speedup": cross.average_train_speedup(),
                "average_novel_speedup": cross.average_novel_speedup(),
            }
        return payload

    # -- publish -----------------------------------------------------------
    def _publish(self, harness, spec, gen) -> str:
        """Package the campaign's best expression as a heuristic
        artifact in ``publish_dir``; returns the artifact id."""
        from repro.serve.artifact import build_artifact
        from repro.serve.registry import ArtifactRegistry

        config = self.config
        if spec is not None:
            expression = spec.best_expression
            metrics = {
                "benchmark": spec.benchmark,
                "train_speedup": spec.train_speedup,
                "novel_speedup": spec.novel_speedup,
                "evaluations": spec.evaluations,
            }
        else:
            expression = gen.best_expression
            metrics = {
                "training_set": list(config.training_set),
                "average_train_speedup": gen.average_train_speedup(),
                "average_novel_speedup": gen.average_novel_speedup(),
                "evaluations": gen.evaluations,
            }
        # deliberately no run_dir here: an absolute host path inside a
        # portable content-addressed document would make the artifact
        # id depend on where the campaign happened to run (provenance
        # lives in the run directory's result.json and the channel log)
        artifact = build_artifact(
            case=config.case,
            expression=expression,
            machine=harness.case.machine,
            training_config=config.to_json_dict(),
            metrics=metrics,
            created_at=self.publish_created_at,
            parent_id=self.publish_parent_id,
        )
        registry = ArtifactRegistry(self.publish_dir)
        return registry.save(artifact)

    # -- main entry --------------------------------------------------------
    def open_session(self, resume: bool = False) -> "ExperimentSession":
        """Start (or resume) the campaign without driving it.

        The returned :class:`ExperimentSession` exposes the campaign a
        generation at a time — ``step()`` until ``done``, then
        ``finalize()`` — so a caller can interleave generations with
        other work: the autopilot runs exactly one ``step()`` per
        low-priority serve job.  :meth:`run` is a while-loop over this
        same object, so both paths emit identical event streams and
        produce byte-identical run directories.
        """
        return ExperimentSession(self, resume=resume)

    def run(self, resume: bool = False) -> ExperimentResult:
        session = self.open_session(resume=resume)
        try:
            while not session.done:
                stats = session.step()
                if (self.stop_after_generation is not None
                        and stats.generation >= self.stop_after_generation
                        and not session.done):
                    return session.interrupt()
            return session.finalize()
        except KeyboardInterrupt:
            # The last completed generation is already checkpointed;
            # tell the stream where a resume will pick up, then let the
            # interrupt propagate (the CLI turns it into exit code 130).
            session.emit_interrupted()
            raise
        finally:
            session.close()


class ExperimentSession:
    """One in-flight campaign, stepped a generation at a time.

    Owns everything :meth:`ExperimentRunner.run` used to hold on its
    stack: the event sink, metrics registry, harness, evaluator,
    engine, and checkpoint path.  Construction performs the whole
    run-start sequence (run-dir prep, state restore, ``run_started``
    event); each :meth:`step` is one engine generation plus its
    checkpoint and telemetry; :meth:`finalize`/:meth:`interrupt` end
    the run; :meth:`close` releases the evaluator, metrics, and sinks
    (idempotent — always call it).
    """

    def __init__(self, runner: ExperimentRunner, resume: bool = False):
        self.runner = runner
        config = runner.config
        self.config = config
        self.resumed = bool(resume)
        if config.case == "flags":
            # Flags genomes are not expression trees: the surrogate's
            # feature extractor and the artifact store both consume
            # s-expressions.  (--fleet/--processes reject in
            # make_evaluator for the same reason.)
            if runner.surrogate:
                raise ValueError(
                    "the flags case does not support --surrogate")
            if runner.publish_dir is not None:
                raise ValueError(
                    "the flags case does not support --publish")
        self._run_started = time.monotonic()
        self._closed = False
        self._finished = False

        self.registry = None
        self._owns_metrics = False
        if runner.collect_metrics:
            from repro import obs

            self._owns_metrics = not obs.metrics_enabled()
            self.registry = obs.enable_metrics()

        self.checkpoint_path = None
        self._owned_sinks: list[EventSink] = []
        if runner.run_dir is not None:
            self.checkpoint_path = runner._prepare_run_dir(resume)
            self._owned_sinks.append(
                JsonlSink(runner.run_dir / EVENTS_FILENAME))
        elif resume:
            raise ValueError("resume requires a run directory")
        self.sink = MultiSink(list(runner.sinks) + self._owned_sinks)

        self.harness = runner._build_harness()
        self.evaluator = None
        self._evaluator_context = nullcontext()
        if runner.fleet is not None or config.processes > 1:
            from repro.metaopt.parallel import make_evaluator

            self.evaluator = make_evaluator(
                config.case,
                runner._settings(),
                processes=config.processes,
                fleet=runner.fleet,
            )
            self._evaluator_context = self.evaluator
        runner._surrogate_evaluator = None
        saved_state = False
        if runner.surrogate:
            saved_state = (runner.run_dir is not None and resume
                           and runner._surrogate_path().exists())
            self.evaluator = runner._build_surrogate(
                self.harness, self.evaluator, skip_train=saved_state)
            self._evaluator_context = self.evaluator

        self.engine = runner._build_engine(self.harness, self.evaluator)
        if resume:
            snapshot = load_checkpoint(self.checkpoint_path)
            if snapshot["config"] != config.to_json_dict():
                raise ValueError(
                    "checkpoint was written by a different configuration "
                    f"than {runner.run_dir / CONFIG_FILENAME} describes")
            self.engine.restore_state(snapshot["engine"])
            if runner._surrogate_evaluator is not None and saved_state:
                runner._surrogate_evaluator.restore_state(
                    json.loads(runner._surrogate_path().read_text()))

        if runner.run_dir is not None:
            engine = self.engine
            engine.on_generation = lambda stats: runner._snapshot_population(
                stats.generation, engine.population)

        self._evaluator_context.__enter__()
        self._evaluator_open = True

        self.sink.emit({
            "event": "run_started",
            "schema": SCHEMA_VERSION,
            "mode": config.mode,
            "case": config.case,
            "resumed": bool(resume),
            "start_generation": self.engine.generation,
            "config": config.to_json_dict(),
        })

    # -- state ------------------------------------------------------------
    @property
    def done(self) -> bool:
        return self.engine.done

    @property
    def generation(self) -> int:
        """The generation a resume (or the next step) continues from."""
        return self.engine.generation

    def _exit_evaluator(self) -> None:
        if self._evaluator_open:
            self._evaluator_open = False
            self._evaluator_context.__exit__(None, None, None)

    # -- stepping ----------------------------------------------------------
    def step(self):
        """Run exactly one engine generation: evaluate, checkpoint,
        emit telemetry.  Returns the generation's
        :class:`~repro.gp.engine.GenerationStats`."""
        runner = self.runner
        config = self.config
        try:
            generation_started = time.monotonic()
            before = runner._counters(self.harness, self.evaluator)
            metrics_before = (self.registry.snapshot()
                              if self.registry is not None else None)
            evaluations_before = self.engine.evaluations
            stats = self.engine.step()
            wall_s = time.monotonic() - generation_started
            after = runner._counters(self.harness, self.evaluator)

            if self.checkpoint_path is not None and (
                self.engine.generation % config.checkpoint_every == 0
                or self.engine.done
            ):
                save_checkpoint(self.checkpoint_path,
                                config.to_json_dict(),
                                self.engine.state_dict())
                if runner._surrogate_evaluator is not None:
                    runner._save_surrogate_state()
                checkpointed = True
            else:
                checkpointed = False

            self.sink.emit({
                "event": "generation",
                "generation": stats.generation,
                "subset": list(stats.subset),
                "best_fitness": stats.best_fitness,
                "mean_fitness": stats.mean_fitness,
                "best_size": stats.best_size,
                "mean_size": stats.mean_size,
                "unique_structures": stats.unique_structures,
                "baseline_rank": stats.baseline_rank,
                "best_expression": stats.best_expression,
                "evaluations_total": self.engine.evaluations,
                "new_evaluations":
                    self.engine.evaluations - evaluations_before,
                "counters": {
                    key: after[key] - before.get(key, 0)
                    for key in after
                },
                "wall_s": wall_s,
            })
            if self.registry is not None:
                from repro.obs.metrics import diff_snapshots

                self.sink.emit({
                    "event": "metrics",
                    "generation": stats.generation,
                    "metrics": diff_snapshots(metrics_before,
                                              self.registry.snapshot()),
                })
            if (runner._surrogate_evaluator is not None
                    and self.registry is not None):
                # telemetry-only, like ``metrics``: per-generation
                # deltas of the surrogate counters
                surrogate = runner._surrogate_evaluator
                self.sink.emit({
                    "event": "surrogate",
                    "generation": stats.generation,
                    "sims_saved":
                        after.get("surrogate_sims_saved", 0)
                        - before.get("surrogate_sims_saved", 0),
                    "rank_corr": surrogate.last_rank_corr,
                    "refits":
                        after.get("surrogate_refits", 0)
                        - before.get("surrogate_refits", 0),
                    "promotions":
                        after.get("surrogate_promotions", 0)
                        - before.get("surrogate_promotions", 0),
                })
            if checkpointed:
                self.sink.emit({
                    "event": "checkpoint_saved",
                    "generation": stats.generation,
                    "path": str(self.checkpoint_path),
                })
            return stats
        except BaseException:
            # mirror the old with-block: the evaluator shuts down
            # before the interrupt event is emitted or the error
            # propagates to the caller
            self._exit_evaluator()
            raise

    # -- endings -----------------------------------------------------------
    def emit_interrupted(self) -> None:
        self.sink.emit({
            "event": "run_interrupted",
            "next_generation": self.engine.generation,
        })

    def interrupt(self) -> ExperimentResult:
        """End the session early (deterministic stop point); the last
        checkpoint stands and a resume continues from
        ``next_generation``."""
        self.emit_interrupted()
        self._exit_evaluator()
        self._finished = True
        return ExperimentResult(
            config=self.config,
            run_dir=self.runner.run_dir,
            resumed=self.resumed,
            interrupted=True,
            next_generation=self.engine.generation,
        )

    def finalize(self) -> ExperimentResult:
        """Re-score the champion, write ``result.json``, publish, emit
        ``run_finished``.  Only valid once the engine is ``done``."""
        runner = self.runner
        try:
            # final re-scores always run on the serial harness
            spec, gen, cross = runner._finalize(self.harness,
                                                self.engine.result())
        except BaseException:
            self._exit_evaluator()
            raise
        self._exit_evaluator()

        payload = runner._result_payload(spec, gen, cross)
        if runner.run_dir is not None:
            result_path = runner.run_dir / RESULT_FILENAME
            tmp = result_path.with_name(result_path.name + ".tmp")
            tmp.write_text(json.dumps(payload, indent=2, sort_keys=True)
                           + "\n")
            tmp.replace(result_path)
        artifact_id = None
        if runner.publish_dir is not None:
            artifact_id = runner._publish(self.harness, spec, gen)
            self.sink.emit({
                "event": "artifact_published",
                "artifact_id": artifact_id,
                "store": str(runner.publish_dir),
            })
        self.sink.emit({
            "event": "run_finished",
            "result": payload,
            "wall_s": time.monotonic() - self._run_started,
        })
        self._finished = True
        return ExperimentResult(
            config=self.config,
            run_dir=runner.run_dir,
            resumed=self.resumed,
            specialization=spec,
            generalization=gen,
            cross_validation=cross,
            payload=payload,
            artifact_id=artifact_id,
        )

    def close(self) -> None:
        """Release the evaluator, metrics registry, and owned sinks.
        Safe to call more than once and after any failure."""
        if self._closed:
            return
        self._closed = True
        self._exit_evaluator()
        if self._owns_metrics:
            from repro import obs

            obs.disable_metrics()
        for owned in self._owned_sinks:
            owned.close()


def run_experiment(
    config: ExperimentConfig,
    run_dir=None,
    sinks: tuple[EventSink, ...] = (),
    resume: bool = False,
    harness=None,
    stop_after_generation: int | None = None,
    collect_metrics: bool = False,
    publish_dir=None,
    use_snapshots: bool = True,
    surrogate: bool = False,
    surrogate_top_k: int = 8,
) -> ExperimentResult:
    """One-call form of :class:`ExperimentRunner` — the unified
    experiment API the CLI and new Python code share."""
    runner = ExperimentRunner(
        config, run_dir=run_dir, sinks=sinks, harness=harness,
        stop_after_generation=stop_after_generation,
        collect_metrics=collect_metrics,
        publish_dir=publish_dir,
        use_snapshots=use_snapshots,
        surrogate=surrogate,
        surrogate_top_k=surrogate_top_k,
    )
    return runner.run(resume=resume)
