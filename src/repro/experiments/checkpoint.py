"""Atomic experiment checkpoints.

A checkpoint is one pickle file holding the engine snapshot
(:meth:`repro.gp.engine.GPEngine.state_dict` — population, RNG state,
fitness memo, DSS state, history) plus the config it belongs to.  The
write is atomic (temp file + ``os.replace`` in the same directory), so
a run killed mid-checkpoint leaves the previous checkpoint intact and a
run killed between checkpoints simply replays the last completed
generation's successor on resume — either way the resumed run is
bit-identical to an uninterrupted one.
"""

from __future__ import annotations

import os
import pickle
from pathlib import Path

#: Format version of the checkpoint payload.
CHECKPOINT_VERSION = 1


def save_checkpoint(path, config_dict: dict, engine_state: dict) -> None:
    """Atomically write a checkpoint next to its final location."""
    path = Path(path)
    payload = {
        "version": CHECKPOINT_VERSION,
        "config": config_dict,
        "engine": engine_state,
    }
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def load_checkpoint(path) -> dict:
    """Read a checkpoint; raises :class:`FileNotFoundError` when the
    run has never checkpointed and :class:`ValueError` on a version the
    runner does not understand."""
    with open(path, "rb") as handle:
        payload = pickle.load(handle)
    if payload.get("version") != CHECKPOINT_VERSION:
        raise ValueError(
            f"unsupported checkpoint version {payload.get('version')!r}")
    return payload
