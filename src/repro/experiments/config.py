"""The unified experiment configuration.

One frozen :class:`ExperimentConfig` describes a whole campaign —
specialize (one benchmark) or generalize (DSS over a training set plus
optional cross-validation) — and is consumed identically by the Python
API (:func:`repro.experiments.run_experiment`) and the CLI
(``repro evolve`` / ``repro generalize``).  It replaced the ad-hoc
kwarg threading through the old ``specialize()`` / ``generalize()``
wrappers, which are now gone.

The config serializes to plain JSON (``runs/<name>/config.json``), and
a resumed run is reconstructed from exactly that file, so a run
directory is self-describing.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.gp.engine import GPParams

#: Experiment kinds understood by the runner.
MODES = ("specialize", "generalize")

#: Case-study names: the paper's three, the scheduling extension, the
#: two prepare-stage extensions (inline, unroll), and the FOGA-style
#: flag campaign.
CASES = ("hyperblock", "regalloc", "prefetch", "scheduling",
         "inline", "unroll", "flags")


@dataclass(frozen=True)
class ExperimentConfig:
    """Everything a campaign needs, immutable and JSON-serializable.

    ``mode="specialize"`` requires ``benchmark``; ``mode="generalize"``
    requires a non-empty ``training_set`` (``test_set`` additionally
    triggers cross-validation of the evolved function).
    """

    mode: str
    case: str
    benchmark: str | None = None
    training_set: tuple[str, ...] = ()
    test_set: tuple[str, ...] = ()
    params: GPParams = field(default_factory=GPParams)
    noise_stddev: float = 0.0
    processes: int = 1
    fitness_cache_dir: str | None = None
    #: differential guard: verify every fresh simulation against the
    #: interpreter and give miscompiling candidates worst-case fitness
    verify_outputs: bool = False
    seed_baseline: bool = True
    subset_size: int | None = None
    #: checkpoint every N completed generations (1 = every generation,
    #: the resume-safe default)
    checkpoint_every: int = 1
    #: extra s-expressions seeded into the initial population alongside
    #: the baseline — how an autopilot re-optimization campaign starts
    #: from the incumbent champion instead of from scratch.  Serialized
    #: only when non-empty, so existing config.json files (and their
    #: checkpoints) round-trip unchanged.
    seed_expressions: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {self.mode!r}")
        if self.case not in CASES:
            raise ValueError(f"case must be one of {CASES}, got {self.case!r}")
        if self.mode == "specialize":
            if not self.benchmark:
                raise ValueError("specialize requires a benchmark")
        else:
            if not self.training_set:
                raise ValueError("generalize requires a non-empty "
                                 "training_set")
        if self.processes < 1:
            raise ValueError("processes must be >= 1")
        if self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if self.seed_expressions and self.case == "flags":
            raise ValueError("the flags case evolves enum genomes, not "
                             "expression trees; seed_expressions does "
                             "not apply")
        # Normalize list inputs (e.g. straight from JSON) to tuples so
        # the config stays hashable and comparable.
        for name in ("training_set", "test_set", "seed_expressions"):
            value = getattr(self, name)
            if not isinstance(value, tuple):
                object.__setattr__(self, name, tuple(value))

    # -- serialization ---------------------------------------------------
    def to_json_dict(self) -> dict:
        data = dataclasses.asdict(self)
        data["training_set"] = list(self.training_set)
        data["test_set"] = list(self.test_set)
        if self.seed_expressions:
            data["seed_expressions"] = list(self.seed_expressions)
        else:
            del data["seed_expressions"]
        return data

    @classmethod
    def from_json_dict(cls, data: dict) -> "ExperimentConfig":
        data = dict(data)
        params = data.get("params")
        if isinstance(params, dict):
            data["params"] = GPParams(**params)
        unknown = set(data) - {f.name for f in dataclasses.fields(cls)}
        if unknown:
            raise ValueError(f"unknown config fields: {sorted(unknown)}")
        return cls(**data)
