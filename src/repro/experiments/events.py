"""Structured experiment telemetry.

Every experiment emits a stream of flat JSON-serializable event dicts
through one or more :class:`EventSink` instances.  The documented
schema (``docs/EXPERIMENTS_API.md``) is versioned via the ``schema``
field of the ``run_started`` event; the event types are:

``run_started``
    ``{event, schema, mode, case, resumed, start_generation, config}``
``generation``
    ``{event, generation, subset, best_fitness, mean_fitness,
    best_size, mean_size, unique_structures, baseline_rank,
    best_expression, evaluations_total, new_evaluations, counters,
    wall_s}`` — one per completed generation.  ``counters`` carries the
    evaluator/harness telemetry deltas for the generation (compiles,
    sims, simulated cycles, cache hits, pool jobs, ...), ``wall_s`` the
    wall-clock seconds the generation took.
``checkpoint_saved``
    ``{event, generation, path}``
``run_interrupted``
    ``{event, next_generation}`` — the run stopped early but its
    checkpoint is intact; resuming continues at ``next_generation``.
``run_finished``
    ``{event, result, wall_s}`` — ``result`` is the same payload
    written to ``result.json``.
``metrics`` (schema 2)
    ``{event, generation, metrics}`` — emitted right after each
    ``generation`` event when the runner collects observability
    metrics (:mod:`repro.obs`).  ``metrics`` is a snapshot delta
    (``diff_snapshots``): the counters, gauges, and histograms the
    generation moved.  Purely observational — never part of
    ``result.json``, so resumed runs stay byte-identical.
``artifact_published`` (schema 3)
    ``{event, artifact_id, store}`` — the campaign's best expression
    was packaged as a heuristic artifact (``publish_dir`` /
    ``--publish``; see ``docs/SERVING.md``).  Emitted just before
    ``run_finished``.  Like ``metrics``, a deployment side effect:
    never part of ``result.json``.
``surrogate`` (schema 4)
    ``{event, generation, sims_saved, rank_corr, refits,
    promotions}`` — per-generation learned-surrogate telemetry
    (docs/SURROGATE.md), emitted right after ``generation`` when the
    runner both runs with a surrogate and collects metrics.
    ``sims_saved`` counts jobs scored from the model instead of the
    simulator this generation, ``rank_corr`` is the latest Spearman
    rank correlation between predictions and exact values (``null``
    until enough exact trees accumulate in a batch), ``refits`` and
    ``promotions`` are this generation's drift-triggered refit and
    champion-promotion counts.  Purely observational — never part of
    ``result.json``, so resumed runs stay byte-identical.

Only ``wall_s``, ``counters``, ``metrics``, and ``surrogate`` are
timing- or switch-dependent; everything else is deterministic for a
given config, which is what the golden-schema tests pin down.
"""

from __future__ import annotations

import json
import sys
from typing import IO

#: Version stamp of the event schema, carried by ``run_started``.
#: Version 2 added the optional per-generation ``metrics`` event;
#: version 3 the optional ``artifact_published`` event; version 4 the
#: optional per-generation ``surrogate`` event.  Every earlier event is
#: unchanged, so old consumers can read new streams by ignoring unknown
#: event types.
SCHEMA_VERSION = 4

#: Every event type the runner can emit.
EVENT_TYPES = (
    "run_started",
    "generation",
    "metrics",
    "surrogate",
    "checkpoint_saved",
    "run_interrupted",
    "artifact_published",
    "run_finished",
)


class EventSink:
    """Receives experiment events; the base class ignores them."""

    def emit(self, event: dict) -> None:  # pragma: no cover - interface
        pass

    def close(self) -> None:
        pass


class MemorySink(EventSink):
    """Collects events in a list — the test harness's sink."""

    def __init__(self) -> None:
        self.events: list[dict] = []

    def emit(self, event: dict) -> None:
        self.events.append(event)

    def of_type(self, event_type: str) -> list[dict]:
        return [e for e in self.events if e["event"] == event_type]


class JsonlSink(EventSink):
    """Appends one JSON object per line to a file.

    Lines are flushed per event so a killed run leaves a readable
    stream; a resumed run appends to the same file, giving a single
    chronological log of all attempts.
    """

    def __init__(self, path) -> None:
        self.path = path
        self._handle: IO[str] = open(path, "a", encoding="utf-8")

    def emit(self, event: dict) -> None:
        json.dump(event, self._handle, sort_keys=True)
        self._handle.write("\n")
        self._handle.flush()

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()


class PrettySink(EventSink):
    """Human-readable progress lines, the CLI's default narrator."""

    def __init__(self, stream: IO[str] | None = None) -> None:
        self.stream = stream if stream is not None else sys.stdout

    def _print(self, text: str) -> None:
        print(text, file=self.stream)

    def emit(self, event: dict) -> None:
        kind = event["event"]
        if kind == "run_started":
            verb = "resuming" if event["resumed"] else "starting"
            self._print(f"{verb} {event['mode']} run ({event['case']}) "
                        f"at generation {event['start_generation']}")
        elif kind == "generation":
            subset = ",".join(event["subset"])
            self._print(
                f"  gen {event['generation']:3d}: "
                f"best {event['best_fitness']:.4f} "
                f"(size {event['best_size']}, {event['new_evaluations']} "
                f"new evals, {event['wall_s']:.2f}s) [{subset}]")
        elif kind == "run_interrupted":
            self._print(f"interrupted; resume will continue at "
                        f"generation {event['next_generation']}")
        elif kind == "run_finished":
            self._print(f"finished in {event['wall_s']:.2f}s")


class MultiSink(EventSink):
    """Fans one event stream out to several sinks."""

    def __init__(self, sinks) -> None:
        self.sinks = list(sinks)

    def emit(self, event: dict) -> None:
        for sink in self.sinks:
            sink.emit(event)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()
