"""Observability: span tracing + metrics, off by default.

The instrumented subsystems (:mod:`repro.passes.pipeline`,
:mod:`repro.machine.sim`, :mod:`repro.gp.engine`,
:mod:`repro.metaopt.parallel`) call the module-level helpers below.
With nothing enabled every helper is a cheap guard check — ``span``
returns a shared reusable null context and the metric helpers return
immediately — so the evaluation fast path is unaffected (the bench
gate in CI holds the regression under 2%).

Enabling is explicit and process-local::

    from repro import obs

    registry = obs.enable_metrics()        # start collecting metrics
    tracer = obs.enable_tracing()          # start collecting spans
    ...instrumented work...
    snapshot = registry.snapshot()
    tracer.write("trace.json")             # chrome://tracing / Perfetto
    obs.disable_metrics(); obs.disable_tracing()

Surfaces: the ``repro profile`` subcommand, ``--trace FILE`` /
``--metrics`` on ``evolve``/``generalize``/``simulate``, per-generation
``metrics`` events in the experiments stream, and
``tools/bench_eval.py``.  Span and metric names are catalogued in
``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

from contextlib import nullcontext

from repro.obs.metrics import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    diff_snapshots,
)
from repro.obs.trace import Tracer

__all__ = [
    "DEFAULT_TIME_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Tracer",
    "diff_snapshots",
    "disable_metrics",
    "disable_tracing",
    "enable_metrics",
    "enable_tracing",
    "enabled",
    "inc",
    "metrics",
    "metrics_enabled",
    "observe",
    "set_gauge",
    "span",
    "tracer",
    "tracing_enabled",
]

_TRACER: Tracer | None = None
_METRICS: MetricsRegistry | None = None

#: Reusable no-op context manager handed out while tracing is disabled.
_NULL_CONTEXT = nullcontext()


# -- lifecycle -----------------------------------------------------------
def enable_tracing(instance: Tracer | None = None) -> Tracer:
    """Install (and return) the active tracer.  Idempotent: calling
    with no argument while tracing is already on keeps the current
    tracer and its collected spans."""
    global _TRACER
    if instance is not None:
        _TRACER = instance
    elif _TRACER is None:
        _TRACER = Tracer()
    return _TRACER


def disable_tracing() -> Tracer | None:
    """Stop tracing; returns the tracer that was active (so callers can
    still export what it collected)."""
    global _TRACER
    previous, _TRACER = _TRACER, None
    return previous


def enable_metrics(instance: MetricsRegistry | None = None) -> MetricsRegistry:
    """Install (and return) the active metrics registry.  Idempotent,
    like :func:`enable_tracing`."""
    global _METRICS
    if instance is not None:
        _METRICS = instance
    elif _METRICS is None:
        _METRICS = MetricsRegistry()
    return _METRICS


def disable_metrics() -> MetricsRegistry | None:
    """Stop metrics collection; returns the registry that was active."""
    global _METRICS
    previous, _METRICS = _METRICS, None
    return previous


# -- state queries -------------------------------------------------------
def tracing_enabled() -> bool:
    return _TRACER is not None


def metrics_enabled() -> bool:
    return _METRICS is not None


def enabled() -> bool:
    """True when either tracing or metrics collection is on."""
    return _TRACER is not None or _METRICS is not None


def tracer() -> Tracer | None:
    return _TRACER


def metrics() -> MetricsRegistry | None:
    return _METRICS


# -- guarded instrumentation helpers -------------------------------------
def span(name: str, **args):
    """A tracer span when tracing is on, else a shared no-op context."""
    active = _TRACER
    if active is None:
        return _NULL_CONTEXT
    return active.span(name, args=args or None)


def inc(name: str, amount: int | float = 1) -> None:
    active = _METRICS
    if active is not None:
        active.counter(name).inc(amount)


def set_gauge(name: str, value: int | float) -> None:
    active = _METRICS
    if active is not None:
        active.gauge(name).set(value)


def observe(name: str, value: float,
            buckets: tuple[float, ...] | None = None) -> None:
    active = _METRICS
    if active is not None:
        active.histogram(name, buckets).observe(value)
