"""Zero-dependency metrics registry: counters, gauges, histograms.

The registry is the numeric half of the observability layer
(:mod:`repro.obs`): long-running subsystems — the compilation pipeline,
the cycle simulator, the GP engine, the parallel evaluator — feed named
instruments, and surfaces (``repro profile``, the experiments event
stream, ``tools/bench_eval.py``) read consistent snapshots back out.

Three instrument kinds, deliberately minimal:

``Counter``
    A running sum.  Increments may be negative (used for signed
    aggregates such as per-pass IR size deltas), so a counter is a
    *sum*, not a strictly monotonic Prometheus counter.
``Gauge``
    A last-write-wins scalar (population size, memo size, ...).
``Histogram``
    Fixed, immutable bucket boundaries chosen at creation; observing
    records into ``counts`` (one overflow bucket past the last
    boundary) plus ``sum``/``count`` so means survive aggregation.

Snapshots are plain JSON-serializable dicts.  Two snapshot algebra
helpers make the parallel-evaluation story work: workers ship
:func:`diff_snapshots` deltas back with their results, and the parent
folds them in with :meth:`MetricsRegistry.merge_snapshot` — counter
deltas add, histogram bucket counts add, gauges last-write-win.

Everything is guarded by one lock per registry; instrument handles
returned by :meth:`counter` / :meth:`gauge` / :meth:`histogram` can be
cached by hot paths to skip the name lookup.
"""

from __future__ import annotations

import bisect
import threading

#: Default boundaries for timing histograms, in seconds.  Spans four
#: orders of magnitude: sub-millisecond pass timings up to multi-second
#: generation evaluations.
DEFAULT_TIME_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class Counter:
    """A named running sum."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        self.value += amount


class Gauge:
    """A named last-write-wins scalar."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: int | float) -> None:
        self.value = value


class Histogram:
    """A named histogram over fixed bucket boundaries.

    ``counts[i]`` counts observations ``<= buckets[i]``; the final
    entry (``counts[len(buckets)]``) is the overflow bucket.
    """

    __slots__ = ("name", "buckets", "counts", "sum", "count")

    def __init__(self, name: str,
                 buckets: tuple[float, ...] = DEFAULT_TIME_BUCKETS) -> None:
        boundaries = tuple(float(edge) for edge in buckets)
        if not boundaries:
            raise ValueError("histogram needs at least one bucket boundary")
        if list(boundaries) != sorted(set(boundaries)):
            raise ValueError(
                f"bucket boundaries must be strictly increasing: {boundaries}")
        self.name = name
        self.buckets = boundaries
        self.counts = [0] * (len(boundaries) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


class MetricsRegistry:
    """A set of named instruments with snapshot/merge support."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}

    # -- instrument accessors (get-or-create) ---------------------------
    def counter(self, name: str) -> Counter:
        instrument = self.counters.get(name)
        if instrument is None:
            with self._lock:
                instrument = self.counters.setdefault(name, Counter(name))
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self.gauges.get(name)
        if instrument is None:
            with self._lock:
                instrument = self.gauges.setdefault(name, Gauge(name))
        return instrument

    def histogram(self, name: str,
                  buckets: tuple[float, ...] | None = None) -> Histogram:
        instrument = self.histograms.get(name)
        if instrument is None:
            with self._lock:
                instrument = self.histograms.setdefault(
                    name, Histogram(name, buckets or DEFAULT_TIME_BUCKETS))
        return instrument

    # -- one-shot conveniences ------------------------------------------
    def inc(self, name: str, amount: int | float = 1) -> None:
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: int | float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float,
                buckets: tuple[float, ...] | None = None) -> None:
        self.histogram(name, buckets).observe(value)

    # -- snapshots -------------------------------------------------------
    def snapshot(self) -> dict:
        """A plain-data copy of every instrument's current state."""
        with self._lock:
            return {
                "counters": {name: c.value
                             for name, c in self.counters.items()},
                "gauges": {name: g.value for name, g in self.gauges.items()},
                "histograms": {
                    name: {
                        "buckets": list(h.buckets),
                        "counts": list(h.counts),
                        "sum": h.sum,
                        "count": h.count,
                    }
                    for name, h in self.histograms.items()
                },
            }

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold another registry's snapshot (or a delta from
        :func:`diff_snapshots`) into this registry: counters and
        histogram bucket counts add, gauges last-write-win.

        This is how per-worker metrics from a process pool are folded
        into the parent's registry.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, data in snapshot.get("histograms", {}).items():
            histogram = self.histogram(name, tuple(data["buckets"]))
            if list(histogram.buckets) != list(data["buckets"]):
                raise ValueError(
                    f"histogram {name!r}: cannot merge mismatched bucket "
                    f"boundaries {data['buckets']} into "
                    f"{list(histogram.buckets)}")
            for index, count in enumerate(data["counts"]):
                histogram.counts[index] += count
            histogram.sum += data["sum"]
            histogram.count += data["count"]


def diff_snapshots(before: dict, after: dict) -> dict:
    """The change from ``before`` to ``after``, as a mergeable snapshot.

    Counters and histograms subtract (entries with no activity are
    dropped, keeping per-generation deltas small); gauges carry the
    ``after`` value.  ``merge_snapshot(diff_snapshots(a, b))`` applied
    to a registry in state ``a`` reproduces state ``b`` for counters
    and histograms.
    """
    counters = {}
    for name, value in after.get("counters", {}).items():
        delta = value - before.get("counters", {}).get(name, 0)
        if delta:
            counters[name] = delta
    histograms = {}
    for name, data in after.get("histograms", {}).items():
        prior = before.get("histograms", {}).get(name)
        if prior is None:
            if data["count"]:
                histograms[name] = {key: (list(value)
                                          if isinstance(value, list)
                                          else value)
                                    for key, value in data.items()}
            continue
        count_delta = data["count"] - prior["count"]
        if not count_delta:
            continue
        histograms[name] = {
            "buckets": list(data["buckets"]),
            "counts": [now - then for now, then
                       in zip(data["counts"], prior["counts"])],
            "sum": data["sum"] - prior["sum"],
            "count": count_delta,
        }
    return {
        "counters": counters,
        "gauges": dict(after.get("gauges", {})),
        "histograms": histograms,
    }
