"""Hierarchical span tracer exporting Chrome ``trace_event`` JSON.

The tracer records *complete events* (``"ph": "X"``): each span carries
a start timestamp and a duration on a monotonic clock
(:func:`time.perf_counter_ns`), plus the recording process and thread
ids.  Chrome's trace viewer (``chrome://tracing``) and Perfetto nest
``X`` events on the same pid/tid by time containment, so the natural
``with span(...)`` nesting in the code is exactly the nesting the
viewer shows — no explicit parent ids are needed.

The file format is the JSON object form of the Trace Event spec::

    {"traceEvents": [
        {"name": "pipeline:backend", "cat": "repro", "ph": "X",
         "ts": 1234.5, "dur": 678.9, "pid": 4242, "tid": 1, "args": {}},
        ...
     ],
     "displayTimeUnit": "ms"}

``ts``/``dur`` are microseconds since the tracer was created.  Load a
written file straight into Perfetto (https://ui.perfetto.dev) or
``chrome://tracing``.

Spans are recorded on exit, under a lock, so tracing is thread-safe;
events from forked worker processes are not collected automatically
(workers ship metric snapshots instead — see
:mod:`repro.metaopt.parallel`), but every event is stamped with its
``os.getpid()`` so merged traces stay unambiguous.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager


class Tracer:
    """Collects spans as Chrome ``trace_event`` dicts."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._epoch_ns = time.perf_counter_ns()
        self.events: list[dict] = []

    # -- recording -------------------------------------------------------
    @contextmanager
    def span(self, name: str, category: str = "repro",
             args: dict | None = None):
        """Record a complete event covering the ``with`` body."""
        start_ns = time.perf_counter_ns()
        try:
            yield self
        finally:
            end_ns = time.perf_counter_ns()
            event = {
                "name": name,
                "cat": category,
                "ph": "X",
                "ts": (start_ns - self._epoch_ns) / 1000.0,
                "dur": (end_ns - start_ns) / 1000.0,
                "pid": os.getpid(),
                "tid": threading.get_ident(),
            }
            if args:
                event["args"] = args
            with self._lock:
                self.events.append(event)

    def instant(self, name: str, args: dict | None = None) -> None:
        """Record a zero-duration marker (``"ph": "i"``)."""
        event = {
            "name": name,
            "cat": "repro",
            "ph": "i",
            "s": "t",
            "ts": (time.perf_counter_ns() - self._epoch_ns) / 1000.0,
            "pid": os.getpid(),
            "tid": threading.get_ident(),
        }
        if args:
            event["args"] = args
        with self._lock:
            self.events.append(event)

    # -- export ----------------------------------------------------------
    def chrome_trace(self) -> dict:
        """The trace as a Chrome/Perfetto-loadable JSON object."""
        with self._lock:
            events = sorted(self.events, key=lambda e: e["ts"])
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write(self, path) -> None:
        """Write the Chrome trace JSON to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.chrome_trace(), handle)
            handle.write("\n")

    def __len__(self) -> int:
        with self._lock:
            return len(self.events)
