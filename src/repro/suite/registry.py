"""Benchmark registry (the paper's Table 5).

Each benchmark is a MiniC program plus two deterministic datasets: the
**train** input (used for profiling and fitness evaluation) and the
**novel** input (the paper's alternate data set, used to measure how
well a specialized heuristic generalizes across inputs of the same
program).

The original suites (Mediabench, SPEC92/95/2000) are re-implemented as
kernels of the same algorithm families — see DESIGN.md for the
substitution rationale.  Names follow Table 5 so the experiment
harness reads like the paper.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Callable

Dataset = dict[str, list]


@dataclass(frozen=True)
class Benchmark:
    """One suite entry."""

    name: str
    suite: str  # "mediabench" | "spec92" | "spec95" | "spec2000" | "misc"
    category: str  # "int" | "fp"
    description: str
    source: str
    make_inputs: Callable[[str], Dataset] = field(compare=False)

    def inputs(self, dataset: str = "train") -> Dataset:
        if dataset not in ("train", "novel"):
            raise ValueError(f"unknown dataset {dataset!r}")
        return self.make_inputs(dataset)


_REGISTRY: dict[str, Benchmark] = {}

#: modules under repro.suite.programs that register benchmarks
_PROGRAM_MODULES = (
    "rle",
    "huffman",
    "adpcm",
    "g721",
    "jpeg",
    "mpeg2",
    "media_misc",
    "specint",
    "specfp92",
    "specfp95",
    "spec2000fp",
    "promoted",
)

_LOADED = False


def register(benchmark: Benchmark) -> Benchmark:
    if benchmark.name in _REGISTRY:
        raise ValueError(f"duplicate benchmark {benchmark.name}")
    _REGISTRY[benchmark.name] = benchmark
    return benchmark


def _ensure_loaded() -> None:
    global _LOADED
    if _LOADED:
        return
    for module in _PROGRAM_MODULES:
        importlib.import_module(f"repro.suite.programs.{module}")
    _LOADED = True


def get(name: str) -> Benchmark:
    _ensure_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def all_benchmarks() -> dict[str, Benchmark]:
    _ensure_loaded()
    return dict(_REGISTRY)


def by_suite(suite: str) -> list[Benchmark]:
    _ensure_loaded()
    return [b for b in _REGISTRY.values() if b.suite == suite]


def by_category(category: str) -> list[Benchmark]:
    _ensure_loaded()
    return [b for b in _REGISTRY.values() if b.category == category]


# ---------------------------------------------------------------------------
# The paper's experiment groupings
# ---------------------------------------------------------------------------

#: Figure 4 / Figure 6 training set (mostly Mediabench — the paper
#: "chose to train mostly on Mediabench applications because they
#: compile and run faster").
HYPERBLOCK_TRAINING_SET = (
    "codrle4", "decodrle4", "g721encode", "g721decode",
    "rawcaudio", "rawdaudio", "toast", "mpeg2dec",
    "124.m88ksim", "129.compress", "huff_enc", "huff_dec",
)

#: Figure 7 cross-validation set (unrelated applications).
HYPERBLOCK_TEST_SET = (
    "unepic", "djpeg", "rasta", "023.eqntott", "132.ijpeg",
    "052.alvinn", "147.vortex", "085.cc1", "art", "130.li",
    "osdemo", "mipmap",
)

#: Figure 11 training set (smaller, per the paper's footnote about
#: Trimaran bugs with the 32-register machine).
REGALLOC_TRAINING_SET = (
    "129.compress", "g721decode", "g721encode", "huff_enc",
    "huff_dec", "rawcaudio", "rawdaudio", "mpeg2dec",
)

#: Figure 12 cross-validation set.
REGALLOC_TEST_SET = (
    "decodrle4", "codrle4", "124.m88ksim", "unepic", "djpeg",
    "023.eqntott", "132.ijpeg", "147.vortex", "085.cc1", "130.li",
)

#: Figure 13 / 15 training set (SPEC92+95 floating point).
PREFETCH_TRAINING_SET = (
    "101.tomcatv", "102.swim", "103.su2cor", "125.turb3d",
    "146.wave5", "093.nasa7", "015.doduc", "034.mdljdp2",
    "107.mgrid", "141.apsi",
)

#: Figure 16 cross-validation set (SPEC2000 floating point).
PREFETCH_TEST_SET = (
    "168.wupwise", "171.swim", "172.mgrid", "173.applu",
    "178.galgel", "183.equake", "187.facerec", "188.ammp",
    "189.lucas", "200.sixtrack", "301.apsi", "191.fma3d",
)
