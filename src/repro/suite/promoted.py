"""Fuzzer-promoted and adversarial benchmarks.

``repro suite promote`` elevates programs that earned their keep as
correctness reproducers — the differential-regression corpus under
``tests/corpus/`` and interesting fuzzer generations — into first-class
suite benchmarks, so evolution campaigns also train and validate on
the adversarial control flow that once broke the pipeline.

Promoted programs live in ``promoted_programs.json`` next to this
module (committed package data, not a runtime side file).  Each entry
records the program source, its train and novel input sets, a
provenance string, and a **split** — ``train`` entries join
:data:`PROMOTED_TRAINING_SET`, ``novel`` entries join
:data:`PROMOTED_NOVEL_SET`, giving campaigns an explicit
seen/held-out partition of the adversarial suite.

Promotion is gated: a program must pass the differential oracle
(interpreter vs fully optimized simulation, IR verifier on) before it
is written to the registry file, so the suite can never absorb a
program the pipeline miscompiles.

Reproducers are promoted with ``novel`` inputs equal to their
``train`` inputs when no second dataset exists — they measure
robustness on adversarial control flow, not dataset generalization.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.suite.registry import Benchmark, register

#: Schema version of ``promoted_programs.json``.
PROMOTED_SCHEMA = 1

#: The two split values a promoted program may carry.
SPLITS = ("train", "novel")


def promoted_path() -> Path:
    """The committed registry file (package data)."""
    return Path(__file__).parent / "promoted_programs.json"


@dataclass(frozen=True)
class PromotedProgram:
    """One promoted benchmark: source, datasets, and provenance."""

    name: str
    description: str
    #: where the program came from, e.g. ``corpus:unused-param`` or
    #: ``fuzz:seed=1057`` — display metadata only
    origin: str
    #: experiment-set membership: ``train`` or ``novel``
    split: str
    source: str
    train_inputs: dict[str, list]
    novel_inputs: dict[str, list]

    def __post_init__(self) -> None:
        if self.split not in SPLITS:
            raise ValueError(
                f"split must be one of {SPLITS}, got {self.split!r}")

    def to_json_dict(self) -> dict:
        return {
            "name": self.name,
            "description": self.description,
            "origin": self.origin,
            "split": self.split,
            "source": self.source,
            "train_inputs": self.train_inputs,
            "novel_inputs": self.novel_inputs,
        }

    @classmethod
    def from_json_dict(cls, data: dict) -> "PromotedProgram":
        return cls(
            name=data["name"],
            description=data["description"],
            origin=data["origin"],
            split=data["split"],
            source=data["source"],
            train_inputs=dict(data["train_inputs"]),
            novel_inputs=dict(data["novel_inputs"]),
        )

    def category(self) -> str:
        """MiniC reproducers are integer kernels unless the source
        declares floats."""
        return "fp" if "float" in self.source else "int"

    def benchmark(self) -> Benchmark:
        train = self.train_inputs
        novel = self.novel_inputs
        return Benchmark(
            name=self.name,
            suite="promoted",
            category=self.category(),
            description=f"{self.description} [{self.origin}, "
                        f"{self.split} split]",
            source=self.source,
            make_inputs=lambda dataset, _t=train, _n=novel: {
                key: list(values)
                for key, values in (_t if dataset == "train"
                                    else _n).items()
            },
        )


def load_promoted(path: Path | None = None) -> list[PromotedProgram]:
    """Parse the registry file; an absent file is an empty registry."""
    path = path if path is not None else promoted_path()
    if not path.exists():
        return []
    data = json.loads(path.read_text())
    if data.get("schema") != PROMOTED_SCHEMA:
        raise ValueError(
            f"{path}: unsupported promoted-programs schema "
            f"{data.get('schema')!r} (expected {PROMOTED_SCHEMA})")
    programs = [PromotedProgram.from_json_dict(entry)
                for entry in data["programs"]]
    names = [program.name for program in programs]
    if len(names) != len(set(names)):
        raise ValueError(f"{path}: duplicate promoted program names")
    return programs


def save_promoted(programs: list[PromotedProgram],
                  path: Path | None = None) -> Path:
    """Write the registry file atomically, sorted by name."""
    path = path if path is not None else promoted_path()
    payload = {
        "schema": PROMOTED_SCHEMA,
        "programs": [program.to_json_dict()
                     for program in sorted(programs,
                                           key=lambda p: p.name)],
    }
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    tmp.replace(path)
    return path


class PromotionError(ValueError):
    """A program failed the promotion gate."""


def check_promotable(program: PromotedProgram) -> None:
    """The promotion gate: both datasets must pass the differential
    oracle (IR verifier on) under the default configuration."""
    from repro.passes.pipeline import CompilerOptions
    from repro.verify.differential import run_differential

    options = CompilerOptions(verify_ir=True)
    for dataset, inputs in (("train", program.train_inputs),
                            ("novel", program.novel_inputs)):
        result = run_differential(program.source, inputs, options,
                                  name=program.name)
        if not result.equivalent:
            raise PromotionError(
                f"{program.name}: {dataset} inputs diverge under the "
                f"differential oracle ({result.first}) — fix the "
                "miscompile before promoting")


def promote_corpus_entry(mc_path, split: str = "train",
                         name: str | None = None) -> PromotedProgram:
    """Build a promoted program from a corpus ``NAME.mc`` +
    ``NAME.inputs.json`` pair (does not write the registry file)."""
    mc_path = Path(mc_path)
    inputs_path = mc_path.with_suffix("").with_suffix(".inputs.json")
    if not inputs_path.exists():
        raise PromotionError(f"{mc_path}: no {inputs_path.name} beside it")
    inputs = json.loads(inputs_path.read_text())
    source = mc_path.read_text()
    # The corpus README's one-line description, when present: the
    # first comment line of the program, else a generic line.
    description = f"corpus reproducer {mc_path.stem}"
    for line in source.splitlines():
        stripped = line.strip()
        if stripped.startswith("//"):
            description = stripped.lstrip("/ ").rstrip(".")
            break
    program = PromotedProgram(
        name=name if name is not None else mc_path.stem,
        description=description,
        origin=f"corpus:{mc_path.stem}",
        split=split,
        source=source,
        train_inputs=inputs,
        novel_inputs=inputs,
    )
    check_promotable(program)
    return program


def promote_fuzz_program(seed: int,
                         split: str = "train") -> PromotedProgram:
    """Build a promoted program from one fuzzer generation (does not
    write the registry file)."""
    from repro.verify.fuzz import generate_program

    fuzz = generate_program(seed)
    program = PromotedProgram(
        name=f"fuzz-{seed}",
        description=f"fuzzer-generated program (case seed {seed})",
        origin=f"fuzz:seed={seed}",
        split=split,
        source=fuzz.source,
        train_inputs=fuzz.inputs,
        novel_inputs=fuzz.inputs,
    )
    check_promotable(program)
    return program


def add_promoted(programs: list[PromotedProgram],
                 path: Path | None = None) -> list[PromotedProgram]:
    """Merge ``programs`` into the registry file; re-promoting an
    existing name replaces that entry."""
    existing = {program.name: program for program in load_promoted(path)}
    for program in programs:
        existing[program.name] = program
    merged = sorted(existing.values(), key=lambda p: p.name)
    save_promoted(merged, path)
    return merged


def register_promoted() -> None:
    """Register every committed promoted program with the suite
    (called from ``repro.suite.programs.promoted`` at load time)."""
    for program in load_promoted():
        register(program.benchmark())


def _split_members(split: str) -> tuple[str, ...]:
    return tuple(sorted(program.name for program in load_promoted()
                        if program.split == split))


#: Promoted benchmarks in the training partition.
PROMOTED_TRAINING_SET = _split_members("train")

#: Promoted benchmarks held out as the novel partition.
PROMOTED_NOVEL_SET = _split_members("novel")
