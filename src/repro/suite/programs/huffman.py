"""huff_enc / huff_dec — Huffman encoder and decoder.

Static canonical Huffman over a 64-symbol alphabet.  The encoder builds
the code table with a heap-free two-queue method over profiled symbol
frequencies; the decoder walks a flattened tree.  Bit-twiddling and
table-driven branches stress both the branch predictor and the
hyperblock resource model.
"""

from __future__ import annotations

from repro.suite.datagen import rng_for, skewed_bytes
from repro.suite.registry import Benchmark, register

ENCODER_SOURCE = """
// Static Huffman encoder over a 32-symbol alphabet: build code lengths
// via pairwise merging of the two smallest weights, then emit the
// bitstream length and a checksum over per-symbol code assignments.
int input[1600];
int input_len;
int freq[32];
int weight[64];
int parent[64];
int alive[64];
int codelen[32];

void main() {
  int i;
  for (i = 0; i < 32; i = i + 1) {
    freq[i] = 1;          // Laplace smoothing keeps every symbol coded
  }
  for (i = 0; i < input_len; i = i + 1) {
    freq[input[i]] = freq[input[i]] + 1;
  }
  // Huffman merge over a flat node array (32 leaves + merges).
  int nodes = 32;
  for (i = 0; i < 32; i = i + 1) {
    weight[i] = freq[i];
    alive[i] = 1;
    parent[i] = 0 - 1;
  }
  int merges;
  for (merges = 0; merges < 31; merges = merges + 1) {
    int best = 0 - 1;
    int second = 0 - 1;
    int j;
    for (j = 0; j < nodes; j = j + 1) {
      if (alive[j] == 1) {
        if (best < 0 || weight[j] < weight[best]) {
          second = best;
          best = j;
        } else {
          if (second < 0 || weight[j] < weight[second]) {
            second = j;
          }
        }
      }
    }
    weight[nodes] = weight[best] + weight[second];
    alive[nodes] = 1;
    parent[nodes] = 0 - 1;
    alive[best] = 0;
    alive[second] = 0;
    parent[best] = nodes;
    parent[second] = nodes;
    nodes = nodes + 1;
  }
  // Code length of each leaf = depth to the root.
  for (i = 0; i < 32; i = i + 1) {
    int depth = 0;
    int node = i;
    while (parent[node] >= 0) {
      node = parent[node];
      depth = depth + 1;
    }
    codelen[i] = depth;
  }
  // Encoded size + weighted checksum.
  int bits = 0;
  for (i = 0; i < input_len; i = i + 1) {
    bits = bits + codelen[input[i]];
  }
  int cs = 0;
  for (i = 0; i < 32; i = i + 1) {
    cs = cs + codelen[i] * (i + 3);
  }
  out(bits);
  out(cs);
}
"""

DECODER_SOURCE = """
// Huffman decoder: walk a flattened binary tree bit by bit.
// tree[n*2] / tree[n*2+1] hold the 0/1 children of internal node n:
// a non-negative value is the child's node index, a negative value is
// a leaf storing -(symbol+1).
int tree[256];
int bits[12000];
int bits_len;
int output[2000];

void main() {
  int pos = 0;
  int outp = 0;
  int node = 0;
  while (pos < bits_len) {
    int child;
    if (bits[pos] == 1) {
      child = tree[node * 2 + 1];
    } else {
      child = tree[node * 2];
    }
    pos = pos + 1;
    if (child < 0) {
      output[outp] = 0 - child - 1;
      outp = outp + 1;
      node = 0;
    } else {
      node = child;
    }
  }
  out(outp);
  int cs = 0;
  int j;
  for (j = 0; j < outp; j = j + 1) {
    cs = cs + output[j] * (j % 11 + 1);
  }
  out(cs);
}
"""


def _build_huffman(data: list[int]) -> tuple[dict[int, str], list[int]]:
    """Python-side mirror: build codes and a flattened decode tree."""
    freq = {sym: 1 for sym in range(64)}
    for sym in data:
        freq[sym] += 1
    # (weight, tiebreak, payload): payload is a symbol or a node pair.
    import heapq

    heap = [(weight, sym, sym) for sym, weight in freq.items()]
    heapq.heapify(heap)
    counter = 64
    nodes: dict[int, tuple] = {}
    while len(heap) > 1:
        w1, _, left = heapq.heappop(heap)
        w2, _, right = heapq.heappop(heap)
        nodes[counter] = (left, right)
        heapq.heappush(heap, (w1 + w2, counter, counter))
        counter += 1
    root = heap[0][2]

    codes: dict[int, str] = {}

    def walk(node, prefix: str) -> None:
        if node < 64:
            codes[node] = prefix or "0"
            return
        left, right = nodes[node]
        walk(left, prefix + "0")
        walk(right, prefix + "1")

    walk(root, "")

    # Flatten to the decoder's layout: index 0 is the root; child
    # entries are node indices (internal) or -(symbol+1) (leaves).
    flat: list[int] = [0] * 256
    index_of = {root: 0}
    order = [root]
    next_slot = 1
    for node in order:
        left, right = nodes[node]
        for child in (left, right):
            if child >= 64 and child not in index_of:
                index_of[child] = next_slot
                next_slot += 1
                order.append(child)
    for node, slot in index_of.items():
        left, right = nodes[node]
        flat[slot * 2] = -(left + 1) if left < 64 else index_of[left]
        flat[slot * 2 + 1] = -(right + 1) if right < 64 else index_of[right]
    return codes, flat


def _encoder_inputs(dataset: str) -> dict[str, list]:
    rng = rng_for("huff_enc", dataset)
    hot = 70 if dataset == "train" else 35
    data = skewed_bytes(rng, 420, hot_fraction=hot, alphabet=32)
    return {"input": data, "input_len": [len(data)]}


def _decoder_inputs(dataset: str) -> dict[str, list]:
    rng = rng_for("huff_dec", dataset)
    hot = 70 if dataset == "train" else 35
    data = skewed_bytes(rng, 280, hot_fraction=hot)
    codes, flat = _build_huffman(data)
    bitstream = [int(bit) for sym in data for bit in codes[sym]]
    return {"tree": flat, "bits": bitstream, "bits_len": [len(bitstream)]}


register(Benchmark(
    name="huff_enc",
    suite="misc",
    category="int",
    description="Static Huffman encoder (Bourgin's lossless codecs)",
    source=ENCODER_SOURCE,
    make_inputs=_encoder_inputs,
))

register(Benchmark(
    name="huff_dec",
    suite="misc",
    category="int",
    description="Huffman decoder over a flattened tree",
    source=DECODER_SOURCE,
    make_inputs=_decoder_inputs,
))
