"""Remaining Mediabench-style programs: rasta, toast, unepic, osdemo,
mipmap.

* ``rasta`` — speech feature extraction: filterbank energies + RASTA
  band-pass filtering (float).
* ``toast`` — GSM-style speech transcoder front end: short-term LPC
  analysis via Levinson-Durbin on integer autocorrelations.
* ``unepic`` — EPIC-style image decompressor: inverse wavelet
  (Haar-like) reconstruction with quantized coefficients.
* ``osdemo`` / ``mipmap`` — Mesa-like 3-D graphics: vertex transform +
  perspective divide + face culling, and mipmap downsampling.
"""

from __future__ import annotations

from repro.suite.datagen import rng_for
from repro.suite.registry import Benchmark, register

RASTA_SOURCE = """
float frames[1024];    // 16 frames x 64 samples
int nframes;
float window[64];
float energies[16];
float filtered[16];

void main() {
  int f;
  // Per-frame filterbank energy (4 triangular bands folded into one
  // weighted sum), then log-like compression via sqrt.
  for (f = 0; f < nframes; f = f + 1) {
    float energy = 0.0;
    int i;
    for (i = 0; i < 64; i = i + 1) {
      float s = frames[f * 64 + i] * window[i];
      energy = energy + s * s;
    }
    energies[f] = sqrt(energy);
  }
  // RASTA band-pass across frames (5-tap FIR on the log-energy track).
  for (f = 0; f < nframes; f = f + 1) {
    float acc = energies[f] * 0.2;
    if (f >= 1) { acc = acc + energies[f - 1] * 0.1; }
    if (f >= 2) { acc = acc - energies[f - 2] * 0.1; }
    if (f >= 3) { acc = acc - energies[f - 3] * 0.2; }
    if (f >= 4) { acc = acc + energies[f - 4] * 0.05; }
    filtered[f] = acc;
  }
  float cs = 0.0;
  for (f = 0; f < nframes; f = f + 1) {
    cs = cs + filtered[f] * (f + 1);
  }
  out(cs);
}
"""

TOAST_SOURCE = """
int samples[640];
int nsamples;
int autocorr[9];
int reflect[8];

void main() {
  // Autocorrelation (scaled to avoid overflow).
  int lag;
  for (lag = 0; lag < 9; lag = lag + 1) {
    int acc = 0;
    int i;
    for (i = lag; i < nsamples; i = i + 1) {
      acc = acc + (samples[i] >> 2) * (samples[i - lag] >> 2);
    }
    autocorr[lag] = acc;
  }
  // Schur/Levinson-style reflection coefficients (integer, scaled 2^10).
  int err = autocorr[0];
  if (err == 0) { err = 1; }
  int m;
  for (m = 0; m < 8; m = m + 1) {
    int acc = autocorr[m + 1];
    int k = (acc * 1024) / err;
    if (k > 1023) { k = 1023; }
    if (k < -1023) { k = -1023; }
    reflect[m] = k;
    err = err - ((k * k / 1024) * err) / 1024;
    if (err < 1) { err = 1; }
  }
  int cs = 0;
  for (m = 0; m < 8; m = m + 1) {
    cs = cs + reflect[m] * (m + 2);
  }
  out(cs);
  out(err);
}
"""

UNEPIC_SOURCE = """
int coeffs[1024];      // quantized wavelet pyramid (1-D, 4 levels)
int length;
int signal[1024];
int scratch[1024];

void main() {
  // Start from the coarsest band and inverse-transform level by level.
  int i;
  for (i = 0; i < length; i = i + 1) {
    signal[i] = coeffs[i] * 8;   // dequantize
  }
  int half = length / 16;
  int level;
  for (level = 0; level < 4; level = level + 1) {
    // signal[0..half) = averages, signal[half..2*half) = details.
    int k;
    for (k = 0; k < half; k = k + 1) {
      int avg = signal[k];
      int det = signal[half + k];
      int a = avg + det;
      int b = avg - det;
      if (a > 2047) { a = 2047; }
      if (a < -2048) { a = -2048; }
      if (b > 2047) { b = 2047; }
      if (b < -2048) { b = -2048; }
      scratch[k * 2] = a;
      scratch[k * 2 + 1] = b;
    }
    for (k = 0; k < half * 2; k = k + 1) {
      signal[k] = scratch[k];
    }
    half = half * 2;
  }
  int cs = 0;
  for (i = 0; i < length; i = i + 1) {
    cs = cs + signal[i] * (i % 31 + 1);
  }
  out(cs);
}
"""

OSDEMO_SOURCE = """
// Mesa-style vertex pipeline: modelview transform, perspective divide,
// viewport map, and backface-ish rejection by w.
float verts[1200];     // 300 x (x, y, z, 1) packed as 4 floats
int nverts;
float matrix[16];
float screen[900];     // 300 x (sx, sy, depth)
int accepted;

void main() {
  int count = 0;
  int v;
  for (v = 0; v < nverts; v = v + 1) {
    float x = verts[v * 4];
    float y = verts[v * 4 + 1];
    float z = verts[v * 4 + 2];
    float tx = matrix[0] * x + matrix[1] * y + matrix[2] * z + matrix[3];
    float ty = matrix[4] * x + matrix[5] * y + matrix[6] * z + matrix[7];
    float tz = matrix[8] * x + matrix[9] * y + matrix[10] * z + matrix[11];
    float tw = matrix[12] * x + matrix[13] * y + matrix[14] * z + matrix[15];
    if (tw > 0.001) {
      float inv = 1.0 / tw;
      screen[count * 3] = tx * inv * 320.0 + 320.0;
      screen[count * 3 + 1] = ty * inv * 240.0 + 240.0;
      screen[count * 3 + 2] = tz * inv;
      count = count + 1;
    }
  }
  accepted = count;
  float cs = 0.0;
  int i;
  for (i = 0; i < count * 3; i = i + 1) {
    cs = cs + screen[i];
  }
  out(cs);
  out(accepted);
}
"""

MIPMAP_SOURCE = """
// Mipmap chain generation: repeated 2x2 box-filter downsampling of a
// 32x32 texture, with a sharpening clamp at each level.
int texture[1024];
int levels[1536];

void main() {
  int i;
  for (i = 0; i < 1024; i = i + 1) {
    levels[i] = texture[i];
  }
  int src = 0;
  int dst = 1024;
  int size = 32;
  while (size > 1) {
    int half = size / 2;
    int y;
    for (y = 0; y < half; y = y + 1) {
      int x;
      for (x = 0; x < half; x = x + 1) {
        int a = levels[src + (y * 2) * size + x * 2];
        int b = levels[src + (y * 2) * size + x * 2 + 1];
        int c = levels[src + (y * 2 + 1) * size + x * 2];
        int d = levels[src + (y * 2 + 1) * size + x * 2 + 1];
        int avg = (a + b + c + d + 2) >> 2;
        if (avg > 255) { avg = 255; }
        levels[dst + y * half + x] = avg;
      }
    }
    src = dst;
    dst = dst + half * half;
    size = half;
  }
  int cs = 0;
  for (i = 1024; i < dst; i = i + 1) {
    cs = cs + levels[i] * (i % 13 + 1);
  }
  out(cs);
}
"""


def _rasta_inputs(dataset: str) -> dict[str, list]:
    rng = rng_for("rasta", dataset)
    nframes = 14
    spread = 0.5 if dataset == "train" else 2.0
    frames = [rng.uniform(-spread, spread) for _ in range(nframes * 64)]
    window = [0.54 - 0.46 * (1.0 - abs(i - 32) / 32.0) for i in range(64)]
    return {"frames": frames, "nframes": [nframes], "window": window}


def _toast_inputs(dataset: str) -> dict[str, list]:
    rng = rng_for("toast", dataset)
    amplitude = 60 if dataset == "train" else 250
    samples = []
    value = 0
    for _ in range(600):
        value += rng.randint(-amplitude // 4, amplitude // 4)
        value = max(-amplitude * 4, min(amplitude * 4, value))
        samples.append(value)
    return {"samples": samples, "nsamples": [600]}


def _unepic_inputs(dataset: str) -> dict[str, list]:
    rng = rng_for("unepic", dataset)
    length = 1024
    sparsity = 65 if dataset == "train" else 25
    coeffs = [0 if rng.randint(0, 99) < sparsity else rng.randint(-40, 40)
              for _ in range(length)]
    return {"coeffs": coeffs, "length": [length]}


def _osdemo_inputs(dataset: str) -> dict[str, list]:
    rng = rng_for("osdemo", dataset)
    nverts = 280
    verts = []
    behind = 10 if dataset == "train" else 45  # % vertices behind camera
    for _ in range(nverts):
        verts.extend([rng.uniform(-1, 1), rng.uniform(-1, 1),
                      rng.uniform(-1, 1), 1.0])
    matrix = [1.0, 0.0, 0.0, 0.0,
              0.0, 1.0, 0.0, 0.0,
              0.0, 0.0, 1.0, 0.5,
              0.0, 0.0, 1.0, 0.0]
    # Push a fraction of vertices behind the camera (w <= 0).
    for index in range(nverts):
        if rng.randint(0, 99) < behind:
            verts[index * 4 + 2] = -abs(verts[index * 4 + 2]) - 0.1
    return {"verts": verts, "nverts": [nverts], "matrix": matrix}


def _mipmap_inputs(dataset: str) -> dict[str, list]:
    rng = rng_for("mipmap", dataset)
    smooth = dataset == "train"
    texture = []
    value = 128
    for _ in range(1024):
        if smooth:
            value = max(0, min(255, value + rng.randint(-9, 9)))
            texture.append(value)
        else:
            texture.append(rng.randint(0, 255))
    return {"texture": texture}


register(Benchmark(
    name="rasta", suite="mediabench", category="int",
    description="Speech recognition front end: filterbank + RASTA filter",
    source=RASTA_SOURCE, make_inputs=_rasta_inputs,
))
register(Benchmark(
    name="toast", suite="mediabench", category="int",
    description="GSM-style transcoder: autocorrelation + Schur recursion",
    source=TOAST_SOURCE, make_inputs=_toast_inputs,
))
register(Benchmark(
    name="unepic", suite="mediabench", category="int",
    description="EPIC-style image decompressor: inverse Haar pyramid",
    source=UNEPIC_SOURCE, make_inputs=_unepic_inputs,
))
register(Benchmark(
    name="osdemo", suite="mediabench", category="int",
    description="Mesa-style vertex transform + perspective divide",
    source=OSDEMO_SOURCE, make_inputs=_osdemo_inputs,
))
register(Benchmark(
    name="mipmap", suite="mediabench", category="int",
    description="Mesa-style mipmap chain generation (box filter)",
    source=MIPMAP_SOURCE, make_inputs=_mipmap_inputs,
))
