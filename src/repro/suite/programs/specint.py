"""SPEC-integer-style programs.

* ``085.cc1`` — a C-compiler-like tokenizer + operator-precedence
  expression evaluator (branchy state machine over a character stream).
* ``129.compress`` — LZW-style compressor with an open-addressing hash
  table (the SPEC95 in-memory compressor).
* ``130.li`` — a bytecode interpreter for a small Lisp-ish stack
  machine (dispatch-loop control flow).
* ``124.m88ksim`` — a tiny RISC ISA simulator executing a synthetic
  instruction trace.
* ``147.vortex`` — an object-store workload: insert / lookup / update
  over a hashed record table.
* ``023.eqntott`` — truth-table canonicalization: bitvector evaluation
  + insertion sort of minterms.
* ``052.alvinn`` — neural net forward+backward pass (dense float MACs).
* ``art`` — adaptive-resonance-style category matching (float).
"""

from __future__ import annotations

from repro.suite.datagen import rng_for
from repro.suite.registry import Benchmark, register

CC1_SOURCE = """
// Tokenize a synthetic source stream and evaluate embedded integer
// expressions with precedence climbing done iteratively via two stacks.
// Characters: 0-9 digits, +(10) -(11) *(12) ((13) )(14) ;(15)
int stream[1200];
int stream_len;
int valstack[64];
int opstack[64];

void main() {
  int pos = 0;
  int total = 0;
  int exprs = 0;
  while (pos < stream_len) {
    int vsp = 0;
    int osp = 0;
    // Parse one expression up to ';'.
    while (pos < stream_len && stream[pos] != 15) {
      int tok = stream[pos];
      pos = pos + 1;
      if (tok < 10) {
        // Numbers: accumulate following digits.
        int value = tok;
        while (pos < stream_len && stream[pos] < 10) {
          value = value * 10 + stream[pos];
          pos = pos + 1;
        }
        valstack[vsp] = value;
        vsp = vsp + 1;
      } else {
        if (tok == 13) {
          opstack[osp] = 13;
          osp = osp + 1;
        } else {
          if (tok == 14) {
            // Reduce until '('.
            while (osp > 0 && opstack[osp - 1] != 13) {
              int op = opstack[osp - 1];
              osp = osp - 1;
              int b = valstack[vsp - 1];
              int a = valstack[vsp - 2];
              vsp = vsp - 2;
              int r = 0;
              if (op == 10) { r = a + b; }
              if (op == 11) { r = a - b; }
              if (op == 12) { r = a * b; }
              valstack[vsp] = r;
              vsp = vsp + 1;
            }
            if (osp > 0) { osp = osp - 1; }
          } else {
            // Binary operator: reduce while the stack top has equal
            // or higher precedence (classic shunting-yard; '*' binds
            // tighter than '+'/'-', all operators left-associative).
            while (osp > 0 && opstack[osp - 1] != 13
                   && (opstack[osp - 1] == 12 || tok != 12)) {
              int op = opstack[osp - 1];
              osp = osp - 1;
              int b = valstack[vsp - 1];
              int a = valstack[vsp - 2];
              vsp = vsp - 2;
              int r = 0;
              if (op == 10) { r = a + b; }
              if (op == 11) { r = a - b; }
              if (op == 12) { r = a * b; }
              valstack[vsp] = r;
              vsp = vsp + 1;
            }
            opstack[osp] = tok;
            osp = osp + 1;
          }
        }
      }
    }
    pos = pos + 1;  // skip ';'
    // Final reduction.
    while (osp > 0) {
      int op = opstack[osp - 1];
      osp = osp - 1;
      if (op != 13) {
        int b = valstack[vsp - 1];
        int a = valstack[vsp - 2];
        vsp = vsp - 2;
        int r = 0;
        if (op == 10) { r = a + b; }
        if (op == 11) { r = a - b; }
        if (op == 12) { r = a * b; }
        valstack[vsp] = r;
        vsp = vsp + 1;
      }
    }
    if (vsp > 0) {
      total = total + valstack[0];
      exprs = exprs + 1;
    }
  }
  out(total);
  out(exprs);
}
"""

COMPRESS_SOURCE = """
// LZW-style compression with open-addressing hash table.
int input[1400];
int input_len;
int hash_code[2048];    // stored code at slot (-1 = empty)
int hash_key[2048];     // packed (prefix << 8) | symbol
int output[1400];

void main() {
  int i;
  for (i = 0; i < 2048; i = i + 1) {
    hash_code[i] = 0 - 1;
  }
  int next_code = 256;
  int prefix = input[0];
  int outp = 0;
  for (i = 1; i < input_len; i = i + 1) {
    int sym = input[i];
    int key = prefix * 256 + sym;
    int slot = (key * 31) % 2048;
    if (slot < 0) { slot = slot + 2048; }
    int found = 0 - 1;
    int probes = 0;
    while (probes < 2048) {
      if (hash_code[slot] < 0) {
        probes = 2048;          // empty slot: stop
      } else {
        if (hash_key[slot] == key) {
          found = hash_code[slot];
          probes = 2048;
        } else {
          slot = (slot + 1) % 2048;
          probes = probes + 1;
        }
      }
    }
    if (found >= 0) {
      prefix = found;
    } else {
      output[outp] = prefix;
      outp = outp + 1;
      if (next_code < 4096) {
        hash_code[slot] = next_code;
        hash_key[slot] = key;
        next_code = next_code + 1;
      }
      prefix = sym;
    }
  }
  output[outp] = prefix;
  outp = outp + 1;
  int cs = 0;
  for (i = 0; i < outp; i = i + 1) {
    cs = cs + output[i] * (i % 17 + 1);
  }
  out(outp);
  out(cs);
}
"""

LI_SOURCE = """
// Stack-machine bytecode interpreter (Lisp-ish arithmetic ops).
// Opcodes: 0 push-imm, 1 add, 2 sub, 3 mul, 4 dup, 5 swap, 6 drop,
// 7 jump-if-zero (operand = offset), 8 halt.
int code[600];
int code_len;
int stack[128];

void main() {
  int pc = 0;
  int sp = 0;
  int steps = 0;
  int result = 0;
  while (pc < code_len && steps < 6000) {
    int op = code[pc];
    steps = steps + 1;
    if (op == 0) {
      stack[sp] = code[pc + 1];
      sp = sp + 1;
      pc = pc + 2;
    } else { if (op == 1) {
      stack[sp - 2] = stack[sp - 2] + stack[sp - 1];
      sp = sp - 1;
      pc = pc + 1;
    } else { if (op == 2) {
      stack[sp - 2] = stack[sp - 2] - stack[sp - 1];
      sp = sp - 1;
      pc = pc + 1;
    } else { if (op == 3) {
      stack[sp - 2] = stack[sp - 2] * stack[sp - 1];
      sp = sp - 1;
      pc = pc + 1;
    } else { if (op == 4) {
      stack[sp] = stack[sp - 1];
      sp = sp + 1;
      pc = pc + 1;
    } else { if (op == 5) {
      int t = stack[sp - 1];
      stack[sp - 1] = stack[sp - 2];
      stack[sp - 2] = t;
      pc = pc + 1;
    } else { if (op == 6) {
      sp = sp - 1;
      pc = pc + 1;
    } else { if (op == 7) {
      if (stack[sp - 1] == 0) {
        pc = pc + code[pc + 1];
      } else {
        pc = pc + 2;
      }
      sp = sp - 1;
    } else {
      result = stack[sp - 1];
      pc = code_len;
    } } } } } } } }
    if (sp > 120) { sp = 120; }
    if (sp < 0) { sp = 0; }
  }
  out(result);
  out(steps);
}
"""

M88KSIM_SOURCE = """
// Tiny RISC simulator: 16 registers, synthetic trace of packed
// instructions (op, rd, rs1, rs2/imm).
int trace[2000];      // 500 instructions x 4 words
int ninstr;
int regs[16];

void main() {
  int executed = 0;
  int pc = 0;
  while (pc < ninstr && executed < 4000) {
    int base = pc * 4;
    int op = trace[base];
    int rd = trace[base + 1];
    int rs1 = trace[base + 2];
    int arg = trace[base + 3];
    executed = executed + 1;
    if (op == 0) {           // addi
      regs[rd] = regs[rs1] + arg;
      pc = pc + 1;
    } else { if (op == 1) {  // add
      regs[rd] = regs[rs1] + regs[arg & 15];
      pc = pc + 1;
    } else { if (op == 2) {  // mul
      regs[rd] = regs[rs1] * regs[arg & 15];
      pc = pc + 1;
    } else { if (op == 3) {  // and
      regs[rd] = regs[rs1] & regs[arg & 15];
      pc = pc + 1;
    } else { if (op == 4) {  // shift
      regs[rd] = regs[rs1] >> (arg & 7);
      pc = pc + 1;
    } else { if (op == 5) {  // beqz: forward branch
      if (regs[rs1] == 0) {
        pc = pc + (arg & 7) + 1;
      } else {
        pc = pc + 1;
      }
    } else {                 // xor
      regs[rd] = regs[rs1] ^ arg;
      pc = pc + 1;
    } } } } } }
    regs[0] = 0;             // hardwired zero
  }
  int cs = 0;
  int r;
  for (r = 0; r < 16; r = r + 1) {
    cs = cs + regs[r] * (r + 1);
  }
  out(cs);
  out(executed);
}
"""

VORTEX_SOURCE = """
// Object store: hashed insert / lookup / update over fixed-size
// records (id, field1, field2).
int ops[1500];        // 500 ops x 3 words: (kind, id, value)
int nops;
int table_id[1024];   // -1 = empty
int table_f1[1024];
int table_f2[1024];

void main() {
  int i;
  for (i = 0; i < 1024; i = i + 1) {
    table_id[i] = 0 - 1;
  }
  int hits = 0;
  int misses = 0;
  int stored = 0;
  for (i = 0; i < nops; i = i + 1) {
    int kind = ops[i * 3];
    int id = ops[i * 3 + 1];
    int value = ops[i * 3 + 2];
    int slot = (id * 7919) % 1024;
    if (slot < 0) { slot = slot + 1024; }
    int probes = 0;
    int found = 0 - 1;
    while (probes < 64) {
      if (table_id[slot] == id) {
        found = slot;
        probes = 64;
      } else {
        if (table_id[slot] < 0) {
          probes = 64;
        } else {
          slot = (slot + 1) % 1024;
          probes = probes + 1;
        }
      }
    }
    if (kind == 0) {          // insert / overwrite
      if (found < 0 && stored < 900) {
        table_id[slot] = id;
        table_f1[slot] = value;
        table_f2[slot] = 0;
        stored = stored + 1;
      } else {
        if (found >= 0) { table_f1[found] = value; }
      }
    } else { if (kind == 1) { // lookup
      if (found >= 0) {
        hits = hits + table_f1[found];
      } else {
        misses = misses + 1;
      }
    } else {                  // update
      if (found >= 0) {
        table_f2[found] = table_f2[found] + value;
      }
    } }
  }
  int cs = 0;
  for (i = 0; i < 1024; i = i + 1) {
    if (table_id[i] >= 0) {
      cs = cs + table_f1[i] + table_f2[i] * 3;
    }
  }
  out(cs);
  out(hits);
  out(misses);
}
"""

EQNTOTT_SOURCE = """
// Truth-table generation + insertion sort of minterms (eqntott's hot
// loop is a quadratic sort of PLA terms).
int terms[256];       // packed 8-bit input assignments that are true
int nvars;
int table[256];

void main() {
  int size = 1 << nvars;
  int count = 0;
  int a;
  // Evaluate the boolean function: majority(x0..x2) xor parity(x3..x5).
  for (a = 0; a < size; a = a + 1) {
    int maj = ((a & 1) + ((a >> 1) & 1) + ((a >> 2) & 1)) >= 2;
    int par = (((a >> 3) & 1) ^ ((a >> 4) & 1)) ^ ((a >> 5) & 1);
    if ((maj ^ par) == 1) {
      table[count] = a;
      count = count + 1;
    }
  }
  // Insertion sort by bit-population (ties by value), as a stand-in
  // for eqntott's term canonicalization.
  int i;
  for (i = 1; i < count; i = i + 1) {
    int key = table[i];
    int kp = ((key & 1) + ((key >> 1) & 1) + ((key >> 2) & 1)
              + ((key >> 3) & 1) + ((key >> 4) & 1) + ((key >> 5) & 1))
             * 256 + key;
    int j = i - 1;
    while (j >= 0) {
      int cur = table[j];
      int cp = ((cur & 1) + ((cur >> 1) & 1) + ((cur >> 2) & 1)
                + ((cur >> 3) & 1) + ((cur >> 4) & 1) + ((cur >> 5) & 1))
               * 256 + cur;
      if (cp > kp) {
        table[j + 1] = table[j];
        j = j - 1;
      } else {
        break;
      }
    }
    table[j + 1] = key;
  }
  int cs = 0;
  for (i = 0; i < count; i = i + 1) {
    cs = cs + table[i] * (i + 1);
  }
  out(count);
  out(cs);
}
"""

ALVINN_SOURCE = """
// ALVINN-style neural net: 96-input, 24-hidden, 8-output forward pass
// plus one backprop step on the output layer (dense float MACs).
float inputs[96];
float w1[2304];       // 96 x 24
float w2[192];        // 24 x 8
float target[8];
float hidden[24];
float outputs[8];

void main() {
  int h;
  for (h = 0; h < 24; h = h + 1) {
    float acc = 0.0;
    int i;
    for (i = 0; i < 96; i = i + 1) {
      acc = acc + inputs[i] * w1[i * 24 + h];
    }
    // Fast sigmoid-ish squashing: x / (1 + |x|).
    float ax = acc;
    if (ax < 0.0) { ax = 0.0 - ax; }
    hidden[h] = acc / (1.0 + ax);
  }
  int o;
  for (o = 0; o < 8; o = o + 1) {
    float acc = 0.0;
    for (h = 0; h < 24; h = h + 1) {
      acc = acc + hidden[h] * w2[h * 8 + o];
    }
    float ax = acc;
    if (ax < 0.0) { ax = 0.0 - ax; }
    outputs[o] = acc / (1.0 + ax);
  }
  // One delta-rule update of w2.
  float err = 0.0;
  for (o = 0; o < 8; o = o + 1) {
    float delta = target[o] - outputs[o];
    err = err + delta * delta;
    for (h = 0; h < 24; h = h + 1) {
      w2[h * 8 + o] = w2[h * 8 + o] + 0.05 * delta * hidden[h];
    }
  }
  float cs = 0.0;
  for (o = 0; o < 8; o = o + 1) {
    cs = cs + outputs[o] * (o + 1);
  }
  out(cs);
  out(err);
}
"""

ART_SOURCE = """
// Adaptive-resonance-style category search: match input vectors
// against prototype categories; commit/refine on resonance.
float patterns[640];  // 20 patterns x 32 features
int npatterns;
float protos[320];    // 10 categories x 32
float vigilance;
int assigned[20];

void main() {
  int p;
  int commits = 0;
  for (p = 0; p < npatterns; p = p + 1) {
    int best = 0 - 1;
    float best_score = 0.0 - 1000000.0;
    int c;
    for (c = 0; c < 10; c = c + 1) {
      float score = 0.0;
      int f;
      for (f = 0; f < 32; f = f + 1) {
        float d = patterns[p * 32 + f] - protos[c * 32 + f];
        if (d < 0.0) { d = 0.0 - d; }
        score = score - d;
      }
      if (score > best_score) {
        best_score = score;
        best = c;
      }
    }
    // Resonance test; refine the winner or fall back to category 9.
    if (best_score > 0.0 - vigilance) {
      int f;
      for (f = 0; f < 32; f = f + 1) {
        float mixed = protos[best * 32 + f] * 0.8
                      + patterns[p * 32 + f] * 0.2;
        protos[best * 32 + f] = mixed;
      }
      assigned[p] = best;
      commits = commits + 1;
    } else {
      assigned[p] = 9;
    }
  }
  int cs = 0;
  for (p = 0; p < npatterns; p = p + 1) {
    cs = cs + assigned[p] * (p + 1);
  }
  out(cs);
  out(commits);
}
"""


def _cc1_inputs(dataset: str) -> dict[str, list]:
    rng = rng_for("085.cc1", dataset)
    deep = dataset != "train"  # novel input nests parentheses deeply
    stream: list[int] = []
    while True:
        # Build one complete expression; stop before overflowing the
        # buffer so the evaluator never sees a truncated expression.
        expr: list[int] = []
        depth = 0
        terms = rng.randint(2, 6 if not deep else 10)
        for t in range(terms):
            if rng.randint(0, 99) < (25 if deep else 10) and depth < 4:
                expr.append(13)
                depth += 1
            for _ in range(rng.randint(1, 3)):
                expr.append(rng.randint(0, 9))
            while depth > 0 and rng.randint(0, 99) < 30:
                expr.append(14)
                depth -= 1
            if t != terms - 1:
                expr.append(rng.randint(10, 12))
        while depth > 0:
            expr.append(14)
            depth -= 1
        expr.append(15)
        if len(stream) + len(expr) > 1200:
            break
        stream.extend(expr)
    return {"stream": stream, "stream_len": [len(stream)]}


def _compress_inputs(dataset: str) -> dict[str, list]:
    rng = rng_for("129.compress", dataset)
    if dataset == "train":
        # Repetitive text-like data: dictionary hits dominate.
        data = []
        phrases = [[rng.randint(0, 25) for _ in range(rng.randint(3, 8))]
                   for _ in range(12)]
        while len(data) < 1200:
            data.extend(phrases[rng.randint(0, 11)])
    else:
        data = [rng.randint(0, 255) for _ in range(1200)]
    return {"input": data[:1400], "input_len": [min(len(data), 1400)]}


def _li_inputs(dataset: str) -> dict[str, list]:
    rng = rng_for("130.li", dataset)
    code: list[int] = []
    # A few arithmetic bodies ending with conditional back-jumps is
    # enough to look like list evaluation; halt at the end.
    for _ in range(36):
        code.extend([0, rng.randint(1, 9)])
        code.extend([0, rng.randint(1, 9)])
        code.append(rng.randint(1, 3))
        if rng.randint(0, 99) < (60 if dataset == "train" else 20):
            code.append(4)  # dup
            code.append(rng.randint(1, 3))
        code.append(6)  # drop
    code.extend([0, 42, 8])
    return {"code": code[:600], "code_len": [min(len(code), 600)]}


def _m88ksim_inputs(dataset: str) -> dict[str, list]:
    rng = rng_for("124.m88ksim", dataset)
    branchy = dataset != "train"
    trace: list[int] = []
    count = 480
    for _ in range(count):
        op = rng.randint(0, 6)
        if not branchy and op == 5 and rng.randint(0, 1):
            op = 1  # fewer branches in the train trace
        trace.extend([op, rng.randint(1, 15), rng.randint(0, 15),
                      rng.randint(0, 31)])
    return {"trace": trace, "ninstr": [count]}


def _vortex_inputs(dataset: str) -> dict[str, list]:
    rng = rng_for("147.vortex", dataset)
    nops = 480
    insert_pct = 50 if dataset == "train" else 20
    ops: list[int] = []
    for _ in range(nops):
        roll = rng.randint(0, 99)
        if roll < insert_pct:
            kind = 0
        elif roll < 85:
            kind = 1
        else:
            kind = 2
        ops.extend([kind, rng.randint(0, 700), rng.randint(1, 99)])
    return {"ops": ops, "nops": [nops]}


def _eqntott_inputs(dataset: str) -> dict[str, list]:
    nvars = 6 if dataset == "train" else 7
    return {"nvars": [min(nvars, 7)]}


def _alvinn_inputs(dataset: str) -> dict[str, list]:
    rng = rng_for("052.alvinn", dataset)
    spread = 1.0 if dataset == "train" else 3.0
    return {
        "inputs": [rng.uniform(-spread, spread) for _ in range(96)],
        "w1": [rng.uniform(-0.5, 0.5) for _ in range(2304)],
        "w2": [rng.uniform(-0.5, 0.5) for _ in range(192)],
        "target": [rng.uniform(0, 1) for _ in range(8)],
    }


def _art_inputs(dataset: str) -> dict[str, list]:
    rng = rng_for("art", dataset)
    vig = 8.0 if dataset == "train" else 2.0
    return {
        "patterns": [rng.uniform(0, 1) for _ in range(640)],
        "npatterns": [14],
        "protos": [rng.uniform(0, 1) for _ in range(320)],
        "vigilance": [vig],
    }


register(Benchmark(
    name="085.cc1", suite="spec92", category="int",
    description="Compiler-like tokenizer + expression evaluator",
    source=CC1_SOURCE, make_inputs=_cc1_inputs,
))
register(Benchmark(
    name="129.compress", suite="spec95", category="int",
    description="LZW-style in-memory compressor with hash table",
    source=COMPRESS_SOURCE, make_inputs=_compress_inputs,
))
register(Benchmark(
    name="130.li", suite="spec95", category="int",
    description="Stack-machine bytecode interpreter (Lisp-ish)",
    source=LI_SOURCE, make_inputs=_li_inputs,
))
register(Benchmark(
    name="124.m88ksim", suite="spec95", category="int",
    description="Tiny RISC ISA simulator over a synthetic trace",
    source=M88KSIM_SOURCE, make_inputs=_m88ksim_inputs,
))
register(Benchmark(
    name="147.vortex", suite="spec95", category="int",
    description="Object-store insert/lookup/update over hashed records",
    source=VORTEX_SOURCE, make_inputs=_vortex_inputs,
))
register(Benchmark(
    name="023.eqntott", suite="spec92", category="int",
    description="Truth-table generation + minterm sort",
    source=EQNTOTT_SOURCE, make_inputs=_eqntott_inputs,
))
register(Benchmark(
    name="052.alvinn", suite="spec92", category="int",
    description="ALVINN neural net forward pass + delta-rule update",
    source=ALVINN_SOURCE, make_inputs=_alvinn_inputs,
))
register(Benchmark(
    name="art", suite="misc", category="int",
    description="Adaptive-resonance category matching",
    source=ART_SOURCE, make_inputs=_art_inputs,
))
