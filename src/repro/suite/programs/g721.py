"""g721encode / g721decode — CCITT G.721 style voice codec.

Mediabench's g721 pair, re-implemented as the core ADPCM loop of the
standard: adaptive quantization against a table, pole/zero predictor
update, and logarithmic step adaptation.  Heavier per-sample arithmetic
than the IMA codec (multiplies in the predictor) with table-driven
branches.
"""

from __future__ import annotations

from repro.suite.datagen import rng_for, smooth_samples
from repro.suite.registry import Benchmark, register

_COMMON = """
int qtab[7] = {124, 262, 401, 553, 725, 936, 1232};
int witab[8] = {-12, 18, 41, 64, 112, 198, 355, 1122};
int fitab[8] = {0, 0, 0, 128, 256, 512, 896, 1536};
"""

ENCODER_SOURCE = _COMMON + """
int input[900];
int input_len;
int output[900];

void main() {
  int yl = 34816;        // slow step state (scaled)
  int sr0 = 0;           // last reconstructed samples
  int sr1 = 0;
  int a1 = 0;            // second-order predictor coefficients
  int a2 = 0;
  int i;
  for (i = 0; i < input_len; i = i + 1) {
    int se = (sr0 * a1 + sr1 * a2) >> 14;     // signal estimate
    int d = input[i] - se;
    int y = yl >> 11;                          // current step size
    if (y < 32) { y = 32; }
    int dq = d;
    int sign = 0;
    if (dq < 0) { sign = 1; dq = 0 - dq; }
    // Quantize |d|/y against the table.
    int ratio = (dq * 64) / y;
    int code = 0;
    int j;
    for (j = 0; j < 7; j = j + 1) {
      if (ratio >= qtab[j]) { code = j + 1; }
    }
    // Inverse quantize for the local reconstruction.
    int dqr = (fitab[code] * y) >> 6;
    if (sign == 1) { dqr = 0 - dqr; }
    int sr = se + dqr;
    if (sr > 32767) { sr = 32767; }
    if (sr < -32768) { sr = -32768; }
    // Predictor adaptation (simplified pole update with leakage).
    int da1 = 0;
    if (dqr > 0 && sr1 > 0) { da1 = 48; }
    if (dqr > 0 && sr1 < 0) { da1 = -48; }
    if (dqr < 0 && sr1 > 0) { da1 = -48; }
    if (dqr < 0 && sr1 < 0) { da1 = 48; }
    a1 = a1 - (a1 >> 8) + da1;
    a2 = a2 - (a2 >> 9);
    if (a1 > 12288) { a1 = 12288; }
    if (a1 < -12288) { a1 = -12288; }
    sr1 = sr0;
    sr0 = sr;
    // Step-size adaptation.
    yl = yl - (yl >> 6) + witab[code];
    if (yl < 2048) { yl = 2048; }
    if (yl > 262143) { yl = 262143; }
    int sc = code;
    if (sign == 1) { sc = code + 8; }
    output[i] = sc;
  }
  int cs = 0;
  for (i = 0; i < input_len; i = i + 1) {
    cs = cs + output[i] * (i % 9 + 1);
  }
  out(cs);
  out(sr0);
}
"""

DECODER_SOURCE = _COMMON + """
int input[900];
int input_len;
int output[900];

void main() {
  int yl = 34816;
  int sr0 = 0;
  int sr1 = 0;
  int a1 = 0;
  int a2 = 0;
  int i;
  for (i = 0; i < input_len; i = i + 1) {
    int sc = input[i];
    int sign = 0;
    int code = sc;
    if (sc >= 8) { sign = 1; code = sc - 8; }
    int se = (sr0 * a1 + sr1 * a2) >> 14;
    int y = yl >> 11;
    if (y < 32) { y = 32; }
    int dqr = (fitab[code] * y) >> 6;
    if (sign == 1) { dqr = 0 - dqr; }
    int sr = se + dqr;
    if (sr > 32767) { sr = 32767; }
    if (sr < -32768) { sr = -32768; }
    int da1 = 0;
    if (dqr > 0 && sr1 > 0) { da1 = 48; }
    if (dqr > 0 && sr1 < 0) { da1 = -48; }
    if (dqr < 0 && sr1 > 0) { da1 = -48; }
    if (dqr < 0 && sr1 < 0) { da1 = 48; }
    a1 = a1 - (a1 >> 8) + da1;
    a2 = a2 - (a2 >> 9);
    if (a1 > 12288) { a1 = 12288; }
    if (a1 < -12288) { a1 = -12288; }
    sr1 = sr0;
    sr0 = sr;
    yl = yl - (yl >> 6) + witab[code];
    if (yl < 2048) { yl = 2048; }
    if (yl > 262143) { yl = 262143; }
    output[i] = sr;
  }
  int cs = 0;
  for (i = 0; i < input_len; i = i + 1) {
    cs = cs + output[i] * (i % 9 + 1);
  }
  out(cs);
  out(sr0);
}
"""


def _samples(dataset: str, name: str) -> list[int]:
    rng = rng_for(name, dataset)
    amplitude = 150 if dataset == "train" else 700
    return smooth_samples(rng, 700, amplitude=amplitude)


def _encode(samples: list[int]) -> list[int]:
    qtab = (124, 262, 401, 553, 725, 936, 1232)
    witab = (-12, 18, 41, 64, 112, 198, 355, 1122)
    fitab = (0, 0, 0, 128, 256, 512, 896, 1536)
    yl, sr0, sr1, a1, a2 = 34816, 0, 0, 0, 0
    codes = []
    for sample in samples:
        se = (sr0 * a1 + sr1 * a2) >> 14
        d = sample - se
        y = max(32, yl >> 11)
        dq = d
        sign = 0
        if dq < 0:
            sign = 1
            dq = -dq
        ratio = (dq * 64) // y
        code = 0
        for j in range(7):
            if ratio >= qtab[j]:
                code = j + 1
        dqr = (fitab[code] * y) >> 6
        if sign:
            dqr = -dqr
        sr = max(-32768, min(32767, se + dqr))
        da1 = 0
        if dqr > 0 and sr1 > 0:
            da1 = 48
        if dqr > 0 and sr1 < 0:
            da1 = -48
        if dqr < 0 and sr1 > 0:
            da1 = -48
        if dqr < 0 and sr1 < 0:
            da1 = 48
        a1 = max(-12288, min(12288, a1 - (a1 >> 8) + da1))
        a2 = a2 - (a2 >> 9)
        sr1, sr0 = sr0, sr
        yl = max(2048, min(262143, yl - (yl >> 6) + witab[code]))
        codes.append(code + 8 if sign else code)
    return codes


def _encoder_inputs(dataset: str) -> dict[str, list]:
    data = _samples(dataset, "g721encode")
    return {"input": data, "input_len": [len(data)]}


def _decoder_inputs(dataset: str) -> dict[str, list]:
    codes = _encode(_samples(dataset, "g721decode"))
    return {"input": codes, "input_len": [len(codes)]}


register(Benchmark(
    name="g721encode",
    suite="mediabench",
    category="int",
    description="G.721-style ADPCM voice encoder",
    source=ENCODER_SOURCE,
    make_inputs=_encoder_inputs,
))

register(Benchmark(
    name="g721decode",
    suite="mediabench",
    category="int",
    description="G.721-style ADPCM voice decoder",
    source=DECODER_SOURCE,
    make_inputs=_decoder_inputs,
))
