"""rawcaudio / rawdaudio — IMA ADPCM audio encoder and decoder.

Mediabench's adpcm benchmark pair.  The classic step-size-table
quantizer: per-sample branchy arithmetic with a serial dependence on
the predictor state — the encoder's nested sign/magnitude conditionals
are prime if-conversion candidates.
"""

from __future__ import annotations

from repro.suite.datagen import rng_for, smooth_samples
from repro.suite.registry import Benchmark, register

_STEP_TABLE = (
    7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31, 34, 37,
    41, 45, 50, 55, 60, 66, 73, 80, 88, 97, 107, 118, 130, 143, 157, 173,
    190, 209, 230, 253, 279, 307, 337, 371, 408, 449, 494, 544, 598, 658,
    724, 796, 876, 963, 1060, 1166, 1282, 1411, 1552,
)

_INDEX_TABLE = (-1, -1, -1, -1, 2, 4, 6, 8)

_COMMON = f"""
int step_table[{len(_STEP_TABLE)}] = {{{', '.join(map(str, _STEP_TABLE))}}};
int index_table[8] = {{{', '.join(map(str, _INDEX_TABLE))}}};
"""

ENCODER_SOURCE = _COMMON + """
int input[1400];
int input_len;
int output[1400];

void main() {
  int valpred = 0;
  int index = 0;
  int i;
  for (i = 0; i < input_len; i = i + 1) {
    int step = step_table[index];
    int diff = input[i] - valpred;
    int sign = 0;
    if (diff < 0) {
      sign = 8;
      diff = 0 - diff;
    }
    int delta = 0;
    int vpdiff = step >> 3;
    if (diff >= step) {
      delta = 4;
      diff = diff - step;
      vpdiff = vpdiff + step;
    }
    step = step >> 1;
    if (diff >= step) {
      delta = delta | 2;
      diff = diff - step;
      vpdiff = vpdiff + step;
    }
    step = step >> 1;
    if (diff >= step) {
      delta = delta | 1;
      vpdiff = vpdiff + step;
    }
    if (sign == 8) {
      valpred = valpred - vpdiff;
    } else {
      valpred = valpred + vpdiff;
    }
    if (valpred > 32767) { valpred = 32767; }
    if (valpred < -32768) { valpred = -32768; }
    delta = delta | sign;
    index = index + index_table[delta & 7];
    if (index < 0) { index = 0; }
    if (index > 56) { index = 56; }
    output[i] = delta;
  }
  int cs = 0;
  for (i = 0; i < input_len; i = i + 1) {
    cs = cs + output[i] * (i % 7 + 1);
  }
  out(cs);
  out(valpred);
}
"""

DECODER_SOURCE = _COMMON + """
int input[1400];
int input_len;
int output[1400];

void main() {
  int valpred = 0;
  int index = 0;
  int i;
  for (i = 0; i < input_len; i = i + 1) {
    int delta = input[i];
    int step = step_table[index];
    int vpdiff = step >> 3;
    if ((delta & 4) != 0) { vpdiff = vpdiff + step; }
    if ((delta & 2) != 0) { vpdiff = vpdiff + (step >> 1); }
    if ((delta & 1) != 0) { vpdiff = vpdiff + (step >> 2); }
    if ((delta & 8) != 0) {
      valpred = valpred - vpdiff;
    } else {
      valpred = valpred + vpdiff;
    }
    if (valpred > 32767) { valpred = 32767; }
    if (valpred < -32768) { valpred = -32768; }
    index = index + index_table[delta & 7];
    if (index < 0) { index = 0; }
    if (index > 56) { index = 56; }
    output[i] = valpred;
  }
  int cs = 0;
  for (i = 0; i < input_len; i = i + 1) {
    cs = cs + output[i] * (i % 5 + 1);
  }
  out(cs);
  out(valpred);
}
"""


def _samples(dataset: str, name: str) -> list[int]:
    rng = rng_for(name, dataset)
    # Train: gentle waveform; novel: loud, fast-swinging signal — the
    # quantizer saturates down different conditional paths.
    amplitude = 120 if dataset == "train" else 900
    return smooth_samples(rng, 1100, amplitude=amplitude)


def _encode(samples: list[int]) -> list[int]:
    valpred, index = 0, 0
    deltas = []
    for sample in samples:
        step = _STEP_TABLE[index]
        diff = sample - valpred
        sign = 8 if diff < 0 else 0
        if diff < 0:
            diff = -diff
        delta = 0
        vpdiff = step >> 3
        if diff >= step:
            delta = 4
            diff -= step
            vpdiff += step
        step >>= 1
        if diff >= step:
            delta |= 2
            diff -= step
            vpdiff += step
        step >>= 1
        if diff >= step:
            delta |= 1
            vpdiff += step
        valpred = valpred - vpdiff if sign else valpred + vpdiff
        valpred = max(-32768, min(32767, valpred))
        delta |= sign
        index += _INDEX_TABLE[delta & 7]
        index = max(0, min(56, index))
        deltas.append(delta)
    return deltas


def _encoder_inputs(dataset: str) -> dict[str, list]:
    data = _samples(dataset, "rawcaudio")
    return {"input": data, "input_len": [len(data)]}


def _decoder_inputs(dataset: str) -> dict[str, list]:
    deltas = _encode(_samples(dataset, "rawdaudio"))
    return {"input": deltas, "input_len": [len(deltas)]}


register(Benchmark(
    name="rawcaudio",
    suite="mediabench",
    category="int",
    description="IMA ADPCM encoder (adaptive differential PCM)",
    source=ENCODER_SOURCE,
    make_inputs=_encoder_inputs,
))

register(Benchmark(
    name="rawdaudio",
    suite="mediabench",
    category="int",
    description="IMA ADPCM decoder",
    source=DECODER_SOURCE,
    make_inputs=_decoder_inputs,
))
