"""codrle4 / decodrle4 — RLE type 4 encoder and decoder.

The paper's "miscellaneous" benchmarks [4]: a run-length codec whose
hot loops are short, branchy and data-dependent — exactly the control
flow hyperblock formation targets.
"""

from __future__ import annotations

from repro.suite.datagen import rng_for, runlength_data
from repro.suite.registry import Benchmark, register

ENCODER_SOURCE = """
// RLE type 4 encoder: runs of >2 identical symbols become
// (256+len, symbol) pairs; shorter runs are copied literally.
int input[2048];
int input_len;
int output[4096];

void main() {
  int i = 0;
  int outp = 0;
  while (i < input_len) {
    int v = input[i];
    int run = 1;
    while (i + run < input_len && input[i + run] == v && run < 127) {
      run = run + 1;
    }
    if (run > 2) {
      output[outp] = 256 + run;
      output[outp + 1] = v;
      outp = outp + 2;
    } else {
      int k;
      for (k = 0; k < run; k = k + 1) {
        output[outp] = v;
        outp = outp + 1;
      }
    }
    i = i + run;
  }
  out(outp);
  int cs = 0;
  int j;
  for (j = 0; j < outp; j = j + 1) {
    cs = cs + output[j] * (j % 17 + 1);
  }
  out(cs);
}
"""

DECODER_SOURCE = """
// RLE type 4 decoder: expands (256+len, symbol) pairs.
int input[4096];
int input_len;
int output[4096];

void main() {
  int i = 0;
  int outp = 0;
  while (i < input_len) {
    int v = input[i];
    if (v >= 256) {
      int run = v - 256;
      int sym = input[i + 1];
      int k;
      for (k = 0; k < run; k = k + 1) {
        output[outp] = sym;
        outp = outp + 1;
      }
      i = i + 2;
    } else {
      output[outp] = v;
      outp = outp + 1;
      i = i + 1;
    }
  }
  out(outp);
  int cs = 0;
  int j;
  for (j = 0; j < outp; j = j + 1) {
    cs = cs + output[j] * (j % 13 + 1);
  }
  out(cs);
}
"""


def _raw_stream(dataset: str, name: str) -> list[int]:
    rng = rng_for(name, dataset)
    # Train data has long runs; novel data is choppier, flipping the
    # branch balance between the literal and run-encoded cases.
    bias = 9 if dataset == "train" else 3
    return runlength_data(rng, 700, run_bias=bias)


def _encode(data: list[int]) -> list[int]:
    encoded: list[int] = []
    i = 0
    while i < len(data):
        value = data[i]
        run = 1
        while (i + run < len(data) and data[i + run] == value
               and run < 127):
            run += 1
        if run > 2:
            encoded.extend([256 + run, value])
        else:
            encoded.extend([value] * run)
        i += run
    return encoded


def _encoder_inputs(dataset: str) -> dict[str, list]:
    data = _raw_stream(dataset, "codrle4")
    return {"input": data, "input_len": [len(data)]}


def _decoder_inputs(dataset: str) -> dict[str, list]:
    encoded = _encode(_raw_stream(dataset, "decodrle4"))
    return {"input": encoded, "input_len": [len(encoded)]}


register(Benchmark(
    name="codrle4",
    suite="misc",
    category="int",
    description="RLE type 4 encoder (Bourgin's lossless codecs)",
    source=ENCODER_SOURCE,
    make_inputs=_encoder_inputs,
))

register(Benchmark(
    name="decodrle4",
    suite="misc",
    category="int",
    description="RLE type 4 decoder (Bourgin's lossless codecs)",
    source=DECODER_SOURCE,
    make_inputs=_decoder_inputs,
))
