"""SPEC95-era floating-point kernels (rest of the prefetch training set)."""

from __future__ import annotations

from repro.suite.datagen import rng_for
from repro.suite.registry import Benchmark, register

TURB3D_SOURCE = """
// Turbulence-style butterfly passes: strided FFT-like sweeps over a
// 2048-point complex signal (turb3d is FFT-dominated).
float re[1024];
float im[1024];

void main() {
  int span = 512;
  while (span >= 1) {
    int start;
    for (start = 0; start < 1024 - span; start = start + span * 2) {
      int k;
      for (k = 0; k < span; k = k + 1) {
        int a = start + k;
        int b = a + span;
        float tr = re[a] - re[b];
        float ti = im[a] - im[b];
        re[a] = re[a] + re[b];
        im[a] = im[a] + im[b];
        // twiddle approximated by a k-dependent rotation-ish mix
        float w = 1.0 - (k * 2.0) / span;
        re[b] = tr * w - ti * (1.0 - w);
        im[b] = ti * w + tr * (1.0 - w);
      }
    }
    span = span / 2;
  }
  float cs = 0.0;
  int i;
  for (i = 0; i < 1024; i = i + 31) {
    cs = cs + re[i] + im[i] * 0.5;
  }
  out(cs);
}
"""

WAVE5_SOURCE = """
// Particle-in-cell push: gather field at particle cells, advance
// positions/velocities, scatter charge (wave5's hot loops).
float field[2048];
float px[1500];
float pv[1500];
int nparticles;
float charge[2048];

void main() {
  int p;
  for (p = 0; p < nparticles; p = p + 1) {
    float pos = px[p];
    int cell = pos;
    if (cell < 0) { cell = 0; }
    if (cell > 2046) { cell = 2046; }
    float frac = pos - cell;
    float e = field[cell] * (1.0 - frac) + field[cell + 1] * frac;
    float vel = pv[p] + e * 0.01;
    float npos = pos + vel;
    if (npos < 0.0) { npos = npos + 2047.0; }
    if (npos >= 2047.0) { npos = npos - 2047.0; }
    pv[p] = vel;
    px[p] = npos;
    int ncell = npos;
    charge[ncell] = charge[ncell] + (1.0 - (npos - ncell));
    charge[ncell + 1] = charge[ncell + 1] + (npos - ncell);
  }
  float cs = 0.0;
  int i;
  for (i = 0; i < 2048; i = i + 17) {
    cs = cs + charge[i];
  }
  out(cs);
}
"""

MGRID_SOURCE = """
// Multigrid V-cycle ingredients: 3-point restriction, relaxation and
// prolongation on a 1-D hierarchy (mgrid's resid/psinv shapes).
float fine[2048];
float coarse[1024];
float rhs[2048];

void main() {
  int sweep;
  for (sweep = 0; sweep < 2; sweep = sweep + 1) {
    int i;
    // Relax on the fine grid.
    for (i = 1; i < 2047; i = i + 1) {
      fine[i] = (fine[i - 1] + fine[i + 1] + rhs[i]) * 0.3333;
    }
    // Restrict residual to the coarse grid.
    for (i = 1; i < 1023; i = i + 1) {
      coarse[i] = 0.25 * (fine[2 * i - 1] + 2.0 * fine[2 * i]
                          + fine[2 * i + 1]);
    }
    // Prolongate the correction back.
    for (i = 1; i < 1023; i = i + 1) {
      fine[2 * i] = fine[2 * i] + coarse[i] * 0.5;
      fine[2 * i + 1] = fine[2 * i + 1]
                        + (coarse[i] + coarse[i + 1]) * 0.25;
    }
  }
  float cs = 0.0;
  int k;
  for (k = 0; k < 2048; k = k + 23) {
    cs = cs + fine[k];
  }
  out(cs);
}
"""

APSI_SOURCE = """
// Mesoscale-weather column physics: vertical diffusion solve via the
// Thomas algorithm per column (apsi's implicit stepping).
float temp[2048];     // 32 columns x 64 levels
float kdiff[2048];
float a_c[64];
float b_c[64];
float c_c[64];
float d_c[64];

void main() {
  int col;
  for (col = 0; col < 32; col = col + 1) {
    int base = col * 64;
    int k;
    // Build tridiagonal system from diffusivities.
    for (k = 0; k < 64; k = k + 1) {
      float kd = kdiff[base + k];
      a_c[k] = 0.0 - kd;
      c_c[k] = 0.0 - kd;
      b_c[k] = 1.0 + 2.0 * kd;
      d_c[k] = temp[base + k];
    }
    // Thomas forward sweep.
    for (k = 1; k < 64; k = k + 1) {
      float m = a_c[k] / b_c[k - 1];
      b_c[k] = b_c[k] - m * c_c[k - 1];
      d_c[k] = d_c[k] - m * d_c[k - 1];
    }
    // Back substitution.
    temp[base + 63] = d_c[63] / b_c[63];
    for (k = 62; k >= 0; k = k - 1) {
      temp[base + k] = (d_c[k] - c_c[k] * temp[base + k + 1]) / b_c[k];
    }
  }
  float cs = 0.0;
  int i;
  for (i = 0; i < 2048; i = i + 19) {
    cs = cs + temp[i];
  }
  out(cs);
}
"""


def _float_inputs(name: str, dataset: str,
                  arrays: dict[str, tuple[int, float, float]]) -> dict:
    rng = rng_for(name, dataset)
    result = {}
    for arr, (size, low, high) in arrays.items():
        result[arr] = [rng.uniform(low, high) for _ in range(size)]
    return result


def _turb3d_inputs(dataset: str) -> dict[str, list]:
    spread = 1.0 if dataset == "train" else 5.0
    return _float_inputs("125.turb3d", dataset,
                         {"re": (1024, -spread, spread),
                          "im": (1024, -spread, spread)})


def _wave5_inputs(dataset: str) -> dict[str, list]:
    rng = rng_for("146.wave5", dataset)
    clustered = dataset != "train"
    if clustered:
        px = [rng.uniform(0, 200) for _ in range(1500)]
    else:
        px = [rng.uniform(0, 2046) for _ in range(1500)]
    return {
        "field": [rng.uniform(-1, 1) for _ in range(2048)],
        "px": px,
        "pv": [rng.uniform(-0.5, 0.5) for _ in range(1500)],
        "nparticles": [1400],
    }


def _mgrid_inputs(dataset: str) -> dict[str, list]:
    spread = 1.0 if dataset == "train" else 10.0
    return _float_inputs("107.mgrid", dataset,
                         {"fine": (2048, -spread, spread),
                          "rhs": (2048, -1.0, 1.0)})


def _apsi_inputs(dataset: str) -> dict[str, list]:
    rng = rng_for("141.apsi", dataset)
    diffusive = 0.2 if dataset == "train" else 0.45
    return {
        "temp": [280.0 + rng.uniform(-20, 20) for _ in range(2048)],
        "kdiff": [rng.uniform(0.01, diffusive) for _ in range(2048)],
    }


register(Benchmark(
    name="125.turb3d", suite="spec95", category="fp",
    description="FFT-style strided butterfly sweeps",
    source=TURB3D_SOURCE, make_inputs=_turb3d_inputs,
))
register(Benchmark(
    name="146.wave5", suite="spec95", category="fp",
    description="Particle-in-cell gather/push/scatter",
    source=WAVE5_SOURCE, make_inputs=_wave5_inputs,
))
register(Benchmark(
    name="107.mgrid", suite="spec95", category="fp",
    description="Multigrid relax / restrict / prolongate sweeps",
    source=MGRID_SOURCE, make_inputs=_mgrid_inputs,
))
register(Benchmark(
    name="141.apsi", suite="spec95", category="fp",
    description="Per-column tridiagonal diffusion solve (Thomas)",
    source=APSI_SOURCE, make_inputs=_apsi_inputs,
))
