"""Fuzzer-promoted and adversarial benchmarks.

The actual programs live in ``repro/suite/promoted_programs.json``
(committed package data written by ``repro suite promote``); this
module only folds them into the registry alongside the hand-written
suites.  See :mod:`repro.suite.promoted`.
"""

from repro.suite.promoted import register_promoted

register_promoted()
