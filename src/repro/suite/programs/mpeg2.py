"""mpeg2dec — MPEG-2 style video decoder kernel.

Mediabench's lossy video decompressor, reduced to its two hot loops:
motion compensation (predict each macroblock pixel from a reference
frame with half-pel averaging and saturating residual add) and the
block-edge smoothing filter.  Mixed regular/irregular access with
clip branches on every pixel.
"""

from __future__ import annotations

from repro.suite.datagen import rng_for
from repro.suite.registry import Benchmark, register

SOURCE = """
int reference[1600];   // 40x40 reference frame
int residual[1024];    // 32x32 residual
int mvx[16];           // per-8x8-block motion vectors
int mvy[16];
int halfpel[16];       // 1 when the vector has a half-pel component
int frame[1024];       // 32x32 output
int width;

void main() {
  int by;
  int bx;
  for (by = 0; by < 4; by = by + 1) {
    for (bx = 0; bx < 4; bx = bx + 1) {
      int block = by * 4 + bx;
      int dx = mvx[block];
      int dy = mvy[block];
      int y;
      for (y = 0; y < 8; y = y + 1) {
        int x;
        for (x = 0; x < 8; x = x + 1) {
          int sy = by * 8 + y + dy;
          int sx = bx * 8 + x + dx;
          int pred;
          if (halfpel[block] == 1) {
            pred = (reference[sy * 40 + sx]
                    + reference[sy * 40 + sx + 1] + 1) >> 1;
          } else {
            pred = reference[sy * 40 + sx];
          }
          int pixel = pred + residual[(by * 8 + y) * 32 + (bx * 8 + x)];
          if (pixel < 0) { pixel = 0; }
          if (pixel > 255) { pixel = 255; }
          frame[(by * 8 + y) * 32 + (bx * 8 + x)] = pixel;
        }
      }
    }
  }
  // Deblocking: smooth vertical block edges where the step is small.
  int row;
  for (row = 0; row < 32; row = row + 1) {
    int edge;
    for (edge = 1; edge < 4; edge = edge + 1) {
      int col = edge * 8;
      int left = frame[row * 32 + col - 1];
      int right = frame[row * 32 + col];
      int step = right - left;
      if (step < 0) { step = 0 - step; }
      if (step < 16) {
        frame[row * 32 + col - 1] = left + ((right - left) >> 2);
        frame[row * 32 + col] = right - ((right - left) >> 2);
      }
    }
  }
  int cs = 0;
  int i;
  for (i = 0; i < 1024; i = i + 1) {
    cs = cs + frame[i] * (i % 29 + 1);
  }
  out(cs);
}
"""


def _inputs(dataset: str) -> dict[str, list]:
    rng = rng_for("mpeg2dec", dataset)
    reference = [rng.randint(0, 255) for _ in range(1600)]
    jitter = 10 if dataset == "train" else 60
    residual = [rng.randint(-jitter, jitter) for _ in range(1024)]
    # Motion vectors stay inside the 40x40 reference for any block.
    mvx = [rng.randint(0, 6) for _ in range(16)]
    mvy = [rng.randint(0, 6) for _ in range(16)]
    half_fraction = 30 if dataset == "train" else 70
    halfpel = [1 if rng.randint(0, 99) < half_fraction else 0
               for _ in range(16)]
    return {
        "reference": reference,
        "residual": residual,
        "mvx": mvx,
        "mvy": mvy,
        "halfpel": halfpel,
        "width": [32],
    }


register(Benchmark(
    name="mpeg2dec",
    suite="mediabench",
    category="int",
    description="MPEG-2 style decoder: motion compensation + deblocking",
    source=SOURCE,
    make_inputs=_inputs,
))
