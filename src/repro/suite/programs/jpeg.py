"""djpeg / 132.ijpeg — JPEG-style DCT codecs.

``djpeg`` (Mediabench) decompresses: dequantize + separable 8x8
inverse-DCT + level shift with saturation.  ``132.ijpeg`` (SPEC95)
compresses: forward DCT + quantization with zero-run statistics.  Both
are integer implementations with fixed-point constants — loop-heavy
with saturation branches, plus long regular array streams the memory
system sees.
"""

from __future__ import annotations

from repro.suite.datagen import rng_for
from repro.suite.registry import Benchmark, register

_QUANT = (16, 11, 10, 16, 24, 40, 51, 61)

_COMMON = f"""
int quant[8] = {{{', '.join(map(str, _QUANT))}}};
// 8-point DCT-II basis, scaled by 256 (fixed point).
int basis[64] = {{
  256, 256, 256, 256, 256, 256, 256, 256,
  355, 301, 201, 71, -71, -201, -301, -355,
  334, 139, -139, -334, -334, -139, 139, 334,
  301, -71, -355, -201, 201, 355, 71, -301,
  256, -256, -256, 256, 256, -256, -256, 256,
  201, -355, 71, 301, -301, -71, 355, -201,
  139, -334, 334, -139, -139, 334, -334, 139,
  71, -201, 301, -355, 355, -301, 201, -71
}};
"""

DJPEG_SOURCE = _COMMON + """
int coeffs[1024];    // 16 blocks of 8x8 quantized coefficients
int nblocks;
int pixels[1024];
int tmp[64];

void main() {
  int b;
  for (b = 0; b < nblocks; b = b + 1) {
    int base = b * 64;
    int r;
    int c;
    // Dequantize + column IDCT into tmp.
    for (c = 0; c < 8; c = c + 1) {
      for (r = 0; r < 8; r = r + 1) {
        int acc = 0;
        int k;
        for (k = 0; k < 8; k = k + 1) {
          int coef = coeffs[base + k * 8 + c] * quant[k];
          acc = acc + coef * basis[k * 8 + r];
        }
        tmp[r * 8 + c] = acc >> 8;
      }
    }
    // Row IDCT + level shift + saturate.
    for (r = 0; r < 8; r = r + 1) {
      for (c = 0; c < 8; c = c + 1) {
        int acc = 0;
        int k;
        for (k = 0; k < 8; k = k + 1) {
          acc = acc + tmp[r * 8 + k] * basis[k * 8 + c];
        }
        int pixel = (acc >> 16) + 128;
        if (pixel < 0) { pixel = 0; }
        if (pixel > 255) { pixel = 255; }
        pixels[base + r * 8 + c] = pixel;
      }
    }
  }
  int cs = 0;
  int i;
  for (i = 0; i < nblocks * 64; i = i + 1) {
    cs = cs + pixels[i] * (i % 19 + 1);
  }
  out(cs);
}
"""

IJPEG_SOURCE = _COMMON + """
int pixels[1024];
int nblocks;
int coeffs[1024];
int tmp[64];

void main() {
  int zeros = 0;
  int b;
  for (b = 0; b < nblocks; b = b + 1) {
    int base = b * 64;
    int r;
    int c;
    // Column FDCT (basis is orthogonal so transpose = forward).
    for (c = 0; c < 8; c = c + 1) {
      for (r = 0; r < 8; r = r + 1) {
        int acc = 0;
        int k;
        for (k = 0; k < 8; k = k + 1) {
          acc = acc + (pixels[base + k * 8 + c] - 128) * basis[r * 8 + k];
        }
        tmp[r * 8 + c] = acc >> 8;
      }
    }
    // Row FDCT + quantize; count zero coefficients (entropy proxy).
    for (r = 0; r < 8; r = r + 1) {
      for (c = 0; c < 8; c = c + 1) {
        int acc = 0;
        int k;
        for (k = 0; k < 8; k = k + 1) {
          acc = acc + tmp[r * 8 + k] * basis[c * 8 + k];
        }
        int q = quant[r] * 4;
        int coef = (acc >> 8) / q;
        coeffs[base + r * 8 + c] = coef;
        if (coef == 0) { zeros = zeros + 1; }
      }
    }
  }
  int cs = 0;
  int i;
  for (i = 0; i < nblocks * 64; i = i + 1) {
    cs = cs + coeffs[i] * (i % 23 + 1);
  }
  out(cs);
  out(zeros);
}
"""


def _djpeg_inputs(dataset: str) -> dict[str, list]:
    rng = rng_for("djpeg", dataset)
    nblocks = 5
    coeffs = []
    sparsity = 60 if dataset == "train" else 20
    for _ in range(nblocks * 64):
        if rng.randint(0, 99) < sparsity:
            coeffs.append(0)
        else:
            coeffs.append(rng.randint(-30, 30))
    return {"coeffs": coeffs, "nblocks": [nblocks]}


def _ijpeg_inputs(dataset: str) -> dict[str, list]:
    rng = rng_for("132.ijpeg", dataset)
    nblocks = 5
    pixels = []
    value = 128
    jitter = 12 if dataset == "train" else 70
    for _ in range(nblocks * 64):
        value += rng.randint(-jitter, jitter)
        value = max(0, min(255, value))
        pixels.append(value)
    return {"pixels": pixels, "nblocks": [nblocks]}


register(Benchmark(
    name="djpeg",
    suite="mediabench",
    category="int",
    description="JPEG-style decompressor: dequantize + 8x8 IDCT",
    source=DJPEG_SOURCE,
    make_inputs=_djpeg_inputs,
))

register(Benchmark(
    name="132.ijpeg",
    suite="spec95",
    category="int",
    description="JPEG-style compressor: 8x8 FDCT + quantization",
    source=IJPEG_SOURCE,
    make_inputs=_ijpeg_inputs,
))
