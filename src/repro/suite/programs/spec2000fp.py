"""SPEC CFP2000-style kernels (Figure 16's cross-validation set).

Twelve kernels in the character of their namesakes.  Several are
deliberately cache-friendly or latency-tolerant (blocked matmul,
short working sets) so that — as the paper observes for SPEC2000 —
aggressive prefetching is *desirable* on some of them while useless
or harmful on others; the generality caveat of Section 7.2.2 depends
on that contrast.
"""

from __future__ import annotations

from repro.suite.datagen import rng_for
from repro.suite.registry import Benchmark, register


def _uniform(name: str, dataset: str, size: int, low: float,
             high: float) -> list[float]:
    rng = rng_for(name, dataset)
    return [rng.uniform(low, high) for _ in range(size)]


WUPWISE_SOURCE = """
// Lattice-QCD-like: blocked complex matrix multiply (zgemm flavour).
float ar[400]; float ai[400];
float br[400]; float bi[400];
float cr[400]; float ci[400];

void main() {
  int i;
  for (i = 0; i < 20; i = i + 1) {
    int j;
    for (j = 0; j < 20; j = j + 1) {
      float accr = 0.0;
      float acci = 0.0;
      int k;
      for (k = 0; k < 20; k = k + 1) {
        float xr = ar[i * 20 + k];
        float xi = ai[i * 20 + k];
        float yr = br[k * 20 + j];
        float yi = bi[k * 20 + j];
        accr = accr + xr * yr - xi * yi;
        acci = acci + xr * yi + xi * yr;
      }
      cr[i * 20 + j] = accr;
      ci[i * 20 + j] = acci;
    }
  }
  float cs = 0.0;
  for (i = 0; i < 400; i = i + 21) {
    cs = cs + cr[i] + ci[i] * 0.5;
  }
  out(cs);
}
"""

SWIM2K_SOURCE = """
// swim at 2000 scale: bigger sea, two time levels (prefetch-friendly).
float u[6144];
float un[6144];

void main() {
  int t;
  for (t = 0; t < 1; t = t + 1) {
    int i;
    for (i = 96; i < 6048; i = i + 1) {
      un[i] = u[i] + 0.1 * (u[i - 1] + u[i + 1] + u[i - 96]
                            + u[i + 96] - 4.0 * u[i]);
    }
    for (i = 96; i < 6048; i = i + 1) {
      u[i] = un[i];
    }
  }
  float cs = 0.0;
  int k;
  for (k = 0; k < 6144; k = k + 41) {
    cs = cs + u[k];
  }
  out(cs);
}
"""

MGRID2K_SOURCE = """
// mgrid at 2000 scale: 27-point-ish smoothing reduced to 1-D triples
// over a long array (streaming, prefetch-friendly).
float grid[6144];
float smoothed[6144];

void main() {
  int pass;
  for (pass = 0; pass < 1; pass = pass + 1) {
    int i;
    for (i = 2; i < 6142; i = i + 1) {
      smoothed[i] = 0.05 * grid[i - 2] + 0.25 * grid[i - 1]
                    + 0.4 * grid[i] + 0.25 * grid[i + 1]
                    + 0.05 * grid[i + 2];
    }
    for (i = 2; i < 6142; i = i + 1) {
      grid[i] = smoothed[i];
    }
  }
  float cs = 0.0;
  int k;
  for (k = 0; k < 6144; k = k + 37) {
    cs = cs + grid[k];
  }
  out(cs);
}
"""

APPLU_SOURCE = """
// applu: lower-upper SSOR sweep over a structured grid (wavefront
// dependence limits ILP; memory behaviour is streaming).
float rsd[4096];
float flux[4096];

void main() {
  int sweep;
  for (sweep = 0; sweep < 1; sweep = sweep + 1) {
    int i;
    // Lower triangular sweep.
    for (i = 64; i < 4096; i = i + 1) {
      rsd[i] = rsd[i] - 0.2 * rsd[i - 1] - 0.1 * rsd[i - 64]
               + flux[i] * 0.01;
    }
    // Upper triangular sweep.
    for (i = 4031; i >= 0; i = i - 1) {
      rsd[i] = rsd[i] - 0.2 * rsd[i + 1] - 0.1 * rsd[i + 64];
    }
  }
  float cs = 0.0;
  int k;
  for (k = 0; k < 4096; k = k + 29) {
    cs = cs + rsd[k];
  }
  out(cs);
}
"""

GALGEL_SOURCE = """
// galgel: Galerkin spectral coefficients — small dense eigen-ish
// iterations that fit in cache (prefetching buys nothing).
float basis[576];    // 24x24
float coef[24];
float next[24];

void main() {
  int iter;
  for (iter = 0; iter < 18; iter = iter + 1) {
    int i;
    float norm = 0.0;
    for (i = 0; i < 24; i = i + 1) {
      float acc = 0.0;
      int j;
      for (j = 0; j < 24; j = j + 1) {
        acc = acc + basis[i * 24 + j] * coef[j];
      }
      next[i] = acc;
      norm = norm + acc * acc;
    }
    float scale = 1.0 / sqrt(norm + 0.0001);
    for (i = 0; i < 24; i = i + 1) {
      coef[i] = next[i] * scale;
    }
  }
  float cs = 0.0;
  int k;
  for (k = 0; k < 24; k = k + 1) {
    cs = cs + coef[k] * (k + 1);
  }
  out(cs);
}
"""

EQUAKE_SOURCE = """
// equake: sparse matrix-vector product in CSR form (indirect access —
// the addresses prefetching cannot predict, plus long index streams).
float values[4800];
int colidx[4800];
int rowptr[801];
float x[800];
float y[800];

void main() {
  int r;
  for (r = 0; r < 800; r = r + 1) {
    float acc = 0.0;
    int p;
    int stop = rowptr[r + 1];
    for (p = rowptr[r]; p < stop; p = p + 1) {
      acc = acc + values[p] * x[colidx[p]];
    }
    y[r] = acc;
  }
  float cs = 0.0;
  for (r = 0; r < 800; r = r + 13) {
    cs = cs + y[r];
  }
  out(cs);
}
"""

FACEREC_SOURCE = """
// facerec: normalized cross-correlation of a 16x16 template over a
// 48x48 image (2-D sliding window, streaming reads).
float image[2304];
float templ[256];
float best_score;
int best_pos;

void main() {
  float best = 0.0 - 1000000.0;
  int bpos = 0;
  int y;
  for (y = 0; y < 32; y = y + 4) {
    int x;
    for (x = 0; x < 32; x = x + 4) {
      float score = 0.0;
      int ty;
      for (ty = 0; ty < 16; ty = ty + 1) {
        int tx;
        for (tx = 0; tx < 16; tx = tx + 1) {
          float d = image[(y + ty) * 48 + x + tx] - templ[ty * 16 + tx];
          score = score - d * d;
        }
      }
      if (score > best) {
        best = score;
        bpos = y * 48 + x;
      }
    }
  }
  best_score = best;
  best_pos = bpos;
  out(best);
  out(bpos);
}
"""

AMMP_SOURCE = """
// ammp: molecular mechanics nonbond step with cell-list style
// clustered access (partially cache-resident).
float px[600]; float py[600]; float pz[600];
float fx[600]; float fy[600]; float fz[600];
int neighbors[4000];   // 2000 pairs
int npairs;

void main() {
  int p;
  for (p = 0; p < npairs; p = p + 1) {
    int i = neighbors[p * 2];
    int j = neighbors[p * 2 + 1];
    float dx = px[i] - px[j];
    float dy = py[i] - py[j];
    float dz = pz[i] - pz[j];
    float r2 = dx * dx + dy * dy + dz * dz + 0.02;
    float inv = 1.0 / r2;
    float coulomb = inv * 0.8;
    float vdw = inv * inv * inv * (inv - 0.3);
    float force = coulomb + vdw;
    fx[i] = fx[i] + force * dx;
    fy[i] = fy[i] + force * dy;
    fz[i] = fz[i] + force * dz;
    fx[j] = fx[j] - force * dx;
    fy[j] = fy[j] - force * dy;
    fz[j] = fz[j] - force * dz;
  }
  float cs = 0.0;
  int k;
  for (k = 0; k < 600; k = k + 11) {
    cs = cs + fx[k] + fy[k] + fz[k];
  }
  out(cs);
}
"""

LUCAS_SOURCE = """
// lucas: Lucas-Lehmer-style modular squaring over a long digit
// vector with carries (integer-heavy FP code; streaming).
int digits[3000];
int ndigits;

void main() {
  int pass;
  for (pass = 0; pass < 3; pass = pass + 1) {
    int carry = 0;
    int i;
    for (i = 0; i < ndigits; i = i + 1) {
      int d = digits[i];
      int sq = d * d + carry;
      digits[i] = sq % 10000;
      carry = sq / 10000;
      if (carry > 9999) { carry = carry % 10000; }
    }
  }
  int cs = 0;
  int k;
  for (k = 0; k < ndigits; k = k + 7) {
    cs = cs + digits[k] * (k % 5 + 1);
  }
  out(cs);
}
"""

SIXTRACK_SOURCE = """
// sixtrack: particle tracking through a lattice of thin-lens maps
// (small state per particle, long particle stream).
float x[1024]; float xp[1024];
float y[1024]; float yp[1024];
int nparticles;

void main() {
  int turn;
  for (turn = 0; turn < 4; turn = turn + 1) {
    int p;
    for (p = 0; p < nparticles; p = p + 1) {
      float qx = x[p];
      float qy = y[p];
      // quad kick
      xp[p] = xp[p] - 0.02 * qx;
      yp[p] = yp[p] + 0.02 * qy;
      // sextupole kick
      xp[p] = xp[p] + 0.001 * (qx * qx - qy * qy);
      yp[p] = yp[p] - 0.002 * qx * qy;
      // drift
      x[p] = qx + xp[p];
      y[p] = qy + yp[p];
    }
  }
  float cs = 0.0;
  int k;
  for (k = 0; k < nparticles; k = k + 9) {
    cs = cs + x[k] + y[k];
  }
  out(cs);
}
"""

APSI2K_SOURCE = """
// 301.apsi: pollutant advection upwind scheme on a long transect
// (streaming with a data-dependent upwind branch).
float conc[5120];
float wind[5120];
float next[5120];

void main() {
  int step;
  for (step = 0; step < 1; step = step + 1) {
    int i;
    for (i = 1; i < 5119; i = i + 1) {
      float w = wind[i];
      float gradient;
      if (w > 0.0) {
        gradient = conc[i] - conc[i - 1];
      } else {
        gradient = conc[i + 1] - conc[i];
      }
      next[i] = conc[i] - w * gradient * 0.1;
    }
    for (i = 1; i < 5119; i = i + 1) {
      conc[i] = next[i];
    }
  }
  float cs = 0.0;
  int k;
  for (k = 0; k < 5120; k = k + 43) {
    cs = cs + conc[k];
  }
  out(cs);
}
"""

FMA3D_SOURCE = """
// fma3d: explicit finite-element update — gather nodal positions per
// element, compute strain-ish quantity, scatter forces.
float nodes[3072];     // 1024 nodes x 3 coords
int elems[3200];       // 800 elements x 4 node ids
int nelems;
float forces[3072];

void main() {
  int e;
  for (e = 0; e < nelems; e = e + 1) {
    int n0 = elems[e * 4];
    int n1 = elems[e * 4 + 1];
    int n2 = elems[e * 4 + 2];
    int n3 = elems[e * 4 + 3];
    float vol = 0.0;
    int c;
    for (c = 0; c < 3; c = c + 1) {
      float d1 = nodes[n1 * 3 + c] - nodes[n0 * 3 + c];
      float d2 = nodes[n2 * 3 + c] - nodes[n0 * 3 + c];
      float d3 = nodes[n3 * 3 + c] - nodes[n0 * 3 + c];
      vol = vol + d1 * d2 * d3;
    }
    float pressure = vol * 0.05;
    for (c = 0; c < 3; c = c + 1) {
      forces[n0 * 3 + c] = forces[n0 * 3 + c] - pressure;
      forces[n1 * 3 + c] = forces[n1 * 3 + c] + pressure * 0.33;
      forces[n2 * 3 + c] = forces[n2 * 3 + c] + pressure * 0.33;
      forces[n3 * 3 + c] = forces[n3 * 3 + c] + pressure * 0.34;
    }
  }
  float cs = 0.0;
  int k;
  for (k = 0; k < 3072; k = k + 17) {
    cs = cs + forces[k];
  }
  out(cs);
}
"""


def _make_simple(name: str, arrays: dict[str, tuple[int, float, float]]):
    def make_inputs(dataset: str) -> dict[str, list]:
        rng = rng_for(name, dataset)
        scale = 1.0 if dataset == "train" else 2.5
        return {
            arr: [rng.uniform(low * scale, high * scale)
                  for _ in range(size)]
            for arr, (size, low, high) in arrays.items()
        }
    return make_inputs


def _equake_inputs(dataset: str) -> dict[str, list]:
    rng = rng_for("183.equake", dataset)
    per_row = 6
    rowptr = [0]
    values: list[float] = []
    colidx: list[int] = []
    local = dataset == "train"
    for row in range(800):
        for _ in range(per_row):
            values.append(rng.uniform(-1, 1))
            if local:
                colidx.append(max(0, min(799, row + rng.randint(-8, 8))))
            else:
                colidx.append(rng.randint(0, 799))
        rowptr.append(len(values))
    return {
        "values": values, "colidx": colidx, "rowptr": rowptr,
        "x": [rng.uniform(-1, 1) for _ in range(800)],
    }


def _ammp_inputs(dataset: str) -> dict[str, list]:
    rng = rng_for("188.ammp", dataset)
    clustered = dataset == "train"
    pos = {axis: [rng.uniform(0, 4) for _ in range(600)]
           for axis in ("px", "py", "pz")}
    neighbors = []
    for _ in range(1900):
        i = rng.randint(0, 599)
        if clustered:
            j = max(0, min(599, i + rng.randint(-20, 20)))
        else:
            j = rng.randint(0, 599)
        if i != j:
            neighbors.extend([i, j])
    return {**pos, "neighbors": neighbors,
            "npairs": [len(neighbors) // 2]}


def _lucas_inputs(dataset: str) -> dict[str, list]:
    rng = rng_for("189.lucas", dataset)
    count = 2800 if dataset == "train" else 2400
    return {"digits": rng.ints(count, 0, 9999), "ndigits": [count]}


def _fma3d_inputs(dataset: str) -> dict[str, list]:
    rng = rng_for("191.fma3d", dataset)
    local = dataset == "train"
    nodes = [rng.uniform(0, 10) for _ in range(3072)]
    elems = []
    for e in range(780):
        base = (e % 1000)
        ids = []
        for _ in range(4):
            if local:
                ids.append(max(0, min(1023, base + rng.randint(0, 12))))
            else:
                ids.append(rng.randint(0, 1023))
        elems.extend(ids)
    return {"nodes": nodes, "elems": elems, "nelems": [780]}


register(Benchmark(
    name="168.wupwise", suite="spec2000", category="fp",
    description="Blocked complex matrix multiply (lattice QCD)",
    source=WUPWISE_SOURCE,
    make_inputs=_make_simple("168.wupwise", {
        "ar": (400, -1, 1), "ai": (400, -1, 1),
        "br": (400, -1, 1), "bi": (400, -1, 1)}),
))
register(Benchmark(
    name="171.swim", suite="spec2000", category="fp",
    description="Shallow-water update at 2000 scale (streaming)",
    source=SWIM2K_SOURCE,
    make_inputs=_make_simple("171.swim", {"u": (6144, -1, 1)}),
))
register(Benchmark(
    name="172.mgrid", suite="spec2000", category="fp",
    description="Long 5-tap smoothing sweeps (streaming)",
    source=MGRID2K_SOURCE,
    make_inputs=_make_simple("172.mgrid", {"grid": (6144, -1, 1)}),
))
register(Benchmark(
    name="173.applu", suite="spec2000", category="fp",
    description="SSOR lower/upper wavefront sweeps",
    source=APPLU_SOURCE,
    make_inputs=_make_simple("173.applu", {
        "rsd": (4096, -1, 1), "flux": (4096, -1, 1)}),
))
register(Benchmark(
    name="178.galgel", suite="spec2000", category="fp",
    description="Cache-resident Galerkin power iteration",
    source=GALGEL_SOURCE,
    make_inputs=_make_simple("178.galgel", {
        "basis": (576, -0.3, 0.3), "coef": (24, -1, 1)}),
))
register(Benchmark(
    name="183.equake", suite="spec2000", category="fp",
    description="CSR sparse matrix-vector product",
    source=EQUAKE_SOURCE, make_inputs=_equake_inputs,
))
register(Benchmark(
    name="187.facerec", suite="spec2000", category="fp",
    description="Template matching: sliding-window correlation",
    source=FACEREC_SOURCE,
    make_inputs=_make_simple("187.facerec", {
        "image": (2304, 0, 1), "templ": (256, 0, 1)}),
))
register(Benchmark(
    name="188.ammp", suite="spec2000", category="fp",
    description="Molecular mechanics nonbond forces (cell lists)",
    source=AMMP_SOURCE, make_inputs=_ammp_inputs,
))
register(Benchmark(
    name="189.lucas", suite="spec2000", category="fp",
    description="Long-vector modular squaring with carries",
    source=LUCAS_SOURCE, make_inputs=_lucas_inputs,
))
def _sixtrack_inputs(dataset: str) -> dict[str, list]:
    rng = rng_for("200.sixtrack", dataset)
    scale = 1.0 if dataset == "train" else 2.5
    return {
        "x": [rng.uniform(-scale, scale) for _ in range(1024)],
        "xp": [rng.uniform(-0.1, 0.1) for _ in range(1024)],
        "y": [rng.uniform(-scale, scale) for _ in range(1024)],
        "yp": [rng.uniform(-0.1, 0.1) for _ in range(1024)],
        "nparticles": [1000],
    }


register(Benchmark(
    name="200.sixtrack", suite="spec2000", category="fp",
    description="Accelerator particle tracking (thin-lens maps)",
    source=SIXTRACK_SOURCE, make_inputs=_sixtrack_inputs,
))
register(Benchmark(
    name="301.apsi", suite="spec2000", category="fp",
    description="Upwind pollutant advection on a long transect",
    source=APSI2K_SOURCE,
    make_inputs=_make_simple("301.apsi", {
        "conc": (5120, 0, 1), "wind": (5120, -1, 1)}),
))
register(Benchmark(
    name="191.fma3d", suite="spec2000", category="fp",
    description="Explicit FEM gather/compute/scatter",
    source=FMA3D_SOURCE, make_inputs=_fma3d_inputs,
))
