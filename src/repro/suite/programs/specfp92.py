"""SPEC92/95-era floating-point kernels (prefetch training set).

Each program is the characteristic inner computation of its namesake:
stencils, lattice sweeps, pairwise force sums and dense linear algebra
— long strided float loops whose performance is dominated by the cache
hierarchy, which is what the prefetching priority function controls.
"""

from __future__ import annotations

from repro.suite.datagen import rng_for
from repro.suite.registry import Benchmark, register

TOMCATV_SOURCE = """
// Mesh-smoothing relaxation: 5-point stencil over a 64x64 grid with
// residual tracking (tomcatv's vectorizable core).
float x[4096];
float y[4096];
float rx[4096];
float ry[4096];

void main() {
  int iter;
  float maxres = 0.0;
  for (iter = 0; iter < 1; iter = iter + 1) {
    int i;
    for (i = 1; i < 63; i = i + 1) {
      int j;
      for (j = 1; j < 63; j = j + 1) {
        int p = i * 64 + j;
        float xx = (x[p - 1] + x[p + 1] + x[p - 64] + x[p + 64]) * 0.25;
        float yy = (y[p - 1] + y[p + 1] + y[p - 64] + y[p + 64]) * 0.25;
        rx[p] = xx - x[p];
        ry[p] = yy - y[p];
      }
    }
    for (i = 1; i < 63; i = i + 1) {
      int j;
      for (j = 1; j < 63; j = j + 1) {
        int p = i * 64 + j;
        x[p] = x[p] + rx[p] * 0.9;
        y[p] = y[p] + ry[p] * 0.9;
        float r = rx[p];
        if (r < 0.0) { r = 0.0 - r; }
        if (r > maxres) { maxres = r; }
      }
    }
  }
  float cs = 0.0;
  int k;
  for (k = 0; k < 4096; k = k + 64) {
    cs = cs + x[k] + y[k + 1];
  }
  out(cs);
  out(maxres);
}
"""

SWIM_SOURCE = """
// Shallow-water equations: staggered-grid finite differences
// (swim's U/V/P update sweep) on a 64x64 sea.
float u[4096];
float v[4096];
float p[4096];
float unew[4096];
float vnew[4096];
float pnew[4096];

void main() {
  float dt = 0.01;
  int i;
  for (i = 1; i < 63; i = i + 1) {
    int j;
    for (j = 1; j < 63; j = j + 1) {
      int k = i * 64 + j;
      float du = p[k] - p[k + 1] + 0.5 * (v[k] + v[k + 64]);
      float dv = p[k] - p[k + 64] - 0.5 * (u[k] + u[k + 1]);
      float dp = u[k - 1] - u[k] + v[k - 64] - v[k];
      unew[k] = u[k] + dt * du;
      vnew[k] = v[k] + dt * dv;
      pnew[k] = p[k] + dt * dp;
    }
  }
  float cs = 0.0;
  for (i = 0; i < 4096; i = i + 32) {
    cs = cs + unew[i] + vnew[i] * 2.0 + pnew[i] * 3.0;
  }
  out(cs);
}
"""

SU2COR_SOURCE = """
// Quark-propagator-style lattice sweep: complex 2x2 matrix times
// vector at every even site, then a gauge trace (su2cor flavour).
float lat_re[4096];
float lat_im[4096];
float vec_re[4096];
float vec_im[4096];
float trace[64];

void main() {
  int site;
  for (site = 0; site < 4032; site = site + 2) {
    float ar = lat_re[site];
    float ai = lat_im[site];
    float br = lat_re[site + 1];
    float bi = lat_im[site + 1];
    float xr = vec_re[site];
    float xi = vec_im[site];
    float yr = vec_re[site + 1];
    float yi = vec_im[site + 1];
    // (a b; -b* a*) acting on (x, y) — SU(2) structure.
    vec_re[site] = ar * xr - ai * xi + br * yr - bi * yi;
    vec_im[site] = ar * xi + ai * xr + br * yi + bi * yr;
    vec_re[site + 1] = 0.0 - br * xr - bi * xi + ar * yr + ai * yi;
    vec_im[site + 1] = bi * xr - br * xi + ar * yi - ai * yr;
  }
  int t;
  for (t = 0; t < 64; t = t + 1) {
    float acc = 0.0;
    int s;
    for (s = 0; s < 64; s = s + 1) {
      acc = acc + vec_re[t * 64 + s];
    }
    trace[t] = acc;
  }
  float cs = 0.0;
  for (t = 0; t < 64; t = t + 1) {
    cs = cs + trace[t] * (t + 1);
  }
  out(cs);
}
"""

NASA7_SOURCE = """
// NASA kernels: dense matrix multiply (32x32) + Cholesky-like
// column update, the two headline nasa7 kernels.
float a[576];
float b[576];
float c[576];
float chol[576];

void main() {
  int i;
  for (i = 0; i < 24; i = i + 1) {
    int j;
    for (j = 0; j < 24; j = j + 1) {
      float acc = 0.0;
      int k;
      for (k = 0; k < 24; k = k + 1) {
        acc = acc + a[i * 24 + k] * b[k * 24 + j];
      }
      c[i * 24 + j] = acc;
    }
  }
  // One sweep of column-oriented Cholesky on c + identity*40.
  for (i = 0; i < 24; i = i + 1) {
    chol[i * 24 + i] = sqrt(c[i * 24 + i] + 40.0);
    int r;
    for (r = i + 1; r < 24; r = r + 1) {
      chol[r * 24 + i] = c[r * 24 + i] / chol[i * 24 + i];
    }
  }
  float cs = 0.0;
  for (i = 0; i < 576; i = i + 25) {
    cs = cs + c[i] + chol[i];
  }
  out(cs);
}
"""

DODUC_SOURCE = """
// Monte-Carlo-ish thermohydraulics step: per-cell state update with
// data-dependent regime branches (doduc is branchy for an FP code).
float temp[2048];
float flow[2048];
float press[2048];
int ncells;

void main() {
  int sweeps;
  float total = 0.0;
  for (sweeps = 0; sweeps < 2; sweeps = sweeps + 1) {
    int i;
    for (i = 1; i < ncells - 1; i = i + 1) {
      float t = temp[i];
      float f = flow[i];
      float dp = press[i + 1] - press[i - 1];
      float regime;
      if (t > 400.0) {
        regime = 1.4;          // superheated
      } else {
        if (f > 0.5) {
          regime = 1.1;        // turbulent
        } else {
          regime = 0.8;        // laminar
        }
      }
      float tn = t + regime * dp * 0.05 - (t - 300.0) * 0.01;
      float fn = f + dp * 0.02;
      if (fn < 0.0) { fn = 0.0; }
      if (fn > 2.0) { fn = 2.0; }
      temp[i] = tn;
      flow[i] = fn;
      total = total + tn * 0.001;
    }
  }
  out(total);
}
"""

MDLJDP2_SOURCE = """
// Molecular dynamics pairwise Lennard-Jones forces over a neighbour
// list (mdljdp2's double-precision force loop).
float posx[512];
float posy[512];
float posz[512];
int pairs[3000];      // 1500 pairs packed (i, j)
int npairs;
float fx[512];
float fy[512];
float fz[512];

void main() {
  int p;
  float energy = 0.0;
  for (p = 0; p < npairs; p = p + 1) {
    int i = pairs[p * 2];
    int j = pairs[p * 2 + 1];
    float dx = posx[i] - posx[j];
    float dy = posy[i] - posy[j];
    float dz = posz[i] - posz[j];
    float r2 = dx * dx + dy * dy + dz * dz + 0.01;
    if (r2 < 9.0) {
      float inv2 = 1.0 / r2;
      float inv6 = inv2 * inv2 * inv2;
      float force = inv6 * (inv6 - 0.5) * inv2;
      fx[i] = fx[i] + force * dx;
      fy[i] = fy[i] + force * dy;
      fz[i] = fz[i] + force * dz;
      fx[j] = fx[j] - force * dx;
      fy[j] = fy[j] - force * dy;
      fz[j] = fz[j] - force * dz;
      energy = energy + inv6 * (inv6 - 1.0);
    }
  }
  float cs = 0.0;
  int i;
  for (i = 0; i < 512; i = i + 7) {
    cs = cs + fx[i] + fy[i] * 2.0 + fz[i] * 3.0;
  }
  out(cs);
  out(energy);
}
"""


def _grid_inputs(name: str, dataset: str, arrays: dict[str, int],
                 spread_train: float = 1.0,
                 spread_novel: float = 4.0) -> dict[str, list]:
    rng = rng_for(name, dataset)
    spread = spread_train if dataset == "train" else spread_novel
    return {arr: [rng.uniform(-spread, spread) for _ in range(size)]
            for arr, size in arrays.items()}


def _tomcatv_inputs(dataset: str) -> dict[str, list]:
    return _grid_inputs("101.tomcatv", dataset, {"x": 4096, "y": 4096})


def _swim_inputs(dataset: str) -> dict[str, list]:
    return _grid_inputs("102.swim", dataset,
                        {"u": 4096, "v": 4096, "p": 4096})


def _su2cor_inputs(dataset: str) -> dict[str, list]:
    return _grid_inputs("103.su2cor", dataset,
                        {"lat_re": 4096, "lat_im": 4096,
                         "vec_re": 4096, "vec_im": 4096},
                        spread_train=0.5, spread_novel=1.0)


def _nasa7_inputs(dataset: str) -> dict[str, list]:
    return _grid_inputs("093.nasa7", dataset, {"a": 576, "b": 576})


def _doduc_inputs(dataset: str) -> dict[str, list]:
    rng = rng_for("015.doduc", dataset)
    hot = dataset != "train"
    base_temp = 450.0 if hot else 330.0
    return {
        "temp": [base_temp + rng.uniform(-40, 40) for _ in range(2048)],
        "flow": [rng.uniform(0, 1) for _ in range(2048)],
        "press": [rng.uniform(0.9, 1.1) for _ in range(2048)],
        "ncells": [2000],
    }


def _mdljdp2_inputs(dataset: str) -> dict[str, list]:
    rng = rng_for("034.mdljdp2", dataset)
    dense = dataset != "train"
    scale = 1.5 if dense else 4.0   # denser box => more cutoff hits
    pos = {axis: [rng.uniform(0, scale) for _ in range(512)]
           for axis in ("posx", "posy", "posz")}
    pairs = []
    for _ in range(1400):
        i = rng.randint(0, 511)
        j = rng.randint(0, 511)
        if i != j:
            pairs.extend([i, j])
    return {**pos, "pairs": pairs, "npairs": [len(pairs) // 2]}


register(Benchmark(
    name="101.tomcatv", suite="spec92", category="fp",
    description="Mesh smoothing 5-point stencil relaxation",
    source=TOMCATV_SOURCE, make_inputs=_tomcatv_inputs,
))
register(Benchmark(
    name="102.swim", suite="spec92", category="fp",
    description="Shallow-water staggered-grid update sweep",
    source=SWIM_SOURCE, make_inputs=_swim_inputs,
))
register(Benchmark(
    name="103.su2cor", suite="spec92", category="fp",
    description="SU(2) lattice matrix-vector sweep + trace",
    source=SU2COR_SOURCE, make_inputs=_su2cor_inputs,
))
register(Benchmark(
    name="093.nasa7", suite="spec92", category="fp",
    description="Dense 32x32 matmul + Cholesky column update",
    source=NASA7_SOURCE, make_inputs=_nasa7_inputs,
))
register(Benchmark(
    name="015.doduc", suite="spec92", category="fp",
    description="Thermohydraulics cell update with regime branches",
    source=DODUC_SOURCE, make_inputs=_doduc_inputs,
))
register(Benchmark(
    name="034.mdljdp2", suite="spec92", category="fp",
    description="Lennard-Jones pairwise forces over a neighbour list",
    source=MDLJDP2_SOURCE, make_inputs=_mdljdp2_inputs,
))
