"""Deterministic dataset generation for the benchmark suite.

Every benchmark derives its train and novel inputs from a fixed-seed
linear congruential generator, so results are exactly reproducible
across runs and platforms without carrying data files.  The novel
dataset uses a different seed (and often different statistics) from the
train dataset — the point of the paper's train/novel split is that the
alternate input "exercises different paths of control flow".
"""

from __future__ import annotations


class LCG:
    """Numerical-Recipes-style 64-bit LCG; deterministic everywhere."""

    MULT = 6364136223846793005
    INC = 1442695040888963407
    MASK = (1 << 64) - 1

    def __init__(self, seed: int) -> None:
        self.state = (seed * 2862933555777941757 + 3037000493) & self.MASK

    def next_u32(self) -> int:
        self.state = (self.state * self.MULT + self.INC) & self.MASK
        return (self.state >> 32) & 0xFFFFFFFF

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in [low, high]."""
        if high < low:
            raise ValueError("empty range")
        span = high - low + 1
        return low + self.next_u32() % span

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        return low + (high - low) * (self.next_u32() / 4294967296.0)

    def ints(self, count: int, low: int, high: int) -> list[int]:
        return [self.randint(low, high) for _ in range(count)]

    def floats(self, count: int, low: float = 0.0,
               high: float = 1.0) -> list[float]:
        return [self.uniform(low, high) for _ in range(count)]


def seed_for(benchmark: str, dataset: str) -> int:
    """Stable seed per (benchmark, dataset): train and novel differ."""
    base = 0
    for char in benchmark:
        base = (base * 131 + ord(char)) & 0xFFFFFFFF
    return base * 2 + (0 if dataset == "train" else 1)


def rng_for(benchmark: str, dataset: str) -> LCG:
    return LCG(seed_for(benchmark, dataset))


def runlength_data(rng: LCG, count: int, run_bias: int,
                   alphabet: int = 8) -> list[int]:
    """Data with biased run lengths (for RLE-style codecs)."""
    data: list[int] = []
    while len(data) < count:
        value = rng.randint(0, alphabet - 1)
        run = 1 + rng.randint(0, run_bias)
        data.extend([value] * min(run, count - len(data)))
    return data


def skewed_bytes(rng: LCG, count: int, hot_fraction: int = 70,
                 alphabet: int = 64) -> list[int]:
    """Byte stream with a skewed symbol distribution (Huffman fodder)."""
    data = []
    for _ in range(count):
        if rng.randint(0, 99) < hot_fraction:
            data.append(rng.randint(0, 7))
        else:
            data.append(rng.randint(8, alphabet - 1))
    return data


def smooth_samples(rng: LCG, count: int, amplitude: int = 200) -> list[int]:
    """A random-walk waveform (ADPCM / audio codec fodder)."""
    data = []
    value = 0
    for _ in range(count):
        value += rng.randint(-amplitude // 8, amplitude // 8)
        value = max(-amplitude * 16, min(amplitude * 16, value))
        data.append(value)
    return data
