"""Benchmark suite (Table 5): programs, datasets, and experiment sets."""

from repro.suite.promoted import (
    PROMOTED_NOVEL_SET,
    PROMOTED_TRAINING_SET,
)
from repro.suite.registry import (
    Benchmark,
    HYPERBLOCK_TEST_SET,
    HYPERBLOCK_TRAINING_SET,
    PREFETCH_TEST_SET,
    PREFETCH_TRAINING_SET,
    REGALLOC_TEST_SET,
    REGALLOC_TRAINING_SET,
    all_benchmarks,
    by_category,
    by_suite,
    get,
)

__all__ = [
    "Benchmark",
    "HYPERBLOCK_TEST_SET",
    "HYPERBLOCK_TRAINING_SET",
    "PREFETCH_TEST_SET",
    "PREFETCH_TRAINING_SET",
    "PROMOTED_NOVEL_SET",
    "PROMOTED_TRAINING_SET",
    "REGALLOC_TEST_SET",
    "REGALLOC_TRAINING_SET",
    "all_benchmarks",
    "by_category",
    "by_suite",
    "get",
]
