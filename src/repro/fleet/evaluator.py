"""The fleet coordinator: sharded fitness evaluation over serve workers.

"GP is a distributed algorithm" (Section 3) — the paper evolved its
heuristics on 15–20 machines.  :class:`FleetEvaluator` is that tier:
it implements the same :class:`~repro.metaopt.parallel.
EvaluatorProtocol` as the in-process evaluators, but ships each
generation's uncached candidates to ``repro serve`` workers over
``POST /v1/evaluate-batch``.

Design invariants (docs/FLEET.md):

* **Bit-identity.**  Workers evaluate with the coordinator's
  :class:`~repro.metaopt.settings.EvalSettings` (host-local fields
  pinned worker-side); noise seeds derive from memo keys, not from
  which host runs a candidate.  A fleet run's result.json is
  byte-identical to the serial run's.
* **Order-independent reduction.**  Results carry the coordinator's
  item indices; shards may complete in any order, on any worker,
  evaluated any number of times.
* **Work stealing.**  Shards are dealt round-robin into per-worker
  queues; an idle worker drains a global retry queue first, then its
  own queue, then steals from the longest competitor's tail — so a
  straggler bounds only its own last shard, not the generation.
* **Fault tolerance.**  Transport failures trigger a health probe:
  a sick-but-alive worker gets the shard back after a backoff, a dead
  worker is retired and its shard redispatched to the survivors.  If
  the whole fleet dies mid-batch, the coordinator finishes the
  remaining shards in-process — a campaign never loses a generation
  to infrastructure.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Iterable

from repro import obs
from repro.fleet.workers import (
    FleetError,
    FleetTarget,
    LocalWorkerProcess,
    WorkerClient,
    WorkerRejected,
    WorkerUnreachable,
    parse_fleet_spec,
)
from repro.gp.nodes import Node
from repro.gp.parse import unparse
from repro.metaopt.settings import EvalSettings

#: Shards dealt per worker per batch (smaller shards steal better,
#: larger ones amortize HTTP round-trips).
_SHARDS_PER_WORKER = 4
#: Upper bound on items per shard, so huge generations still redispatch
#: at a useful granularity after a worker loss.
_MAX_SHARD_ITEMS = 32


class _ShardItemFailed(FleetError):
    """A worker answered ``{"ok": false}`` for an item — possibly a
    worker-local hiccup, so the shard gets its normal retries before
    the failure is declared permanent."""


class _Shard:
    __slots__ = ("index", "home", "items", "attempts")

    def __init__(self, index: int, home: int,
                 items: list[tuple[int, str, str]]) -> None:
        self.index = index
        self.home = home  # the worker slot this shard was dealt to
        self.items = items  # (coordinator item index, tree text, benchmark)
        self.attempts = 0


class _WorkerSlot:
    __slots__ = ("index", "client", "process", "alive", "busy_seconds")

    def __init__(self, index: int, client: WorkerClient,
                 process: LocalWorkerProcess | None) -> None:
        self.index = index
        self.client = client
        self.process = process
        self.alive = True
        self.busy_seconds = 0.0


class _BatchState:
    """Everything one ``evaluate_batch`` call's threads share."""

    def __init__(self, shards: list[_Shard], slots: int) -> None:
        self.cond = threading.Condition()
        self.queues = [deque() for _ in range(slots)]
        self.retry: deque[_Shard] = deque()
        self.outstanding = len(shards)
        self.results: dict[int, float] = {}
        self.failures: list[str] = []
        for shard in shards:
            self.queues[shard.home].append(shard)

    def leftovers(self) -> list[_Shard]:
        remaining = list(self.retry)
        for queue in self.queues:
            remaining.extend(queue)
        self.retry.clear()
        for queue in self.queues:
            queue.clear()
        return remaining


class FleetEvaluator:
    """Distributed :class:`~repro.metaopt.parallel.EvaluatorProtocol`
    implementation over a fleet of serve workers.

    ``fleet`` is a spec string (``"local:2"``,
    ``"host:8347,host:8348"``) or a pre-parsed target list.  Workers
    spawn lazily on the first batch (or eagerly via ``__enter__``), so
    constructing an evaluator is free.
    """

    def __init__(self, case_name: str, fleet: str | list[FleetTarget],
                 settings: EvalSettings | None = None, *,
                 dataset: str = "train",
                 shard_items: int | None = None,
                 timeout: float = 300.0,
                 retries: int = 3,
                 backoff: float = 0.25,
                 max_backoff: float = 4.0,
                 startup_timeout: float = 30.0,
                 sleep=time.sleep) -> None:
        self.case_name = case_name
        self.targets = (parse_fleet_spec(fleet)
                        if isinstance(fleet, str) else list(fleet))
        self.settings = settings if settings is not None else EvalSettings()
        self.dataset = dataset
        self.shard_items = shard_items
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.max_backoff = max_backoff
        self.startup_timeout = startup_timeout
        self._sleep = sleep
        self._slots: list[_WorkerSlot] | None = None
        self._memo: dict[tuple, float] = {}
        self._case = None
        self._local_harness = None
        self._fingerprint = None
        self._closed = False
        self.jobs_dispatched = 0
        self.batches_dispatched = 0
        self.shards_dispatched = 0
        self.shards_stolen = 0
        self.shards_retried = 0
        self.workers_lost = 0
        self.local_fallback_jobs = 0

    # -- lifecycle ------------------------------------------------------
    def start(self) -> list["_WorkerSlot"]:
        """Spawn local workers, connect, and verify capabilities."""
        if self._slots is not None:
            return self._slots
        if self._closed:
            raise FleetError("evaluator is closed")
        slots: list[_WorkerSlot] = []
        try:
            for index, target in enumerate(self.targets):
                process = None
                if target.kind == "local":
                    process = LocalWorkerProcess(self.startup_timeout)
                    address = process.address
                else:
                    address = target.address
                client = WorkerClient(address, timeout=self.timeout)
                self._check_capabilities(client)
                slots.append(_WorkerSlot(index, client, process))
        except BaseException:
            for slot in slots:
                self._retire(slot)
            raise
        self._slots = slots
        obs.set_gauge("fleet.workers", len(slots))
        return slots

    @staticmethod
    def _check_capabilities(client: WorkerClient) -> None:
        """A worker that cannot speak the batch protocol is a
        misconfiguration, not a transient fault — fail loudly now."""
        capabilities = client.capabilities()
        if capabilities.get("schema") != 1:
            raise FleetError(
                f"worker {client.label} speaks API schema "
                f"{capabilities.get('schema')!r}, coordinator needs 1")
        endpoints = capabilities.get("endpoints", ())
        if "POST /v1/evaluate-batch" not in endpoints:
            raise FleetError(
                f"worker {client.label} does not serve "
                f"/v1/evaluate-batch")

    def _retire(self, slot: _WorkerSlot) -> None:
        slot.alive = False
        slot.client.close()
        if slot.process is not None:
            slot.process.terminate()

    def close(self) -> None:
        """Idempotent: disconnect every worker, reap local children."""
        self._closed = True
        slots, self._slots = self._slots, None
        for slot in slots or ():
            self._retire(slot)

    def __enter__(self) -> "FleetEvaluator":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- evaluation ------------------------------------------------------
    def __call__(self, tree: Node, benchmark: str) -> float:
        return self.evaluate_batch([(tree, benchmark)])[0]

    def evaluate_batch(self, jobs: Iterable[tuple[Node, str]],
                       dataset: str | None = None) -> list[float]:
        """Evaluate ``(tree, benchmark)`` pairs across the fleet;
        values come back in job order whatever the completion order."""
        dataset = dataset if dataset is not None else self.dataset
        jobs = list(jobs)
        keyed = [(tree.structural_key(), benchmark)
                 for tree, benchmark in jobs]
        pending: list[tuple[str, str]] = []
        pending_keys: list[tuple] = []
        queued = set()
        for (tree, benchmark), key in zip(jobs, keyed):
            if key not in self._memo and key not in queued:
                queued.add(key)
                pending.append((unparse(tree), benchmark))
                pending_keys.append(key)
        if pending:
            values = self._run_pending(pending, dataset)
            self.jobs_dispatched += len(pending)
            self.batches_dispatched += 1
            obs.inc("fleet.jobs", len(pending))
            obs.inc("fleet.batches")
            for key, value in zip(pending_keys, values):
                self._memo[key] = value
        return [self._memo[key] for key in keyed]

    def _run_pending(self, pending: list[tuple[str, str]],
                     dataset: str) -> list[float]:
        slots = [slot for slot in self.start() if slot.alive]
        shards = self._deal(pending, max(1, len(slots)))
        state = _BatchState(shards, max(1, len(slots)))
        for slot in slots:
            slot.busy_seconds = 0.0
        threads = [
            threading.Thread(target=self._worker_loop,
                             args=(slot, state, dataset), daemon=True)
            for slot in slots
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        remaining = state.leftovers()
        if remaining:
            # Every worker died mid-batch: finish in-process rather
            # than lose the generation.
            obs.inc("fleet.local_fallback_batches")
            for shard in remaining:
                self._evaluate_locally(shard, state, dataset)
        if state.failures:
            raise FleetError(
                "fleet evaluation failed permanently: "
                + "; ".join(state.failures[:5]))
        if len(slots) > 1:
            busy = [slot.busy_seconds for slot in slots]
            obs.set_gauge("fleet.straggler_seconds",
                          max(busy) - min(busy))
        return [state.results[index] for index in range(len(pending))]

    def _deal(self, pending: list[tuple[str, str]],
              slots: int) -> list[_Shard]:
        per_shard = self.shard_items or min(
            _MAX_SHARD_ITEMS,
            -(-len(pending) // (slots * _SHARDS_PER_WORKER)))
        per_shard = max(1, per_shard)
        shards = []
        for start in range(0, len(pending), per_shard):
            items = [(index, text, benchmark)
                     for index, (text, benchmark) in enumerate(
                         pending[start:start + per_shard], start)]
            shards.append(_Shard(len(shards), len(shards) % slots, items))
        return shards

    # -- the per-worker thread -------------------------------------------
    def _worker_loop(self, slot: _WorkerSlot, state: _BatchState,
                     dataset: str) -> None:
        while True:
            shard = self._take(slot, state)
            if shard is None:
                return
            started = time.monotonic()
            try:
                self._run_shard(slot, shard, state, dataset)
            except WorkerUnreachable as exc:
                if self._probe(slot):
                    self._backoff(shard)
                    self._requeue(state, shard, str(exc))
                else:
                    self.workers_lost += 1
                    obs.inc("fleet.workers_lost")
                    self._retire(slot)
                    # The shard pays no attempt for our dead worker.
                    self._requeue(state, shard, str(exc),
                                  count_attempt=False)
                    return
            except WorkerRejected as exc:
                if exc.retryable:
                    self._sleep(min(exc.retry_after or self.backoff,
                                    self.max_backoff))
                    self._requeue(state, shard, str(exc))
                else:
                    self._fail(state, shard, str(exc))
            except _ShardItemFailed as exc:
                self._backoff(shard)
                self._requeue(state, shard, str(exc))
            else:
                elapsed = time.monotonic() - started
                slot.busy_seconds += elapsed
                obs.observe(f"fleet.shard_seconds.{slot.client.label}",
                            elapsed)
                self._complete(state, shard)

    def _run_shard(self, slot: _WorkerSlot, shard: _Shard,
                   state: _BatchState, dataset: str) -> None:
        self.shards_dispatched += 1
        obs.inc("fleet.shards_dispatched")
        payload = self._payload(shard, dataset)
        records = {record.get("index"): record
                   for record in slot.client.evaluate_shard(payload)}
        values: dict[int, float] = {}
        for index, _text, _benchmark in shard.items:
            record = records.get(index)
            if record is None:
                raise WorkerUnreachable(
                    f"{slot.client.label}: shard {shard.index} came "
                    f"back without item {index}")
            if not record.get("ok"):
                raise _ShardItemFailed(
                    f"{slot.client.label}: item {index}: "
                    f"{record.get('error')}")
            values[index] = record["value"]
        with state.cond:
            state.results.update(values)

    def _payload(self, shard: _Shard, dataset: str) -> dict:
        # Host-local fields stay home: the worker pins its own cache
        # directory and snapshot switch (neither affects values).
        wire = self.settings.replace(fitness_cache_dir=None,
                                    collect_metrics=False)
        return {
            "schema": 1,
            "case": self.case_name,
            "dataset": dataset,
            "settings": wire.to_json_dict(),
            "fingerprint": self._fingerprints(),
            "items": [
                {"index": index, "tree": text, "benchmark": benchmark}
                for index, text, benchmark in shard.items
            ],
        }

    def _fingerprints(self) -> dict:
        if self._fingerprint is None:
            from repro.metaopt.fitness_cache import (
                machine_fingerprint,
                pipeline_fingerprint,
            )

            self._fingerprint = {
                "pipeline": pipeline_fingerprint(),
                "machine": machine_fingerprint(self._case_study().machine),
            }
        return self._fingerprint

    # -- scheduling ------------------------------------------------------
    def _take(self, slot: _WorkerSlot, state: _BatchState) -> _Shard | None:
        """Next shard for this worker: retries first, then its own
        queue, then steal from the longest competitor's tail."""
        with state.cond:
            while True:
                if state.outstanding == 0 or not slot.alive:
                    return None
                shard = None
                if state.retry:
                    shard = state.retry.popleft()
                elif state.queues[slot.index]:
                    shard = state.queues[slot.index].popleft()
                else:
                    victim = max(state.queues, key=len)
                    if victim:
                        shard = victim.pop()
                if shard is not None:
                    if shard.home != slot.index:
                        self.shards_stolen += 1
                        obs.inc("fleet.shards_stolen")
                    return shard
                # Everything is in flight elsewhere; a failure may yet
                # requeue work for us.
                state.cond.wait(0.05)

    def _backoff(self, shard: _Shard) -> None:
        self._sleep(min(self.backoff * (2 ** shard.attempts),
                        self.max_backoff))

    def _requeue(self, state: _BatchState, shard: _Shard, error: str,
                 count_attempt: bool = True) -> None:
        with state.cond:
            if count_attempt:
                shard.attempts += 1
            if shard.attempts > self.retries:
                state.failures.append(
                    f"shard {shard.index} exhausted "
                    f"{self.retries} retries: {error}")
                state.outstanding -= 1
            else:
                self.shards_retried += 1
                obs.inc("fleet.shards_retried")
                state.retry.append(shard)
            state.cond.notify_all()

    def _complete(self, state: _BatchState, shard: _Shard) -> None:
        with state.cond:
            state.outstanding -= 1
            state.cond.notify_all()

    def _fail(self, state: _BatchState, shard: _Shard,
              error: str) -> None:
        with state.cond:
            state.failures.append(f"shard {shard.index}: {error}")
            state.outstanding -= 1
            state.cond.notify_all()

    def _probe(self, slot: _WorkerSlot) -> bool:
        """Is the worker still there after a transport error?"""
        if slot.process is not None and not slot.process.alive():
            return False
        try:
            slot.client.health()
            return True
        except FleetError:
            return False

    # -- the in-process safety net ---------------------------------------
    def _case_study(self):
        if self._case is None:
            from repro.metaopt.harness import case_study

            self._case = case_study(self.case_name)
        return self._case

    def _ensure_local_harness(self):
        if self._local_harness is None:
            from repro.metaopt.harness import EvaluationHarness

            self._local_harness = EvaluationHarness(
                self._case_study(),
                self.settings.replace(collect_metrics=False))
        return self._local_harness

    def _evaluate_locally(self, shard: _Shard, state: _BatchState,
                          dataset: str) -> None:
        from repro.metaopt.priority import PriorityFunction

        harness = self._ensure_local_harness()
        for index, text, benchmark in shard.items:
            priority = PriorityFunction.from_text(text, harness.case.pset)
            state.results[index] = harness.speedup(
                priority.tree, benchmark, dataset)
            self.local_fallback_jobs += 1
            obs.inc("fleet.local_fallback_jobs")
        state.outstanding -= 1

    # -- telemetry -------------------------------------------------------
    def stats(self) -> dict[str, int]:
        counters = {
            "workers": len(self.targets),
            "workers_lost": self.workers_lost,
            "jobs_dispatched": self.jobs_dispatched,
            "batches_dispatched": self.batches_dispatched,
            "shards_dispatched": self.shards_dispatched,
            "shards_stolen": self.shards_stolen,
            "shards_retried": self.shards_retried,
            "local_fallback_jobs": self.local_fallback_jobs,
        }
        if self._local_harness is not None:
            for key, value in self._local_harness.stats().items():
                counters[key] = value
        return counters
