"""Fleet worker management: spawning, addressing, and talking to
``repro serve`` processes.

A fleet is described by a *spec string*::

    local:4                      spawn four serve processes on this host
    10.0.0.5:8347,10.0.0.6:8347  two already-running remote workers
    local:2,bench-box:9000       mixtures compose

``local:N`` entries become child processes of the coordinator
(``python -m repro serve --port 0``, the OS picking a free port, the
announce line on stdout reporting it); ``host:port`` entries are
daemons whose lifecycle belongs to someone else.  Either way the
coordinator speaks to a worker through one :class:`WorkerClient` — a
single keep-alive HTTP connection, which matters beyond latency:
``ThreadingHTTPServer`` pins a connection to one handler thread, and
the serve daemon's :class:`~repro.serve.jobs.HarnessPool` keys warm
harnesses per thread, so connection reuse is what keeps a worker's
prepared-program, baseline-cycle, and snapshot caches hot across
generations.

Transport failures raise :class:`WorkerUnreachable` (the worker may be
dead — the coordinator health-checks and redispatches); definitive
HTTP rejections raise :class:`WorkerRejected` carrying the status and
any ``Retry-After`` hint (429/503 are retryable backpressure, anything
else is a protocol error that retrying cannot fix).
"""

from __future__ import annotations

import http.client
import json
import re
import subprocess
import sys
import threading
from dataclasses import dataclass


class FleetError(RuntimeError):
    """Any failure the fleet layer cannot recover from."""


class WorkerUnreachable(FleetError):
    """Transport-level failure: the worker may have died."""


class WorkerRejected(FleetError):
    """The worker answered with an error.

    ``retryable`` is True for backpressure statuses (429 queue shed,
    503 draining); everything else — malformed request, fingerprint
    mismatch — is permanent and poisons the batch.
    """

    def __init__(self, message: str, status: int | None = None,
                 retry_after: float | None = None) -> None:
        super().__init__(message)
        self.status = status
        self.retry_after = retry_after

    @property
    def retryable(self) -> bool:
        return self.status in (429, 503)


@dataclass(frozen=True)
class FleetTarget:
    """One entry of a parsed fleet spec."""

    kind: str  # "local" | "remote"
    address: str | None = None  # "host:port" for remote targets


def parse_fleet_spec(spec: str) -> list[FleetTarget]:
    """Parse ``"local:N"`` / ``"host:port,..."`` into targets."""
    targets: list[FleetTarget] = []
    for entry in spec.split(","):
        entry = entry.strip()
        if not entry:
            continue
        if entry == "local" or entry.startswith("local:"):
            _, _, count = entry.partition(":")
            if count and (not count.isdigit() or int(count) < 1):
                raise FleetError(
                    f"bad fleet entry {entry!r}: local takes a positive "
                    f"worker count, e.g. 'local:2'")
            targets.extend(FleetTarget("local")
                           for _ in range(int(count or 1)))
        else:
            host, sep, port = entry.rpartition(":")
            if not sep or not host or not port.isdigit():
                raise FleetError(
                    f"bad fleet entry {entry!r}: expected 'local:N' "
                    f"or 'host:port'")
            targets.append(FleetTarget("remote", entry))
    if not targets:
        raise FleetError(f"fleet spec {spec!r} names no workers")
    return targets


#: The serve daemon's startup announcement on stdout.
_ANNOUNCE = re.compile(r"serving on (http://\S+)")


class LocalWorkerProcess:
    """A ``repro serve`` child process owned by the coordinator.

    Spawned on ``--port 0`` so concurrent fleets never collide; the
    actual address comes from the daemon's announce line.  ``--workers
    1`` keeps the job queue minimal — fleet traffic flows through
    ``/v1/evaluate-batch`` handler threads, not the queue.
    """

    def __init__(self, startup_timeout: float = 30.0,
                 extra_args: tuple[str, ...] = ()) -> None:
        command = [sys.executable, "-m", "repro", "serve",
                   "--host", "127.0.0.1", "--port", "0", "--workers", "1",
                   *extra_args]
        self.process = subprocess.Popen(
            command, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True)
        self.url = self._await_announce(startup_timeout)

    def _await_announce(self, timeout: float) -> str:
        """Wait for the daemon's ``serving on <url>`` line (read on a
        helper thread so a wedged child cannot hang the coordinator)."""
        box: dict[str, str] = {}

        def read() -> None:
            box["line"] = self.process.stdout.readline()

        reader = threading.Thread(target=read, daemon=True)
        reader.start()
        reader.join(timeout)
        line = box.get("line", "")
        match = _ANNOUNCE.search(line)
        if match is None:
            self.kill()
            raise FleetError(
                f"local worker did not announce within {timeout}s "
                f"(last output: {line!r})")
        return match.group(1)

    @property
    def address(self) -> str:
        return self.url.removeprefix("http://")

    @property
    def pid(self) -> int:
        return self.process.pid

    def alive(self) -> bool:
        return self.process.poll() is None

    def terminate(self, grace: float = 5.0) -> None:
        """SIGTERM (the daemon drains in-flight work), then SIGKILL."""
        if not self.alive():
            return
        self.process.terminate()
        try:
            self.process.wait(grace)
        except subprocess.TimeoutExpired:
            self.kill()

    def kill(self) -> None:
        if self.alive():
            self.process.kill()
        self.process.wait()
        if self.process.stdout is not None:
            self.process.stdout.close()


class WorkerClient:
    """One worker, one keep-alive connection, stdlib only."""

    def __init__(self, address: str, timeout: float = 120.0) -> None:
        address = address.removeprefix("http://").rstrip("/")
        host, _, port = address.rpartition(":")
        self.host = host
        self.port = int(port)
        self.label = address
        self.timeout = timeout
        self._conn: http.client.HTTPConnection | None = None

    # -- transport -------------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout)
        return self._conn

    def _reset(self) -> None:
        """Drop the connection; the next call reconnects (and lands on
        a fresh handler thread, whose harness warms up again)."""
        if self._conn is not None:
            try:
                self._conn.close()
            except OSError:
                pass
            self._conn = None

    def _roundtrip(self, method: str, path: str, body: dict | None = None):
        conn = self._connection()
        data = json.dumps(body).encode() if body is not None else None
        headers = {"Content-Type": "application/json"} if body else {}
        try:
            conn.request(method, path, body=data, headers=headers)
            return conn.getresponse()
        except (OSError, http.client.HTTPException) as exc:
            self._reset()
            raise WorkerUnreachable(
                f"{self.label}: {method} {path}: {exc}") from exc

    def _raise_rejection(self, response) -> None:
        try:
            payload = json.loads(response.read() or b"{}")
        except (OSError, ValueError):
            payload = {}
            self._reset()
        retry_after = response.headers.get("Retry-After")
        try:
            retry_after = float(retry_after) if retry_after else None
        except ValueError:
            retry_after = None
        raise WorkerRejected(
            f"{self.label}: {payload.get('error', '')} "
            f"(HTTP {response.status})".strip(),
            status=response.status, retry_after=retry_after)

    def request_json(self, method: str, path: str,
                     body: dict | None = None) -> dict:
        response = self._roundtrip(method, path, body)
        if response.status >= 400:
            self._raise_rejection(response)
        try:
            return json.loads(response.read() or b"{}")
        except (OSError, http.client.HTTPException, ValueError) as exc:
            self._reset()
            raise WorkerUnreachable(
                f"{self.label}: bad response body: {exc}") from exc

    # -- API surface -----------------------------------------------------
    def health(self) -> dict:
        return self.request_json("GET", "/healthz")

    def capabilities(self) -> dict:
        return self.request_json("GET", "/v1/capabilities")

    def evaluate_shard(self, payload: dict) -> list[dict]:
        """``POST /v1/evaluate-batch``: send one shard, consume the
        NDJSON stream fully, return the per-item records.

        Full consumption is deliberate: it leaves the connection clean
        for keep-alive reuse, and shards are small enough (a slice of
        one generation) that buffering them is free.
        """
        response = self._roundtrip("POST", "/v1/evaluate-batch", payload)
        if response.status != 200:
            self._raise_rejection(response)
        records: list[dict] = []
        try:
            while True:
                line = response.readline()
                if not line:
                    raise WorkerUnreachable(
                        f"{self.label}: batch stream ended without "
                        f"its done marker")
                record = json.loads(line)
                if record.get("done"):
                    # Drain the chunk terminator: leaving it unread
                    # would poison the next request on this keep-alive
                    # connection.
                    response.read()
                    return records
                if record.get("fatal"):
                    # Drain the rest of the stream so the connection
                    # stays reusable, then surface the failure.
                    response.read()
                    raise WorkerRejected(
                        f"{self.label}: {record.get('error')}")
                records.append(record)
        except WorkerRejected:
            raise  # stream already drained; the connection is clean
        except (OSError, http.client.HTTPException, ValueError) as exc:
            self._reset()
            raise WorkerUnreachable(
                f"{self.label}: batch stream broke: {exc}") from exc
        except FleetError:
            self._reset()
            raise

    def close(self) -> None:
        self._reset()
