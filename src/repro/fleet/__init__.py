"""Distributed fitness evaluation over ``repro serve`` workers.

The paper's evolution runs were distributed over 15–20 machines
(Section 3); this package is that tier of the reproduction.  A
:class:`FleetEvaluator` shards each generation's candidates across a
fleet of serve daemons — local child processes (``--fleet local:N``)
and/or remote hosts (``--fleet host:port,host:port``) — via the
batched ``POST /v1/evaluate-batch`` HTTP API, with work stealing,
retry/redispatch on worker loss, and results byte-identical to the
serial path.  See docs/FLEET.md.
"""

from repro.fleet.evaluator import FleetEvaluator
from repro.fleet.workers import (
    FleetError,
    FleetTarget,
    LocalWorkerProcess,
    WorkerClient,
    WorkerRejected,
    WorkerUnreachable,
    parse_fleet_spec,
)

__all__ = [
    "FleetEvaluator",
    "FleetError",
    "FleetTarget",
    "LocalWorkerProcess",
    "WorkerClient",
    "WorkerRejected",
    "WorkerUnreachable",
    "parse_fleet_spec",
]
