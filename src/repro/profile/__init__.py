"""Runtime profiling: edge counts, path frequencies, branch
predictability (feeds Table 4 features)."""

from repro.profile.profiler import (
    FunctionProfile,
    ModuleProfile,
    collect_profile,
)

__all__ = ["FunctionProfile", "ModuleProfile", "collect_profile"]
