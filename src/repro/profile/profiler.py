"""Runtime profiling.

IMPACT's hyperblock heuristic consumes profile information
(``exec_ratio`` comes "from a runtime profile"), and the paper adds
branch-predictability statistics by modifying the profiler.  This
module reproduces both: it executes a module under the functional
interpreter, counting CFG edges and simulating a 2-bit predictor per
static branch to measure its predictability.

Profiles are collected **on the training input** only; candidates are
then compiled with this fixed profile and evaluated on train or novel
inputs — matching the paper's methodology (the novel data set
"exercises different paths of control flow ... unused during
training").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.function import Module
from repro.ir.interp import Interpreter, InterpError, RunResult
from repro.machine.branch import TwoBitPredictor


@dataclass
class FunctionProfile:
    """Profile data for one function."""

    edge_counts: dict[tuple[str, str], int] = field(default_factory=dict)
    block_counts: dict[str, int] = field(default_factory=dict)
    branch_accuracy: dict[int, float] = field(default_factory=dict)
    branch_taken_ratio: dict[int, float] = field(default_factory=dict)
    #: average trip count per loop, keyed by header label; computed at
    #: profile time because later passes may rename back-edge sources.
    loop_trips: dict[str, float] = field(default_factory=dict)

    def edge_probability(self, source: str, target: str) -> float:
        """P(target | source executed); 0.5 when never observed."""
        total = self.block_counts.get(source, 0)
        if total == 0:
            return 0.5
        return self.edge_counts.get((source, target), 0) / total

    def count(self, label: str) -> int:
        return self.block_counts.get(label, 0)


@dataclass
class ModuleProfile:
    """Profiles for all functions plus whole-run statistics."""

    functions: dict[str, FunctionProfile] = field(default_factory=dict)
    total_steps: int = 0
    run_result: RunResult | None = None

    def function(self, name: str) -> FunctionProfile:
        return self.functions.setdefault(name, FunctionProfile())


def collect_profile(
    module: Module,
    inputs: dict[str, list[float | int]] | None = None,
    entry: str = "main",
    args: tuple[float | int, ...] = (),
    max_steps: int = 10_000_000,
) -> ModuleProfile:
    """Run ``module`` on ``inputs`` and collect the profile.

    ``inputs`` maps global array names to their contents (the benchmark
    dataset).
    """
    profile = ModuleProfile()
    predictor = TwoBitPredictor()
    taken_counts: dict[int, list[int]] = {}

    def on_edge(function_name: str, source: str, target: str) -> None:
        func_profile = profile.function(function_name)
        key = (source, target)
        func_profile.edge_counts[key] = func_profile.edge_counts.get(key, 0) + 1
        func_profile.block_counts[target] = (
            func_profile.block_counts.get(target, 0) + 1
        )

    def on_branch(function_name: str, uid: int, taken: bool) -> None:
        predictor.update(uid, taken)
        counts = taken_counts.setdefault(uid, [0, 0])
        counts[0] += 1
        if taken:
            counts[1] += 1

    interp = Interpreter(module, max_steps=max_steps,
                         on_edge=on_edge, on_branch=on_branch)
    for name, values in (inputs or {}).items():
        interp.set_global(name, values)
    try:
        result = interp.run(entry=entry, args=args)
    except InterpError:
        # A program that faults on the training input (e.g. division by
        # zero) still has to compile; the counts collected up to the
        # fault are the best profile available.
        result = None
    if result is not None:
        profile.run_result = result
        profile.total_steps = result.steps

    # Entry blocks are executed once per call but produce no edge event;
    # reconstruct their counts from outgoing edges.
    for name, function in module.functions.items():
        func_profile = profile.function(name)
        entry_label = function.block_order[0]
        outgoing = sum(
            count for (source, _target), count
            in func_profile.edge_counts.items() if source == entry_label
        )
        terminators_out = len(function.entry.successors())
        if terminators_out == 0:
            # Single-block function: count calls via steps heuristic —
            # leave zero; features degrade to the 0.5 default.
            outgoing = func_profile.block_counts.get(entry_label, 0)
        func_profile.block_counts[entry_label] = max(
            func_profile.block_counts.get(entry_label, 0), outgoing
        )

    # Loop trip-count estimates, keyed by (stable) header labels.
    from repro.ir.loops import find_loops

    for name, function in module.functions.items():
        func_profile = profile.function(name)
        for loop in find_loops(function):
            header_count = func_profile.block_counts.get(loop.header, 0)
            back_count = sum(
                func_profile.edge_counts.get((tail, loop.header), 0)
                for tail, _head in loop.back_edges
            )
            entries = max(1, header_count - back_count)
            func_profile.loop_trips[loop.header] = (
                back_count / entries if header_count else 0.0
            )

    accuracies = predictor.branch_accuracies()
    for name, function in module.functions.items():
        func_profile = profile.function(name)
        for instr in function.instructions():
            if instr.uid in accuracies:
                func_profile.branch_accuracy[instr.uid] = accuracies[instr.uid]
            if instr.uid in taken_counts:
                total, taken = taken_counts[instr.uid]
                func_profile.branch_taken_ratio[instr.uid] = (
                    taken / total if total else 0.5
                )
    return profile
