"""Containers for scheduled (VLIW) code.

After list scheduling, each block becomes a sequence of *bundles*; each
bundle is the set of operations issued in one cycle, stored in
dependence-safe order (an operation never precedes a same-cycle
operation it depends on, so the simulator may execute a bundle
sequentially and still observe VLIW semantics).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.ir.function import Function, Module
from repro.ir.instr import Instr, Opcode


@dataclass
class Bundle:
    """Operations issued together in one cycle."""

    instrs: list[Instr] = field(default_factory=list)

    def __iter__(self):
        return iter(self.instrs)

    def __len__(self) -> int:
        return len(self.instrs)


@dataclass
class ScheduledBlock:
    """A scheduled basic block (or hyperblock)."""

    label: str
    bundles: list[Bundle]

    @property
    def cycles(self) -> int:
        """Static schedule length."""
        return len(self.bundles)

    @property
    def op_count(self) -> int:
        return sum(len(bundle) for bundle in self.bundles)

    def terminator(self) -> Instr:
        for bundle in reversed(self.bundles):
            for instr in reversed(bundle.instrs):
                if instr.is_terminator:
                    return instr
        raise ValueError(f"scheduled block {self.label} lacks a terminator")

    def successors(self) -> tuple[str, ...]:
        term = self.terminator()
        if term.op is Opcode.RET:
            return ()
        return term.targets

    def flat_instructions(self) -> list[Instr]:
        return [instr for bundle in self.bundles for instr in bundle.instrs]


@dataclass
class ScheduledFunction:
    """All scheduled blocks of one function, in layout order."""

    name: str
    params: list
    frame_words: int
    blocks: dict[str, ScheduledBlock]
    block_order: list[str]

    @property
    def entry_label(self) -> str:
        return self.block_order[0]

    def static_cycles(self) -> int:
        return sum(self.blocks[label].cycles for label in self.block_order)

    def flat_instructions(self) -> list[Instr]:
        result = []
        for label in self.block_order:
            result.extend(self.blocks[label].flat_instructions())
        return result


@dataclass
class ScheduledModule:
    """The simulator's executable unit: scheduled functions plus the
    original module (for globals and layout)."""

    module: Module
    functions: dict[str, ScheduledFunction]

    def validate(self) -> None:
        for func in self.functions.values():
            for label in func.block_order:
                block = func.blocks[label]
                block.terminator()  # raises when missing
                for succ in block.successors():
                    if succ not in func.blocks:
                        raise ValueError(
                            f"{func.name}/{label} -> unknown block {succ}"
                        )

    def content_digest(self) -> str:
        """Stable content identity of the scheduled binary: everything
        simulation semantics can observe — bundle layout, operand text,
        branch targets, frame sizes, and the global data layout
        (insertion order decides base addresses, so it is part of the
        digest).  Process-local instruction uids are excluded, which
        makes recompiles — and distinct GP candidates that happen to
        reach identical schedules — collapse to the same digest."""
        digest = hashlib.sha256()
        for name in sorted(self.functions):
            func = self.functions[name]
            digest.update(
                f"func {name} frame={func.frame_words} "
                f"params={[str(p) for p in func.params]!r}\n".encode())
            for label in func.block_order:
                digest.update(f"{label}:\n".encode())
                for bundle in func.blocks[label].bundles:
                    digest.update(b"[")
                    for instr in bundle.instrs:
                        digest.update(str(instr).encode())
                        if instr.hazard:  # not in __str__, is semantic
                            digest.update(b"!h")
                        digest.update(b";")
                    digest.update(b"]\n")
        for gname, array in self.module.globals.items():
            digest.update(f"global {gname} size={array.size} "
                          f"type={array.elem_type.value} "
                          f"init={array.init!r}\n".encode())
        return digest.hexdigest()
