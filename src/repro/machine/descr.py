"""Machine descriptions (the paper's Table 3).

The default EPIC machine mirrors Table 3: 64 general-purpose, 64
floating-point and 256 predicate registers; 4 fully-pipelined integer
units (multiply 3 cycles, divide 8); 2 floating-point units (3-cycle
latency, divide 8); 2 memory units with a 3-level cache (2/7/35 cycle
hits) and buffered 1-cycle stores; 1 branch unit with a 2-bit predictor
and a 5-cycle misprediction penalty.

Two variants support the other case studies:

* :data:`REGALLOC_MACHINE` — same core with small register files, the
  role of Section 6's 32-register configuration ("to more effectively
  stress the register allocator"; see the note at its definition for
  why the equivalent pressure point sits lower here).
* :data:`ITANIUM_MACHINE` — the Itanium-I-flavoured target of the
  prefetching study, with a smaller L1 so prefetching has visible
  effect, and a wider machine (6-issue).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.instr import FUClass, Instr, Opcode


@dataclass(frozen=True)
class CacheLevelConfig:
    """Geometry and hit latency of one cache level."""

    name: str
    size_bytes: int
    line_bytes: int
    assoc: int
    latency: int

    def __post_init__(self) -> None:
        sets = self.size_bytes // (self.line_bytes * self.assoc)
        if sets <= 0 or sets & (sets - 1):
            raise ValueError(
                f"{self.name}: set count {sets} must be a positive power of 2"
            )


@dataclass(frozen=True)
class MachineDescription:
    """Everything the scheduler, allocator and simulator need to agree on."""

    name: str
    int_units: int = 4
    fp_units: int = 2
    mem_units: int = 2
    branch_units: int = 1
    issue_width: int = 6
    gp_registers: int = 64
    fp_registers: int = 64
    pred_registers: int = 256
    mispredict_penalty: int = 5
    memory_latency: int = 120
    cache_levels: tuple[CacheLevelConfig, ...] = (
        CacheLevelConfig("L1", 16 * 1024, 64, 4, 2),
        CacheLevelConfig("L2", 256 * 1024, 64, 8, 7),
        CacheLevelConfig("L3", 2 * 1024 * 1024, 64, 8, 35),
    )
    #: Per-opcode latency overrides; anything absent falls back to class
    #: defaults below.
    latency_overrides: dict[Opcode, int] = field(default_factory=dict)

    def units_for(self, fu_class: FUClass) -> int:
        return {
            FUClass.INT: self.int_units,
            FUClass.FP: self.fp_units,
            FUClass.MEM: self.mem_units,
            FUClass.BRANCH: self.branch_units,
        }[fu_class]

    @property
    def load_latency(self) -> int:
        """The latency the static scheduler assumes for loads (L1 hit)."""
        return self.cache_levels[0].latency

    def latency(self, instr: Instr) -> int:
        """Static (best-case) latency of one instruction."""
        override = self.latency_overrides.get(instr.op)
        if override is not None:
            return override
        op = instr.op
        if op is Opcode.MUL:
            return 3
        if op in (Opcode.DIV, Opcode.REM):
            return 8
        if op in (Opcode.FDIV, Opcode.FSQRT):
            return 8
        if instr.fu_class is FUClass.FP:
            return 3
        if op is Opcode.LOAD:
            return self.load_latency
        if op is Opcode.STORE:
            return 1  # buffered
        if op is Opcode.PREFETCH:
            return 1
        return 1

    def slots(self) -> dict[FUClass, int]:
        return {
            FUClass.INT: self.int_units,
            FUClass.FP: self.fp_units,
            FUClass.MEM: self.mem_units,
            FUClass.BRANCH: self.branch_units,
        }


#: Table 3's EPIC machine (approximates Intel Itanium).
DEFAULT_EPIC = MachineDescription(name="epic-default")

#: Section 6's register-pressure configuration.  The paper halves the
#: register files (64 -> 32) "to more effectively stress the register
#: allocator"; our MiniC benchmark functions carry fewer simultaneously
#: live scalars than Trimaran's whole-procedure IR, so the equivalent
#: pressure point sits lower — 10 registers produces the same spills-
#: on-most-benchmarks regime that 32 did for the paper (see DESIGN.md).
REGALLOC_MACHINE = MachineDescription(
    name="epic-regalloc-10",
    gp_registers=10,
    fp_registers=10,
)

#: Secondary cross-validation target for Figure 12: even fewer
#: registers, half the integer units and a smaller L1, so the
#: allocator's spill decisions interact with a different resource
#: balance.
REGALLOC_MACHINE_B = MachineDescription(
    name="epic-regalloc-9b",
    gp_registers=9,
    fp_registers=9,
    int_units=2,
    issue_width=4,
    cache_levels=(
        CacheLevelConfig("L1", 8 * 1024, 64, 2, 2),
        CacheLevelConfig("L2", 128 * 1024, 64, 8, 7),
        CacheLevelConfig("L3", 1024 * 1024, 64, 8, 35),
    ),
)

#: Issue-constrained EPIC for the scheduling extension case study: a
#: dual-issue machine where the list scheduler's pick order actually
#: determines the critical path (on the wide Table 3 machine every
#: ready operation issues immediately and the priority is moot).
SCHEDULING_MACHINE = MachineDescription(
    name="epic-narrow-2issue",
    int_units=1,
    fp_units=1,
    mem_units=1,
    branch_units=1,
    issue_width=2,
)

#: The Itanium-I-like machine of case study III.  A small L1 makes the
#: prefetch decision consequential for array kernels.
ITANIUM_MACHINE = MachineDescription(
    name="itanium-like",
    issue_width=6,
    mispredict_penalty=9,
    memory_latency=100,
    cache_levels=(
        CacheLevelConfig("L1", 4 * 1024, 64, 2, 2),
        CacheLevelConfig("L2", 96 * 1024, 64, 6, 7),
        CacheLevelConfig("L3", 1024 * 1024, 64, 8, 21),
    ),
)

#: Figure 16's second target: larger caches and cheaper memory, so
#: aggressive prefetching costs little — the configuration where the
#: paper's generality caveat shows up.
ITANIUM_MACHINE_B = MachineDescription(
    name="itanium-like-b",
    issue_width=6,
    mispredict_penalty=9,
    memory_latency=160,
    mem_units=4,
    cache_levels=(
        CacheLevelConfig("L1", 2 * 1024, 64, 2, 2),
        CacheLevelConfig("L2", 64 * 1024, 64, 8, 9),
        CacheLevelConfig("L3", 512 * 1024, 64, 8, 27),
    ),
)
