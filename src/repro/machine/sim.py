"""Cycle-level simulator for scheduled EPIC code.

Executes a :class:`~repro.machine.vliw.ScheduledModule`, modelling the
Table 3 machine:

* one cycle per issued bundle (a block's bundle count is charged when
  the block is entered — terminators are always in the final bundle);
* loads probe the cache hierarchy; latency beyond the scheduler's L1
  assumption stalls the pipeline (stall-on-miss in-order model);
* conditional branches consult the 2-bit predictor; a misprediction
  costs ``mispredict_penalty`` cycles;
* predicated (guarded) operations whose guard is false are squashed —
  they consume their issue slot but have no architectural effect;
* stores are buffered (1 cycle, no stall); prefetches charge nothing
  but occupy their memory slot and may pollute the caches.

Implementation note: for speed, each scheduled block is translated
once into a generated Python function over a dense register file
(``R[i]``), with immediates and global addresses baked in.  Generated
code calls the same arithmetic helpers as the functional interpreter
(``wrap_int`` / ``int_div`` / ``int_rem``), so the two engines cannot
diverge semantically; the integration suite asserts output equality on
every benchmark.

The compiled code objects are cached at module level, keyed by the
identity of the scheduled function (a content digest of its generated
source plus layout-independent metadata).  Per-instance state — the
simulator, its memory, caches, predictor and machine constants — is
*not* baked into the generated namespace; each block compiles to a
``__bind`` factory whose closure binds that state at Simulator-
construction time.  Repeated simulations of the same binary (every
baseline run, every fitness-memo miss repeated across worker
processes) therefore skip translation + ``compile`` entirely and only
pay a cheap closure bind.

Fitness noise (Section 7.1): real-machine measurements are noisy; the
simulator can inject multiplicative Gaussian noise into the final
cycle count to reproduce the paper's point that GP tolerates noise
smaller than the attainable speedups.
"""

from __future__ import annotations

import hashlib
import random
import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro import obs
from repro.ir.function import STACK_BASE
from repro.ir.instr import Instr, Opcode, Rel
from repro.ir.interp import int_div, int_rem, wrap_int
from repro.ir.values import Imm, PReg, StackSlot, SymRef, VReg
from repro.machine.branch import TwoBitPredictor
from repro.machine.cache import CacheHierarchy
from repro.machine.descr import MachineDescription
from repro.machine.vliw import ScheduledFunction, ScheduledModule


@dataclass
class SimResult:
    """Timing and observable outcome of one simulated execution."""

    cycles: int
    return_value: float | int | None
    outputs: list[float | int]
    dynamic_ops: int = 0
    squashed_ops: int = 0
    bundles: int = 0
    memory_stall_cycles: int = 0
    branch_stall_cycles: int = 0
    load_count: int = 0
    l1_hit_rate: float = 0.0
    branch_accuracy: float = 0.0
    prefetch_count: int = 0

    def output_signature(self) -> tuple:
        return (self.return_value, tuple(self.outputs))


class SimError(RuntimeError):
    """Runtime fault during timing simulation."""


_REL_PY = {
    Rel.EQ: "==", Rel.NE: "!=", Rel.LT: "<",
    Rel.LE: "<=", Rel.GT: ">", Rel.GE: ">=",
}

#: marker distinguishing a return from a jump in generated block code
_RET = ("\x00ret",)


def _checked_idiv(a: int, b: int) -> int:
    if b == 0:
        raise SimError("integer division by zero")
    return wrap_int(int_div(a, b))


def _checked_irem(a: int, b: int) -> int:
    if b == 0:
        raise SimError("integer remainder by zero")
    return wrap_int(int_rem(a, b))


def _checked_fdiv(a: float, b: float) -> float:
    if b == 0.0:
        raise SimError("float division by zero")
    return a / b


@dataclass
class _CompiledFunction:
    name: str
    param_indices: list[int]
    reg_count: int
    frame_words: int
    entry: str
    blocks: dict[str, object]  # label -> generated callable


@dataclass
class _FunctionCode:
    """Instance-independent compilation artifact: one ``__bind``
    factory per block, ready to close over a Simulator's state."""

    param_indices: list[int]
    reg_count: int
    binders: dict[str, object]  # label -> bind factory


#: Names and constants shared by all generated code; nothing here
#: depends on a Simulator instance, so exec'ing into this namespace
#: once per *scheduled function* (not per simulation) is sound.
_STATIC_NAMESPACE = {
    "wi": wrap_int,
    "idiv": _checked_idiv,
    "irem": _checked_irem,
    "fdiv": _checked_fdiv,
    "RET": _RET[0],
    "SimError": SimError,
}

#: Cached code, keyed by scheduled-function identity (source digest +
#: metadata).  Bounded LRU: a long-running GP search compiles many
#: distinct candidate binaries, and code objects are not tiny.
#: Shared by every thread in the process (the serving daemon runs
#: simulations from a worker pool), so all access goes through
#: ``_CODEGEN_LOCK``; the expensive exec/compile step itself runs
#: outside the lock — a racing double-translate is benign, last
#: writer wins with an identical code object.
_CODEGEN_CACHE: OrderedDict[tuple, _FunctionCode] = OrderedDict()
_CODEGEN_CACHE_CAPACITY = 512
_CODEGEN_LOCK = threading.Lock()
_codegen_hits = 0
_codegen_misses = 0


def codegen_cache_stats() -> dict[str, int]:
    with _CODEGEN_LOCK:
        return {
            "hits": _codegen_hits,
            "misses": _codegen_misses,
            "entries": len(_CODEGEN_CACHE),
        }


def clear_codegen_cache() -> None:
    global _codegen_hits, _codegen_misses
    with _CODEGEN_LOCK:
        _CODEGEN_CACHE.clear()
        _codegen_hits = 0
        _codegen_misses = 0


class Simulator:
    """Executes scheduled code with cycle accounting."""

    def __init__(
        self,
        scheduled: ScheduledModule,
        machine: MachineDescription,
        max_cycles: int = 100_000_000,
        noise_stddev: float = 0.0,
        noise_seed: int = 0,
    ) -> None:
        self.scheduled = scheduled
        self.machine = machine
        self.max_cycles = max_cycles
        self.noise_stddev = noise_stddev
        self._noise_rng = random.Random(noise_seed)

        self.caches = CacheHierarchy(machine)
        self.predictor = TwoBitPredictor()
        self.memory: dict[int, float | int] = {}
        self.outputs: list[float | int] = []
        self.cycles = 0
        self.dynamic_ops = 0
        self.squashed_ops = 0
        self.bundles = 0
        self.memory_stall = 0
        self.branch_stall = 0
        self._sp = STACK_BASE
        self._layout = scheduled.module.layout()
        self._compiled: dict[str, _CompiledFunction] = {}
        for name, array in scheduled.module.globals.items():
            base = self._layout[name]
            for index, value in enumerate(array.init):
                self.memory[base + index] = value

    # -- public API -----------------------------------------------------------
    def set_global(self, name: str, values: list[float | int],
                   offset: int = 0) -> None:
        array = self.scheduled.module.globals.get(name)
        if array is None:
            raise KeyError(f"no global named {name!r}")
        if offset + len(values) > array.size:
            raise ValueError(f"input overflows global {name}")
        base = self._layout[name]
        for index, value in enumerate(values):
            self.memory[base + offset + index] = value

    def read_global(self, name: str, count: int | None = None) -> list:
        """Final contents of a global array (unwritten words read 0),
        mirroring ``Interpreter.read_global`` for differential checks."""
        array = self.scheduled.module.globals[name]
        base = self._layout[name]
        length = array.size if count is None else count
        return [self.memory.get(base + i, 0) for i in range(length)]

    def run(self, entry: str = "main",
            args: tuple[float | int, ...] = ()) -> SimResult:
        if entry not in self.scheduled.functions:
            raise SimError(f"no scheduled function {entry!r}")
        with obs.span("sim:run", entry=entry,
                      module=self.scheduled.module.name):
            value = self._call(entry, tuple(args))
        cycles = self.cycles
        if self.noise_stddev > 0.0:
            factor = max(0.5, self._noise_rng.gauss(1.0, self.noise_stddev))
            cycles = int(round(cycles * factor))
        level1 = self.caches.levels[0].stats
        result = SimResult(
            cycles=cycles,
            return_value=value,
            outputs=list(self.outputs),
            dynamic_ops=self.dynamic_ops,
            squashed_ops=self.squashed_ops,
            bundles=self.bundles,
            memory_stall_cycles=self.memory_stall,
            branch_stall_cycles=self.branch_stall,
            load_count=self.caches.loads,
            l1_hit_rate=level1.hit_rate,
            branch_accuracy=self.predictor.stats.accuracy,
            prefetch_count=self.caches.prefetches,
        )
        registry = obs.metrics()
        if registry is not None:
            self._record_metrics(registry, result, level1)
        return result

    def _record_metrics(self, registry, result: SimResult, level1) -> None:
        """Aggregate counters, recorded once per run() — never in the
        generated inner-loop code, so the fast path stays untouched."""
        registry.inc("sim.runs")
        registry.inc("sim.cycles", result.cycles)
        registry.inc("sim.dynamic_ops", result.dynamic_ops)
        registry.inc("sim.squashed_ops", result.squashed_ops)
        registry.inc("sim.bundles", result.bundles)
        registry.inc("sim.memory_stall_cycles", result.memory_stall_cycles)
        registry.inc("sim.branch_stall_cycles", result.branch_stall_cycles)
        registry.inc("sim.loads", result.load_count)
        registry.inc("sim.l1_hits", level1.hits)
        registry.inc("sim.l1_misses", level1.misses)
        registry.inc("sim.prefetches", result.prefetch_count)
        registry.inc("sim.branch_predictions", self.predictor.stats.predictions)
        registry.inc("sim.branch_mispredicts",
                     self.predictor.stats.mispredictions)

    # -- execution ---------------------------------------------------------------
    def _call(self, name: str, args: tuple):
        compiled = self._compiled.get(name)
        if compiled is None:
            compiled = self._compile_function(self.scheduled.functions[name])
            self._compiled[name] = compiled
        if len(args) != len(compiled.param_indices):
            raise SimError(f"{name} expects {len(compiled.param_indices)} args")
        registers: list = [0] * compiled.reg_count
        for index, arg in zip(compiled.param_indices, args):
            registers[index] = arg
        frame_base = self._sp
        self._sp += compiled.frame_words
        try:
            label = compiled.entry
            blocks = compiled.blocks
            while True:
                outcome = blocks[label](registers, frame_base)
                if type(outcome) is str:
                    label = outcome
                    continue
                return outcome[1]
        finally:
            self._sp = frame_base

    # -- translation ---------------------------------------------------------------
    def _operand_expr(self, operand, reg_index: dict) -> str:
        if isinstance(operand, (VReg, PReg)):
            return f"R[{reg_index[operand]}]"
        if isinstance(operand, Imm):
            return repr(operand.value)
        if isinstance(operand, SymRef):
            return repr(self._layout[operand.symbol])
        if isinstance(operand, StackSlot):
            return f"(fb + {operand.offset})"
        raise SimError(f"cannot translate operand {operand!r}")

    def _instr_lines(self, instr: Instr, reg_index: dict,
                     branch_keys: dict) -> list[str]:
        """Python source lines implementing one instruction."""
        op = instr.op
        src = lambda i: self._operand_expr(instr.srcs[i], reg_index)
        dest = (f"R[{reg_index[instr.dest]}]"
                if instr.dest is not None else None)

        if op is Opcode.MOV or op is Opcode.LEA:
            return [f"{dest} = {src(0)}"]
        if op is Opcode.ADD:
            return [f"{dest} = wi({src(0)} + {src(1)})"]
        if op is Opcode.SUB:
            return [f"{dest} = wi({src(0)} - {src(1)})"]
        if op is Opcode.MUL:
            return [f"{dest} = wi({src(0)} * {src(1)})"]
        if op is Opcode.DIV:
            return [f"{dest} = idiv({src(0)}, {src(1)})"]
        if op is Opcode.REM:
            return [f"{dest} = irem({src(0)}, {src(1)})"]
        if op is Opcode.NEG:
            return [f"{dest} = wi(-{src(0)})"]
        if op is Opcode.AND:
            return [f"{dest} = wi({src(0)} & {src(1)})"]
        if op is Opcode.OR:
            return [f"{dest} = wi({src(0)} | {src(1)})"]
        if op is Opcode.XOR:
            return [f"{dest} = wi({src(0)} ^ {src(1)})"]
        if op is Opcode.SHL:
            return [f"{dest} = wi({src(0)} << ({src(1)} & 63))"]
        if op is Opcode.SHR:
            return [f"{dest} = wi({src(0)} >> ({src(1)} & 63))"]
        if op is Opcode.FADD:
            return [f"{dest} = {src(0)} + {src(1)}"]
        if op is Opcode.FSUB:
            return [f"{dest} = {src(0)} - {src(1)}"]
        if op is Opcode.FMUL:
            return [f"{dest} = {src(0)} * {src(1)}"]
        if op is Opcode.FDIV:
            return [f"{dest} = fdiv({src(0)}, {src(1)})"]
        if op is Opcode.FNEG:
            return [f"{dest} = -{src(0)}"]
        if op is Opcode.FSQRT:
            return [f"{dest} = abs({src(0)}) ** 0.5"]
        if op is Opcode.ITOF:
            return [f"{dest} = float({src(0)})"]
        if op is Opcode.FTOI:
            return [f"{dest} = wi(int({src(0)}))"]
        if op is Opcode.CMP:
            return [f"{dest} = 1 if {src(0)} {_REL_PY[instr.rel]} {src(1)} "
                    f"else 0"]
        if op is Opcode.CMPP:
            dest2 = f"R[{reg_index[instr.dest2]}]"
            return [
                f"_t = {src(0)} {_REL_PY[instr.rel]} {src(1)}",
                f"{dest} = _t",
                f"{dest2} = not _t",
            ]
        if op is Opcode.LOAD:
            return [
                f"_a = {src(0)}",
                "_l = LOAD(_a)",
                "if _l > L1:",
                "    S.cycles += _l - L1",
                "    S.memory_stall += _l - L1",
                f"{dest} = MEM.get(_a, 0)",
            ]
        if op is Opcode.STORE:
            return [
                f"_a = {src(0)}",
                "STORE(_a)",
                f"MEM[_a] = {src(1)}",
            ]
        if op is Opcode.PREFETCH:
            return [f"PREFETCH({src(0)})"]
        if op is Opcode.OUT:
            return [f"OUTS.append({src(0)})"]
        if op is Opcode.CALL:
            arguments = ", ".join(src(i) for i in range(len(instr.srcs)))
            call = f"CALL({instr.callee!r}, ({arguments}{',' if instr.srcs else ''}))"
            if dest is not None:
                return [f"{dest} = {call}"]
            return [call]
        if op is Opcode.BR:
            return [
                f"_t = True if {src(0)} else False",
                f"if not UPDATE({branch_keys[instr.uid]!r}, _t):",
                "    S.cycles += PEN",
                "    S.branch_stall += PEN",
                f"return {instr.targets[0]!r} if _t else {instr.targets[1]!r}",
            ]
        if op is Opcode.JMP:
            return [f"return {instr.targets[0]!r}"]
        if op is Opcode.RET:
            value = src(0) if instr.srcs else "None"
            return [f"return (RET, {value})"]
        raise SimError(f"unimplemented opcode {op}")  # pragma: no cover

    def _translate_function(
        self, function: ScheduledFunction
    ) -> tuple[str, list[int], int, dict[str, str]]:
        """Generate instance-independent Python source for a scheduled
        function: one ``__bind`` factory per block whose closure
        parameters carry all per-simulation state.  Returns the source
        blob, the parameter register indices, the register count, and
        the label -> factory-name map."""
        reg_index: dict = {}

        def index_of(reg) -> int:
            slot = reg_index.get(reg)
            if slot is None:
                slot = len(reg_index)
                reg_index[reg] = slot
            return slot

        for param in function.params:
            index_of(param)
        # Deterministic branch-predictor keys: instruction uids are a
        # process-global counter, so baking them into generated code
        # would make recompiles of the same binary cache-miss.  Keys
        # need only be unique per module (function names are), stable
        # across recompiles, and injective per branch.
        branch_keys: dict = {}
        for instr in function.flat_instructions():
            for reg in instr.reads():
                index_of(reg)
            for reg in instr.writes():
                index_of(reg)
            if instr.op is Opcode.BR:
                branch_keys[instr.uid] = (
                    f"{function.name}:{len(branch_keys)}"
                )

        chunks: list[str] = []
        binder_names: dict[str, str] = {}
        for position, label in enumerate(function.block_order):
            block = function.blocks[label]
            instrs = block.flat_instructions()
            lines = [
                "def __block(R, fb):",
                f"    S.cycles += {block.cycles}",
                f"    S.bundles += {block.cycles}",
                f"    S.dynamic_ops += {block.op_count}",
                "    if S.cycles > S.max_cycles:",
                "        raise SimError('cycle budget exceeded')",
            ]
            for instr in instrs:
                instr_lines = self._instr_lines(instr, reg_index, branch_keys)
                if instr.guard is not None:
                    guard_expr = f"R[{reg_index[instr.guard]}]"
                    lines.append(f"    if {guard_expr}:")
                    lines.extend(f"        {line}" for line in instr_lines)
                    lines.append("    else:")
                    lines.append("        S.squashed_ops += 1")
                    lines.append("        S.dynamic_ops -= 1")
                else:
                    lines.extend(f"    {line}" for line in instr_lines)
            if not instrs or not instrs[-1].is_terminator:
                raise SimError(f"block {label} lacks a terminator")
            binder = f"__bind_{position}"
            binder_names[label] = binder
            chunk = [
                f"def {binder}(S, MEM, OUTS, LOAD, STORE, PREFETCH, "
                "UPDATE, CALL, L1, PEN):",
            ]
            chunk.extend(f"    {line}" for line in lines)
            chunk.append("    return __block")
            chunks.append("\n".join(chunk))

        source = "\n\n".join(chunks)
        param_indices = [reg_index[param] for param in function.params]
        return source, param_indices, len(reg_index), binder_names

    def _function_code(self, function: ScheduledFunction) -> _FunctionCode:
        """Translate-or-recall: the exec/compile step is cached at
        module level, keyed by the function's content identity."""
        global _codegen_hits, _codegen_misses
        source, param_indices, reg_count, binder_names = (
            self._translate_function(function)
        )
        key = (
            function.name,
            function.entry_label,
            function.frame_words,
            len(function.params),
            hashlib.sha256(source.encode()).hexdigest(),
        )
        with _CODEGEN_LOCK:
            cached = _CODEGEN_CACHE.get(key)
            if cached is not None:
                _CODEGEN_CACHE.move_to_end(key)
                _codegen_hits += 1
                obs.inc("sim.codegen_hits")
                return cached
            _codegen_misses += 1
        obs.inc("sim.codegen_misses")
        # Translate outside the lock: exec/compile is the expensive
        # part, and two threads racing on the same key produce
        # identical code objects (last writer wins benignly).
        local_ns: dict = {}
        exec(compile(source, f"<sim:{function.name}>", "exec"),
             _STATIC_NAMESPACE, local_ns)
        code = _FunctionCode(
            param_indices=param_indices,
            reg_count=reg_count,
            binders={label: local_ns[name]
                     for label, name in binder_names.items()},
        )
        with _CODEGEN_LOCK:
            _CODEGEN_CACHE[key] = code
            while len(_CODEGEN_CACHE) > _CODEGEN_CACHE_CAPACITY:
                _CODEGEN_CACHE.popitem(last=False)
        return code

    def _compile_function(self,
                          function: ScheduledFunction) -> _CompiledFunction:
        code = self._function_code(function)
        bindings = (
            self,
            self.memory,
            self.outputs,
            self.caches.load,
            self.caches.store,
            self.caches.prefetch,
            self.predictor.update,
            self._call,
            self.machine.load_latency,
            self.machine.mispredict_penalty,
        )
        return _CompiledFunction(
            name=function.name,
            param_indices=list(code.param_indices),
            reg_count=code.reg_count,
            frame_words=function.frame_words,
            entry=function.entry_label,
            blocks={label: binder(*bindings)
                    for label, binder in code.binders.items()},
        )
