"""Two-bit dynamic branch predictor.

The paper adds "a 2-bit dynamic branch predictor to the simulator" with
a 5-cycle misprediction penalty (Table 3).  Each static branch gets a
saturating 2-bit counter (00 strongly-not-taken .. 11 strongly-taken),
keyed by the branch instruction's uid (a perfect-BTB assumption — no
aliasing between branches, which is the generous variant and keeps the
feature meaningful for small benchmarks).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class BranchStats:
    predictions: int = 0
    mispredictions: int = 0

    @property
    def accuracy(self) -> float:
        if self.predictions == 0:
            return 1.0
        return 1.0 - self.mispredictions / self.predictions


class TwoBitPredictor:
    """Per-branch saturating counters, initialized weakly-taken."""

    INIT = 2  # weakly taken

    def __init__(self) -> None:
        self._counters: dict[int, int] = {}
        self.stats = BranchStats()
        self._per_branch: dict[int, BranchStats] = {}

    def predict(self, branch_uid: int) -> bool:
        return self._counters.get(branch_uid, self.INIT) >= 2

    def update(self, branch_uid: int, taken: bool) -> bool:
        """Record the outcome; returns True when the prediction was
        correct."""
        counter = self._counters.get(branch_uid, self.INIT)
        predicted = counter >= 2
        correct = predicted == taken
        if taken:
            counter = min(3, counter + 1)
        else:
            counter = max(0, counter - 1)
        self._counters[branch_uid] = counter

        self.stats.predictions += 1
        per_branch = self._per_branch.setdefault(branch_uid, BranchStats())
        per_branch.predictions += 1
        if not correct:
            self.stats.mispredictions += 1
            per_branch.mispredictions += 1
        return correct

    def accuracy_of(self, branch_uid: int) -> float:
        """Measured predictability of one static branch (1.0 = perfect)."""
        return self._per_branch.get(branch_uid, BranchStats()).accuracy

    def branch_accuracies(self) -> dict[int, float]:
        return {uid: stats.accuracy
                for uid, stats in self._per_branch.items()}
