"""Cache hierarchy model.

Set-associative, LRU, write-back/write-allocate levels with inclusive
fills.  Stores are buffered (Table 3: "stores are buffered, and thus
require 1 cycle") — a store updates the hierarchy but never stalls.

Prefetches fill the hierarchy like loads but charge no latency; their
cost is the memory-unit issue slot they occupy plus the *pollution*
they may cause by evicting live lines — exactly the trade-off the
prefetching case study's priority function must learn.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.ir.values import WORD_BYTES
from repro.machine.descr import CacheLevelConfig, MachineDescription


@dataclass
class CacheStats:
    accesses: int = 0
    hits: int = 0
    misses: int = 0
    prefetch_fills: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class CacheLevel:
    """One set-associative level with true-LRU replacement."""

    def __init__(self, config: CacheLevelConfig) -> None:
        self.config = config
        self.sets_count = config.size_bytes // (config.line_bytes * config.assoc)
        self._index_mask = self.sets_count - 1
        self._line_shift = config.line_bytes.bit_length() - 1
        # Each set: OrderedDict tag -> None, most-recent last.
        self._sets: list[OrderedDict] = [OrderedDict()
                                         for _ in range(self.sets_count)]
        self.stats = CacheStats()

    def _locate(self, byte_addr: int) -> tuple[int, int]:
        line = byte_addr >> self._line_shift
        return line & self._index_mask, line >> (
            self.sets_count.bit_length() - 1
        )

    def probe(self, byte_addr: int) -> bool:
        """Look up without updating statistics; refreshes LRU on hit."""
        index, tag = self._locate(byte_addr)
        cache_set = self._sets[index]
        if tag in cache_set:
            cache_set.move_to_end(tag)
            return True
        return False

    def access(self, byte_addr: int) -> bool:
        """Demand access: returns hit/miss and updates stats."""
        self.stats.accesses += 1
        if self.probe(byte_addr):
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        return False

    def fill(self, byte_addr: int, from_prefetch: bool = False) -> None:
        """Install the line, evicting LRU if needed."""
        index, tag = self._locate(byte_addr)
        cache_set = self._sets[index]
        if tag in cache_set:
            cache_set.move_to_end(tag)
            return
        if len(cache_set) >= self.config.assoc:
            cache_set.popitem(last=False)
        cache_set[tag] = None
        if from_prefetch:
            self.stats.prefetch_fills += 1

    def flush(self) -> None:
        for cache_set in self._sets:
            cache_set.clear()


class CacheHierarchy:
    """L1/L2/L3 + memory, with Table 3 latencies."""

    def __init__(self, machine: MachineDescription) -> None:
        self.machine = machine
        self.levels = [CacheLevel(config) for config in machine.cache_levels]
        self.loads = 0
        self.stores = 0
        self.prefetches = 0

    @staticmethod
    def _to_bytes(word_addr: int) -> int:
        return word_addr * WORD_BYTES

    def load(self, word_addr: int) -> int:
        """Demand load: returns total latency in cycles and fills all
        missed levels (inclusive hierarchy)."""
        self.loads += 1
        byte_addr = self._to_bytes(word_addr)
        for depth, level in enumerate(self.levels):
            if level.access(byte_addr):
                for upper in self.levels[:depth]:
                    upper.fill(byte_addr)
                return level.config.latency
        for level in self.levels:
            level.fill(byte_addr)
        return self.machine.memory_latency

    def store(self, word_addr: int) -> int:
        """Buffered store: 1 cycle, allocates into L1."""
        self.stores += 1
        byte_addr = self._to_bytes(word_addr)
        # Write-allocate without charging miss latency (buffered).
        for depth, level in enumerate(self.levels):
            if level.probe(byte_addr):
                for upper in self.levels[:depth]:
                    upper.fill(byte_addr)
                return 1
        for level in self.levels:
            level.fill(byte_addr)
        return 1

    def prefetch(self, word_addr: int) -> None:
        """Software prefetch: fills every level, charges no latency."""
        self.prefetches += 1
        byte_addr = self._to_bytes(word_addr)
        for level in self.levels:
            if not level.probe(byte_addr):
                level.fill(byte_addr, from_prefetch=True)

    def would_hit_l1(self, word_addr: int) -> bool:
        """Non-destructive L1 presence check (used by tests)."""
        level = self.levels[0]
        index, tag = level._locate(self._to_bytes(word_addr))
        return tag in level._sets[index]

    def flush(self) -> None:
        for level in self.levels:
            level.flush()
