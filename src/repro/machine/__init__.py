"""EPIC machine model: description (Table 3), caches, branch predictor,
VLIW containers, and the cycle-level simulator."""

from repro.machine.branch import BranchStats, TwoBitPredictor
from repro.machine.cache import CacheHierarchy, CacheLevel, CacheStats
from repro.machine.descr import (
    DEFAULT_EPIC,
    ITANIUM_MACHINE,
    ITANIUM_MACHINE_B,
    REGALLOC_MACHINE,
    REGALLOC_MACHINE_B,
    CacheLevelConfig,
    MachineDescription,
)
from repro.machine.sim import SimError, SimResult, Simulator
from repro.machine.vliw import (
    Bundle,
    ScheduledBlock,
    ScheduledFunction,
    ScheduledModule,
)

__all__ = [
    "BranchStats",
    "Bundle",
    "CacheHierarchy",
    "CacheLevel",
    "CacheLevelConfig",
    "CacheStats",
    "DEFAULT_EPIC",
    "ITANIUM_MACHINE",
    "ITANIUM_MACHINE_B",
    "MachineDescription",
    "REGALLOC_MACHINE",
    "REGALLOC_MACHINE_B",
    "ScheduledBlock",
    "ScheduledFunction",
    "ScheduledModule",
    "SimError",
    "SimResult",
    "Simulator",
    "TwoBitPredictor",
]
