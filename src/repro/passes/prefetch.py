"""Software data prefetching (case study III).

ORC extends Mowry's algorithm: loop memory references are analysed, and
a **Boolean-valued priority function** assigns a confidence to
prefetching each address; later passes insert ``prefetch`` instructions
for the confident ones.  The baseline confidence "is simply based upon
how well the compiler can estimate loop trip counts".

Our pass:

1. finds loops and their induction variables (``i = i + C`` updates in
   the loop body);
2. finds loads whose address is ``base + f(i)`` with ``f`` affine in an
   induction variable (a strided stream);
3. builds a feature environment per candidate (trip-count estimate from
   the profile, static trip count when bounds are constant, stride,
   loop depth, body size, ...);
4. asks the Boolean hook whether to prefetch; if yes, inserts
   ``prefetch [addr + stride * lookahead]`` next to the load, where the
   lookahead covers the memory latency at the loop's estimated cycles
   per iteration (Mowry's prefetch-distance rule).

The machine charges no latency for prefetches, but they occupy memory
issue slots and can evict useful lines — over-prefetching is punished
by the simulator the same way the paper observed ORC's overzealous
prefetching punishing real Itanium runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.ir.function import Function, Module
from repro.ir.instr import Instr, Opcode, prefetch
from repro.ir.loops import Loop, find_loops
from repro.ir.values import Imm, INT, VReg
from repro.machine.descr import MachineDescription
from repro.profile.profiler import FunctionProfile

#: Boolean priority hook: feature env -> prefetch this access?
PrefetchPriority = Callable[[Mapping[str, float | bool]], bool]

PREFETCH_REAL_FEATURES = (
    "est_trip_count",   # profiled average iterations per entry
    "static_trip",      # statically exact trip count (0 if unknown)
    "stride",           # words advanced per iteration
    "loop_depth",       # nesting depth of the containing loop
    "body_ops",         # instructions in the loop body
    "mem_ops",          # memory operations in the loop body
    "line_reuse",       # iterations per cache line (line/stride), >=1
    "lookahead",        # chosen prefetch distance, iterations
)
PREFETCH_BOOL_FEATURES = (
    "trip_known",       # bounds statically constant
    "is_inner",         # innermost loop
    "unit_stride",      # |stride| == 1
)


def orc_confidence(env: Mapping[str, float | bool]) -> bool:
    """ORC's baseline: prefetch when the trip count is estimable and
    the loop is long enough to amortize the instructions.

    Thresholds sit at 7.5 so the expression form of this baseline
    (:data:`repro.metaopt.baselines.ORC_PREFETCH_TEXT`) is exactly
    equivalent; for integral trip counts this is the classic
    ">= 8 iterations" rule."""
    if env["trip_known"]:
        return env["static_trip"] > 7.5
    return env["est_trip_count"] > 7.5


def never_prefetch(env: Mapping[str, float | bool]) -> bool:
    """The 'shut prefetching off' comparator from Section 7.2.1."""
    return False


def always_prefetch(env: Mapping[str, float | bool]) -> bool:
    """Maximally aggressive comparator (for ablations)."""
    return True


@dataclass
class PrefetchCandidate:
    loop: Loop
    block_label: str
    load_index: int
    addr_reg: VReg
    stride: int
    env: dict[str, float | bool] = field(default_factory=dict)


@dataclass
class PrefetchReport:
    candidates: int = 0
    inserted: int = 0
    decisions: list[tuple[str, bool]] = field(default_factory=list)


def _induction_strides(function: Function, loop: Loop) -> dict[VReg, int]:
    """Registers updated as ``r = r + C`` exactly once per iteration."""
    strides: dict[VReg, int] = {}
    disqualified: set[VReg] = set()
    for label in loop.body:
        for instr in function.blocks[label].instrs:
            writes = [w for w in instr.writes() if isinstance(w, VReg)]
            if not writes:
                continue
            if (instr.op is Opcode.ADD and isinstance(instr.dest, VReg)
                    and instr.srcs and instr.srcs[0] == instr.dest
                    and isinstance(instr.srcs[1], Imm)
                    and instr.guard is None):
                # Multiple constant self-increments (e.g. an unrolled
                # body) sum to the per-trip stride.
                reg = instr.dest
                if reg not in disqualified:
                    strides[reg] = strides.get(reg, 0) \
                        + int(instr.srcs[1].value)
                continue
            for reg in writes:
                disqualified.add(reg)
                strides.pop(reg, None)
    return strides


def _affine_addresses(function: Function, loop: Loop,
                      strides: dict[VReg, int]) -> list[tuple[str, int, VReg, int]]:
    """Loads at (label, index) whose address register is ``base +
    induction`` computed in the same block; returns the effective
    stride of the stream."""
    results = []
    for label in sorted(loop.body):
        block = function.blocks[label]
        # addr_def[r] = (op, srcs) for same-block address arithmetic
        defs: dict[VReg, Instr] = {}
        for index, instr in enumerate(block.instrs):
            if instr.op is Opcode.LOAD:
                addr = instr.srcs[0]
                if not isinstance(addr, VReg):
                    continue
                stride = _stream_stride(addr, defs, strides)
                if stride:
                    results.append((label, index, addr, stride))
            for written in instr.writes():
                if isinstance(written, VReg):
                    defs[written] = instr
    return results


def _stream_stride(reg: VReg, defs: dict[VReg, Instr],
                   strides: dict[VReg, int], depth: int = 0) -> int:
    """Stride of the address stream rooted at ``reg`` (0 = not affine)."""
    if depth > 4:
        return 0
    if reg in strides:
        return strides[reg]
    definition = defs.get(reg)
    if definition is None:
        return 0
    if definition.op is Opcode.ADD:
        left, right = definition.srcs
        total = 0
        for operand in (left, right):
            if isinstance(operand, VReg):
                total += _stream_stride(operand, defs, strides, depth + 1)
            elif not isinstance(operand, Imm):
                return 0
        return total
    if definition.op is Opcode.MUL:
        left, right = definition.srcs
        if isinstance(right, Imm) and isinstance(left, VReg):
            return _stream_stride(left, defs, strides, depth + 1) \
                * int(right.value)
        if isinstance(left, Imm) and isinstance(right, VReg):
            return _stream_stride(right, defs, strides, depth + 1) \
                * int(left.value)
        return 0
    if definition.op is Opcode.MOV and isinstance(definition.srcs[0], VReg):
        return _stream_stride(definition.srcs[0], defs, strides, depth + 1)
    return 0


def _static_trip_count(function: Function, loop: Loop,
                       strides: dict[VReg, int]) -> int:
    """Exact trip count when header bounds are constant, else 0."""
    header = function.blocks[loop.header]
    term = header.instrs[-1]
    if term.op is not Opcode.BR:
        return 0
    cond = term.srcs[0]
    for instr in header.instrs[:-1]:
        if instr.dest == cond and instr.op is Opcode.CMP:
            left, right = instr.srcs
            if (isinstance(left, VReg) and left in strides
                    and isinstance(right, Imm)):
                from repro.passes.unroll import _constant_init, _trip_count
                start = _constant_init(function, loop.header, left)
                if start is None:
                    return 0
                trips = _trip_count(instr.rel, start, int(right.value),
                                    strides[left])
                return trips or 0
    return 0


def _profiled_trip_count(profile: FunctionProfile, function: Function,
                         loop: Loop) -> float:
    # Prefer the trip estimate computed at profile time (robust against
    # later passes renaming back-edge source blocks).
    stored = profile.loop_trips.get(loop.header)
    if stored is not None:
        return stored
    header_count = profile.count(loop.header)
    back_count = sum(
        profile.edge_counts.get((tail, loop.header), 0)
        for tail, _head in loop.back_edges
    )
    entries = max(1, header_count - back_count)
    if header_count == 0:
        return 0.0
    return back_count / entries


class PrefetchInsertion:
    """Runs prefetch analysis + insertion over one function, in place."""

    def __init__(
        self,
        function: Function,
        machine: MachineDescription,
        profile: FunctionProfile,
        priority: PrefetchPriority = orc_confidence,
        max_lookahead: int = 32,
    ) -> None:
        self.function = function
        self.machine = machine
        self.profile = profile
        self.priority = priority
        self.max_lookahead = max_lookahead
        self.report = PrefetchReport()

    def run(self) -> PrefetchReport:
        function = self.function
        line_words = self.machine.cache_levels[0].line_bytes // 8
        insertions: list[tuple[str, int, VReg, int]] = []
        for loop in find_loops(function):
            strides = _induction_strides(function, loop)
            if not strides:
                continue
            body_ops = sum(
                len(function.blocks[label].instrs) for label in loop.body
            )
            mem_ops = sum(
                1
                for label in loop.body
                for instr in function.blocks[label].instrs
                if instr.is_memory
            )
            static_trip = _static_trip_count(function, loop, strides)
            est_trip = _profiled_trip_count(self.profile, function, loop)
            if static_trip and not est_trip:
                est_trip = float(static_trip)

            candidates = _affine_addresses(function, loop, strides)
            for label, index, addr_reg, stride in candidates:
                self.report.candidates += 1
                iter_cycles = max(1.0, body_ops / self.machine.issue_width)
                lookahead = max(
                    1, min(self.max_lookahead,
                           round(self.machine.memory_latency / iter_cycles)),
                )
                env: dict[str, float | bool] = {
                    "est_trip_count": est_trip,
                    "static_trip": float(static_trip),
                    "stride": float(stride),
                    "loop_depth": float(loop.depth),
                    "body_ops": float(body_ops),
                    "mem_ops": float(mem_ops),
                    "line_reuse": max(1.0, line_words / max(1, abs(stride))),
                    "lookahead": float(lookahead),
                    "trip_known": static_trip > 0,
                    "is_inner": not loop.children,
                    "unit_stride": abs(stride) == 1,
                }
                try:
                    decision = bool(self.priority(env))
                except (ArithmeticError, ValueError, OverflowError):
                    decision = False
                self.report.decisions.append((f"{label}#{index}", decision))
                if decision:
                    insertions.append((label, index, addr_reg,
                                       stride * lookahead))

        # Insert from the bottom up so indices stay valid.
        by_block: dict[str, list[tuple[int, VReg, int]]] = {}
        for label, index, addr_reg, distance in insertions:
            by_block.setdefault(label, []).append((index, addr_reg, distance))
        for label, entries in by_block.items():
            block = function.blocks[label]
            for index, addr_reg, distance in sorted(entries, reverse=True):
                future = function.new_vreg(INT, "pfa")
                block.instrs[index + 1:index + 1] = [
                    Instr(Opcode.ADD, dest=future,
                          srcs=(addr_reg, Imm(distance))),
                    prefetch(future),
                ]
                self.report.inserted += 1
        if self.report.inserted:
            function.validate()
        return self.report


def insert_prefetches(
    function: Function,
    machine: MachineDescription,
    profile: FunctionProfile,
    priority: PrefetchPriority = orc_confidence,
) -> PrefetchReport:
    return PrefetchInsertion(function, machine, profile, priority).run()


def insert_prefetches_module(
    module: Module,
    machine: MachineDescription,
    profiles: Mapping[str, FunctionProfile],
    priority: PrefetchPriority = orc_confidence,
) -> dict[str, PrefetchReport]:
    reports = {}
    for name, function in module.functions.items():
        profile = profiles.get(name) or FunctionProfile()
        reports[name] = insert_prefetches(function, machine, profile,
                                          priority)
    return reports
