"""Optimization passes: cleanup, inlining, unrolling, hyperblock
formation, prefetching, register allocation, list scheduling, and the
pipeline driver."""

from repro.passes.cleanup import (
    cleanup_function,
    cleanup_module,
    constant_fold_function,
    copy_propagate_function,
    dce_function,
    peephole_function,
)
from repro.passes.hyperblock import (
    HYPERBLOCK_BOOL_FEATURES,
    HYPERBLOCK_REAL_FEATURES,
    HyperblockFormation,
    HyperblockReport,
    form_hyperblocks,
    impact_priority,
    region_feature_env,
)
from repro.passes.inline import InlineReport, inline_function, inline_module
from repro.passes.pipeline import (
    BackendReport,
    CompilerOptions,
    PreparedProgram,
    compile_backend,
    compile_module,
    prepare,
)
from repro.passes.prefetch import (
    PREFETCH_BOOL_FEATURES,
    PREFETCH_REAL_FEATURES,
    PrefetchInsertion,
    PrefetchReport,
    always_prefetch,
    insert_prefetches,
    insert_prefetches_module,
    never_prefetch,
    orc_confidence,
)
from repro.passes.regalloc import (
    REGALLOC_BOOL_FEATURES,
    REGALLOC_REAL_FEATURES,
    AllocationError,
    AllocationReport,
    allocate_function,
    allocate_module,
    chow_hennessy_savings,
)
from repro.passes.schedule import (
    BlockDAG,
    build_dag,
    latency_weighted_depth,
    schedule_block,
    schedule_function,
    schedule_module,
)
from repro.passes.unroll import UnrollReport, unroll_function, unroll_module

__all__ = [
    "AllocationError",
    "AllocationReport",
    "BackendReport",
    "BlockDAG",
    "CompilerOptions",
    "HYPERBLOCK_BOOL_FEATURES",
    "HYPERBLOCK_REAL_FEATURES",
    "HyperblockFormation",
    "HyperblockReport",
    "InlineReport",
    "PREFETCH_BOOL_FEATURES",
    "PREFETCH_REAL_FEATURES",
    "PreparedProgram",
    "PrefetchInsertion",
    "PrefetchReport",
    "REGALLOC_BOOL_FEATURES",
    "REGALLOC_REAL_FEATURES",
    "UnrollReport",
    "allocate_function",
    "allocate_module",
    "always_prefetch",
    "build_dag",
    "chow_hennessy_savings",
    "cleanup_function",
    "cleanup_module",
    "compile_backend",
    "compile_module",
    "constant_fold_function",
    "copy_propagate_function",
    "dce_function",
    "form_hyperblocks",
    "impact_priority",
    "inline_function",
    "inline_module",
    "insert_prefetches",
    "insert_prefetches_module",
    "latency_weighted_depth",
    "never_prefetch",
    "orc_confidence",
    "peephole_function",
    "prepare",
    "region_feature_env",
    "schedule_block",
    "schedule_function",
    "schedule_module",
    "unroll_function",
    "unroll_module",
]
