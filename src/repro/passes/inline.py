"""Function inlining.

Enabled in the paper's Trimaran configuration.  Inlining matters to the
hyperblock study indirectly: calls are *hazards* (IMPACT penalizes
paths containing ``jsr``), so inlining small leaf helpers converts
hazardous paths into predicatable ones.

Legality: a call site may be inlined only when it is unguarded, the
callee is known, is not the caller, allocates no stack frame, and is
not (mutually) recursive.  *Which* legal sites to inline is a policy
question, and since PR 9 an evolvable one: a priority hook receives the
site's feature environment and the site is inlined iff the priority is
positive.  The default policy reproduces the original fixed threshold
(inline when the callee has at most ``max_callee_ops`` instructions)
exactly, so ``priority=None`` is byte-identical to the historical pass.

Bodies are cloned with fresh registers and labels; every ``ret``
becomes a move to the call's destination plus a jump to the split-off
continuation block.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.block import Block
from repro.ir.function import Function, Module
from repro.ir.instr import Instr, Opcode, jmp, mov
from repro.ir.values import VReg

#: Feature names every inline-priority environment carries, in order.
INLINE_FEATURES = (
    "callee_ops",      # instruction count of the callee
    "caller_ops",      # instruction count of the caller (pre-inline)
    "callee_blocks",   # basic blocks in the callee
    "param_count",     # formal parameters of the callee
    "site_count",      # call sites targeting this callee, module-wide
)

#: Boolean features alongside the reals above.
INLINE_BOOL_FEATURES = (
    "callee_is_leaf",  # callee makes no calls of its own
    "single_site",     # this is the only call site of the callee
)


@dataclass(frozen=True)
class InlineDecision:
    """One legal call site judged by the inlining policy."""

    caller: str
    callee: str
    features: dict
    priority: float
    inlined: bool


@dataclass
class InlineReport:
    sites_seen: int = 0
    sites_inlined: int = 0
    decisions: list[InlineDecision] = field(default_factory=list)


def _call_graph(module: Module) -> dict[str, set[str]]:
    graph: dict[str, set[str]] = {name: set() for name in module.functions}
    for name, function in module.functions.items():
        for instr in function.instructions():
            if instr.op is Opcode.CALL:
                graph[name].add(instr.callee)
    return graph


def _reaches(graph: dict[str, set[str]], source: str, target: str) -> bool:
    """True when ``target`` is reachable from ``source`` through at
    least one call edge (so ``_reaches(g, f, f)`` detects recursion
    rather than trivially succeeding)."""
    seen: set[str] = set()
    stack = list(graph.get(source, ()))
    while stack:
        node = stack.pop()
        if node == target:
            return True
        if node in seen:
            continue
        seen.add(node)
        stack.extend(graph.get(node, ()))
    return False


def _site_count(module: Module, callee_name: str) -> int:
    count = 0
    for function in module.functions.values():
        for instr in function.instructions():
            if instr.op is Opcode.CALL and instr.callee == callee_name:
                count += 1
    return count


def site_features(module: Module, caller: Function, callee: Function,
                  graph: dict[str, set[str]]) -> dict:
    """The feature environment one legal call site presents to the
    inlining priority."""
    sites = _site_count(module, callee.name)
    return {
        "callee_ops": float(callee.instruction_count()),
        "caller_ops": float(caller.instruction_count()),
        "callee_blocks": float(len(callee.block_order)),
        "param_count": float(len(callee.params)),
        "site_count": float(sites),
        "callee_is_leaf": not graph.get(callee.name),
        "single_site": sites == 1,
    }


def _clone_into(caller: Function, callee: Function,
                tag: str) -> tuple[str, dict[str, str], dict[VReg, VReg]]:
    """Clone ``callee``'s blocks into ``caller`` with fresh registers
    and labels; returns (entry label, label map, register map)."""
    reg_map: dict[VReg, VReg] = {}

    def map_reg(reg):
        if isinstance(reg, VReg):
            mapped = reg_map.get(reg)
            if mapped is None:
                mapped = caller.new_vreg(reg.vtype, reg.name or "inl")
                reg_map[reg] = mapped
            return mapped
        return reg

    label_map: dict[str, str] = {}
    for label in callee.block_order:
        new_block = caller.new_block(f"{tag}_{label}_")
        label_map[label] = new_block.label

    for label in callee.block_order:
        target_block = caller.blocks[label_map[label]]
        for instr in callee.blocks[label].instrs:
            clone = instr.copy()
            clone.srcs = tuple(map_reg(src) for src in clone.srcs)
            if clone.dest is not None:
                clone.dest = map_reg(clone.dest)
            if clone.dest2 is not None:
                clone.dest2 = map_reg(clone.dest2)
            if clone.guard is not None:
                clone.guard = map_reg(clone.guard)
            if clone.targets:
                clone.targets = tuple(label_map[t] for t in clone.targets)
            target_block.instrs.append(clone)

    return label_map[callee.block_order[0]], label_map, reg_map


def inline_function(module: Module, caller: Function,
                    max_callee_ops: int = 24, priority=None,
                    report: InlineReport | None = None) -> int:
    """Inline eligible call sites in ``caller``; returns sites inlined.

    ``priority`` maps a feature environment (see :data:`INLINE_FEATURES`)
    to a float; a legal site is inlined iff the value is positive.  Each
    physical call site is judged exactly once, at first encounter —
    re-judging rejected sites after the caller grows would make the
    policy order-dependent in a way no fixed threshold is.  ``None``
    applies the historical threshold (``callee_ops <= max_callee_ops``)
    and is byte-identical to the pre-hook pass.
    """
    graph = _call_graph(module)
    inlined = 0
    judged: set[int] = set()
    changed = True
    guard_iterations = 0
    while changed and guard_iterations < 8:
        changed = False
        guard_iterations += 1
        for label in list(caller.block_order):
            block = caller.blocks[label]
            for index, instr in enumerate(block.instrs):
                if instr.op is not Opcode.CALL or instr.guard is not None:
                    continue
                callee = module.functions.get(instr.callee)
                if callee is None or callee is caller:
                    continue
                if callee.frame_words > 0:
                    continue
                if _reaches(graph, callee.name, callee.name):
                    continue  # self/mutually recursive
                if id(instr) in judged:
                    continue  # already rejected at first encounter
                judged.add(id(instr))

                features = site_features(module, caller, callee, graph)
                if priority is None:
                    value = (max_callee_ops + 0.5) - features["callee_ops"]
                else:
                    value = float(priority(features))
                accept = value > 0.0
                if report is not None:
                    report.decisions.append(InlineDecision(
                        caller=caller.name, callee=callee.name,
                        features=features, priority=value,
                        inlined=accept))
                if not accept:
                    continue

                # Split the block at the call site.
                continuation = caller.new_block(f"after_{callee.name}_")
                continuation.instrs = block.instrs[index + 1:]
                entry_label, label_map, reg_map = _clone_into(
                    caller, callee, f"inl_{callee.name}"
                )
                prefix = block.instrs[:index]
                for param, arg in zip(callee.params, instr.srcs):
                    prefix.append(mov(reg_map.get(param,
                                                  caller.new_vreg(
                                                      param.vtype)),
                                      arg))
                prefix.append(jmp(entry_label))
                block.instrs = prefix

                # Rewrite cloned rets.
                for cloned_label in label_map.values():
                    cloned = caller.blocks[cloned_label]
                    term = cloned.instrs[-1]
                    if term.op is not Opcode.RET:
                        continue
                    replacement: list[Instr] = cloned.instrs[:-1]
                    if instr.dest is not None and term.srcs:
                        replacement.append(mov(instr.dest, term.srcs[0]))
                    replacement.append(jmp(continuation.label))
                    cloned.instrs = replacement

                inlined += 1
                changed = True
                break
            if changed:
                break
    if inlined:
        caller.validate()
    return inlined


def inline_module(module: Module, max_callee_ops: int = 24,
                  priority=None) -> InlineReport:
    """Inline small calls across the whole module (callees first, so
    helper-of-helper chains flatten)."""
    report = InlineReport()
    for function in module.functions.values():
        for instr in function.instructions():
            if instr.op is Opcode.CALL:
                report.sites_seen += 1
    for function in module.functions.values():
        report.sites_inlined += inline_function(module, function,
                                                max_callee_ops,
                                                priority=priority,
                                                report=report)
    module.validate()
    return report
