"""Loop unrolling for counted loops with constant bounds.

One of the "classic optimizations" the paper's Trimaran configuration
enables.  We unroll only when correctness is decidable statically:

* the loop has the canonical lowered shape ``header(cmp i, K; br) ->
  body -> step(i = i + C; jmp header)`` with a single-block body and a
  single-block step;
* ``i`` is initialized to a constant immediately before the loop, is
  only modified in the step block, and the trip count is exact and
  divisible by the unroll factor.

Under those conditions the body is replicated ``factor`` times and the
step constant scaled, preserving semantics exactly (no epilogue
needed).

Legality analysis (shape discovery, trip counting) is factor-
independent and lives in :func:`analyze_loop`; *which* legal factor to
apply is a policy question, and since PR 9 an evolvable one: a priority
hook scores each candidate factor's feature environment and the
highest-scoring positive factor wins (no positive score means the loop
stays rolled).  ``priority=None`` applies the fixed ``factor`` argument
exactly as the historical pass did.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.cfg import predecessors
from repro.ir.function import Function, Module
from repro.ir.instr import Instr, Opcode, Rel, jmp
from repro.ir.loops import find_loops
from repro.ir.values import Imm, VReg

#: Candidate unroll factors an evolved policy chooses among.
UNROLL_CANDIDATE_FACTORS = (2, 4, 8)

#: Feature names every unroll-priority environment carries, in order.
UNROLL_FEATURES = (
    "factor",      # the candidate unroll factor being scored
    "trip_count",  # exact iteration count of the loop
    "body_ops",    # instructions in the flattened loop body
    "step",        # induction-variable increment per iteration
    "mem_ops",     # loads + stores in the body
)

#: Boolean features alongside the reals above.
UNROLL_BOOL_FEATURES = (
    "has_memory",  # body touches memory
    "has_fp",      # body does floating-point arithmetic
)

_FP_OPS = frozenset({
    Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV,
    Opcode.FNEG, Opcode.FSQRT, Opcode.ITOF, Opcode.FTOI,
})


@dataclass(frozen=True)
class UnrollDecision:
    """One analyzable loop judged by the unrolling policy."""

    function: str
    header: str
    trip_count: int
    body_ops: int
    priorities: dict  # candidate factor -> priority value
    factor: int       # chosen factor, 0 when the loop stays rolled


@dataclass
class UnrollReport:
    loops_seen: int = 0
    loops_unrolled: int = 0
    copies_added: int = 0
    decisions: list[UnrollDecision] = field(default_factory=list)


@dataclass
class LoopPlan:
    """Everything factor-independent about one unrollable loop."""

    header: str
    chain: list[str]
    flattened: list[Instr]
    trips: int
    step: int
    mem_ops: int
    has_fp: bool

    def legal_factors(self) -> tuple[int, ...]:
        return tuple(f for f in UNROLL_CANDIDATE_FACTORS
                     if self.trips % f == 0)

    def features(self, factor: int) -> dict:
        return {
            "factor": float(factor),
            "trip_count": float(self.trips),
            "body_ops": float(len(self.flattened)),
            "step": float(self.step),
            "mem_ops": float(self.mem_ops),
            "has_memory": self.mem_ops > 0,
            "has_fp": self.has_fp,
        }


def _constant_init(function: Function, header: str, reg: VReg) -> int | None:
    """The constant assigned to ``reg`` immediately before entering the
    loop, if that can be established from the header's non-loop
    predecessor block."""
    preds = predecessors(function)
    loops = {loop.header: loop for loop in find_loops(function)}
    loop = loops.get(header)
    if loop is None:
        return None
    outside = [p for p in preds[header] if p not in loop.body]
    if len(outside) != 1:
        return None
    value: int | None = None
    for instr in function.blocks[outside[0]].instrs:
        writes = instr.writes()
        if reg in writes:
            if (instr.op is Opcode.MOV and isinstance(instr.srcs[0], Imm)
                    and instr.guard is None):
                value = int(instr.srcs[0].value)
            else:
                value = None
    return value


def _trip_count(rel: Rel, start: int, bound: int, step: int) -> int | None:
    """Exact iteration count of ``for (i=start; i REL bound; i+=step)``."""
    if step == 0:
        return None
    count = 0
    i = start
    # Bounded walk: anything above this is not worth unrolling anyway.
    for _ in range(1 << 20):
        if rel is Rel.LT and not i < bound:
            return count
        if rel is Rel.LE and not i <= bound:
            return count
        if rel is Rel.GT and not i > bound:
            return count
        if rel is Rel.GE and not i >= bound:
            return count
        if rel in (Rel.EQ, Rel.NE):
            return None
        count += 1
        i += step
    return None


def analyze_loop(function: Function, loop,
                 max_body_ops: int = 40) -> LoopPlan | None:
    """Factor-independent legality analysis of one innermost loop;
    ``None`` when the loop cannot be unrolled by any factor."""
    if len(loop.body) not in (2, 3):
        return None  # header + body [+ step]
    header_block = function.blocks[loop.header]
    term = header_block.instrs[-1]
    if term.op is not Opcode.BR:
        return None

    # Canonical shape discovery: the body is a 1- or 2-block chain
    # header -> body [-> step] -> header.
    body_label = None
    for candidate in term.targets:
        if candidate in loop.body and candidate != loop.header:
            body_label = candidate
    if body_label is None:
        return None
    chain = [body_label]
    current = function.blocks[body_label]
    while current.instrs[-1].op is Opcode.JMP \
            and current.instrs[-1].targets[0] != loop.header:
        next_label = current.instrs[-1].targets[0]
        if next_label not in loop.body or next_label in chain:
            chain = []
            break
        chain.append(next_label)
        current = function.blocks[next_label]
        if len(chain) > 2:
            chain = []
            break
    if not chain or current.instrs[-1].op is not Opcode.JMP:
        return None
    if set(chain) | {loop.header} != loop.body:
        return None

    flattened: list[Instr] = []
    for label in chain:
        flattened.extend(function.blocks[label].instrs[:-1])
    if not flattened:
        return None

    # Induction update: exactly one "i = add i, C", and it must be
    # the final operation so replicated copies see per-copy values.
    updates = [
        instr for instr in flattened
        if instr.op is Opcode.ADD and isinstance(instr.dest, VReg)
        and instr.srcs and instr.srcs[0] == instr.dest
        and isinstance(instr.srcs[1], Imm) and instr.guard is None
    ]
    if len(updates) != 1 or flattened[-1] is not updates[0]:
        return None
    induction = updates[0].dest
    step_const = int(updates[0].srcs[1].value)

    # Header condition: cmp REL induction, K feeding the branch.
    cond_reg = term.srcs[0]
    cmp_instr = None
    for instr in header_block.instrs[:-1]:
        if instr.dest == cond_reg and instr.op is Opcode.CMP:
            cmp_instr = instr
    if cmp_instr is None:
        return None
    if not (cmp_instr.srcs[0] == induction
            and isinstance(cmp_instr.srcs[1], Imm)):
        return None
    bound = int(cmp_instr.srcs[1].value)
    # The branch must take the body when the comparison holds.
    if term.targets[0] != body_label:
        return None

    start = _constant_init(function, loop.header, induction)
    if start is None:
        return None
    trips = _trip_count(cmp_instr.rel, start, bound, step_const)
    if trips is None or trips == 0:
        return None
    if len(flattened) > max_body_ops:
        return None
    # The induction variable must have no other modification point.
    if sum(1 for instr in flattened
           if induction in instr.writes()) != 1:
        return None

    mem_ops = sum(1 for instr in flattened
                  if instr.op in (Opcode.LOAD, Opcode.STORE))
    has_fp = any(instr.op in _FP_OPS for instr in flattened)
    return LoopPlan(header=loop.header, chain=chain, flattened=flattened,
                    trips=trips, step=step_const, mem_ops=mem_ops,
                    has_fp=has_fp)


def _apply(function: Function, plan: LoopPlan, factor: int) -> int:
    """Replicate (body ; i += C) ``factor`` times into the first chain
    block; the remaining chain block (if any) empties into a jump.
    Returns copies added."""
    body_block = function.blocks[plan.chain[0]]
    replicated: list[Instr] = []
    for copy_index in range(factor):
        if copy_index == 0:
            replicated.extend(plan.flattened)
        else:
            replicated.extend(instr.copy() for instr in plan.flattened)
    replicated.append(jmp(plan.header))
    body_block.instrs = replicated
    for label in plan.chain[1:]:
        function.remove_block(label)
    return factor - 1


def _choose_factor(plan: LoopPlan, priority) -> tuple[int, dict]:
    """Score every legal candidate factor; highest positive wins (ties
    break toward the smaller factor).  Returns (factor or 0, scores)."""
    scores: dict[int, float] = {}
    best_factor, best_value = 0, 0.0
    for candidate in plan.legal_factors():
        value = float(priority(plan.features(candidate)))
        scores[candidate] = value
        if value > best_value:
            best_factor, best_value = candidate, value
    return best_factor, scores


def unroll_function(function: Function, factor: int = 2,
                    max_body_ops: int = 40, priority=None,
                    report: UnrollReport | None = None) -> UnrollReport:
    """Unroll eligible innermost loops in place."""
    if report is None:
        report = UnrollReport()
    if priority is None and factor < 2:
        return report
    loops = find_loops(function)
    for loop in loops:
        if loop.children:
            continue  # innermost only
        report.loops_seen += 1
        plan = analyze_loop(function, loop, max_body_ops)
        if plan is None:
            continue
        if priority is None:
            chosen = factor if plan.trips % factor == 0 else 0
            scores = {factor: 1.0 if chosen else 0.0}
        else:
            chosen, scores = _choose_factor(plan, priority)
        report.decisions.append(UnrollDecision(
            function=function.name, header=plan.header,
            trip_count=plan.trips, body_ops=len(plan.flattened),
            priorities=scores, factor=chosen))
        if chosen == 0:
            continue
        report.copies_added += _apply(function, plan, chosen)
        report.loops_unrolled += 1
    function.validate()
    return report


def unroll_module(module: Module, factor: int = 2,
                  priority=None) -> UnrollReport:
    total = UnrollReport()
    for function in module.functions.values():
        unroll_function(function, factor, priority=priority, report=total)
    return total
