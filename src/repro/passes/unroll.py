"""Loop unrolling for counted loops with constant bounds.

One of the "classic optimizations" the paper's Trimaran configuration
enables.  We unroll only when correctness is decidable statically:

* the loop has the canonical lowered shape ``header(cmp i, K; br) ->
  body -> step(i = i + C; jmp header)`` with a single-block body and a
  single-block step;
* ``i`` is initialized to a constant immediately before the loop, is
  only modified in the step block, and the trip count is exact and
  divisible by the unroll factor.

Under those conditions the body is replicated ``factor`` times and the
step constant scaled, preserving semantics exactly (no epilogue
needed).  Deliberately conservative: unrolling exists to enlarge
scheduling regions and expose prefetchable streams, not to be a
research contribution of its own.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.cfg import predecessors
from repro.ir.function import Function, Module
from repro.ir.instr import Instr, Opcode, Rel, jmp
from repro.ir.loops import find_loops
from repro.ir.values import Imm, VReg


@dataclass
class UnrollReport:
    loops_seen: int = 0
    loops_unrolled: int = 0
    copies_added: int = 0


def _constant_init(function: Function, header: str, reg: VReg) -> int | None:
    """The constant assigned to ``reg`` immediately before entering the
    loop, if that can be established from the header's non-loop
    predecessor block."""
    preds = predecessors(function)
    loops = {loop.header: loop for loop in find_loops(function)}
    loop = loops.get(header)
    if loop is None:
        return None
    outside = [p for p in preds[header] if p not in loop.body]
    if len(outside) != 1:
        return None
    value: int | None = None
    for instr in function.blocks[outside[0]].instrs:
        writes = instr.writes()
        if reg in writes:
            if (instr.op is Opcode.MOV and isinstance(instr.srcs[0], Imm)
                    and instr.guard is None):
                value = int(instr.srcs[0].value)
            else:
                value = None
    return value


def _trip_count(rel: Rel, start: int, bound: int, step: int) -> int | None:
    """Exact iteration count of ``for (i=start; i REL bound; i+=step)``."""
    if step == 0:
        return None
    count = 0
    i = start
    # Bounded walk: anything above this is not worth unrolling anyway.
    for _ in range(1 << 20):
        if rel is Rel.LT and not i < bound:
            return count
        if rel is Rel.LE and not i <= bound:
            return count
        if rel is Rel.GT and not i > bound:
            return count
        if rel is Rel.GE and not i >= bound:
            return count
        if rel in (Rel.EQ, Rel.NE):
            return None
        count += 1
        i += step
    return None


def unroll_function(function: Function, factor: int = 2,
                    max_body_ops: int = 40) -> UnrollReport:
    """Unroll eligible innermost loops in place."""
    report = UnrollReport()
    if factor < 2:
        return report
    loops = find_loops(function)
    for loop in loops:
        if loop.children:
            continue  # innermost only
        report.loops_seen += 1
        if len(loop.body) not in (2, 3):
            continue  # header + body [+ step]
        header_block = function.blocks[loop.header]
        term = header_block.instrs[-1]
        if term.op is not Opcode.BR:
            continue

        # Canonical shape discovery: the body is a 1- or 2-block chain
        # header -> body [-> step] -> header.
        body_label = None
        for candidate in term.targets:
            if candidate in loop.body and candidate != loop.header:
                body_label = candidate
        if body_label is None:
            continue
        chain = [body_label]
        current = function.blocks[body_label]
        while current.instrs[-1].op is Opcode.JMP \
                and current.instrs[-1].targets[0] != loop.header:
            next_label = current.instrs[-1].targets[0]
            if next_label not in loop.body or next_label in chain:
                chain = []
                break
            chain.append(next_label)
            current = function.blocks[next_label]
            if len(chain) > 2:
                chain = []
                break
        if not chain or current.instrs[-1].op is not Opcode.JMP:
            continue
        if set(chain) | {loop.header} != loop.body:
            continue

        flattened: list[Instr] = []
        for label in chain:
            flattened.extend(function.blocks[label].instrs[:-1])
        if not flattened:
            continue

        # Induction update: exactly one "i = add i, C", and it must be
        # the final operation so replicated copies see per-copy values.
        updates = [
            instr for instr in flattened
            if instr.op is Opcode.ADD and isinstance(instr.dest, VReg)
            and instr.srcs and instr.srcs[0] == instr.dest
            and isinstance(instr.srcs[1], Imm) and instr.guard is None
        ]
        if len(updates) != 1 or flattened[-1] is not updates[0]:
            continue
        induction = updates[0].dest
        step_const = int(updates[0].srcs[1].value)

        # Header condition: cmp REL induction, K feeding the branch.
        cond_reg = term.srcs[0]
        cmp_instr = None
        for instr in header_block.instrs[:-1]:
            if instr.dest == cond_reg and instr.op is Opcode.CMP:
                cmp_instr = instr
        if cmp_instr is None:
            continue
        if not (cmp_instr.srcs[0] == induction
                and isinstance(cmp_instr.srcs[1], Imm)):
            continue
        bound = int(cmp_instr.srcs[1].value)
        # The branch must take the body when the comparison holds.
        if term.targets[0] != body_label:
            continue

        start = _constant_init(function, loop.header, induction)
        if start is None:
            continue
        trips = _trip_count(cmp_instr.rel, start, bound, step_const)
        if trips is None or trips == 0 or trips % factor != 0:
            continue
        if len(flattened) > max_body_ops:
            continue
        # The induction variable must have no other modification point.
        if sum(1 for instr in flattened
               if induction in instr.writes()) != 1:
            continue

        # Replicate (body ; i += C) `factor` times into the first chain
        # block; the remaining chain block (if any) empties into a jump.
        body_block = function.blocks[chain[0]]
        replicated: list[Instr] = []
        for copy_index in range(factor):
            if copy_index == 0:
                replicated.extend(flattened)
            else:
                replicated.extend(instr.copy() for instr in flattened)
        replicated.append(jmp(loop.header))
        body_block.instrs = replicated
        for label in chain[1:]:
            function.remove_block(label)
        report.copies_added += factor - 1
        report.loops_unrolled += 1
    function.validate()
    return report


def unroll_module(module: Module, factor: int = 2) -> UnrollReport:
    total = UnrollReport()
    for function in module.functions.values():
        report = unroll_function(function, factor)
        total.loops_seen += report.loops_seen
        total.loops_unrolled += report.loops_unrolled
        total.copies_added += report.copies_added
    return total
