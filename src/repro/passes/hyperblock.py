"""Hyperblock formation (case study I).

If-conversion merges disjoint paths of control into a predicated
single-entry multiple-exit region (Figure 3).  IMPACT's algorithm
enumerates acyclic paths through a region, scores each with the
priority function (Equation 1), and merges the best paths until the
machine's estimated resources are consumed.

**Substitution note** (documented in DESIGN.md): IMPACT selects paths
over general acyclic regions with tail duplication; we implement the
*incremental hammock* variant — innermost if-then(/else) regions are
considered first, and converted regions become straight-line code that
outer regions can then absorb, so nested and sequential branch
structures collapse progressively.  The decision structure the priority
function controls is identical: per-path features (Table 4), priority
ranking, and a resource-bounded greedy merge.

Conversion correctness relies on three invariants:

* the two arm predicates come from one ``cmpp`` and are mutually
  exclusive, so interleaving the guarded arms preserves each arm's
  internal order and the join sees exactly one arm's effects;
* every predicate defined inside the merged block is cleared
  (``mov p, 0``) at the top, so predicates guarded by squashed inner
  ``cmpp`` s read as false rather than stale;
* arms never read registers defined only in the other arm (guaranteed
  upstream: the frontend initializes every declaration, and liveness
  treats guarded defs as uses so cleanup passes cannot break this).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.ir.block import Block
from repro.ir.cfg import predecessors
from repro.ir.function import Function
from repro.ir.instr import Instr, Opcode, Rel, cmpp, jmp, mov
from repro.ir.values import Imm, INT, PRED, VReg
from repro.machine.descr import MachineDescription
from repro.passes.schedule import build_dag
from repro.profile.profiler import FunctionProfile

#: Priority hook: feature environment -> path priority (higher = merge
#: first).  The environment contains the Table 4 features plus region
#: aggregates; see HYPERBLOCK_REAL_FEATURES / HYPERBLOCK_BOOL_FEATURES.
HyperblockPriority = Callable[[Mapping[str, float | bool]], float]

_BASE_FEATURES = ("dep_height", "num_ops", "exec_ratio", "num_branches",
                  "predict_product", "path_ilp")

HYPERBLOCK_REAL_FEATURES: tuple[str, ...] = _BASE_FEATURES + tuple(
    f"{name}_{suffix}"
    for name in _BASE_FEATURES
    for suffix in ("mean", "max", "min", "std")
) + ("num_paths",)

HYPERBLOCK_BOOL_FEATURES: tuple[str, ...] = ("mem_hazard", "has_unsafe_jsr")


def impact_priority(env: Mapping[str, float | bool]) -> float:
    """Trimaran/IMPACT's baseline heuristic (Equation 1)::

        h_i        = 0.25 if path has a hazard else 1.0
        d_ratio_i  = dep_height_i / max_j dep_height_j
        o_ratio_i  = num_ops_i / max_j num_ops_j
        priority_i = exec_ratio_i * h_i * (2.1 - d_ratio_i - o_ratio_i)
    """
    hazard = env["mem_hazard"] or env["has_unsafe_jsr"]
    h = 0.25 if hazard else 1.0
    d_ratio = env["dep_height"] / max(env["dep_height_max"], 1e-9)
    o_ratio = env["num_ops"] / max(env["num_ops_max"], 1e-9)
    return env["exec_ratio"] * h * (2.1 - d_ratio - o_ratio)


@dataclass
class PathInfo:
    """One path through a hammock region, with its Table 4 features."""

    side: str  # "taken" | "fall"
    entry: str | None  # chain entry label (None for the empty arm)
    blocks: list[str]
    dep_height: float
    num_ops: float
    exec_ratio: float
    num_branches: float
    predict_product: float
    mem_hazard: bool
    has_unsafe_jsr: bool

    @property
    def path_ilp(self) -> float:
        return self.num_ops / max(self.dep_height, 1.0)


@dataclass
class RegionDecision:
    """Record of one region's evaluation (consumed by tests/benches)."""

    head: str
    join: str
    paths: list[PathInfo]
    priorities: list[float]
    converted: bool
    reason: str


@dataclass
class HyperblockReport:
    regions_considered: int = 0
    regions_converted: int = 0
    ops_predicated: int = 0
    decisions: list[RegionDecision] = field(default_factory=list)


def region_feature_env(paths: list[PathInfo],
                       index: int) -> dict[str, float | bool]:
    """The feature environment handed to the priority function for
    ``paths[index]``: per-path features plus region aggregates."""
    path = paths[index]
    env: dict[str, float | bool] = {
        "dep_height": path.dep_height,
        "num_ops": path.num_ops,
        "exec_ratio": path.exec_ratio,
        "num_branches": path.num_branches,
        "predict_product": path.predict_product,
        "path_ilp": path.path_ilp,
        "mem_hazard": path.mem_hazard,
        "has_unsafe_jsr": path.has_unsafe_jsr,
        "num_paths": float(len(paths)),
    }
    for name in _BASE_FEATURES:
        values = [getattr(p, name) for p in paths]
        mean = sum(values) / len(values)
        env[f"{name}_mean"] = mean
        env[f"{name}_max"] = max(values)
        env[f"{name}_min"] = min(values)
        env[f"{name}_std"] = math.sqrt(
            sum((v - mean) ** 2 for v in values) / len(values)
        )
    return env


class HyperblockFormation:
    """Runs hammock if-conversion over one function, in place."""

    def __init__(
        self,
        function: Function,
        machine: MachineDescription,
        profile: FunctionProfile,
        priority: HyperblockPriority = impact_priority,
        rel_threshold: float = 0.10,
        max_ops: int = 128,
        max_chain_blocks: int = 8,
    ) -> None:
        self.function = function
        self.machine = machine
        self.profile = profile
        self.priority = priority
        self.rel_threshold = rel_threshold
        self.max_ops = max_ops
        self.max_chain_blocks = max_chain_blocks
        self.report = HyperblockReport()
        #: label -> number of branches previously merged into the block
        self._merged_branches: dict[str, int] = {}
        #: label -> product of predictabilities of merged branches
        self._merged_predict: dict[str, float] = {}
        self._evaluated_heads: set[str] = set()

    # -- driver ---------------------------------------------------------------
    def run(self) -> HyperblockReport:
        changed = True
        while changed:
            changed = False
            for label in list(self.function.block_order):
                if label not in self.function.blocks:
                    continue
                if label in self._evaluated_heads:
                    continue
                region = self._match_hammock(label)
                if region is None:
                    continue
                self._evaluated_heads.add(label)
                if self._evaluate_and_convert(label, *region):
                    # Conversion may create a new outer hammock whose
                    # head was already evaluated; allow re-evaluation.
                    self._evaluated_heads.clear()
                    changed = True
                    break
        return self.report

    # -- region matching ----------------------------------------------------------
    def _side_chain(self, start: str, preds: dict[str, list[str]],
                    expected_pred: str) -> tuple[list[str], str] | None:
        """Absorbable straight-line chain beginning at ``start``.

        Returns (chain labels, join label) or None when the chain is
        malformed (shared block reached with interior content, etc.).
        """
        chain: list[str] = []
        current = start
        previous = expected_pred
        while True:
            block = self.function.blocks[current]
            if preds[current] != [previous]:
                # Shared block: this is the join.
                return chain, current
            term = block.instrs[-1]
            if term.op is not Opcode.JMP:
                # BR (unconverted nested region) or RET: not absorbable.
                if chain or current != start:
                    return None
                return None
            if len(chain) >= self.max_chain_blocks:
                return None
            chain.append(current)
            previous = current
            current = term.targets[0]
            if current == start or current in chain:
                return None  # cycle

    def _match_hammock(self, head_label: str):
        head = self.function.blocks[head_label]
        term = head.instrs[-1]
        if term.op is not Opcode.BR:
            return None
        taken_target, fall_target = term.targets
        if taken_target == fall_target:
            return None
        preds = predecessors(self.function)
        taken = self._side_chain(taken_target, preds, head_label)
        fall = self._side_chain(fall_target, preds, head_label)
        if taken is None or fall is None:
            return None
        taken_chain, taken_join = taken
        fall_chain, fall_join = fall
        if taken_join != fall_join:
            return None
        join = taken_join
        if join == head_label:
            return None
        if not taken_chain and not fall_chain:
            return None  # nothing to predicate
        # The join must not be inside either chain (guaranteed by the
        # single-pred walk) and must not be the entry block.
        if join == self.function.block_order[0]:
            return None
        return taken_chain, fall_chain, join

    # -- features -----------------------------------------------------------------
    def _path_info(self, head_label: str, side: str, chain: list[str],
                   entry: str | None, join: str) -> PathInfo:
        head = self.function.blocks[head_label]
        instrs: list[Instr] = list(head.instrs[:-1])
        for label in chain:
            instrs.extend(self.function.blocks[label].instrs[:-1])

        pseudo = Block("__path__", list(instrs))
        dep_height = float(build_dag(pseudo, self.machine).height)
        num_ops = float(len(instrs))

        branch_uid = head.instrs[-1].uid
        accuracy = self.profile.branch_accuracy.get(branch_uid, 0.5)
        predict = accuracy * self._merged_predict.get(head_label, 1.0)
        branches = 1.0 + self._merged_branches.get(head_label, 0)
        for label in chain:
            predict *= self._merged_predict.get(label, 1.0)
            branches += self._merged_branches.get(label, 0)

        first_hop = entry if entry is not None else join
        exec_ratio = self.profile.edge_probability(head_label, first_hop)

        mem_hazard = any(
            instr.hazard and instr.is_memory for instr in instrs
        )
        unsafe_jsr = any(instr.is_call for instr in instrs)
        return PathInfo(
            side=side,
            entry=entry,
            blocks=list(chain),
            dep_height=max(dep_height, 1.0),
            num_ops=num_ops,
            exec_ratio=exec_ratio,
            num_branches=branches,
            predict_product=predict,
            mem_hazard=mem_hazard,
            has_unsafe_jsr=unsafe_jsr,
        )

    # -- decision + conversion ---------------------------------------------------------
    def _evaluate_and_convert(self, head_label: str, taken_chain: list[str],
                              fall_chain: list[str], join: str) -> bool:
        self.report.regions_considered += 1
        paths = [
            self._path_info(head_label, "taken", taken_chain,
                            taken_chain[0] if taken_chain else None, join),
            self._path_info(head_label, "fall", fall_chain,
                            fall_chain[0] if fall_chain else None, join),
        ]
        priorities = []
        for index in range(len(paths)):
            env = region_feature_env(paths, index)
            try:
                value = float(self.priority(env))
            except (ArithmeticError, ValueError, OverflowError):
                value = 0.0
            if value != value:  # NaN
                value = 0.0
            priorities.append(value)

        order = sorted(range(len(paths)), key=lambda i: -priorities[i])
        best = priorities[order[0]]
        selected = [order[0]]
        head_ops = len(self.function.blocks[head_label].instrs) - 1
        total_ops = paths[order[0]].num_ops
        max_height = paths[order[0]].dep_height
        reason = "secondary path rejected"
        for index in order[1:]:
            value = priorities[index]
            if best <= 0.0 or value <= 0.0:
                reason = "non-positive priority"
                continue
            if value < self.rel_threshold * best:
                reason = "below relative threshold"
                continue
            candidate_ops = total_ops + paths[index].num_ops - head_ops
            candidate_height = max(max_height, paths[index].dep_height)
            budget = self.machine.issue_width * candidate_height
            if candidate_ops > budget or candidate_ops > self.max_ops:
                reason = "resource budget exhausted"
                continue
            selected.append(index)
            total_ops = candidate_ops
            max_height = candidate_height

        converted = len(selected) == len(paths)
        decision = RegionDecision(
            head=head_label,
            join=join,
            paths=paths,
            priorities=priorities,
            converted=converted,
            reason="converted" if converted else reason,
        )
        self.report.decisions.append(decision)
        if not converted:
            return False

        self._convert(head_label, taken_chain, fall_chain, join, paths)
        self.report.regions_converted += 1
        return True

    def _convert(self, head_label: str, taken_chain: list[str],
                 fall_chain: list[str], join: str,
                 paths: list[PathInfo]) -> None:
        function = self.function
        head = function.blocks[head_label]
        branch = head.instrs[-1]
        cond = branch.srcs[0]

        p_taken = function.new_vreg(PRED, "pt")
        p_fall = function.new_vreg(PRED, "pf")

        def chain_instrs(chain: list[str]) -> list[Instr]:
            collected: list[Instr] = []
            for label in chain:
                collected.extend(function.blocks[label].instrs[:-1])
            return collected

        taken_instrs = chain_instrs(taken_chain)
        fall_instrs = chain_instrs(fall_chain)

        # Predicates defined inside the merged arms must be cleared at
        # the top so a squashed inner cmpp leaves them false, not stale.
        inner_preds: list[VReg] = []
        for instr in taken_instrs + fall_instrs:
            for reg in (instr.dest, instr.dest2):
                if isinstance(reg, VReg) and reg.vtype is PRED \
                        and reg not in inner_preds:
                    inner_preds.append(reg)

        new_instrs: list[Instr] = list(head.instrs[:-1])
        for pred_reg in inner_preds:
            new_instrs.append(mov(pred_reg, Imm(0, INT)))
        new_instrs.append(cmpp(p_taken, p_fall, Rel.NE, cond, Imm(0, INT)))

        def guard_arm(instrs: list[Instr], guard: VReg) -> None:
            for instr in instrs:
                if instr.guard is None:
                    instr.guard = guard
                new_instrs.append(instr)

        guard_arm(taken_instrs, p_taken)
        guard_arm(fall_instrs, p_fall)
        new_instrs.append(jmp(join))
        self.report.ops_predicated += len(taken_instrs) + len(fall_instrs)

        head.instrs = new_instrs

        # Bookkeeping for outer regions' features.
        merged_branches = 1 + self._merged_branches.get(head_label, 0)
        merged_predict = self.profile.branch_accuracy.get(branch.uid, 0.5) \
            * self._merged_predict.get(head_label, 1.0)
        for label in taken_chain + fall_chain:
            merged_branches += self._merged_branches.pop(label, 0)
            merged_predict *= self._merged_predict.pop(label, 1.0)
            function.remove_block(label)
        self._merged_branches[head_label] = merged_branches
        self._merged_predict[head_label] = merged_predict


def form_hyperblocks(
    function: Function,
    machine: MachineDescription,
    profile: FunctionProfile,
    priority: HyperblockPriority = impact_priority,
    rel_threshold: float = 0.10,
    max_ops: int = 128,
) -> HyperblockReport:
    """Convenience wrapper: run hyperblock formation on one function."""
    return HyperblockFormation(
        function, machine, profile, priority,
        rel_threshold=rel_threshold, max_ops=max_ops,
    ).run()
