"""Priority-based colouring register allocation (Chow & Hennessy).

Case study II's optimization.  The allocator:

1. computes liveness and builds an instruction-precise interference
   graph over virtual registers, per register class (INT -> GPRs,
   FLOAT -> FPRs; predicates get their own trivial assignment into the
   256-entry predicate file);
2. splits ranges into *unconstrained* (degree < K, trivially
   colourable) and *constrained*;
3. ranks constrained ranges by the **priority function** — the paper's
   Equation 2/3::

       savings_i   = w_i * (LDsave * uses_i + STsave * defs_i)
       priority(lr) = sum_i savings_i / N

   Equation 3 (the sum, normalized by the live range's N blocks) stays
   fixed, exactly as the paper does; the per-block savings term is the
   replaceable hook (``spill_priority``);
4. colours in priority order; a constrained range that cannot receive a
   colour is spilled to a stack slot (load before every use, store
   after every def — guarded defs keep their guard on the store);
5. repeats on the rewritten function until everything colours.  Spill
   temps never enter the interference graph: once any range spills,
   three registers per class are *reserved* for spill traffic and
   temps are pre-coloured into them by operand position (at most two
   simultaneous spilled reads plus independent writes per
   instruction, so three reserved registers always suffice).

The priority function therefore decides *which live ranges lose their
registers*, which is the lever the paper's GP search turns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.ir.function import Function, Module
from repro.ir.instr import Instr, Opcode
from repro.ir.liveness import analyze, live_at_instruction
from repro.ir.loops import loop_depth_of_blocks
from repro.ir.values import FLOAT, INT, PRED, IRType, PReg, StackSlot, VReg
from repro.machine.descr import MachineDescription

#: Estimated cycles saved per avoided load / store (Equation 2's
#: LDsave / STsave), tied to the machine's L1 latency.
LD_SAVE = 2.0
ST_SAVE = 1.0

#: Registers per class set aside for spill temps once spilling starts.
#: One instruction can need at most (register sources + destinations)
#: simultaneous temps; 4 covers every instruction the frontend emits.
SPILL_RESERVE = 4

#: The spill-priority hook: maps a per-block feature environment to the
#: block's savings contribution.  The allocator sums contributions over
#: the live range's blocks and divides by N (Equation 3).
SpillPriority = Callable[[Mapping[str, float | bool]], float]


def chow_hennessy_savings(env: Mapping[str, float | bool]) -> float:
    """The baseline per-block savings term (Equation 2)."""
    return env["w"] * (env["ld_save"] * env["uses"]
                       + env["st_save"] * env["defs"])


#: Feature names exposed to evolved spill-priority expressions.
REGALLOC_REAL_FEATURES = (
    "w",            # normalized execution frequency of the block
    "uses",         # uses of the range in the block
    "defs",         # defs of the range in the block
    "ld_save",      # machine LDsave constant
    "st_save",      # machine STsave constant
    "live_blocks",  # N: number of blocks in the live range
    "degree",       # interference degree of the range
    "loop_depth",   # loop nesting depth of the block
    "total_uses",   # uses of the range across all blocks
    "total_defs",   # defs of the range across all blocks
    "forbidden_ratio",  # fraction of colours already denied to the range
)
REGALLOC_BOOL_FEATURES = (
    "has_call",     # block contains a call
    "is_float",     # range lives in the FP register file
)


@dataclass
class LiveRange:
    """One allocation unit: a virtual register and where it lives."""

    reg: VReg
    blocks: list[str] = field(default_factory=list)
    uses_by_block: dict[str, int] = field(default_factory=dict)
    defs_by_block: dict[str, int] = field(default_factory=dict)
    degree: int = 0
    spillable: bool = True
    priority: float = 0.0

    @property
    def total_uses(self) -> int:
        return sum(self.uses_by_block.values())

    @property
    def total_defs(self) -> int:
        return sum(self.defs_by_block.values())


@dataclass
class AllocationReport:
    """What the allocator did — consumed by tests and benches."""

    rounds: int = 0
    spilled: list[str] = field(default_factory=list)
    spill_loads: int = 0
    spill_stores: int = 0
    ranges: int = 0
    constrained: int = 0
    #: Equation 2 priority of every constrained range, keyed by the
    #: virtual register's stable string form.  Later rounds overwrite
    #: earlier entries for the same range (the post-spill priorities
    #: are the ones that decided the final colouring).
    priorities: dict[str, float] = field(default_factory=dict)


class AllocationError(RuntimeError):
    """Raised when colouring cannot converge (e.g. predicate overflow)."""


def _register_class(vtype: IRType) -> IRType:
    return vtype  # classes coincide with types


class _FunctionAllocator:
    def __init__(
        self,
        function: Function,
        machine: MachineDescription,
        spill_priority: SpillPriority,
        block_freq: Mapping[str, float] | None,
    ) -> None:
        self.function = function
        self.machine = machine
        self.spill_priority = spill_priority
        self.block_freq = dict(block_freq or {})
        self.report = AllocationReport()
        self._unspillable: set[VReg] = set(function.params)
        #: spill temp -> reserved colour slot (0..SPILL_RESERVE-1)
        self._spill_temps: dict[VReg, int] = {}
        #: per-instruction count of reserved slots already handed out
        #: (persists across rounds so later spills at the same
        #: instruction never collide with earlier temps)
        self._slots_used: dict[int, int] = {}

    # -- analysis ----------------------------------------------------------
    def _build_ranges(self) -> tuple[dict[VReg, LiveRange],
                                     dict[VReg, set[VReg]]]:
        function = self.function
        liveness = analyze(function)
        live_after = live_at_instruction(function)

        ranges: dict[VReg, LiveRange] = {}

        temps = self._spill_temps

        def range_of(reg: VReg) -> LiveRange:
            live_range = ranges.get(reg)
            if live_range is None:
                live_range = LiveRange(reg)
                live_range.spillable = reg not in self._unspillable
                ranges[reg] = live_range
            return live_range

        for label in function.block_order:
            block = function.blocks[label]
            present: set[VReg] = set(liveness[label].live_in)
            for instr in block.instrs:
                for reg in instr.reads():
                    if isinstance(reg, VReg) and reg not in temps:
                        live_range = range_of(reg)
                        live_range.uses_by_block[label] = (
                            live_range.uses_by_block.get(label, 0) + 1
                        )
                        present.add(reg)
                for reg in instr.writes():
                    if isinstance(reg, VReg) and reg not in temps:
                        live_range = range_of(reg)
                        live_range.defs_by_block[label] = (
                            live_range.defs_by_block.get(label, 0) + 1
                        )
                        present.add(reg)
            for reg in present:
                if reg in ranges and label not in ranges[reg].blocks:
                    ranges[reg].blocks.append(label)

        # Interference graph.
        interference: dict[VReg, set[VReg]] = {reg: set() for reg in ranges}

        def connect(left: VReg, right: VReg) -> None:
            if left is right or left == right:
                return
            if left.vtype is not right.vtype:
                return
            if left in temps or right in temps:
                return  # temps live in the reserved registers
            interference[left].add(right)
            interference[right].add(left)

        entry_live = liveness[function.block_order[0]].live_in | set(
            function.params
        )
        entry_list = [reg for reg in entry_live if isinstance(reg, VReg)]
        for reg in entry_list:
            # an unused param has no range yet, but still needs a colour
            # (``_rewrite`` maps every param to a physical register)
            if reg not in ranges:
                range_of(reg)
            interference.setdefault(reg, set())
        for position, left in enumerate(entry_list):
            for right in entry_list[position + 1:]:
                connect(left, right)

        for label in function.block_order:
            for instr in function.blocks[label].instrs:
                after = live_after[instr.uid]
                for written in instr.writes():
                    if not isinstance(written, VReg) or written in temps:
                        continue
                    if written not in interference:
                        interference[written] = set()
                        # written-but-dead reg still needs a colour
                        if written not in ranges:
                            range_of(written)
                    for live in after:
                        if isinstance(live, VReg):
                            connect(written, live)

        for reg, live_range in ranges.items():
            live_range.degree = len(interference.get(reg, ()))
        return ranges, interference

    # -- priority --------------------------------------------------------------
    def _freq(self, label: str) -> float:
        if not self.block_freq:
            return 1.0
        total = max(self.block_freq.values(), default=1.0) or 1.0
        return self.block_freq.get(label, 0.0) / total

    def _compute_priority(self, live_range: LiveRange,
                          loop_depth: Mapping[str, int],
                          has_call: Mapping[str, bool],
                          forbidden_ratio: float) -> float:
        blocks = live_range.blocks or ["?"]
        count = len(blocks)
        total = 0.0
        for label in blocks:
            env = {
                "w": self._freq(label),
                "uses": float(live_range.uses_by_block.get(label, 0)),
                "defs": float(live_range.defs_by_block.get(label, 0)),
                "ld_save": LD_SAVE,
                "st_save": ST_SAVE,
                "live_blocks": float(count),
                "degree": float(live_range.degree),
                "loop_depth": float(loop_depth.get(label, 0)),
                "total_uses": float(live_range.total_uses),
                "total_defs": float(live_range.total_defs),
                "forbidden_ratio": forbidden_ratio,
                "has_call": has_call.get(label, False),
                "is_float": live_range.reg.vtype is FLOAT,
            }
            total += float(self.spill_priority(env))
        return total / count  # Equation 3

    # -- one colouring round ------------------------------------------------------
    def _colour_round(self) -> bool:
        """Attempt to colour everything; returns True when done, False
        after inserting spill code (another round needed)."""
        function = self.function
        ranges, interference = self._build_ranges()
        self.report.ranges = len(ranges)

        loop_depth = loop_depth_of_blocks(function)
        has_call = {
            label: any(instr.is_call
                       for instr in function.blocks[label].instrs)
            for label in function.block_order
        }

        capacity = {
            INT: self.machine.gp_registers,
            FLOAT: self.machine.fp_registers,
            PRED: self.machine.pred_registers,
        }
        # Once spilling has begun, the top SPILL_RESERVE registers of
        # the INT and FLOAT files belong to spill temps.
        reserving = bool(self._spill_temps)

        assignment: dict[VReg, int] = {}
        spilled: list[VReg] = []

        for reg_class in (INT, FLOAT, PRED):
            class_ranges = [r for r in ranges.values()
                            if r.reg.vtype is reg_class]
            if not class_ranges:
                continue
            k = capacity[reg_class]
            if reserving and reg_class is not PRED:
                k -= SPILL_RESERVE
                if k < 1:
                    raise AllocationError(
                        f"machine too small: {capacity[reg_class]} "
                        f"{reg_class.value} registers cannot cover the "
                        f"{SPILL_RESERVE}-register spill reserve"
                    )
            constrained = [r for r in class_ranges if r.degree >= k]
            unconstrained = [r for r in class_ranges if r.degree < k]
            self.report.constrained += len(constrained)

            for live_range in constrained:
                live_range.priority = self._compute_priority(
                    live_range, loop_depth, has_call,
                    forbidden_ratio=0.0,
                )
                self.report.priorities[str(live_range.reg)] = (
                    live_range.priority
                )
            # Unspillable ranges colour first regardless of priority.
            constrained.sort(
                key=lambda r: (r.spillable, -r.priority, r.reg.uid)
            )

            for live_range in constrained + sorted(
                unconstrained, key=lambda r: r.reg.uid
            ):
                used = {
                    assignment[other]
                    for other in interference.get(live_range.reg, ())
                    if other in assignment
                }
                colour = next(
                    (index for index in range(k) if index not in used), None
                )
                if colour is not None:
                    assignment[live_range.reg] = colour
                elif live_range.spillable and reg_class is not PRED:
                    spilled.append(live_range.reg)
                else:
                    raise AllocationError(
                        f"cannot colour {live_range.reg} in {function.name} "
                        f"(class {reg_class.value}, K={k})"
                    )

        if spilled:
            self._insert_spill_code(spilled)
            for reg in spilled:
                self.report.spilled.append(str(reg))
            return False

        self._rewrite(assignment)
        return True

    # -- spilling ----------------------------------------------------------------
    def _reserved_slot(self, instr: Instr) -> int:
        used = self._slots_used.get(instr.uid, 0)
        if used >= SPILL_RESERVE:
            raise AllocationError(
                f"instruction needs more than {SPILL_RESERVE} spill "
                f"temps: {instr}"
            )
        self._slots_used[instr.uid] = used + 1
        return used

    def _insert_spill_code(self, spilled: list[VReg]) -> None:
        """Rewrite every access to the spilled registers through stack
        slots, in one pass so temps at the same instruction receive
        distinct reserved slots."""
        function = self.function
        spill_set = set(spilled)
        slots = {
            reg: StackSlot(function.alloc_stack(1, f"spill_{reg.uid}"),
                           f"spill_{reg.uid}")
            for reg in spilled
        }
        for label in function.block_order:
            block = function.blocks[label]
            rewritten: list[Instr] = []
            for instr in block.instrs:
                reads = {r for r in instr.reads()
                         if isinstance(r, VReg) and r in spill_set}
                writes = {w for w in instr.writes()
                          if isinstance(w, VReg) and w in spill_set}
                for reg in sorted(reads, key=lambda r: r.uid):
                    temp = function.new_vreg(reg.vtype, f"rl{reg.uid}")
                    self._spill_temps[temp] = self._reserved_slot(instr)
                    rewritten.append(
                        Instr(Opcode.LOAD, dest=temp, srcs=(slots[reg],))
                    )
                    self.report.spill_loads += 1
                    instr = self._replace_operands(instr, reg, temp)
                stores: list[Instr] = []
                for reg in sorted(writes, key=lambda r: r.uid):
                    temp = function.new_vreg(reg.vtype, f"rs{reg.uid}")
                    self._spill_temps[temp] = self._reserved_slot(instr)
                    instr = self._replace_dest(instr, reg, temp)
                    stores.append(
                        Instr(Opcode.STORE, srcs=(slots[reg], temp),
                              guard=instr.guard)
                    )
                    self.report.spill_stores += 1
                rewritten.append(instr)
                rewritten.extend(stores)
            block.instrs = rewritten

    @staticmethod
    def _replace_operands(instr: Instr, old: VReg, new: VReg) -> Instr:
        instr.srcs = tuple(
            new if (isinstance(src, VReg) and src == old) else src
            for src in instr.srcs
        )
        if instr.guard is not None and instr.guard == old:
            instr.guard = new
        return instr

    @staticmethod
    def _replace_dest(instr: Instr, old: VReg, new: VReg) -> Instr:
        if instr.dest == old:
            instr.dest = new
        if instr.dest2 == old:
            instr.dest2 = new
        return instr

    # -- rewriting ---------------------------------------------------------------
    def _rewrite(self, assignment: dict[VReg, int]) -> None:
        capacity = {
            INT: self.machine.gp_registers,
            FLOAT: self.machine.fp_registers,
        }

        def map_reg(reg):
            if isinstance(reg, VReg):
                slot = self._spill_temps.get(reg)
                if slot is not None:
                    base = capacity[reg.vtype] - SPILL_RESERVE
                    return PReg(base + slot, reg.vtype)
                return PReg(assignment[reg], reg.vtype)
            return reg

        function = self.function
        for label in function.block_order:
            for instr in function.blocks[label].instrs:
                instr.srcs = tuple(map_reg(src) for src in instr.srcs)
                if instr.dest is not None:
                    instr.dest = map_reg(instr.dest)
                if instr.dest2 is not None:
                    instr.dest2 = map_reg(instr.dest2)
                if instr.guard is not None:
                    instr.guard = map_reg(instr.guard)
        function.params = [map_reg(param) for param in function.params]

    # -- driver -------------------------------------------------------------------
    def allocate(self, max_rounds: int = 16) -> AllocationReport:
        for round_index in range(max_rounds):
            self.report.rounds = round_index + 1
            if self._colour_round():
                return self.report
        raise AllocationError(
            f"register allocation did not converge in {max_rounds} rounds "
            f"for {self.function.name}"
        )


def allocate_function(
    function: Function,
    machine: MachineDescription,
    spill_priority: SpillPriority = chow_hennessy_savings,
    block_freq: Mapping[str, float] | None = None,
) -> AllocationReport:
    """Allocate one function in place (VRegs become PRegs)."""
    return _FunctionAllocator(
        function, machine, spill_priority, block_freq
    ).allocate()


def allocate_module(
    module: Module,
    machine: MachineDescription,
    spill_priority: SpillPriority = chow_hennessy_savings,
    block_freq: Mapping[str, Mapping[str, float]] | None = None,
) -> dict[str, AllocationReport]:
    """Allocate every function; ``block_freq`` maps function name ->
    block label -> profiled execution count."""
    reports = {}
    for name, function in module.functions.items():
        freq = block_freq.get(name) if block_freq else None
        reports[name] = allocate_function(function, machine,
                                          spill_priority, freq)
    return reports
