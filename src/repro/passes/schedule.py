"""List scheduling.

Converts each block into VLIW bundles under the machine's functional-
unit and issue-width constraints.  The default priority function is the
classic *latency-weighted depth* of Gibbons & Muchnick (the paper's
Section 2 example)::

    P(i) = latency(i)                       if i has no dependents
    P(i) = latency(i) + max_j P(j)          over dependents j

The priority is pluggable (``priority=``) both because the paper frames
list scheduling as a canonical priority-function site and because the
ablation benches evolve it.

Dependence edges within a block:

* RAW  def -> use, latency = static latency of the producer;
* WAR  use -> def, latency 0 (same-cycle allowed; bundle order
  preserves original order so sequential semantics hold);
* WAW  def -> def, latency 0 with order preserved;
* memory: store->load and store->store 1 cycle, load->store 0;
* calls and ``out`` are ordered with all memory/side effects;
* every instruction precedes the terminator (latency 0, so the branch
  may share the final bundle).

Guarded (predicated) instructions read their guard and implicitly read
their destination (a squashed write preserves the old value), which the
edge builder accounts for.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Callable

from repro.ir.block import Block
from repro.ir.function import Function, Module
from repro.ir.instr import FUClass, Instr, Opcode
from repro.ir.values import PReg, VReg
from repro.machine.descr import MachineDescription
from repro.machine.vliw import (
    Bundle,
    ScheduledBlock,
    ScheduledFunction,
    ScheduledModule,
)

#: priority hook signature: (instr_index, dag) -> value; higher first.
SchedulePriority = Callable[[int, "BlockDAG"], float]


@dataclass(eq=False)
class BlockDAG:
    """Dependence DAG over one block's instructions.

    ``eq=False`` keeps identity hashing so priority hooks can cache
    per-DAG feature tables in weak mappings."""

    instrs: list[Instr]
    #: successor edges: index -> list of (succ_index, latency)
    succs: list[list[tuple[int, int]]]
    preds: list[list[tuple[int, int]]]
    latency: list[int]

    def critical_path(self) -> list[int]:
        """Latency-weighted depth of each instruction (to DAG leaves)."""
        depth = [0] * len(self.instrs)
        for index in range(len(self.instrs) - 1, -1, -1):
            best = 0
            for succ, _edge_latency in self.succs[index]:
                best = max(best, depth[succ])
            depth[index] = self.latency[index] + best
        return depth

    @property
    def height(self) -> int:
        """The block's dependence height (max latency-weighted depth)."""
        depths = self.critical_path()
        return max(depths, default=0)


def build_dag(block: Block, machine: MachineDescription) -> BlockDAG:
    """Construct the dependence DAG for one block."""
    instrs = block.instrs
    count = len(instrs)
    succs: list[list[tuple[int, int]]] = [[] for _ in range(count)]
    preds: list[list[tuple[int, int]]] = [[] for _ in range(count)]
    latency = [machine.latency(instr) for instr in instrs]

    edges: set[tuple[int, int]] = set()

    def add_edge(src: int, dst: int, lat: int) -> None:
        if src == dst:
            return
        key = (src, dst)
        if key in edges:
            # Keep the max latency for duplicate edges.
            for position, (existing, existing_lat) in enumerate(succs[src]):
                if existing == dst and lat > existing_lat:
                    succs[src][position] = (dst, lat)
                    for ppos, (pexisting, _plat) in enumerate(preds[dst]):
                        if pexisting == src:
                            preds[dst][ppos] = (src, lat)
            return
        edges.add(key)
        succs[src].append((dst, lat))
        preds[dst].append((src, lat))

    last_def: dict[VReg | PReg, int] = {}
    uses_since_def: dict[VReg | PReg, list[int]] = defaultdict(list)
    last_store: int | None = None
    last_mem: int | None = None
    last_side_effect: int | None = None  # calls / outs, totally ordered

    for index, instr in enumerate(instrs):
        reads = list(instr.reads())
        writes = list(instr.writes())
        if instr.guard is not None:
            # Squashed writes preserve old values: a guarded def also
            # reads its destinations.
            reads.extend(writes)

        for reg in reads:
            producer = last_def.get(reg)
            if producer is not None:
                add_edge(producer, index, latency[producer])
            uses_since_def[reg].append(index)
        for reg in writes:
            producer = last_def.get(reg)
            if producer is not None:
                add_edge(producer, index, 0)  # WAW, order preserved
            for user in uses_since_def[reg]:
                add_edge(user, index, 0)  # WAR
            last_def[reg] = index
            uses_since_def[reg] = []

        if instr.op is Opcode.LOAD:
            if last_store is not None:
                add_edge(last_store, index, 1)
            last_mem = index
        elif instr.op is Opcode.STORE:
            if last_mem is not None:
                add_edge(last_mem, index,
                         1 if instrs[last_mem].op is Opcode.STORE else 0)
            if last_store is not None:
                add_edge(last_store, index, 1)
            last_store = index
            last_mem = index
        elif instr.op is Opcode.PREFETCH:
            # Prefetches are hints: ordered only against stores.
            if last_store is not None:
                add_edge(last_store, index, 0)

        if instr.op in (Opcode.CALL, Opcode.OUT):
            # Full ordering against other side effects and memory.
            if last_side_effect is not None:
                add_edge(last_side_effect, index, 1)
            if instr.op is Opcode.CALL:
                if last_mem is not None:
                    add_edge(last_mem, index, 0)
                last_store = index
                last_mem = index
            last_side_effect = index

        if instr.is_terminator:
            for other in range(index):
                add_edge(other, index, 0)

    # Calls also act as barriers for *subsequent* memory ops: handled by
    # setting last_store/last_mem to the call above.
    return BlockDAG(instrs=list(instrs), succs=succs, preds=preds,
                    latency=latency)


def latency_weighted_depth(index: int, dag: BlockDAG) -> float:
    """The classic list-scheduling priority (computed once per DAG by
    the scheduler; provided for use as an explicit hook)."""
    return float(dag.critical_path()[index])


def schedule_block(
    block: Block,
    machine: MachineDescription,
    priority: SchedulePriority | None = None,
) -> ScheduledBlock:
    """Greedy cycle-by-cycle list scheduling of one block."""
    dag = build_dag(block, machine)
    count = len(dag.instrs)
    if count == 0:
        return ScheduledBlock(block.label, [])

    if priority is None:
        depths = dag.critical_path()
        prio = [float(depth) for depth in depths]
    else:
        prio = [float(priority(index, dag)) for index in range(count)]

    unscheduled_preds = [len(dag.preds[index]) for index in range(count)]
    ready_time = [0] * count
    scheduled_cycle = [-1] * count

    ready: list[int] = [index for index in range(count)
                        if unscheduled_preds[index] == 0]
    bundles: list[Bundle] = []
    placed = 0
    cycle = 0
    slots_template = machine.slots()

    while placed < count:
        bundle = Bundle()
        slots = dict(slots_template)
        issue_left = machine.issue_width
        progressed = True
        while progressed and issue_left > 0:
            progressed = False
            # Choose the highest-priority ready instruction that fits.
            candidates = [
                index for index in ready
                if ready_time[index] <= cycle
                and slots[dag.instrs[index].fu_class] > 0
            ]
            if not candidates:
                break
            # Tie-break on original order for determinism and to keep
            # zero-latency same-cycle chains in dependence-safe order.
            best = min(candidates, key=lambda i: (-prio[i], i))
            ready.remove(best)
            scheduled_cycle[best] = cycle
            bundle.instrs.append(dag.instrs[best])
            slots[dag.instrs[best].fu_class] -= 1
            issue_left -= 1
            placed += 1
            progressed = True
            for succ, edge_latency in dag.succs[best]:
                unscheduled_preds[succ] -= 1
                ready_time[succ] = max(ready_time[succ],
                                       cycle + edge_latency)
                if unscheduled_preds[succ] == 0:
                    ready.append(succ)
        bundles.append(bundle)
        cycle += 1

    # Trim potential empty bundles at the tail (shouldn't occur) and
    # keep interior empties: they represent real latency stalls.
    while bundles and not bundles[-1].instrs:
        bundles.pop()
    return ScheduledBlock(block.label, bundles)


def schedule_function(
    function: Function,
    machine: MachineDescription,
    priority: SchedulePriority | None = None,
) -> ScheduledFunction:
    blocks = {
        label: schedule_block(function.blocks[label], machine, priority)
        for label in function.block_order
    }
    return ScheduledFunction(
        name=function.name,
        params=list(function.params),
        frame_words=function.frame_words,
        blocks=blocks,
        block_order=list(function.block_order),
    )


def schedule_module(
    module: Module,
    machine: MachineDescription,
    priority: SchedulePriority | None = None,
) -> ScheduledModule:
    scheduled = ScheduledModule(
        module=module,
        functions={
            name: schedule_function(function, machine, priority)
            for name, function in module.functions.items()
        },
    )
    scheduled.validate()
    return scheduled
