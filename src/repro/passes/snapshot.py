"""Compilation forking: hook-point pipeline snapshots, suffix replay.

Mosaner et al.'s "compilation forking" observation (PAPERS.md) applied
to the Meta Optimization eval path: for a given case study every
backend stage *upstream of the hook under study* is identical across
the whole GP population, so the post-prefix compiler state can be
frozen once per (benchmark, hook stage, options fingerprint) and every
candidate restored from it, replaying only the suffix.

A :class:`PipelineSnapshot` deep-freezes the working module plus the
partial :class:`~repro.passes.pipeline.BackendReport` after
:func:`~repro.passes.pipeline.run_prefix`.  Restore has two strategies
— ``pickle.loads`` of the pre-pickled payload vs ``module.clone()`` of
a master copy — benchmarked once per snapshot; the faster wins and the
choice lands in the ``pipeline.snapshot.strategy_*`` counters.  Both
produce bit-identical downstream results (instruction uids differ
between them, but nothing downstream of the prefix observes uid
*values*; see docs/FORKING.md for the audit).

:class:`SnapshotCache` is the in-memory LRU in front of the builds,
with optional on-disk persistence next to the fitness cache.  Cache
keying is strict: the options fingerprint covers the machine, every
structural pipeline flag, and the priorities of every stage strictly
before the hook — the hook's own priority and anything downstream is
deliberately excluded so the whole population shares one snapshot.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path

from repro import obs
from repro.ir.function import Module
from repro.passes.hyperblock import impact_priority
from repro.passes.pipeline import (
    BACKEND_STAGES,
    BackendReport,
    CompilerOptions,
    PreparedProgram,
    run_prefix,
)
from repro.passes.prefetch import orc_confidence
from repro.passes.regalloc import chow_hennessy_savings

#: Bump when the pickled payload layout changes; stale disk entries
#: are keyed out rather than migrated.
SNAPSHOT_FORMAT_VERSION = 1

#: The stock heuristics: the only native callables with a stable
#: cross-process identity (module-level functions shipped with repro),
#: so the only natives a *persistable* fingerprint may reference.
_WELL_KNOWN_PRIORITIES = (
    (impact_priority, "default:impact_priority"),
    (chow_hennessy_savings, "default:chow_hennessy_savings"),
    (orc_confidence, "default:orc_confidence"),
)

#: CompilerOptions priority attribute per backend stage.
_PRIORITY_FIELD_BY_STAGE = {
    "hyperblock": "hyperblock_priority",
    "prefetch": "prefetch_priority",
    "regalloc": "spill_priority",
    "schedule": "schedule_priority",
}

#: Stages whose suffix consumes only label-keyed profile data, making
#: a snapshot valid across processes.  The hyperblock and prefetch
#: passes read branch maps keyed by process-local instruction uids — a
#: snapshot unpickled in another process could alias those uids onto
#: this process's prepared-module profile and flip a feature lookup,
#: so snapshots replayed from those stages stay in-memory only.
_DISK_SAFE_STAGES = frozenset({"regalloc", "schedule"})


def _priority_fingerprint(value) -> tuple:
    """Stable identity of one priority hook for cache keying."""
    if value is None:
        return ("none",)
    for known, label in _WELL_KNOWN_PRIORITIES:
        if value is known:
            return (label,)
    tree = getattr(value, "tree", None)
    structural = getattr(tree if tree is not None else value,
                         "structural_key", None)
    if callable(structural):
        return ("tree",) + tuple(structural())
    # Arbitrary native callable: identity is process-local, so the
    # fingerprint is memory-cacheable but never persisted to disk.
    return ("native", getattr(value, "__module__", ""),
            getattr(value, "__qualname__", ""), id(value))


def options_fingerprint(options: CompilerOptions, stage: str) -> tuple:
    """Identity of everything that can influence the prefix for
    ``stage``: the machine, structural pipeline flags, the verifier
    setting, and the priorities of every stage strictly before the
    hook.  Suffix priorities are excluded by design — they only affect
    the replay, which re-runs per candidate anyway."""
    if stage not in BACKEND_STAGES:
        raise ValueError(f"unknown backend stage {stage!r}")
    parts: list[tuple] = [
        ("machine",
         hashlib.sha256(repr(options.machine).encode()).hexdigest()[:16]),
        ("inline", options.inline),
        ("unroll", options.unroll_factor),
        ("hyperblock", options.hyperblock),
        ("prefetch", options.prefetch),
        ("threshold", options.hyperblock_threshold),
        ("verify_ir", options.verify_ir),
        ("backend_order", tuple(options.backend_order)),
        ("inline_priority",
         _priority_fingerprint(options.inline_priority)),
        ("unroll_priority",
         _priority_fingerprint(options.unroll_priority)),
    ]
    order = tuple(options.backend_order)
    for prior in order[:order.index(stage)]:
        field = _PRIORITY_FIELD_BY_STAGE[prior]
        parts.append((field, _priority_fingerprint(getattr(options, field))))
    return tuple(parts)


def fingerprint_is_persistable(fingerprint: tuple) -> bool:
    """False when any component is keyed by process-local identity."""
    return not any(
        isinstance(value, tuple) and value and value[0] == "native"
        for _name, value in fingerprint
    )


def prepared_fingerprint(prepared: PreparedProgram) -> str:
    """Content identity of the prepared program as a disk-safe suffix
    sees it: the IR text plus the label-keyed profile counts.  The
    uid-keyed branch maps are deliberately excluded — they are
    process-local and only consumed by stages whose snapshots never
    touch disk (``_DISK_SAFE_STAGES``); any change to how the backend
    consumes profiles lands in ``pipeline_fingerprint`` and invalidates
    the store wholesale."""
    digest = hashlib.sha256()
    digest.update(str(prepared.module).encode())
    for name in sorted(prepared.module.functions):
        counts = prepared.profile.function(name).block_counts
        digest.update(repr((name, sorted(counts.items()))).encode())
    return digest.hexdigest()[:16]


@dataclass
class PipelineSnapshot:
    """Deep-frozen post-prefix compiler state.

    ``module``/``report`` are the master copies and are never handed
    out directly; :meth:`restore` always returns fresh, independently
    mutable state for one suffix replay."""

    stage: str
    module: Module
    report: BackendReport
    payload: bytes
    strategy: str  # "pickle" | "clone" — measured at build, faster wins

    @property
    def nbytes(self) -> int:
        return len(self.payload)

    def restore(self) -> tuple[Module, BackendReport]:
        started = time.perf_counter()
        if self.strategy == "pickle":
            module, report = pickle.loads(self.payload)
        else:
            module = self.module.clone()
            report = BackendReport(
                hyperblock=dict(self.report.hyperblock),
                prefetch=dict(self.report.prefetch),
                regalloc=dict(self.report.regalloc),
            )
        obs.inc("pipeline.snapshot.restores")
        obs.observe("pipeline.snapshot.restore_seconds",
                    time.perf_counter() - started)
        return module, report


def _faster_restore_strategy(module: Module, report: BackendReport,
                             payload: bytes) -> str:
    """One timed probe each way; ties go to pickle (C-speed loads, and
    the payload already exists for disk persistence)."""
    started = time.perf_counter()
    pickle.loads(payload)
    pickle_seconds = time.perf_counter() - started
    started = time.perf_counter()
    module.clone()
    dict(report.hyperblock), dict(report.prefetch), dict(report.regalloc)
    clone_seconds = time.perf_counter() - started
    return "pickle" if pickle_seconds <= clone_seconds else "clone"


def build_snapshot(
    prepared: PreparedProgram,
    options: CompilerOptions | None = None,
    stage: str = "schedule",
) -> PipelineSnapshot:
    """Run the prefix for ``stage`` and freeze the result."""
    with obs.span("pipeline:snapshot_build", stage=stage):
        module, report = run_prefix(prepared, options, stage)
        payload = pickle.dumps((module, report),
                               protocol=pickle.HIGHEST_PROTOCOL)
        strategy = _faster_restore_strategy(module, report, payload)
    obs.inc("pipeline.snapshot.builds")
    obs.inc(f"pipeline.snapshot.strategy_{strategy}")
    obs.inc("pipeline.snapshot.bytes", len(payload))
    return PipelineSnapshot(stage=stage, module=module, report=report,
                            payload=payload, strategy=strategy)


class SnapshotCache:
    """Thread-safe LRU of :class:`PipelineSnapshot`, keyed by
    (benchmark, stage, options fingerprint), with optional on-disk
    persistence (``disk_dir``, conventionally ``<fitness cache>/
    snapshots``) for cross-process reuse of disk-safe stages."""

    def __init__(self, capacity: int = 32,
                 disk_dir: str | os.PathLike | None = None) -> None:
        if capacity < 1:
            raise ValueError("snapshot cache capacity must be >= 1")
        self.capacity = capacity
        self.disk_dir = Path(disk_dir) if disk_dir is not None else None
        if self.disk_dir is not None:
            self.disk_dir.mkdir(parents=True, exist_ok=True)
        self._lru: OrderedDict[tuple, PipelineSnapshot] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.builds = 0
        self.disk_hits = 0
        self.evictions = 0

    # -- lookup ----------------------------------------------------------
    def get_or_build(self, benchmark: str, prepared: PreparedProgram,
                     options: CompilerOptions | None,
                     stage: str) -> PipelineSnapshot:
        options = options or prepared.options
        if options.heuristic_artifact is not None:
            options = options.heuristic_artifact.install(options)
        fingerprint = options_fingerprint(options, stage)
        key = (benchmark, stage, fingerprint)
        with self._lock:
            snapshot = self._lru.get(key)
            if snapshot is not None:
                self._lru.move_to_end(key)
                self.hits += 1
                obs.inc("pipeline.snapshot.hits")
                return snapshot
            self.misses += 1
        obs.inc("pipeline.snapshot.misses")
        persistable = (stage in _DISK_SAFE_STAGES
                       and fingerprint_is_persistable(fingerprint))
        snapshot = self._disk_load(key, prepared) if persistable else None
        if snapshot is None:
            snapshot = build_snapshot(prepared, options, stage)
            self.builds += 1
            if persistable:
                self._disk_store(key, prepared, snapshot)
        with self._lock:
            self._lru[key] = snapshot
            self._lru.move_to_end(key)
            while len(self._lru) > self.capacity:
                self._lru.popitem(last=False)
                self.evictions += 1
            resident = sum(s.nbytes for s in self._lru.values())
        obs.set_gauge("pipeline.snapshot.resident_bytes", resident)
        return snapshot

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "builds": self.builds,
                "disk_hits": self.disk_hits,
                "evictions": self.evictions,
                "entries": len(self._lru),
                "resident_bytes": sum(s.nbytes
                                      for s in self._lru.values()),
            }

    # -- disk layer ------------------------------------------------------
    def _disk_path(self, key: tuple, prepared: PreparedProgram) -> Path:
        from repro.metaopt.fitness_cache import pipeline_fingerprint

        digest = hashlib.sha256(repr((
            SNAPSHOT_FORMAT_VERSION,
            pipeline_fingerprint(),
            prepared_fingerprint(prepared),
            key,
        )).encode()).hexdigest()
        return self.disk_dir / digest[:2] / f"{digest}.pkl"

    def _disk_load(self, key: tuple,
                   prepared: PreparedProgram) -> PipelineSnapshot | None:
        if self.disk_dir is None:
            return None
        try:
            payload = self._disk_path(key, prepared).read_bytes()
            module, report = pickle.loads(payload)
        except Exception:  # noqa: BLE001 — missing/torn/stale: rebuild
            return None
        self.disk_hits += 1
        obs.inc("pipeline.snapshot.disk_hits")
        strategy = _faster_restore_strategy(module, report, payload)
        obs.inc(f"pipeline.snapshot.strategy_{strategy}")
        return PipelineSnapshot(stage=key[1], module=module, report=report,
                                payload=payload, strategy=strategy)

    def _disk_store(self, key: tuple, prepared: PreparedProgram,
                    snapshot: PipelineSnapshot) -> None:
        if self.disk_dir is None:
            return
        path = self._disk_path(key, prepared)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(snapshot.payload)
                os.replace(tmp, path)  # atomic: readers never see a tear
            except BaseException:
                os.unlink(tmp)
                raise
        except OSError:
            pass  # persistence is best-effort; the LRU still has it
