"""Classic scalar optimizations: constant folding, copy propagation,
dead-code elimination and algebraic peephole rewrites.

These run before profiling/hyperblocking (the paper enables "several
classic optimizations" in its Trimaran configuration) and again after
if-conversion to clean up predicated code.  All of them are
predication-aware: guarded instructions are never treated as
unconditional definitions.
"""

from __future__ import annotations

from repro.ir.cfg import merge_straightline, remove_unreachable
from repro.ir.function import Function, Module
from repro.ir.instr import Instr, Opcode, Rel, jmp, mov
from repro.ir.interp import InterpError, apply_scalar_op
from repro.ir.liveness import dead_definitions
from repro.ir.values import FLOAT, Imm, INT, VReg

#: Pure opcodes we are willing to fold when all sources are immediate.
_FOLDABLE = frozenset({
    Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.DIV, Opcode.REM, Opcode.NEG,
    Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.SHL, Opcode.SHR,
    Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV, Opcode.FNEG,
    Opcode.FSQRT, Opcode.ITOF, Opcode.FTOI, Opcode.CMP,
})


def constant_fold_function(function: Function) -> int:
    """Evaluate instructions whose operands are all immediates.

    Returns the number of instructions folded.  Guarded instructions
    are foldable too (folding preserves the guard on the resulting
    ``mov``).
    """
    folded = 0
    for block in function.ordered_blocks():
        for index, instr in enumerate(block.instrs):
            if instr.op not in _FOLDABLE or instr.dest is None:
                continue
            if not instr.srcs or not all(
                isinstance(src, Imm) for src in instr.srcs
            ):
                continue
            try:
                value = apply_scalar_op(
                    instr.op, instr.rel,
                    tuple(src.value for src in instr.srcs),
                )
            except InterpError:
                continue  # e.g. division by zero: leave for runtime
            vtype = FLOAT if isinstance(value, float) else INT
            block.instrs[index] = Instr(
                Opcode.MOV, dest=instr.dest, srcs=(Imm(value, vtype),),
                guard=instr.guard,
            )
            folded += 1
    return folded


def copy_propagate_function(function: Function) -> int:
    """Local copy/constant propagation.

    Within each block, uses of a register defined by an *unguarded*
    ``mov`` are replaced by the mov's source until either side is
    redefined.  Returns the number of operands rewritten.
    """
    rewritten = 0
    for block in function.ordered_blocks():
        copies: dict[VReg, object] = {}
        for instr in block.instrs:
            # Rewrite sources first.
            new_srcs = []
            for src in instr.srcs:
                replacement = copies.get(src) if isinstance(src, VReg) else None
                if replacement is not None:
                    new_srcs.append(replacement)
                    rewritten += 1
                else:
                    new_srcs.append(src)
            instr.srcs = tuple(new_srcs)
            if instr.guard is not None:
                replacement = copies.get(instr.guard)
                if isinstance(replacement, VReg):
                    instr.guard = replacement
                    rewritten += 1

            # Kill invalidated copies.
            for written in instr.writes():
                if not isinstance(written, VReg):
                    continue
                copies.pop(written, None)
                for key in [k for k, v in copies.items() if v == written]:
                    copies.pop(key)

            # Record new copies from unguarded movs.
            if (instr.op is Opcode.MOV and instr.guard is None
                    and isinstance(instr.dest, VReg)):
                source = instr.srcs[0]
                if isinstance(source, (VReg, Imm)) and source != instr.dest:
                    copies[instr.dest] = source
    return rewritten


def dce_function(function: Function) -> int:
    """Remove side-effect-free instructions whose results are dead.

    Iterates to a fixed point (removing one layer of dead code exposes
    the next).  Returns total instructions removed.
    """
    removed_total = 0
    while True:
        dead = dead_definitions(function)
        if not dead:
            return removed_total
        doomed = {(label, index) for label, index in dead}
        for label in function.block_order:
            block = function.blocks[label]
            block.instrs = [
                instr for index, instr in enumerate(block.instrs)
                if (label, index) not in doomed
            ]
        removed_total += len(doomed)


_IDENTITY_FOLDS = {
    # (op, operand position of the neutral element, neutral value)
    (Opcode.ADD, 1, 0), (Opcode.ADD, 0, 0),
    (Opcode.SUB, 1, 0),
    (Opcode.MUL, 1, 1), (Opcode.MUL, 0, 1),
    (Opcode.DIV, 1, 1),
    (Opcode.SHL, 1, 0), (Opcode.SHR, 1, 0),
    (Opcode.OR, 1, 0), (Opcode.OR, 0, 0),
    (Opcode.XOR, 1, 0), (Opcode.XOR, 0, 0),
    (Opcode.FADD, 1, 0.0), (Opcode.FADD, 0, 0.0),
    (Opcode.FSUB, 1, 0.0),
    (Opcode.FMUL, 1, 1.0), (Opcode.FMUL, 0, 1.0),
    (Opcode.FDIV, 1, 1.0),
}


def peephole_function(function: Function) -> int:
    """Algebraic identities and branch simplification.

    * ``x + 0``, ``x * 1``, ``x << 0``, ... collapse to ``mov``;
    * ``x * 0`` collapses to ``mov 0`` (integer only — float keeps NaN
      semantics out of scope by design, MiniC has no NaNs);
    * ``br`` on a constant condition becomes ``jmp``.
    """
    changed = 0
    for block in function.ordered_blocks():
        for index, instr in enumerate(block.instrs):
            if instr.dest is None or len(instr.srcs) != 2:
                if instr.op is Opcode.BR and isinstance(instr.srcs[0], Imm):
                    target = (instr.targets[0] if instr.srcs[0].value
                              else instr.targets[1])
                    block.instrs[index] = jmp(target)
                    changed += 1
                continue
            left, right = instr.srcs
            for operand_pos, operand in ((0, left), (1, right)):
                if not isinstance(operand, Imm):
                    continue
                key = (instr.op, operand_pos, operand.value)
                if key in _IDENTITY_FOLDS:
                    other = right if operand_pos == 0 else left
                    block.instrs[index] = mov(instr.dest, other,
                                              guard=instr.guard)
                    changed += 1
                    break
                if (instr.op is Opcode.MUL and operand.value == 0):
                    block.instrs[index] = mov(instr.dest, Imm(0, INT),
                                              guard=instr.guard)
                    changed += 1
                    break
    return changed


def fold_increments_function(function: Function) -> int:
    """Fold ``t = r OP imm ... r = mov t`` into ``r = r OP imm``.

    The frontend lowers ``i = i + 1`` through a temporary; folding it
    back exposes the canonical self-increment form that induction-
    variable analysis (unrolling, prefetch stride detection) matches.
    Legal when ``t`` has no other use and ``r`` is neither read nor
    written between the two instructions.
    """
    use_counts: dict[VReg, int] = {}
    for block in function.ordered_blocks():
        for instr in block.instrs:
            for reg in instr.reads():
                if isinstance(reg, VReg):
                    use_counts[reg] = use_counts.get(reg, 0) + 1

    folded = 0
    for block in function.ordered_blocks():
        index_of_def: dict[VReg, int] = {}
        kill: set[int] = set()
        for index, instr in enumerate(block.instrs):
            if (instr.op is Opcode.MOV and instr.guard is None
                    and isinstance(instr.dest, VReg)
                    and isinstance(instr.srcs[0], VReg)):
                temp = instr.srcs[0]
                target = instr.dest
                def_index = index_of_def.get(temp)
                if (def_index is not None
                        and use_counts.get(temp, 0) == 1):
                    producer = block.instrs[def_index]
                    if (producer.guard is None and producer.srcs
                            and producer.srcs[0] == target
                            and producer.op in _FOLDABLE
                            and len(producer.writes()) == 1):
                        clean = True
                        for between in block.instrs[def_index + 1:index]:
                            regs = between.reads() + between.writes()
                            if target in regs or temp in regs:
                                clean = False
                                break
                        if clean:
                            producer.dest = target
                            kill.add(index)
                            folded += 1
            for written in instr.writes():
                if isinstance(written, VReg):
                    index_of_def[written] = index
        if kill:
            block.instrs = [
                instr for index, instr in enumerate(block.instrs)
                if index not in kill
            ]
    return folded


def cleanup_function(function: Function, max_iterations: int = 8) -> None:
    """Run the scalar cleanup pipeline to a fixed point."""
    for _ in range(max_iterations):
        changed = 0
        changed += constant_fold_function(function)
        changed += copy_propagate_function(function)
        changed += peephole_function(function)
        changed += fold_increments_function(function)
        changed += dce_function(function)
        changed += remove_unreachable(function)
        changed += merge_straightline(function)
        if changed == 0:
            break
    function.validate()


def cleanup_module(module: Module) -> None:
    for function in module.functions.values():
        cleanup_function(function)
