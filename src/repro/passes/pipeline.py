"""The compilation pipeline.

Mirrors the paper's Trimaran configuration (Section 5.3): "function
inlining, loop unrolling, backedge coalescing, acyclic global
scheduling, hyperblock formation, register allocation, machine-specific
peephole optimization, and several classic optimizations" — here
realised as:

========================  =============================================
inline                    :mod:`repro.passes.inline`
classic opts + peephole   :mod:`repro.passes.cleanup`
loop unrolling            :mod:`repro.passes.unroll`
profiling                 :mod:`repro.profile.profiler`
hyperblock formation      :mod:`repro.passes.hyperblock`  (hook #1)
data prefetching          :mod:`repro.passes.prefetch`    (hook #3)
register allocation       :mod:`repro.passes.regalloc`    (hook #2)
list scheduling           :mod:`repro.passes.schedule`
========================  =============================================

The pipeline is split at the profiling point:

* :func:`prepare` runs every candidate-*independent* stage and collects
  the training-input profile — the Meta Optimization harness caches
  this per benchmark, exactly as the paper memoizes what it can because
  "fitness evaluations for our problem are costly";
* :func:`compile_backend` clones the prepared module and runs the
  candidate-*dependent* stages with the supplied priority functions.

The backend is itself forkable (docs/FORKING.md): every stage funnels
through one dispatcher, so :func:`run_prefix` can execute just the
stages strictly before a hook point and :func:`compile_backend` can
resume from a :class:`~repro.passes.snapshot.PipelineSnapshot` of that
state, replaying only the suffix per candidate.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field, replace

from repro import obs
from repro.ir.function import Module
from repro.machine.descr import DEFAULT_EPIC, MachineDescription
from repro.machine.vliw import ScheduledModule
from repro.passes.cleanup import cleanup_module
from repro.passes.hyperblock import (
    HyperblockPriority,
    HyperblockReport,
    form_hyperblocks,
    impact_priority,
)
from repro.passes.inline import InlineReport, inline_module
from repro.passes.prefetch import (
    PrefetchPriority,
    PrefetchReport,
    insert_prefetches,
    orc_confidence,
)
from repro.passes.regalloc import (
    AllocationReport,
    SpillPriority,
    allocate_function,
    chow_hennessy_savings,
)
from repro.passes.schedule import SchedulePriority, schedule_module
from repro.passes.unroll import UnrollReport, unroll_module
from repro.profile.profiler import ModuleProfile, collect_profile
from repro.verify.ir_verifier import verify_module, verify_scheduled

#: Candidate-dependent backend stages, in execution order.  A case
#: study's *prefix* is every stage strictly before its hook's stage;
#: the hook's stage plus everything downstream is the replayed
#: *suffix* (docs/FORKING.md).
BACKEND_STAGES: tuple[str, ...] = (
    "hyperblock", "prefetch", "regalloc", "schedule")

#: CompilerOptions hook attribute -> the backend stage it steers.
#: Prepare-stage hooks (``inline_priority``, ``unroll_priority``) and
#: the flags genome have no backend stage and are deliberately absent:
#: their candidates re-run :func:`prepare`, so nothing downstream of a
#: snapshot prefix can cover them.
STAGE_BY_HOOK = {
    "hyperblock_priority": "hyperblock",
    "prefetch_priority": "prefetch",
    "spill_priority": "regalloc",
    "schedule_priority": "schedule",
}


def validate_backend_order(order: tuple[str, ...]) -> tuple[str, ...]:
    """Check a backend stage ordering: only the two region-shaping
    stages (hyperblock, prefetch) may permute — allocation needs final
    IR shape and scheduling needs allocated code, so both stay pinned
    at the end."""
    if (len(order) != len(BACKEND_STAGES)
            or set(order[:2]) != {"hyperblock", "prefetch"}
            or tuple(order[2:]) != ("regalloc", "schedule")):
        raise ValueError(
            f"invalid backend_order {order!r}: must be a permutation of "
            f"{BACKEND_STAGES} keeping regalloc, schedule last")
    return tuple(order)


def _instr_count(module: Module) -> int:
    """Total instruction count — the IR size metric passes report."""
    return sum(
        len(block.instrs)
        for function in module.functions.values()
        for block in function.blocks.values()
    )


@contextmanager
def _staged(name: str, working: Module):
    """Observability wrapper for one pipeline stage: a ``pass:<name>``
    span nested in the surrounding pipeline span, a timing histogram
    (``pipeline.pass_seconds.<name>``), a run counter, and the stage's
    IR size delta (``pipeline.ir_delta.<name>``, signed).  With
    observability disabled this is a single guard check."""
    if not obs.enabled():
        yield
        return
    registry = obs.metrics()
    before = _instr_count(working) if registry is not None else 0
    start = time.perf_counter()
    with obs.span(f"pass:{name}"):
        yield
    if registry is not None:
        registry.observe(f"pipeline.pass_seconds.{name}",
                         time.perf_counter() - start)
        registry.inc(f"pipeline.pass_runs.{name}")
        registry.inc(f"pipeline.ir_delta.{name}",
                     _instr_count(working) - before)


@dataclass(frozen=True)
class CompilerOptions:
    """Pipeline configuration; priority hooks are the Meta Optimization
    attachment points."""

    machine: MachineDescription = DEFAULT_EPIC
    inline: bool = True
    unroll_factor: int = 2
    hyperblock: bool = True
    prefetch: bool = False
    hyperblock_priority: HyperblockPriority = impact_priority
    spill_priority: SpillPriority = chow_hennessy_savings
    prefetch_priority: PrefetchPriority = orc_confidence
    schedule_priority: SchedulePriority | None = None
    #: Prepare-stage hooks (Meta Optimization case studies 4 and 5):
    #: score legal inline sites / candidate unroll factors.  ``None``
    #: applies the historical fixed policies byte-for-byte.
    inline_priority: object | None = None
    unroll_priority: object | None = None
    #: Backend stage ordering (FOGA-style flag search); only the
    #: hyperblock/prefetch prefix may permute — see
    #: :func:`validate_backend_order`.
    backend_order: tuple[str, ...] = BACKEND_STAGES
    hyperblock_threshold: float = 0.10
    #: Run the structural IR verifier between every pipeline stage
    #: (and on the final schedule).  Off by default: it roughly doubles
    #: compile time, so the GP loop enables it only when hunting a
    #: miscompile (see docs/VERIFY.md).
    verify_ir: bool = False
    #: Deployed heuristic: a :class:`~repro.serve.artifact.
    #: HeuristicArtifact` (duck-typed: anything with ``install(options)
    #: -> CompilerOptions``).  Resolved at the top of
    #: :func:`compile_backend` — the artifact's evolved priority is
    #: swapped into the hook its pass kind names, so any compile can
    #: run under a published artifact (see docs/SERVING.md).
    heuristic_artifact: object | None = None

    def with_priorities(
        self,
        hyperblock_priority: HyperblockPriority | None = None,
        spill_priority: SpillPriority | None = None,
        prefetch_priority: PrefetchPriority | None = None,
    ) -> "CompilerOptions":
        """A copy with some hooks swapped (used per GP candidate)."""
        updated = self
        if hyperblock_priority is not None:
            updated = replace(updated, hyperblock_priority=hyperblock_priority)
        if spill_priority is not None:
            updated = replace(updated, spill_priority=spill_priority)
        if prefetch_priority is not None:
            updated = replace(updated, prefetch_priority=prefetch_priority)
        return updated


@dataclass
class PreparedProgram:
    """Candidate-independent compilation state, cacheable per benchmark.

    ("Candidate-independent" is relative to the backend case studies;
    for the inline/unroll/flags cases :func:`prepare` itself is the
    candidate-dependent step and the harness re-runs it per genome.)"""

    module: Module
    profile: ModuleProfile
    options: CompilerOptions
    inline_report: InlineReport | None = None
    unroll_report: UnrollReport | None = None


@dataclass
class BackendReport:
    """Per-candidate compilation record."""

    hyperblock: dict[str, HyperblockReport] = field(default_factory=dict)
    prefetch: dict[str, PrefetchReport] = field(default_factory=dict)
    regalloc: dict[str, AllocationReport] = field(default_factory=dict)


def prepare(
    module: Module,
    train_inputs: dict[str, list[float | int]] | None = None,
    options: CompilerOptions | None = None,
    max_steps: int = 10_000_000,
) -> PreparedProgram:
    """Run candidate-independent stages and profile on the training
    input.  The input module is not mutated."""
    options = options or CompilerOptions()
    working = module.clone()

    def checkpoint(stage: str) -> None:
        if options.verify_ir:
            verify_module(working, stage=stage)

    checkpoint("input")
    inline_report = None
    unroll_report = None
    with obs.span("pipeline:prepare", module=module.name):
        if options.inline:
            with _staged("inline", working):
                inline_report = inline_module(
                    working, priority=options.inline_priority)
            checkpoint("inline")
        with _staged("cleanup", working):
            cleanup_module(working)
        checkpoint("cleanup")
        if options.unroll_priority is not None or options.unroll_factor >= 2:
            with _staged("unroll", working):
                unroll_report = unroll_module(
                    working, options.unroll_factor,
                    priority=options.unroll_priority)
                cleanup_module(working)
            checkpoint("unroll")
        with _staged("profile", working):
            profile = collect_profile(working, train_inputs,
                                      max_steps=max_steps)
    return PreparedProgram(module=working, profile=profile, options=options,
                           inline_report=inline_report,
                           unroll_report=unroll_report)


def _make_checkpoint(working: Module, options: CompilerOptions):
    """The per-stage ``verify_ir`` hook; a no-op unless enabled."""

    def checkpoint(stage: str, allocated: bool = False) -> None:
        if options.verify_ir:
            verify_module(working, stage=stage, allocated=allocated,
                          machine=options.machine if allocated else None)

    return checkpoint


def _run_backend_stage(
    stage: str,
    working: Module,
    report: BackendReport,
    prepared: PreparedProgram,
    options: CompilerOptions,
    checkpoint,
) -> ScheduledModule | None:
    """Execute one backend stage in place; returns the ScheduledModule
    for the terminal ``schedule`` stage, None otherwise.  Both the full
    compile and a snapshot replay funnel through this dispatcher, so
    the suffix path can never drift from the reference semantics."""
    if stage == "hyperblock":
        if not options.hyperblock:
            return None
        with _staged("hyperblock", working):
            for name, function in working.functions.items():
                report.hyperblock[name] = form_hyperblocks(
                    function,
                    options.machine,
                    prepared.profile.function(name),
                    options.hyperblock_priority,
                    rel_threshold=options.hyperblock_threshold,
                )
            cleanup_module(working)
        checkpoint("hyperblock")
        return None

    if stage == "prefetch":
        if not options.prefetch:
            return None
        with _staged("prefetch", working):
            for name, function in working.functions.items():
                report.prefetch[name] = insert_prefetches(
                    function,
                    options.machine,
                    prepared.profile.function(name),
                    options.prefetch_priority,
                )
        checkpoint("prefetch")
        return None

    if stage == "regalloc":
        with _staged("regalloc", working):
            for name, function in working.functions.items():
                freq = {
                    label: float(count)
                    for label, count
                    in prepared.profile.function(name).block_counts.items()
                }
                report.regalloc[name] = allocate_function(
                    function, options.machine, options.spill_priority, freq
                )
        checkpoint("regalloc", allocated=True)
        return None

    if stage == "schedule":
        with _staged("schedule", working):
            scheduled = schedule_module(working, options.machine,
                                        options.schedule_priority)
        if options.verify_ir:
            verify_scheduled(scheduled, options.machine)
        return scheduled

    raise ValueError(f"unknown backend stage {stage!r}")


def run_prefix(
    prepared: PreparedProgram,
    options: CompilerOptions | None = None,
    stage: str = "schedule",
) -> tuple[Module, BackendReport]:
    """Run the backend stages strictly before ``stage`` and return the
    working module plus the partial report — the state a
    :class:`~repro.passes.snapshot.PipelineSnapshot` deep-freezes.
    ``verify_ir`` checkpoints for the prefix stages fire here, once per
    snapshot build rather than once per candidate (the replayed IR is
    identical every time)."""
    options = options or prepared.options
    if options.heuristic_artifact is not None:
        options = options.heuristic_artifact.install(options)
    if stage not in BACKEND_STAGES:
        raise ValueError(f"unknown backend stage {stage!r}")
    order = validate_backend_order(options.backend_order)
    working = prepared.module.clone()
    report = BackendReport()
    checkpoint = _make_checkpoint(working, options)
    with obs.span("pipeline:prefix", module=prepared.module.name,
                  stage=stage):
        for prior in order[:order.index(stage)]:
            _run_backend_stage(prior, working, report, prepared, options,
                               checkpoint)
    return working, report


def compile_backend(
    prepared: PreparedProgram,
    options: CompilerOptions | None = None,
    snapshot=None,
) -> tuple[ScheduledModule, BackendReport]:
    """Clone the prepared module and run the candidate-dependent
    backend: hyperblocking, prefetching, allocation, scheduling.

    With ``snapshot`` (a :class:`~repro.passes.snapshot.
    PipelineSnapshot` built from this prepared program under
    prefix-equivalent options), the prefix stages are skipped: the
    working module and partial report are restored from the snapshot
    and only the suffix — ``snapshot.stage`` onward — executes.  The
    result is bit-identical to the full path (docs/FORKING.md)."""
    options = options or prepared.options
    if options.heuristic_artifact is not None:
        options = options.heuristic_artifact.install(options)
    order = validate_backend_order(options.backend_order)
    if snapshot is None:
        working = prepared.module.clone()
        report = BackendReport()
        stages = order
        span_args = {"module": prepared.module.name}
    else:
        working, report = snapshot.restore()
        stages = order[order.index(snapshot.stage):]
        span_args = {"module": prepared.module.name,
                     "replay_from": snapshot.stage}
    checkpoint = _make_checkpoint(working, options)
    scheduled = None
    with obs.span("pipeline:backend", **span_args):
        for stage in stages:
            result = _run_backend_stage(stage, working, report, prepared,
                                        options, checkpoint)
            if result is not None:
                scheduled = result
    return scheduled, report


def compile_module(
    module: Module,
    train_inputs: dict[str, list[float | int]] | None = None,
    options: CompilerOptions | None = None,
) -> tuple[ScheduledModule, BackendReport]:
    """One-shot convenience: prepare + backend with the same options."""
    prepared = prepare(module, train_inputs, options)
    return compile_backend(prepared)
