"""Command-line interface.

Subcommands::

    python -m repro run PROGRAM.mc [--inputs data.json] [--machine M]
        Compile a MiniC file through the full pipeline and simulate it.

    python -m repro interpret PROGRAM.mc [--inputs data.json]
        Run a MiniC file under the reference interpreter.

    python -m repro suite [--category int|fp] [--suite NAME]
        List the registered benchmarks.

    python -m repro simulate BENCHMARK [--dataset train|novel] [...]
        Compile + simulate one suite benchmark, print machine counters.

    python -m repro evolve CASE BENCHMARK [--pop N] [--gens N] [...]
        Run Meta Optimization: evolve a priority function for one
        benchmark of a case study and report speedups.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.machine.descr import (
    DEFAULT_EPIC,
    ITANIUM_MACHINE,
    REGALLOC_MACHINE,
    MachineDescription,
)

MACHINES: dict[str, MachineDescription] = {
    "epic": DEFAULT_EPIC,
    "itanium": ITANIUM_MACHINE,
    "regalloc": REGALLOC_MACHINE,
}


def _load_inputs(path: str | None) -> dict:
    if path is None:
        return {}
    data = json.loads(Path(path).read_text())
    if not isinstance(data, dict):
        raise SystemExit("--inputs must be a JSON object "
                         "{global: [values...]}")
    return data


def _print_sim_result(result) -> None:
    print(f"outputs          : {result.outputs}")
    if result.return_value is not None:
        print(f"return value     : {result.return_value}")
    print(f"cycles           : {result.cycles}")
    print(f"dynamic ops      : {result.dynamic_ops} "
          f"(+{result.squashed_ops} squashed)")
    print(f"memory stalls    : {result.memory_stall_cycles}")
    print(f"branch stalls    : {result.branch_stall_cycles}")
    print(f"L1 hit rate      : {result.l1_hit_rate:.2%}")
    print(f"branch accuracy  : {result.branch_accuracy:.2%}")
    print(f"prefetches       : {result.prefetch_count}")


def cmd_run(args: argparse.Namespace) -> int:
    from repro.compiler import compile_program

    source = Path(args.program).read_text()
    inputs = _load_inputs(args.inputs)
    machine = MACHINES[args.machine]
    from repro.passes.pipeline import CompilerOptions

    options = CompilerOptions(machine=machine, prefetch=args.prefetch)
    program = compile_program(source, profile_inputs=inputs,
                              options=options, name=args.program)
    result = program.run(inputs, noise_stddev=args.noise)
    _print_sim_result(result)
    return 0


def cmd_interpret(args: argparse.Namespace) -> int:
    from repro.compiler import interpret

    source = Path(args.program).read_text()
    result = interpret(source, _load_inputs(args.inputs))
    print(f"outputs      : {result.outputs}")
    if result.return_value is not None:
        print(f"return value : {result.return_value}")
    print(f"steps        : {result.steps}")
    return 0


def cmd_suite(args: argparse.Namespace) -> int:
    from repro.suite import all_benchmarks

    rows = sorted(all_benchmarks().items())
    if args.category:
        rows = [(n, b) for n, b in rows if b.category == args.category]
    if args.suite:
        rows = [(n, b) for n, b in rows if b.suite == args.suite]
    print(f"{'name':<16s}{'suite':<12s}{'cat':<5s}description")
    for name, bench in rows:
        print(f"{name:<16s}{bench.suite:<12s}{bench.category:<5s}"
              f"{bench.description}")
    print(f"{len(rows)} benchmarks")
    return 0


def _resolve_fitness_cache(args: argparse.Namespace):
    """``--fitness-cache DIR`` / ``--no-fitness-cache`` / the
    ``REPRO_FITNESS_CACHE`` environment variable, in that order."""
    from repro.metaopt.fitness_cache import cache_from_env

    return cache_from_env(
        explicit_dir=getattr(args, "fitness_cache", None),
        disabled=getattr(args, "no_fitness_cache", False),
    )


def _add_fitness_cache_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--fitness-cache", metavar="DIR",
        help="persist simulation results under DIR (shared across "
             "runs and figure scripts; defaults to $REPRO_FITNESS_CACHE)")
    parser.add_argument(
        "--no-fitness-cache", action="store_true",
        help="disable the persistent fitness cache even when "
             "$REPRO_FITNESS_CACHE is set")


def cmd_simulate(args: argparse.Namespace) -> int:
    from repro.metaopt.harness import EvaluationHarness, case_study

    harness = EvaluationHarness(case_study(args.case),
                                fitness_cache=_resolve_fitness_cache(args))
    result = harness.baseline_result(args.benchmark, args.dataset)
    print(f"benchmark        : {args.benchmark} ({args.dataset} data, "
          f"{harness.case.machine.name})")
    _print_sim_result(result)
    return 0


def cmd_evolve(args: argparse.Namespace) -> int:
    from repro.gp.engine import GPParams
    from repro.gp.parse import infix, unparse
    from repro.gp.simplify import simplify
    from repro.metaopt.harness import EvaluationHarness, case_study
    from repro.metaopt.specialize import specialize

    if args.processes < 1:
        raise SystemExit("repro evolve: --processes must be >= 1")
    case = case_study(args.case)
    cache = _resolve_fitness_cache(args)
    harness = EvaluationHarness(case, noise_stddev=args.noise,
                                fitness_cache=cache)
    params = GPParams(population_size=args.pop, generations=args.gens,
                      seed=args.seed)
    print(f"evolving {args.case} priority for {args.benchmark} "
          f"(pop {args.pop}, {args.gens} generations, "
          f"{args.processes} process(es))")
    if args.processes > 1:
        from repro.metaopt.parallel import ParallelEvaluator

        cache_dir = str(cache.root) if cache is not None else None
        with ParallelEvaluator(
            args.case,
            processes=args.processes,
            noise_stddev=args.noise,
            fitness_cache_dir=cache_dir,
        ) as evaluator:
            result = specialize(case, args.benchmark, params,
                                harness=harness, evaluator=evaluator)
    else:
        result = specialize(case, args.benchmark, params, harness=harness)
    for stats in result.history:
        print(f"  gen {stats.generation:3d}: best {stats.best_fitness:.4f} "
              f"(size {stats.best_size})")
    best = simplify(result.best_tree)
    print(f"train speedup : {result.train_speedup:.4f}")
    print(f"novel speedup : {result.novel_speedup:.4f}")
    print(f"expression    : {unparse(best)}")
    print(f"infix         : {infix(best)}")
    if cache is not None:
        stats = cache.stats()
        print(f"fitness cache : {stats['hits']} hits "
              f"({stats['disk_hits']} from disk), "
              f"{stats['stores']} stores -> {cache.root}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Meta Optimization (PLDI 2003) reproduction toolkit",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run_parser = commands.add_parser(
        "run", help="compile + simulate a MiniC file")
    run_parser.add_argument("program")
    run_parser.add_argument("--inputs", help="JSON file of global inputs")
    run_parser.add_argument("--machine", choices=sorted(MACHINES),
                            default="epic")
    run_parser.add_argument("--prefetch", action="store_true")
    run_parser.add_argument("--noise", type=float, default=0.0)
    run_parser.set_defaults(func=cmd_run)

    interp_parser = commands.add_parser(
        "interpret", help="run a MiniC file on the reference interpreter")
    interp_parser.add_argument("program")
    interp_parser.add_argument("--inputs")
    interp_parser.set_defaults(func=cmd_interpret)

    suite_parser = commands.add_parser(
        "suite", help="list registered benchmarks")
    suite_parser.add_argument("--category", choices=("int", "fp"))
    suite_parser.add_argument("--suite")
    suite_parser.set_defaults(func=cmd_suite)

    sim_parser = commands.add_parser(
        "simulate", help="simulate one benchmark under a case study's "
                         "baseline heuristic")
    sim_parser.add_argument("benchmark")
    sim_parser.add_argument("--case", default="hyperblock",
                            choices=("hyperblock", "regalloc", "prefetch"))
    sim_parser.add_argument("--dataset", default="train",
                            choices=("train", "novel"))
    _add_fitness_cache_flags(sim_parser)
    sim_parser.set_defaults(func=cmd_simulate)

    evolve_parser = commands.add_parser(
        "evolve", help="evolve a specialized priority function")
    evolve_parser.add_argument(
        "case", choices=("hyperblock", "regalloc", "prefetch"))
    evolve_parser.add_argument("benchmark")
    evolve_parser.add_argument("--pop", type=int, default=24)
    evolve_parser.add_argument("--gens", type=int, default=10)
    evolve_parser.add_argument("--seed", type=int, default=0)
    evolve_parser.add_argument("--noise", type=float, default=0.0)
    evolve_parser.add_argument(
        "--processes", type=int, default=1,
        help="fan fitness evaluations out over a process pool "
             "(1 = serial, the seed-identical reference path)")
    _add_fitness_cache_flags(evolve_parser)
    evolve_parser.set_defaults(func=cmd_evolve)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
